//! Fleet monitoring: eight paths monitored concurrently in **one**
//! simulation by the `monitord` daemon subsystem — the paper's §I/§IX
//! deployment mode (SLA verification, server selection, overlay routing)
//! at fleet scale.
//!
//! Paths 0–6 are disjoint 2-hop paths with different capacities and
//! loads. Path 7's tight-link load *steps up* mid-run, and the change
//! detector flags the avail-bw drop. Output: a per-path summary table and
//! the JSONL records a real daemon would emit.
//!
//! ```text
//! cargo run --release --example fleet_monitor
//! ```

use availbw::monitord::{
    fleet_summary, write_fleet_jsonl, ScheduleConfig, SeriesConfig, SimFleetMonitor, SimPathSpec,
};
use availbw::netsim::app::CountingSink;
use availbw::netsim::Simulator;
use availbw::simprobe::scenarios::{build_disjoint_paths, step_link_load, LinkLoad, PathOpts};
use availbw::slops::SlopsConfig;
use availbw::traffic::SourceConfig;
use availbw::units::{Rate, TimeNs};

fn main() {
    let mut sim = Simulator::new(2026);
    // Eight disjoint paths: capacity 10..45 Mb/s, utilization 15..50%.
    let specs: Vec<(f64, f64)> = (0..8)
        .map(|i| (10.0 + 5.0 * i as f64, 0.15 + 0.05 * i as f64))
        .collect();
    let loads: Vec<Vec<LinkLoad>> = specs
        .iter()
        .map(|&(cap, util)| {
            vec![
                LinkLoad::pareto(Rate::from_mbps(100.0), 0.05, 5),
                LinkLoad::pareto(Rate::from_mbps(cap), util, 5),
            ]
        })
        .collect();
    let chains = build_disjoint_paths(&mut sim, &loads, &PathOpts::default());
    // Remember path 7's tight link so we can step its load mid-run.
    let stepped_link = chains[7].forward[1];

    let paths = chains
        .into_iter()
        .enumerate()
        .map(|(i, chain)| SimPathSpec {
            label: format!("path{i}"),
            chain,
            cfg: SlopsConfig::default(),
        })
        .collect();
    let sched = ScheduleConfig {
        period: TimeNs::from_secs(50),
        jitter: TimeNs::from_secs(4),
        max_concurrent: 4, // probe at most 4 paths at once
        seed: 8,
    };
    let series_cfg = SeriesConfig {
        capacity: 1024,
        window: TimeNs::from_secs(120),
    };
    let t0 = sim.now();
    let step_at = t0 + TimeNs::from_secs(120);
    let horizon = t0 + TimeNs::from_secs(240);

    let mut mon = SimFleetMonitor::new(sim, paths, &sched, &series_cfg, horizon)
        .expect("valid fleet configuration");
    println!("monitoring 8 paths for {} (period 50 s, cap 4)...", horizon);

    mon.run_until(step_at);
    // Mid-run event: path 7's tight link gains 40% more load.
    {
        let (cap, util) = specs[7];
        let extra = Rate::from_mbps(cap * 0.40);
        let sim = mon.sim_mut();
        let sink = sim.add_app(Box::new(CountingSink::default()));
        step_link_load(
            sim,
            stepped_link,
            sink,
            extra,
            5,
            &SourceConfig::paper_pareto(),
        );
        println!(
            "t={:.0}s: stepped path7 load {:.0}% -> {:.0}% (A: {:.1} -> {:.1} Mb/s)",
            step_at.secs_f64(),
            util * 100.0,
            (util + 0.40) * 100.0,
            cap * (1.0 - util),
            cap * (1.0 - util - 0.40),
        );
    }
    mon.run_to_completion();

    println!(
        "\n{} measurements completed across the fleet\n",
        mon.measurements_started()
    );
    print!("{}", fleet_summary(mon.series()));

    println!("\nJSONL daemon output (changes + summaries):");
    let mut buf = Vec::new();
    write_fleet_jsonl(&mut buf, mon.series()).expect("write to memory");
    for line in String::from_utf8(buf).expect("utf8").lines() {
        if line.contains("\"type\":\"change\"") || line.contains("\"type\":\"summary\"") {
            println!("{line}");
        }
    }
}
