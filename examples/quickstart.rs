//! Quickstart: measure the available bandwidth of a simulated 5-hop path.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use availbw::simprobe::scenarios::{PaperPath, PaperPathConfig};
use availbw::slops::{Session, SlopsConfig};

fn main() {
    // The paper's default simulation topology (Fig. 4): five hops, a
    // 10 Mb/s tight link in the middle at 60% utilization from heavy-tailed
    // cross traffic => true avail-bw A = 4 Mb/s.
    let path_cfg = PaperPathConfig::default();
    println!(
        "building a {}-hop path, tight link {} at {:.0}% load (true A = {})",
        path_cfg.hops,
        path_cfg.tight_capacity,
        path_cfg.tight_util * 100.0,
        path_cfg.avail_bw(),
    );
    let mut transport = PaperPath::build(&path_cfg, 42).into_transport();

    // Run one pathload measurement session with the tool defaults
    // (K = 100 packets, N = 12 streams, omega = 1 Mb/s, chi = 2 Mb/s).
    let est = Session::new(SlopsConfig::default())
        .run(&mut transport)
        .expect("measurement failed");

    println!(
        "pathload reports [{:.2}, {:.2}] Mb/s (midpoint {:.2} Mb/s)",
        est.low.mbps(),
        est.high.mbps(),
        est.midpoint().mbps()
    );
    if let Some((lo, hi)) = est.grey {
        println!("grey region: [{:.2}, {:.2}] Mb/s", lo.mbps(), hi.mbps());
    }
    println!(
        "fleets used: {}, measurement took {} of simulated time, stopped by {:?}",
        est.fleets.len(),
        est.elapsed,
        est.termination
    );
    for f in &est.fleets {
        println!("  fleet at {:>9}: {:?}", f.rate, f.outcome);
    }
}
