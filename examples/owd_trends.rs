//! The fundamental SLoPS effect (paper Figs. 1-3): one-way delays of a
//! periodic stream trend upward iff the stream rate exceeds the avail-bw.
//!
//! Prints OWD series for probing rates below, near, and above the true
//! avail-bw, plus the fluid-model prediction for comparison.
//!
//! ```text
//! cargo run --release --example owd_trends
//! ```

use availbw::fluid::{FluidLink, FluidPath};
use availbw::simprobe::scenarios::{PaperPath, PaperPathConfig};
use availbw::slops::{classify_stream, stream_params, ProbeTransport, SlopsConfig};
use availbw::units::{Rate, TimeNs};

fn main() {
    let path_cfg = PaperPathConfig::default(); // A = 4 Mb/s, C_t = 10 Mb/s
    let a = path_cfg.avail_bw();
    let mut t = PaperPath::build(&path_cfg, 7).into_transport();
    let cfg = SlopsConfig::default();

    // The matching fluid path for analytic predictions.
    let fluid = FluidPath::new(
        path_cfg
            .loads()
            .iter()
            .map(|l| FluidLink::new(l.capacity, l.avail()))
            .collect(),
    );

    for rate_mbps in [2.0, 4.0, 6.0, 8.0] {
        let rate = Rate::from_mbps(rate_mbps);
        let req = stream_params(rate, 0, &cfg);
        let rec = t.send_stream(&req).expect("sim transport");
        let owds = rec.owds();
        let first = owds.first().copied().unwrap_or(0);
        let net_ms = (owds.last().copied().unwrap_or(0) - first) as f64 / 1e6;
        let fluid_ms = fluid.owd_slope(rate, req.packet_size) * 99.0 * 1e3;
        println!(
            "rate {:>9} (A = {}): net OWD change {:+7.3} ms (fluid model {:+7.3} ms) -> {:?}",
            rate,
            a,
            net_ms,
            fluid_ms,
            classify_stream(&rec, &cfg),
        );
        t.idle(TimeNs::from_millis(500));
    }
    println!("\nRates above A show the self-loading increasing trend;");
    println!("rates below A leave the one-way delays flat (Proposition 1).");
}
