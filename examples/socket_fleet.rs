//! A socket-backed monitoring fleet over loopback: what the `monitord`
//! binary does, as a library call.
//!
//! Three paths, all against ONE in-process `pathload_rcv`-style receiver
//! (the multi-session receiver demuxes them by session token), monitored
//! by the socket fleet driver — real UDP probe streams, real TCP control
//! channels, one long-lived connection per path, all sender clocks on one
//! shared epoch — with the JSONL records a daemon would emit streamed to
//! stdout as measurements finish.
//!
//! Loopback has no FIFO bottleneck, so the "avail-bw" numbers are not
//! meaningful; the point is the deployable stack end to end. Runs for
//! about ten seconds.
//!
//! ```text
//! cargo run --release --example socket_fleet
//! ```

use availbw::monitord::export::{change_line, fleet_summary, sample_line, summary_line};
use availbw::monitord::{
    run_socket_fleet, FleetEvent, ScheduleConfig, SeriesConfig, SocketPathSpec,
};
use availbw::pathload_net::Receiver;
use availbw::slops::SlopsConfig;
use availbw::units::{Rate, TimeNs};
use std::thread;

fn main() {
    // Gentle probing: ~1 s per measurement on a shared machine.
    let mut probe = SlopsConfig::default();
    probe.stream_len = 30;
    probe.fleet_len = 4;
    probe.min_period = TimeNs::from_millis(1);
    probe.resolution = Rate::from_mbps(8.0);
    probe.grey_resolution = Rate::from_mbps(16.0);
    probe.max_fleets = 6;

    const N: usize = 3;
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).expect("bind receiver");
    let addr = rx.ctrl_addr();
    eprintln!("shared receiver for {N} paths on {addr}");
    let server = thread::spawn(move || rx.serve_n(N));
    let specs: Vec<SocketPathSpec> = (0..N)
        .map(|i| SocketPathSpec {
            label: format!("lo{i}"),
            ctrl_addr: addr,
            cfg: probe.clone(),
            rate_cap: Some(Rate::from_mbps(40.0)),
        })
        .collect();

    let sched = ScheduleConfig {
        period: TimeNs::from_secs(2),
        jitter: TimeNs::from_millis(200),
        max_concurrent: 1, // loopback paths share the host
        seed: 7,
    };
    let series = run_socket_fleet(
        specs,
        &sched,
        &SeriesConfig::default(),
        TimeNs::from_secs(8),
        0,
        |ev| match ev {
            FleetEvent::Sample {
                path,
                label,
                sample,
            } => println!("{}", sample_line(path, label, &sample)),
            FleetEvent::Change {
                path,
                label,
                change,
            } => println!("{}", change_line(path, label, &change)),
            FleetEvent::Failed { path, label, error } => {
                eprintln!("measurement {path} ({label}) failed: {error}")
            }
        },
    )
    .expect("fleet run");

    for (p, s) in series.iter().enumerate() {
        println!("{}", summary_line(p, s));
    }
    eprint!("\n{}", fleet_summary(&series));
    server.join().expect("receiver thread").expect("receiver");
}
