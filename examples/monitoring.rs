//! Continuous avail-bw monitoring and SLA checking — the §I applications
//! (SLA verification, server selection) driven by repeated pathload runs.
//!
//! ```text
//! cargo run --release --example monitoring
//! ```

use availbw::simprobe::scenarios::{PaperPath, PaperPathConfig};
use availbw::slops::{monitor_until, sla_compliance, Session, SlopsConfig};
use availbw::units::{Rate, TimeNs};

fn main() {
    // A path whose tight link is 10 Mb/s at 60% load: A = 4 Mb/s.
    let cfg = PaperPathConfig::default();
    let mut transport = PaperPath::build(&cfg, 2024).into_transport();
    let session = Session::new(SlopsConfig::default());

    // Monitor for 5 simulated minutes, 2 s between measurements.
    let deadline = TimeNs::from_secs(300);
    let (series, err) = monitor_until(&session, &mut transport, deadline, TimeNs::from_secs(2));
    if let Some(e) = err {
        eprintln!("monitoring aborted: {e}");
    }
    println!(
        "collected {} measurements over {}:",
        series.samples.len(),
        deadline
    );
    for s in &series.samples {
        println!(
            "  t={:>8}  [{:5.2}, {:5.2}] Mb/s  ({} fleets, {})",
            s.started,
            s.estimate.low.mbps(),
            s.estimate.high.mbps(),
            s.estimate.fleets.len(),
            s.duration,
        );
    }
    let avg = series.window_average(TimeNs::ZERO, deadline);
    let (lo, hi) = series.envelope().expect("non-empty series");
    println!("\nwindow average (eq. 11): {avg}   envelope: [{lo}, {hi}]");
    for floor in [2.0, 4.0, 6.0] {
        println!(
            "SLA 'avail-bw >= {floor} Mb/s' compliance: {:.0}%",
            sla_compliance(&series, Rate::from_mbps(floor)) * 100.0
        );
    }
}
