//! Parallel measurement grids on the `slops::runner` batch layer.
//!
//! Runs a {utilization × seed} grid of pathload sessions over the paper's
//! Fig. 4 topology, once serially and once with one worker per CPU, prints
//! both wall-clock times, and checks the two grids agree cell by cell
//! (parallelism must never change a measurement).
//!
//! ```text
//! cargo run --release --example parallel_grid
//! ```

use availbw::simprobe::scenarios::{PaperPath, PaperPathConfig};
use availbw::slops::runner::{run_sessions, SessionJob};
use availbw::slops::SlopsConfig;
use std::time::Instant;

/// {utilization × seed} grid: 4 loads × 4 seeds = 16 sessions.
fn jobs() -> Vec<SessionJob> {
    let utils = [0.20, 0.40, 0.60, 0.90];
    let seeds = [11u64, 22, 33, 44];
    utils
        .iter()
        .flat_map(|&util| {
            seeds.iter().map(move |&seed| {
                let mut cfg = PaperPathConfig::default();
                cfg.tight_util = util;
                let a = cfg.avail_bw().mbps();
                SessionJob::new(
                    format!("u={:.0}% (A={a:.1} Mb/s) seed={seed}", util * 100.0),
                    SlopsConfig::default(),
                    move || PaperPath::build(&cfg, seed).into_transport(),
                )
            })
        })
        .collect()
}

fn main() {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("running a 16-session grid, serial then on {cpus} worker(s)\n");

    let t0 = Instant::now();
    let serial = run_sessions(jobs(), 1);
    let serial_wall = t0.elapsed();

    let t0 = Instant::now();
    let parallel = run_sessions(jobs(), 0);
    let parallel_wall = t0.elapsed();

    println!(
        "{:<34} {:>18} {:>12}",
        "session", "estimate (Mb/s)", "sim time"
    );
    for (s, p) in serial.iter().zip(&parallel) {
        // A lost session is reported per cell instead of panicking the
        // whole grid away.
        let (Some(es), Some(ep)) = (s.estimate(), p.estimate()) else {
            let e = s.error().or(p.error()).expect("missing estimate");
            eprintln!("{} failed: {e}", s.label);
            continue;
        };
        assert_eq!(es, ep, "parallelism changed the estimate of {}", s.label);
        println!(
            "{:<34} [{:>6.2}, {:>6.2}] {:>9.1?}s",
            s.label,
            es.low.mbps(),
            es.high.mbps(),
            es.elapsed.secs_f64(),
        );
    }
    println!(
        "\nserial: {serial_wall:.1?}   parallel ({cpus} workers): {parallel_wall:.1?}   \
         speedup: {:.2}x",
        serial_wall.as_secs_f64() / parallel_wall.as_secs_f64()
    );
    println!("all 16 parallel estimates identical to their serial counterparts");
}
