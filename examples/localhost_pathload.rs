//! Run the *real-socket* pathload against a receiver thread over loopback.
//!
//! The estimate itself is not meaningful on loopback (there is no FIFO
//! bottleneck; the "avail-bw" is whatever the kernel schedules), but this
//! demonstrates the full sender/receiver protocol — UDP probe streams, TCP
//! control channel, pacing, timestamping — end to end on a real network
//! stack, with the very same `slops::Session` that runs on the simulator.
//!
//! ```text
//! cargo run --release --example localhost_pathload
//! ```

use availbw::pathload_net::{Receiver, SocketTransport};
use availbw::slops::{Session, SlopsConfig};
use availbw::units::{Rate, TimeNs};
use std::thread;

fn main() {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).expect("bind receiver");
    let addr = rx.ctrl_addr();
    println!("receiver listening on {addr}");
    let server = thread::spawn(move || {
        rx.serve_one().expect("receiver session");
    });

    let mut transport = SocketTransport::connect(addr).expect("connect");
    // Keep the probing gentle: short streams, 0.5 ms period floor, coarse
    // resolution, and a ceiling well below loopback line rate so the run
    // finishes in a few seconds.
    let mut cfg = SlopsConfig::default();
    cfg.stream_len = 50;
    cfg.fleet_len = 6;
    cfg.min_period = TimeNs::from_micros(500);
    cfg.resolution = Rate::from_mbps(5.0);
    cfg.grey_resolution = Rate::from_mbps(10.0);
    transport.rate_cap = Rate::from_mbps(60.0);

    match Session::new(cfg).run(&mut transport) {
        Ok(est) => {
            println!(
                "loopback 'avail-bw' range: [{:.1}, {:.1}] Mb/s ({} fleets, {:?})",
                est.low.mbps(),
                est.high.mbps(),
                est.fleets.len(),
                est.termination
            );
            println!("(loopback has no FIFO bottleneck; the point is the protocol ran)");
        }
        Err(e) => println!("measurement failed: {e}"),
    }
    drop(transport); // sends Bye
    server.join().expect("receiver thread");
}
