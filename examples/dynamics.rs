//! Avail-bw dynamics (paper §VI): how the variability of the available
//! bandwidth depends on load. Runs pathload repeatedly at two utilization
//! levels and compares the relative-variation metric ρ (eq. 12).
//!
//! ```text
//! cargo run --release --example dynamics
//! ```

use availbw::simprobe::scenarios::{PaperPath, PaperPathConfig};
use availbw::slops::{Session, SlopsConfig};
use availbw::units::stats::Summary;

fn main() {
    let runs = 10;
    for util in [0.25, 0.80] {
        let mut rhos = Vec::with_capacity(runs);
        let mut ranges = Vec::new();
        for run in 0..runs {
            let mut cfg = PaperPathConfig::default();
            cfg.tight_util = util;
            let mut t = PaperPath::build(&cfg, 1000 + run as u64).into_transport();
            let est = Session::new(SlopsConfig::default())
                .run(&mut t)
                .expect("measurement failed");
            rhos.push(est.relative_variation());
            ranges.push(format!("[{:.2}, {:.2}]", est.low.mbps(), est.high.mbps()));
        }
        let s = Summary::of(&rhos);
        println!(
            "tight-link load {:.0}% (A = {:.1} Mb/s): rho mean {:.2}, p75 {:.2}",
            util * 100.0,
            10.0 * (1.0 - util),
            s.mean,
            s.p75
        );
        println!("  ranges: {}", ranges.join(" "));
    }
    println!("\nHeavily loaded paths have much more variable avail-bw (paper Fig. 11):");
    println!("lightly loaded networks are not just faster, they are more predictable.");
}
