//! TCP and available bandwidth (paper §VII, condensed): a greedy TCP
//! connection roughly measures the avail-bw — but saturates the path,
//! inflates RTT, and steals bandwidth from other TCP flows.
//!
//! ```text
//! cargo run --release --example tcp_vs_availbw
//! ```

use availbw::netsim::app::CountingSink;
use availbw::netsim::{Chain, ChainConfig, LinkConfig, Simulator};
use availbw::tcpsim::{TcpConnection, TcpSender, TcpSenderConfig};
use availbw::traffic::{attach_sources, SourceConfig};
use availbw::units::{Rate, TimeNs};

fn main() {
    let mut sim = Simulator::new(99);
    // An 8.2 Mb/s tight link (as in the paper's Univ-Ioannina path) with a
    // 180 kB drop-tail buffer.
    let chain = Chain::build(
        &mut sim,
        &ChainConfig::symmetric(vec![
            LinkConfig::new(Rate::from_mbps(100.0), TimeNs::from_millis(5)),
            LinkConfig::new(Rate::from_mbps(8.2), TimeNs::from_millis(20))
                .with_queue_limit(180 * 1024),
            LinkConfig::new(Rate::from_mbps(100.0), TimeNs::from_millis(5)),
        ]),
    );
    let tight = chain.forward[1];

    // Background: 2 long-lived TCP flows plus 1.5 Mb/s of UDP.
    let bg1 = TcpConnection::greedy(&mut sim, &chain, 1);
    let bg2 = TcpConnection::greedy(&mut sim, &chain, 2);
    let sink = sim.add_app(Box::new(CountingSink::default()));
    let udp_route = chain.hop_route(&sim, 1, sink);
    attach_sources(
        &mut sim,
        udp_route,
        Rate::from_mbps(1.5),
        4,
        &SourceConfig::paper_pareto(),
    );

    // Phase 1: background only.
    sim.run_until(TimeNs::from_secs(60));
    let t0 = TimeNs::from_secs(10);
    let t1 = TimeNs::from_secs(60);
    let bg_before = bg1.throughput(&sim, t0, t1).mbps() + bg2.throughput(&sim, t0, t1).mbps();

    // Phase 2: a BTC connection joins for 60 s.
    let start = sim.now();
    let btc = TcpConnection::start_at(&mut sim, &chain, TcpSenderConfig::greedy(9), start);
    sim.run_until(start + TimeNs::from_secs(60));
    sim.app_mut::<TcpSender>(btc.sender).stop();
    let btc_tput = btc.throughput(&sim, start, start + TimeNs::from_secs(60));
    let bg_during = bg1
        .throughput(&sim, start, start + TimeNs::from_secs(60))
        .mbps()
        + bg2
            .throughput(&sim, start, start + TimeNs::from_secs(60))
            .mbps();

    let elapsed = sim.now();
    let util = sim.link(tight).stats.utilization(elapsed);
    println!(
        "tight link: 8.2 Mb/s, overall utilization {:.0}%",
        util * 100.0
    );
    println!("background TCP before BTC: {bg_before:.2} Mb/s");
    println!("BTC throughput:            {:.2} Mb/s", btc_tput.mbps());
    println!("background TCP during BTC: {bg_during:.2} Mb/s");
    println!(
        "\nThe BTC connection grabbed {:.0}% of what the background had —",
        100.0 * (bg_before - bg_during) / bg_before.max(1e-9)
    );
    println!("a 'measurement' that costs the competing traffic dearly (paper §VII).");
    println!(
        "Max tight-link queue: {} kB (RTT inflation while BTC ran)",
        sim.link(tight).stats.max_queue_bytes / 1024
    );
}
