//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing exactly the API surface this workspace uses:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) generating `#[test]` functions from `arg in strategy` lists;
//! * range strategies over the primitive numeric types,
//!   [`any`] for primitives, tuple strategies, and
//!   [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assume!`].
//!
//! Unlike the real crate there is **no shrinking**: a failing case panics
//! with the formatted assertion message right away. Generation is fully
//! deterministic per test (seeded from the test name), so failures are
//! reproducible. Swap in the real dependency by removing `stubs/` from the
//! workspace manifest.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Test-case outcome used by the assertion macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case does not apply (from [`prop_assume!`]); try another input.
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result alias used by the generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic SplitMix64 generator behind every strategy.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed deterministically from an arbitrary tag (the test name).
    pub fn deterministic(tag: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in tag.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)*)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical "whole domain" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw a value from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: enough for the numeric properties here.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy over a type's whole domain, mirroring `proptest::any`.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Vec length specification: a fixed length or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len)` — `len` may be a `usize` or a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let (lo, hi) = (self.size.lo, self.size.hi);
            let len = lo + rng.below((hi - lo).max(1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `proptest::prop` namespace mirror.
pub mod prop {
    pub use crate::collection;
}

/// Everything the `proptest!` bodies need in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

/// Runner internals used by the generated tests.
pub mod test_runner {
    pub use crate::{TestCaseError, TestCaseResult, TestRng};
}

/// Generate `#[test]` functions from property definitions. See the crate
/// docs for the supported surface.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: $crate::test_runner::TestCaseResult = (move || {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed: {}", stringify!($name), msg)
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($lhs),
                stringify!($rhs),
                l,
                r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond).to_string()));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -2.5f64..9.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..9.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len = {}", v.len());
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_tag() {
        let mut a = super::TestRng::deterministic("tag");
        let mut b = super::TestRng::deterministic("tag");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
