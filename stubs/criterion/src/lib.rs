//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the surface this workspace uses:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It runs each benchmark for a short, fixed wall-clock budget and prints
//! a mean per-iteration time — enough to smoke-test the bench targets and
//! get a rough number, without the real crate's statistics machinery.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Per-benchmark timing handle.
pub struct Bencher {
    /// Total time spent in measured routines.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    /// Wall-clock budget for one `bench_function` call.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Time `routine` repeatedly until the budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    /// Time `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep stub benches quick; the real harness calibrates itself.
        let budget = std::env::var("CRITERION_STUB_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        Criterion {
            budget: Duration::from_millis(budget),
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed / (b.iters as u32)
        } else {
            Duration::ZERO
        };
        println!("{name:<40} {per_iter:>12.2?}/iter ({} iters)", b.iters);
        self
    }
}

/// Declare a group of benchmark functions, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench entry point, mirroring the real macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        std::env::set_var("CRITERION_STUB_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_uses_setup_output() {
        let mut b = Bencher::new(Duration::from_millis(2));
        b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
    }
}
