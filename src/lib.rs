//! # availbw — end-to-end available bandwidth estimation
//!
//! Umbrella crate for the reproduction of *Jain & Dovrolis, "End-to-End
//! Available Bandwidth: Measurement Methodology, Dynamics, and Relation
//! With TCP Throughput"* (ACM SIGCOMM 2002 / IEEE/ACM ToN 2003).
//!
//! It re-exports every workspace crate under one roof so that examples,
//! integration tests, and downstream users can depend on a single package:
//!
//! * [`slops`] — the paper's contribution: SLoPS trend statistics, fleets,
//!   grey-region rate search, and the pathload measurement session.
//! * [`netsim`] — deterministic discrete-event packet network simulator.
//! * [`traffic`] — stochastic cross-traffic generators.
//! * [`tcpsim`] — TCP Reno over the simulator (BTC experiments, §VII).
//! * [`fluid`] — the analytic fluid model from the paper's Appendix.
//! * [`simprobe`] — `ProbeTransport` over the simulator + paper scenarios.
//! * [`monitord`] — multi-path monitoring daemon: staggered fleet
//!   scheduling, per-path ring-buffer series with change detection,
//!   in-sim and thread-backed drivers, JSONL export (§I, §VI, §IX).
//! * [`baselines`] — cprobe/packet-train (ADR) and TOPP baselines.
//! * [`pathload_net`] — pathload over real UDP/TCP sockets.
//! * [`telemetry`] — metrics registry, trace events, scrape endpoint.
//! * [`units`] — shared time/rate newtypes and statistics helpers.
//!
//! ## Quickstart
//!
//! ```
//! use availbw::simprobe::scenarios::{PaperPath, PaperPathConfig};
//! use availbw::slops::{Session, SlopsConfig};
//! use availbw::units::Rate;
//!
//! // A 5-hop path with a 10 Mb/s tight link at 60% utilization: A = 4 Mb/s.
//! let cfg = PaperPathConfig::default();
//! let mut path = PaperPath::build(&cfg, 7).into_transport();
//! let est = Session::new(SlopsConfig::default())
//!     .run(&mut path)
//!     .expect("measurement completed");
//! let a = cfg.avail_bw();
//! assert!(est.low.mbps() < a.mbps() + 2.0 && est.high.mbps() > a.mbps() - 2.0);
//! ```

#![forbid(unsafe_code)]

pub use baselines;
pub use fluid;
pub use monitord;
pub use netsim;
pub use pathload_net;
pub use simprobe;
pub use slops;
pub use tcpsim;
pub use telemetry;
pub use traffic;
pub use units;
