//! Per-rule fixtures: each rule must fire on a minimal violating source,
//! and an inline `// archlint: allow(<rule>) -- reason` must silence it.

use archlint::{check_file, Policy, Rule};

/// A policy that puts the fixture file under every rule at once.
fn strict_policy() -> Policy {
    Policy::parse(
        "\
crate fix
sans-io crate fix
trace-mint mint fix/src/machine.rs
panic-free module fix/src/hot.rs
cfg-gate crate fix
",
    )
    .expect("fixture policy parses")
}

fn findings_for(path: &str, src: &str) -> Vec<Rule> {
    check_file(&strict_policy(), path, src, false)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

// --- AL001 sans-io ---------------------------------------------------------

#[test]
fn sans_io_fires_on_wall_clock_and_sockets() {
    for line in [
        "let t0 = std::time::Instant::now();",
        "use std::net::UdpSocket;",
        "std::thread::sleep(d);",
        "let fd = libc::socket(0, 0, 0);",
        "let now = SystemTime::now();",
    ] {
        assert_eq!(
            findings_for("fix/src/pure.rs", line),
            vec![Rule::SansIo],
            "expected sans-io on {line:?}"
        );
    }
}

#[test]
fn sans_io_ignores_tests_lookalikes_and_comments() {
    assert!(findings_for(
        "fix/src/pure.rs",
        "#[cfg(test)]\nmod tests {\n    use std::thread;\n}\n"
    )
    .is_empty());
    assert!(findings_for("fix/src/pure.rs", "let my_std_thread = 1;").is_empty());
    assert!(findings_for("fix/src/pure.rs", "// drivers use std::thread").is_empty());
}

#[test]
fn sans_io_suppression() {
    let src = "\
// archlint: allow(sans-io) -- fixture exercises the escape hatch
use std::thread;
";
    assert!(findings_for("fix/src/pure.rs", src).is_empty());
}

// --- AL002 trace-mint ------------------------------------------------------

#[test]
fn trace_mint_fires_outside_the_minting_module() {
    let src = "sink.record(&TraceEvent::Phase { from, to });";
    assert_eq!(
        findings_for("fix/src/driver.rs", src),
        vec![Rule::TraceMint]
    );
}

#[test]
fn trace_mint_allows_the_minting_module_and_patterns() {
    let construct = "self.trace.push(TraceEvent::Phase { from, to });";
    assert!(findings_for("fix/src/machine.rs", construct).is_empty());
    for pattern in [
        "TraceEvent::Phase { from, to } => self.on_phase(from, to),",
        "if let TraceEvent::Stream { id, .. } = ev {",
        "matches!(ev, TraceEvent::TimerLag { .. })",
    ] {
        assert!(
            findings_for("fix/src/driver.rs", pattern).is_empty(),
            "pattern misread as construction: {pattern:?}"
        );
    }
}

#[test]
fn trace_mint_suppression() {
    let src = "\
// archlint: allow(trace-mint) -- fixture exercises the escape hatch
sink.record(&TraceEvent::Phase { from, to });
";
    assert!(findings_for("fix/src/driver.rs", src).is_empty());
}

// --- AL003 unsafe-scope ----------------------------------------------------

#[test]
fn unsafe_scope_fires_outside_ffi_modules() {
    let src = "let n = unsafe { recvmmsg(fd, ptr, len, 0) };";
    assert_eq!(
        findings_for("fix/src/anywhere.rs", src),
        vec![Rule::UnsafeScope]
    );
}

#[test]
fn unsafe_scope_respects_declared_ffi_and_strings() {
    let policy = Policy::parse(
        "\
crate fix
unsafe ffi fix/src/sys.rs -- fixture FFI module
",
    )
    .expect("policy parses");
    let src = "let n = unsafe { recvmmsg(fd, ptr, len, 0) };";
    assert!(check_file(&policy, "fix/src/sys.rs", src, false).is_empty());
    // `unsafe` inside a string or comment is not code.
    assert!(findings_for("fix/src/anywhere.rs", r#"let s = "unsafe";"#).is_empty());
    assert!(findings_for("fix/src/anywhere.rs", "// unsafe is forbidden here").is_empty());
}

#[test]
fn unsafe_scope_suppression() {
    let src = "\
// archlint: allow(unsafe-scope) -- fixture exercises the escape hatch
let n = unsafe { recvmmsg(fd, ptr, len, 0) };
";
    assert!(findings_for("fix/src/anywhere.rs", src).is_empty());
}

// --- AL004 panic-free ------------------------------------------------------

#[test]
fn panic_free_fires_on_each_panic_path() {
    for line in [
        "let v = x.unwrap();",
        "let v = x.expect(\"always\");",
        "panic!(\"boom\");",
        "unreachable!(\"cannot happen\");",
        "let b = buf[0];",
    ] {
        assert_eq!(
            findings_for("fix/src/hot.rs", line),
            vec![Rule::PanicFree],
            "expected panic-free on {line:?}"
        );
    }
}

#[test]
fn panic_free_skips_tests_and_non_panicking_kin() {
    assert!(findings_for(
        "fix/src/hot.rs",
        "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n"
    )
    .is_empty());
    for line in [
        "let v = x.unwrap_or(0);",
        "let v = x.unwrap_or_else(Vec::new);",
        "let b = buf.get(0);",
        "let a = [0u8; 16];",
        "#[derive(Clone)]",
        "let v = vec![1, 2, 3];",
    ] {
        assert!(
            findings_for("fix/src/hot.rs", line).is_empty(),
            "false positive on {line:?}"
        );
    }
}

#[test]
fn panic_free_allow_index_policy() {
    let policy = Policy::parse(
        "\
crate fix
panic-free module fix/src/hot.rs
panic-free allow-index fix/src/hot.rs -- fixture: bounded indices
",
    )
    .expect("policy parses");
    assert!(check_file(&policy, "fix/src/hot.rs", "let b = buf[0];", false).is_empty());
    // The panic macros are still caught even with allow-index.
    assert_eq!(
        check_file(&policy, "fix/src/hot.rs", "panic!(\"boom\");", false).len(),
        1
    );
}

#[test]
fn panic_free_suppression() {
    let src = "\
let v = x.unwrap(); // archlint: allow(panic-free) -- fixture: same-line form
";
    assert!(findings_for("fix/src/hot.rs", src).is_empty());
}

// --- AL005 cfg-gate --------------------------------------------------------

#[test]
fn cfg_gate_fires_on_ungated_raw_fd() {
    let src = "use std::os::fd::AsRawFd;";
    let rules = findings_for("fix/src/io.rs", src);
    assert!(
        rules.iter().all(|r| *r == Rule::CfgGate) && !rules.is_empty(),
        "expected cfg-gate findings, got {rules:?}"
    );
}

#[test]
fn cfg_gate_satisfied_by_in_file_gate_or_mod_gate() {
    let gated_in_file = "\
#[cfg(unix)]
use std::os::fd::AsRawFd;
";
    assert!(findings_for("fix/src/io.rs", gated_in_file).is_empty());
    // `mod_gated = true` models a `#[cfg(unix)] mod io;` in the crate root.
    assert!(check_file(
        &strict_policy(),
        "fix/src/io.rs",
        "use std::os::fd::AsRawFd;",
        true
    )
    .is_empty());
}

#[test]
fn cfg_gate_suppression() {
    let src = "\
// archlint: allow(cfg-gate) -- fixture exercises the escape hatch
use std::os::unix::io::RawFd;
";
    assert!(findings_for("fix/src/io.rs", src).is_empty());
}

// --- AL000 suppression hygiene --------------------------------------------

#[test]
fn malformed_suppressions_are_findings() {
    for src in [
        "// archlint: allow(no-such-rule) -- reason\n",
        "// archlint: allow(panic-free)\n",
        "// archlint: allow(panic-free) --\n",
        "// archlint: deny(panic-free) -- wrong verb\n",
    ] {
        let rules = findings_for("fix/src/any.rs", src);
        assert_eq!(rules, vec![Rule::Suppression], "expected AL000 on {src:?}");
    }
}

#[test]
fn prose_mentioning_the_marker_is_not_a_suppression() {
    // Doc text and strings that merely *mention* the syntax don't count.
    for src in [
        "//! Use `// archlint: allow(panic-free) -- why` to suppress.\n",
        "let msg = \"expected `// archlint: allow(<rule>) -- <reason>`\";\n",
    ] {
        assert!(
            findings_for("fix/src/any.rs", src).is_empty(),
            "prose misread as suppression: {src:?}"
        );
    }
}

// --- policy parsing --------------------------------------------------------

#[test]
fn policy_errors_carry_line_numbers() {
    let err = Policy::parse("crate fix\nbogus verb\n").expect_err("must fail");
    assert_eq!(err.line, 2);

    let err = Policy::parse("unsafe ffi fix/src/sys.rs\n").expect_err("reason required");
    assert_eq!(err.line, 1);

    let err =
        Policy::parse("panic-free allow-index fix/src/hot.rs\n").expect_err("reason required");
    assert_eq!(err.line, 1);
}
