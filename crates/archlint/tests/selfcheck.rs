//! The live workspace must be archlint-clean: the same check CI runs via
//! `cargo run -p archlint`, here as a test so `cargo test` alone catches
//! architecture drift.

use std::path::Path;

#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/archlint sits two levels under the repo root");
    let policy_text =
        std::fs::read_to_string(root.join("archlint.policy")).expect("archlint.policy exists");
    let policy = archlint::Policy::parse(&policy_text).expect("archlint.policy parses");
    let report = archlint::check_workspace(root, &policy).expect("workspace walk succeeds");

    assert!(
        !policy.crates.is_empty() && report.files > 50,
        "the walk saw too little ({} files) — policy or layout moved",
        report.files
    );
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        rendered.is_empty(),
        "architecture violations in the live workspace:\n{}",
        rendered.join("\n")
    );
}
