//! The archlint binary: `cargo run -p archlint` from anywhere in the
//! repository.
//!
//! Finds the repository root (the directory holding `archlint.policy`),
//! parses the policy, walks every declared crate's `src/` tree, and
//! prints findings as `path:line: [ALxxx rule] message`. Exit status:
//!
//! * `0` — clean; prints one greppable `archlint: clean ...` line.
//! * `1` — findings were printed.
//! * `2` — the policy file is missing or malformed.

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

const POLICY_FILE: &str = "archlint.policy";

fn find_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        if dir.join(POLICY_FILE).is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let Some(root) = find_root() else {
        eprintln!("archlint: no `{POLICY_FILE}` found here or in any parent directory");
        return ExitCode::from(2);
    };
    let policy_text = match fs::read_to_string(root.join(POLICY_FILE)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("archlint: reading {POLICY_FILE}: {e}");
            return ExitCode::from(2);
        }
    };
    let policy = match archlint::Policy::parse(&policy_text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("archlint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match archlint::check_workspace(&root, &policy) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("archlint: walking the workspace: {e}");
            return ExitCode::from(2);
        }
    };
    for finding in &report.findings {
        println!("{finding}");
    }
    if report.findings.is_empty() {
        println!(
            "archlint: clean ({} files across {} crates, {} rules)",
            report.files,
            report.crates,
            archlint::ALL_RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("archlint: {} finding(s)", report.findings.len());
        ExitCode::from(1)
    }
}
