//! Architecture linter for the availbw workspace.
//!
//! `cargo clippy` enforces Rust hygiene; this crate enforces the
//! *architecture* — the invariants ARCHITECTURE.md states in prose and
//! this workspace's whole design rests on. They are not expressible as
//! rustc lints, so they get their own scanner:
//!
//! * **AL001 `sans-io`** — the estimation crates (`slops`, `netsim`,
//!   `simprobe`, `telemetry`) must stay free of wall-clock time, real
//!   sockets, threads, and libc. Time and packets *enter* the machine as
//!   values; drivers own the syscalls. Driver files are exempted by the
//!   policy, one line each, with a reason.
//! * **AL002 `trace-mint`** — [`TraceEvent`] values are *minted* only by
//!   the session machine (`slops::machine`). Everything else relays or
//!   matches them. A driver inventing trace events would forge the very
//!   evidence the telemetry exists to collect.
//! * **AL003 `unsafe-scope`** — `unsafe` lives only in the declared FFI
//!   modules (epoll, `recvmmsg`/`sendmmsg`, `signal(2)`), and every
//!   crate root carries `#![forbid(unsafe_code)]` or
//!   `#![deny(unsafe_code)]`.
//! * **AL004 `panic-free`** — the datapath modules (receivers, batch
//!   I/O, the event loops, the drivers) must not contain `unwrap`,
//!   `expect`, `panic!`-family macros, or (unless the policy grants
//!   `allow-index`) slice indexing in non-test code. A panicking branch
//!   there takes a whole fleet down.
//! * **AL005 `cfg-gate`** — raw-fd surface (`RawFd`, `AsRawFd`,
//!   `std::os::fd`, ...) in the gated crates must sit behind
//!   `#[cfg(unix)]` / `#[cfg(target_os = "linux")]`, either in-file or
//!   at the `mod` declaration in the crate root.
//! * **AL000 `suppression`** — a malformed `// archlint: allow(...)`
//!   comment (unknown rule, missing ` -- reason`) is itself a finding,
//!   so suppressions cannot silently rot.
//!
//! The scanner is deliberately line-level — no `syn`, no new
//! dependencies, matching the workspace's no-new-deps rule. It strips
//! comments and string literals (state carried across lines for block
//! comments and raw strings), tracks `#[cfg(test)]` regions by brace
//! counting, and then matches word-bounded tokens. The cost of that
//! simplicity is a handful of documented heuristics (see
//! `docs/LINTS.md`); the escape hatch for a heuristic misfire is an
//! inline suppression:
//!
//! ```text
//! // archlint: allow(panic-free) -- bounded by the assert two lines up
//! ```
//!
//! which silences that rule on the same and the next line. Policy —
//! which crates are walked and which rule applies where — lives in
//! `archlint.policy` at the repository root; see [`Policy`].
//!
//! [`TraceEvent`]: https://example.invalid/availbw (telemetry::TraceEvent)

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The rules archlint enforces. The numeric IDs are stable: findings,
/// suppressions, the policy file, and docs/LINTS.md all refer to them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// AL000: a malformed `// archlint: allow(...)` comment.
    Suppression,
    /// AL001: wall-clock/socket/thread/libc use in a sans-IO crate.
    SansIo,
    /// AL002: `TraceEvent` constructed outside the minting module.
    TraceMint,
    /// AL003: `unsafe` outside a declared FFI module, or a crate root
    /// missing its `forbid`/`deny(unsafe_code)` attribute.
    UnsafeScope,
    /// AL004: `unwrap`/`expect`/panic macros/indexing in a datapath module.
    PanicFree,
    /// AL005: raw-fd surface not behind a Unix cfg gate.
    CfgGate,
}

/// Every rule, in ID order.
pub const ALL_RULES: [Rule; 6] = [
    Rule::Suppression,
    Rule::SansIo,
    Rule::TraceMint,
    Rule::UnsafeScope,
    Rule::PanicFree,
    Rule::CfgGate,
];

impl Rule {
    /// The stable identifier, `AL000` through `AL005`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Suppression => "AL000",
            Rule::SansIo => "AL001",
            Rule::TraceMint => "AL002",
            Rule::UnsafeScope => "AL003",
            Rule::PanicFree => "AL004",
            Rule::CfgGate => "AL005",
        }
    }

    /// The short name used in policy lines and suppression comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Suppression => "suppression",
            Rule::SansIo => "sans-io",
            Rule::TraceMint => "trace-mint",
            Rule::UnsafeScope => "unsafe-scope",
            Rule::PanicFree => "panic-free",
            Rule::CfgGate => "cfg-gate",
        }
    }

    /// Parse a short name back into a rule.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// One violation: where, which rule, and what the scanner saw.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Repository-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.rule.name(),
            self.message
        )
    }
}

/// A policy-file error, reported with its line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicyError {
    /// 1-based line in `archlint.policy`.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "archlint.policy:{}: {}", self.line, self.message)
    }
}

/// The parsed `archlint.policy`: which crate directories are walked and
/// which rule applies to which file. Paths are repository-relative with
/// forward slashes, exactly as written in the policy file.
#[derive(Clone, Debug, Default)]
pub struct Policy {
    /// Crate directories whose `src/` trees are scanned.
    pub crates: Vec<String>,
    /// Crates whose non-exempt files must be sans-IO (AL001).
    pub sans_io_crates: Vec<String>,
    /// Files inside sans-IO crates that are drivers/endpoints (exempt).
    pub sans_io_exempt: Vec<String>,
    /// Files allowed to construct `TraceEvent` values (AL002).
    pub trace_mint: Vec<String>,
    /// Files allowed to contain `unsafe` (AL003).
    pub unsafe_ffi: Vec<String>,
    /// Datapath files held to panic-freedom (AL004).
    pub panic_free: Vec<String>,
    /// Panic-free files where slice indexing is tolerated.
    pub allow_index: Vec<String>,
    /// Crates whose raw-fd surface must be cfg-gated (AL005).
    pub cfg_gate_crates: Vec<String>,
}

fn split_reason(rest: &str) -> Option<(&str, &str)> {
    let (path, reason) = rest.split_once(" -- ")?;
    let (path, reason) = (path.trim(), reason.trim());
    if path.is_empty() || reason.is_empty() {
        return None;
    }
    Some((path, reason))
}

impl Policy {
    /// Parse the policy text. Unknown verbs, missing paths, and missing
    /// `-- reason` clauses are errors with the offending line number.
    pub fn parse(text: &str) -> Result<Policy, PolicyError> {
        let mut p = Policy::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| PolicyError {
                line: lineno,
                message,
            };
            let (verb, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            match verb {
                "crate" => {
                    if rest.is_empty() {
                        return Err(err("`crate` needs a directory".into()));
                    }
                    p.crates.push(rest.to_string());
                }
                "sans-io" => match rest.split_once(char::is_whitespace) {
                    Some(("crate", dir)) => p.sans_io_crates.push(dir.trim().to_string()),
                    Some(("exempt", spec)) => {
                        let (path, _reason) = split_reason(spec).ok_or_else(|| {
                            err("`sans-io exempt` needs `<file> -- <reason>`".into())
                        })?;
                        p.sans_io_exempt.push(path.to_string());
                    }
                    _ => {
                        return Err(err(
                            "`sans-io` takes `crate <dir>` or `exempt <file> -- <reason>`".into(),
                        ))
                    }
                },
                "trace-mint" => match rest.split_once(char::is_whitespace) {
                    Some(("mint", file)) => p.trace_mint.push(file.trim().to_string()),
                    _ => return Err(err("`trace-mint` takes `mint <file>`".into())),
                },
                "unsafe" => match rest.split_once(char::is_whitespace) {
                    Some(("ffi", spec)) => {
                        let (path, _reason) = split_reason(spec)
                            .ok_or_else(|| err("`unsafe ffi` needs `<file> -- <reason>`".into()))?;
                        p.unsafe_ffi.push(path.to_string());
                    }
                    _ => return Err(err("`unsafe` takes `ffi <file> -- <reason>`".into())),
                },
                "panic-free" => match rest.split_once(char::is_whitespace) {
                    Some(("module", file)) => p.panic_free.push(file.trim().to_string()),
                    Some(("allow-index", spec)) => {
                        let (path, _reason) = split_reason(spec).ok_or_else(|| {
                            err("`panic-free allow-index` needs `<file> -- <reason>`".into())
                        })?;
                        p.allow_index.push(path.to_string());
                    }
                    _ => return Err(err(
                        "`panic-free` takes `module <file>` or `allow-index <file> -- <reason>`"
                            .into(),
                    )),
                },
                "cfg-gate" => match rest.split_once(char::is_whitespace) {
                    Some(("crate", dir)) => p.cfg_gate_crates.push(dir.trim().to_string()),
                    _ => return Err(err("`cfg-gate` takes `crate <dir>`".into())),
                },
                other => return Err(err(format!("unknown policy verb `{other}`"))),
            }
        }
        Ok(p)
    }

    fn in_crate(path: &str, dirs: &[String]) -> bool {
        dirs.iter().any(|d| {
            path.strip_prefix(d.as_str())
                .is_some_and(|r| r.starts_with('/'))
                || path == d
        })
    }

    fn listed(path: &str, files: &[String]) -> bool {
        files.iter().any(|f| f == path)
    }
}

// ---------------------------------------------------------------------------
// Source preprocessing: comment/string stripping and test-region tracking.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum StripState {
    Code,
    Block(usize),     // nested block-comment depth
    RawString(usize), // number of `#`s the raw string opened with
}

/// Replace comments and string/char-literal contents with spaces,
/// carrying block-comment and raw-string state across lines. Column
/// positions are preserved so the indexing heuristic can inspect the
/// character before a `[`. The second return is the body of a line
/// comment that started in code context (where suppressions live) —
/// comment text inside string literals is never mistaken for one.
fn strip_line(raw: &str, state: &mut StripState) -> (String, Option<String>) {
    let bytes = raw.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut comment = None;
    let mut i = 0;
    while i < bytes.len() {
        match *state {
            StripState::Block(depth) => {
                if bytes[i..].starts_with(b"*/") {
                    *state = if depth > 1 {
                        StripState::Block(depth - 1)
                    } else {
                        StripState::Code
                    };
                    i += 2;
                } else if bytes[i..].starts_with(b"/*") {
                    *state = StripState::Block(depth + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            StripState::RawString(hashes) => {
                if bytes[i] == b'"' {
                    let close = &bytes[i + 1..];
                    if close.len() >= hashes && close[..hashes].iter().all(|&b| b == b'#') {
                        *state = StripState::Code;
                        i += 1 + hashes;
                        continue;
                    }
                }
                i += 1;
            }
            StripState::Code => {
                let b = bytes[i];
                if bytes[i..].starts_with(b"//") {
                    comment = Some(raw[i + 2..].to_string());
                    break; // rest of the line is a comment
                }
                if bytes[i..].starts_with(b"/*") {
                    *state = StripState::Block(1);
                    i += 2;
                    continue;
                }
                if b == b'r' {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut j = i + 1;
                    while j < bytes.len() && bytes[j] == b'#' {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j] == b'"' {
                        out[i] = b'r';
                        *state = StripState::RawString(j - i - 1);
                        i = j + 1;
                        continue;
                    }
                }
                if b == b'"' {
                    // Ordinary string literal: consume to the closing quote.
                    out[i] = b'"';
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'"' => {
                                out[i] = b'"';
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    continue;
                }
                if b == b'\'' {
                    // Char literal or lifetime. A char literal closes within
                    // a few bytes; a lifetime never has a closing quote.
                    let rest = &bytes[i + 1..];
                    let close = if rest.first() == Some(&b'\\') {
                        rest.iter().skip(1).position(|&c| c == b'\'').map(|p| p + 1)
                    } else {
                        (rest.get(1) == Some(&b'\'')).then_some(1)
                    };
                    if let Some(p) = close {
                        out[i] = b'\'';
                        i += p + 2;
                        continue;
                    }
                    out[i] = b'\'';
                    i += 1;
                    continue;
                }
                out[i] = b;
                i += 1;
            }
        }
    }
    (String::from_utf8(out).unwrap_or_default(), comment)
}

/// Mark the lines belonging to `#[cfg(test)]` / `#[cfg(all(test, ...))]`
/// items by brace-counting from the attribute to the item's end.
fn test_regions(code_lines: &[String]) -> Vec<bool> {
    let mut test = vec![false; code_lines.len()];
    let mut i = 0;
    while i < code_lines.len() {
        let line = &code_lines[i];
        if line.contains("#[cfg(test)]") || line.contains("#[cfg(all(test") {
            let mut depth = 0usize;
            let mut entered = false;
            let mut j = i;
            while j < code_lines.len() {
                test[j] = true;
                for b in code_lines[j].bytes() {
                    match b {
                        b'{' => {
                            depth += 1;
                            entered = true;
                        }
                        b'}' => depth = depth.saturating_sub(1),
                        // An attribute can gate a single brace-less item
                        // (`#[cfg(test)] use foo;`): a top-level `;` before
                        // any `{` ends it.
                        b';' if !entered && depth == 0 => {
                            entered = true;
                            depth = 0;
                        }
                        _ => {}
                    }
                }
                if entered && depth == 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    test
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `true` if `needle` occurs in `hay` with non-identifier characters (or
/// the line boundary) on both sides.
fn has_token(hay: &str, needle: &str) -> bool {
    let h = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let pre_ok = start == 0 || !is_ident(h[start - 1]);
        let post_ok = end >= h.len() || !is_ident(h[end]);
        if pre_ok && post_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

const SUPPRESS_PREFIX: &str = "archlint:";

/// A parsed-or-not suppression comment on one raw line.
enum Suppression {
    Valid(Rule),
    Malformed(String),
}

/// Parse a line-comment body as a suppression. Only a comment whose
/// text *starts* with `archlint:` counts — prose that merely mentions
/// the syntax (docs, error messages) is left alone.
fn parse_suppression(comment: &str) -> Option<Suppression> {
    // Doc comments arrive as `/ ...` or `! ...` bodies; drop the marker.
    let body = comment
        .strip_prefix(['/', '!'])
        .unwrap_or(comment)
        .trim_start();
    let rest = body.strip_prefix(SUPPRESS_PREFIX)?.trim();
    let Some(inner) = rest.strip_prefix("allow(") else {
        return Some(Suppression::Malformed(
            "expected `// archlint: allow(<rule>) -- <reason>`".to_string(),
        ));
    };
    let Some((name, tail)) = inner.split_once(')') else {
        return Some(Suppression::Malformed(
            "unclosed `allow(`: expected `allow(<rule>) -- <reason>`".to_string(),
        ));
    };
    let Some(rule) = Rule::from_name(name.trim()) else {
        return Some(Suppression::Malformed(format!(
            "unknown rule `{}` (known: {})",
            name.trim(),
            ALL_RULES.map(Rule::name).join(", ")
        )));
    };
    let reason = tail.trim().strip_prefix("--").map(str::trim);
    if reason.is_none_or(str::is_empty) {
        return Some(Suppression::Malformed(format!(
            "suppression of `{}` is missing its ` -- <reason>` clause",
            rule.name()
        )));
    }
    Some(Suppression::Valid(rule))
}

// ---------------------------------------------------------------------------
// The per-file check.
// ---------------------------------------------------------------------------

const SANS_IO_TOKENS: [&str; 5] = [
    "std::time::Instant",
    "SystemTime",
    "std::net",
    "std::thread",
    "libc",
];

const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "unimplemented!",
    "todo!",
];

const RAW_FD_TOKENS: [&str; 7] = [
    "RawFd",
    "AsRawFd",
    "as_raw_fd",
    "FromRawFd",
    "from_raw_fd",
    "std::os::unix",
    "std::os::fd",
];

fn is_cfg_gate_line(code: &str) -> bool {
    code.contains("cfg(unix)") || code.contains("cfg(target_os") || code.contains("cfg(not(unix")
}

/// Check one file's source against the policy. `rel_path` is the
/// repository-relative path (forward slashes) the policy refers to;
/// `mod_gated` says the file's `mod` declaration in its crate root is
/// already behind a Unix cfg gate (so AL005 is satisfied file-wide).
///
/// This is the pure core: the fixture tests drive it directly with
/// in-memory sources.
pub fn check_file(policy: &Policy, rel_path: &str, source: &str, mod_gated: bool) -> Vec<Finding> {
    let sans_io = Policy::in_crate(rel_path, &policy.sans_io_crates)
        && !Policy::listed(rel_path, &policy.sans_io_exempt);
    let can_mint = Policy::listed(rel_path, &policy.trace_mint);
    let ffi_ok = Policy::listed(rel_path, &policy.unsafe_ffi);
    let panic_free = Policy::listed(rel_path, &policy.panic_free);
    let index_ok = Policy::listed(rel_path, &policy.allow_index);
    let cfg_gated_crate = Policy::in_crate(rel_path, &policy.cfg_gate_crates) && !mod_gated;

    let mut state = StripState::Code;
    let (code_lines, comments): (Vec<String>, Vec<Option<String>>) =
        source.lines().map(|l| strip_line(l, &mut state)).unzip();
    let tests = test_regions(&code_lines);

    let mut findings = Vec::new();
    let mut suppressed: Vec<(usize, Rule)> = Vec::new();
    for (idx, comment) in comments.iter().enumerate() {
        match comment.as_deref().and_then(parse_suppression) {
            Some(Suppression::Valid(rule)) => {
                suppressed.push((idx, rule));
                suppressed.push((idx + 1, rule));
            }
            Some(Suppression::Malformed(message)) => findings.push(Finding {
                path: rel_path.to_string(),
                line: idx + 1,
                rule: Rule::Suppression,
                message,
            }),
            None => {}
        }
    }

    // AL005 needs to know whether any cfg gate appears at or before a
    // given line; precompute the first gate's line index.
    let first_gate = code_lines.iter().position(|c| is_cfg_gate_line(c));

    for (idx, code) in code_lines.iter().enumerate() {
        let mut push = |rule: Rule, message: String| {
            findings.push(Finding {
                path: rel_path.to_string(),
                line: idx + 1,
                rule,
                message,
            });
        };
        let in_test = tests[idx];

        if sans_io && !in_test {
            for tok in SANS_IO_TOKENS {
                if has_token(code, tok) {
                    push(
                        Rule::SansIo,
                        format!("`{tok}` in a sans-IO crate: real time/sockets/threads belong to drivers (policy: `sans-io exempt` for driver files)"),
                    );
                }
            }
        }

        if !can_mint && !in_test {
            if let Some(found) = trace_construction(code) {
                push(
                    Rule::TraceMint,
                    format!("`{found}` constructed outside the minting module: drivers relay trace events, only `slops::machine` mints them"),
                );
            }
        }

        if !ffi_ok && has_token(code, "unsafe") {
            push(
                Rule::UnsafeScope,
                "`unsafe` outside a declared FFI module (policy: `unsafe ffi <file> -- <reason>`)"
                    .to_string(),
            );
        }

        if panic_free && !in_test {
            for tok in PANIC_TOKENS {
                if code.contains(tok) {
                    push(
                        Rule::PanicFree,
                        format!("`{tok}` in a datapath module: a panic here takes the whole fleet down; return an error instead"),
                    );
                }
            }
            if !index_ok && has_indexing(code) {
                push(
                    Rule::PanicFree,
                    "slice/array indexing in a datapath module: use `.get(..)` (or policy `panic-free allow-index` with a reason)"
                        .to_string(),
                );
            }
        }

        if cfg_gated_crate {
            for tok in RAW_FD_TOKENS {
                if has_token(code, tok) && first_gate.is_none_or(|g| g > idx) {
                    push(
                        Rule::CfgGate,
                        format!("`{tok}` with no `#[cfg(unix)]`/`#[cfg(target_os = ...)]` gate above it (gate the item, or gate the `mod` in the crate root)"),
                    );
                }
            }
        }
    }

    findings.retain(|f| !suppressed.contains(&(f.line - 1, f.rule)));
    findings.sort_by_key(|f| (f.line, f.rule));
    findings.dedup();
    findings
}

/// Detect a `TraceEvent::Variant {` / `TraceEvent::Variant(` construction.
/// Lines that are visibly patterns (`=>`, `let`, `matches!`) are skipped —
/// the workspace writes match arms single-line, and a multi-line arm can
/// use an inline suppression. Returns the matched `TraceEvent::Variant`.
fn trace_construction(code: &str) -> Option<String> {
    if code.contains("=>") || has_token(code, "let") || code.contains("matches!") {
        return None;
    }
    let start = code.find("TraceEvent::")?;
    let rest = &code[start + "TraceEvent::".len()..];
    let ident_len = rest.bytes().take_while(|&b| is_ident(b)).count();
    if ident_len == 0 {
        return None;
    }
    let after = rest[ident_len..].trim_start();
    if after.starts_with('{') || after.starts_with('(') {
        return Some(format!("TraceEvent::{}", &rest[..ident_len]));
    }
    None
}

/// Indexing heuristic: a `[` directly preceded by an identifier
/// character, `)`, or `]` is an index expression (`xs[i]`, `f()[0]`).
/// Attributes (`#[...]`, `#![...]`) and macros (`vec![...]`) are
/// naturally excluded by their preceding `#`/`!`.
fn has_indexing(code: &str) -> bool {
    let b = code.as_bytes();
    (1..b.len())
        .any(|i| b[i] == b'[' && (is_ident(b[i - 1]) || b[i - 1] == b')' || b[i - 1] == b']'))
}

// ---------------------------------------------------------------------------
// Workspace walking.
// ---------------------------------------------------------------------------

/// The result of a full workspace check.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Every finding, sorted by path then line.
    pub findings: Vec<Finding>,
    /// How many `.rs` files were scanned.
    pub files: usize,
    /// How many crate directories were walked.
    pub crates: usize,
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan a crate root (`lib.rs`) for `mod` declarations sitting directly
/// under a Unix cfg gate; returns the gated module names.
fn gated_mods(lib_source: &str) -> BTreeSet<String> {
    let mut state = StripState::Code;
    let code: Vec<String> = lib_source
        .lines()
        .map(|l| strip_line(l, &mut state).0)
        .collect();
    let mut gated = BTreeSet::new();
    let mut pending_gate = false;
    for line in &code {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with("#[") {
            if is_cfg_gate_line(t) {
                pending_gate = true;
            }
            continue;
        }
        if pending_gate {
            for prefix in ["pub mod ", "mod "] {
                if let Some(rest) = t.strip_prefix(prefix) {
                    if let Some(name) = rest.strip_suffix(';') {
                        gated.insert(name.trim().to_string());
                    }
                }
            }
        }
        pending_gate = false;
    }
    gated
}

/// Check every declared crate's `src/` tree under `root`.
///
/// Beyond the per-file rules this adds the AL003 crate-root check: each
/// declared crate's `src/lib.rs` must carry `#![forbid(unsafe_code)]`
/// or `#![deny(unsafe_code)]`.
pub fn check_workspace(root: &Path, policy: &Policy) -> io::Result<Report> {
    let mut report = Report::default();
    for crate_dir in &policy.crates {
        report.crates += 1;
        let src = root.join(crate_dir).join("src");
        let mut files = Vec::new();
        walk_rs(&src, &mut files)?;

        // Which modules does the crate root gate behind cfg(unix)?
        let lib = src.join("lib.rs");
        let mut gated = BTreeSet::new();
        if let Ok(lib_src) = fs::read_to_string(&lib) {
            if Policy::in_crate(crate_dir, &policy.cfg_gate_crates)
                || policy.cfg_gate_crates.contains(crate_dir)
            {
                gated = gated_mods(&lib_src);
            }
            if !lib_src.contains("#![forbid(unsafe_code)]")
                && !lib_src.contains("#![deny(unsafe_code)]")
            {
                report.findings.push(Finding {
                    path: format!("{crate_dir}/src/lib.rs"),
                    line: 1,
                    rule: Rule::UnsafeScope,
                    message:
                        "crate root is missing `#![forbid(unsafe_code)]` (or `deny` for declared FFI crates)"
                            .to_string(),
                });
            }
        }

        for file in files {
            report.files += 1;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let stem = file
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            // A file is mod-gated if its stem (or any ancestor directory
            // under src/) is a cfg-gated module of the crate root.
            let mod_gated = gated.contains(&stem)
                || file
                    .strip_prefix(&src)
                    .ok()
                    .map(|p| {
                        p.components()
                            .any(|c| gated.contains(&c.as_os_str().to_string_lossy().into_owned()))
                    })
                    .unwrap_or(false);
            let source = fs::read_to_string(&file)?;
            report
                .findings
                .extend(check_file(policy, &rel, &source, mod_gated));
        }
    }
    report
        .findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_handles_block_comments_across_lines() {
        let mut st = StripState::Code;
        let (a, _) = strip_line("let x = 1; /* start", &mut st);
        assert!(a.contains("let x = 1;"));
        assert!(!a.contains("start"));
        let (b, _) = strip_line("unsafe { } end */ let y = 2;", &mut st);
        assert!(!b.contains("unsafe"));
        assert!(b.contains("let y = 2;"));
    }

    #[test]
    fn strip_preserves_columns() {
        let mut st = StripState::Code;
        let (s, _) = strip_line(r#"foo("bar")[0]"#, &mut st);
        assert_eq!(s.len(), r#"foo("bar")[0]"#.len());
        assert!(has_indexing(&s));
    }

    #[test]
    fn comment_in_string_is_not_a_comment() {
        let mut st = StripState::Code;
        let (_, c) = strip_line(r#"let m = "see // archlint: allow(x)";"#, &mut st);
        assert!(c.is_none());
        let (_, c) = strip_line("do_it(); // archlint: allow(panic-free) -- why", &mut st);
        assert!(c.is_some());
    }

    #[test]
    fn lifetimes_are_not_strings() {
        let mut st = StripState::Code;
        let (s, _) = strip_line("fn f<'a>(x: &'a str) -> &'a str { x }", &mut st);
        assert!(s.contains("fn f"));
        assert!(s.contains("{ x }"));
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("use std::thread;", "std::thread"));
        assert!(!has_token("my_std::thread_pool", "std::thread"));
        assert!(has_token("unsafe {", "unsafe"));
        assert!(!has_token("unsafe_code", "unsafe"));
    }

    #[test]
    fn test_region_covers_mod_and_single_item() {
        let src = "\
fn a() {}
#[cfg(test)]
mod tests {
    fn b() {}
}
fn c() {}
#[cfg(test)]
use foo;
fn d() {}
";
        let mut st = StripState::Code;
        let code: Vec<String> = src.lines().map(|l| strip_line(l, &mut st).0).collect();
        let t = test_regions(&code);
        assert_eq!(
            t,
            vec![false, true, true, true, true, false, true, true, false]
        );
    }

    #[test]
    fn gated_mods_reads_cfg_above_mod() {
        let lib = "\
pub mod plain;
#[cfg(unix)]
pub mod evented;
// a comment between
#[cfg(target_os = \"linux\")]
mod inner;
";
        let g = gated_mods(lib);
        assert!(g.contains("evented"));
        assert!(g.contains("inner"));
        assert!(!g.contains("plain"));
    }
}
