//! # fluid — the paper's analytic fluid model (Appendix)
//!
//! Models a path as a sequence of FIFO links with *stationary fluid* cross
//! traffic, exactly as in the Appendix of Jain & Dovrolis. For a periodic
//! probing stream of rate `R` and packet size `L`:
//!
//! * **Rate recursion (eqs. 19–21):** a link with capacity `C` and avail-bw
//!   `A` (cross-traffic rate `C − A`) forwards a stream entering at rate
//!   `R_in` at `R_out = R_in·C / (R_in + C − A)` when `R_in > A` (the link
//!   stays backlogged between consecutive stream packets) and at
//!   `R_out = R_in` otherwise.
//! * **Queueing-delay growth (eq. 22):** when `R_in > A`, each stream packet
//!   leaves behind `ΔQ = 8L(1 − A/R_in)` extra bits in the queue, adding
//!   `ΔQ/C` one-way delay per consecutive pair.
//! * **Proposition 1:** the one-way delays of the stream strictly increase
//!   iff `R > A_path`; they are constant iff `R ≤ A_path`.
//! * **Proposition 2:** the exit rate depends on `C_i`, `A_i` of *all* links
//!   upstream of the tight link — so train dispersion alone cannot recover
//!   the avail-bw (the ADR ≠ avail-bw result discussed in §II).
//!
//! The packet-level simulator (`netsim` + CBR cross traffic) converges to
//! these formulas as packet sizes shrink; integration tests verify that.

#![forbid(unsafe_code)]

use units::Rate;

/// One link of a fluid path.
#[derive(Clone, Copy, Debug)]
pub struct FluidLink {
    /// Link capacity.
    pub capacity: Rate,
    /// Available bandwidth (capacity minus stationary cross-traffic rate).
    pub avail: Rate,
}

impl FluidLink {
    /// Create a link. Panics if `avail > capacity`.
    pub fn new(capacity: Rate, avail: Rate) -> FluidLink {
        assert!(
            avail.bps() <= capacity.bps() && capacity.bps() > 0.0,
            "avail-bw cannot exceed capacity"
        );
        FluidLink { capacity, avail }
    }

    /// Link utilization `u = 1 − A/C`.
    pub fn utilization(&self) -> f64 {
        1.0 - self.avail.bps() / self.capacity.bps()
    }

    /// Exit rate of a stream entering this link at `r_in` (eq. 19).
    pub fn exit_rate(&self, r_in: Rate) -> Rate {
        if r_in.bps() > self.avail.bps() {
            let c = self.capacity.bps();
            let cross = c - self.avail.bps();
            Rate::from_bps(r_in.bps() * c / (r_in.bps() + cross))
        } else {
            r_in
        }
    }

    /// Per-packet-pair queueing-delay increase at this link (seconds) for a
    /// stream entering at `r_in` with `l` byte packets (eq. 22).
    pub fn owd_delta(&self, r_in: Rate, l: u32) -> f64 {
        if r_in.bps() > self.avail.bps() {
            let bits = l as f64 * 8.0;
            bits * (1.0 - self.avail.bps() / r_in.bps()) / self.capacity.bps()
        } else {
            0.0
        }
    }
}

/// A path: an ordered sequence of fluid links.
#[derive(Clone, Debug)]
pub struct FluidPath {
    links: Vec<FluidLink>,
}

impl FluidPath {
    /// Create a path from its links (sender side first).
    pub fn new(links: Vec<FluidLink>) -> FluidPath {
        assert!(!links.is_empty(), "a path needs at least one link");
        FluidPath { links }
    }

    /// The links of the path.
    pub fn links(&self) -> &[FluidLink] {
        &self.links
    }

    /// End-to-end available bandwidth: the minimum link avail-bw (eq. 3).
    pub fn avail_bw(&self) -> Rate {
        self.links
            .iter()
            .map(|l| l.avail)
            .reduce(Rate::min)
            .expect("non-empty path")
    }

    /// End-to-end capacity: the minimum link capacity (eq. 1).
    pub fn capacity(&self) -> Rate {
        self.links
            .iter()
            .map(|l| l.capacity)
            .reduce(Rate::min)
            .expect("non-empty path")
    }

    /// Index of the tight link (first link attaining the minimum avail-bw).
    pub fn tight_index(&self) -> usize {
        let a = self.avail_bw();
        self.links
            .iter()
            .position(|l| l.avail.bps() <= a.bps())
            .expect("non-empty path")
    }

    /// Index of the narrow link (first link attaining the minimum capacity).
    pub fn narrow_index(&self) -> usize {
        let c = self.capacity();
        self.links
            .iter()
            .position(|l| l.capacity.bps() <= c.bps())
            .expect("non-empty path")
    }

    /// Stream rate entering each link, plus the final exit rate
    /// (`len = links + 1`), for input rate `r` (Proposition 2 recursion).
    pub fn rates_along(&self, r: Rate) -> Vec<Rate> {
        let mut rates = Vec::with_capacity(self.links.len() + 1);
        let mut cur = r;
        rates.push(cur);
        for link in &self.links {
            cur = link.exit_rate(cur);
            rates.push(cur);
        }
        rates
    }

    /// The stream's exit (dispersion) rate at the receiver. For long
    /// back-to-back trains this is the asymptotic dispersion rate (ADR).
    pub fn exit_rate(&self, r: Rate) -> Rate {
        *self.rates_along(r).last().expect("non-empty")
    }

    /// One-way-delay increase per consecutive packet pair (seconds) for a
    /// stream of rate `r` and packet size `l` — the sum of eq. 22 across
    /// links, each evaluated at that link's entry rate.
    pub fn owd_slope(&self, r: Rate, l: u32) -> f64 {
        let rates = self.rates_along(r);
        self.links
            .iter()
            .zip(&rates)
            .map(|(link, r_in)| link.owd_delta(*r_in, l))
            .sum()
    }

    /// Relative one-way delays of a K-packet periodic stream (seconds,
    /// first packet = sum of service times with empty queues). In the
    /// stationary fluid model the OWDs are an affine ramp: Proposition 1.
    pub fn owds(&self, r: Rate, l: u32, k: usize) -> Vec<f64> {
        let base: f64 = self
            .links
            .iter()
            .map(|link| l as f64 * 8.0 / link.capacity.bps())
            .sum();
        let slope = self.owd_slope(r, l);
        (0..k).map(|i| base + slope * i as f64).collect()
    }
}

/// The multiple-tight-links underestimation model behind the paper's
/// Fig. 7 discussion: if a stream picks up a (false) increasing trend at
/// any single tight link with probability `p`, then over `k` independent
/// tight links it trends with probability `1 − (1 − p)^k` — which rushes
/// toward 1 as `k` grows, so pathload's upper bound collapses below the
/// true avail-bw on paths where β ≈ 1.
pub fn multi_tight_trend_probability(p_single: f64, tight_links: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p_single));
    1.0 - (1.0 - p_single).powi(tight_links as i32)
}

/// The largest per-link false-trend probability that still keeps the
/// whole-path false-trend probability below `target` over `k` tight links
/// (the design constraint on the trend thresholds).
pub fn max_per_link_probability(target: f64, tight_links: u32) -> f64 {
    assert!((0.0..1.0).contains(&target) && tight_links > 0);
    1.0 - (1.0 - target).powf(1.0 / tight_links as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(x: f64) -> Rate {
        Rate::from_mbps(x)
    }

    #[test]
    fn multi_tight_probability_compounds() {
        let p = 0.2;
        assert!((multi_tight_trend_probability(p, 1) - 0.2).abs() < 1e-12);
        // 1 - 0.8^5 = 0.67: five tight links nearly triple the error rate.
        assert!((multi_tight_trend_probability(p, 5) - 0.67232).abs() < 1e-5);
        assert!(multi_tight_trend_probability(p, 3) > multi_tight_trend_probability(p, 2));
        assert_eq!(multi_tight_trend_probability(0.0, 10), 0.0);
        assert_eq!(multi_tight_trend_probability(1.0, 1), 1.0);
    }

    #[test]
    fn per_link_budget_inverts_the_compounding() {
        let target = 0.3;
        for k in [1u32, 3, 5, 12] {
            let p = max_per_link_probability(target, k);
            let back = multi_tight_trend_probability(p, k);
            assert!((back - target).abs() < 1e-9, "k={k}");
        }
        // More links => tighter per-link budget.
        assert!(max_per_link_probability(0.3, 5) < max_per_link_probability(0.3, 3));
    }

    /// The paper's default simulation path: 5 hops, tight link in the
    /// middle with C=10, A=4; nontight links C=40, A=32.
    fn paper_path() -> FluidPath {
        FluidPath::new(vec![
            FluidLink::new(mbps(40.0), mbps(32.0)),
            FluidLink::new(mbps(40.0), mbps(32.0)),
            FluidLink::new(mbps(10.0), mbps(4.0)),
            FluidLink::new(mbps(40.0), mbps(32.0)),
            FluidLink::new(mbps(40.0), mbps(32.0)),
        ])
    }

    #[test]
    fn path_metrics() {
        let p = paper_path();
        assert_eq!(p.avail_bw().mbps(), 4.0);
        assert_eq!(p.capacity().mbps(), 10.0);
        assert_eq!(p.tight_index(), 2);
        assert_eq!(p.narrow_index(), 2);
    }

    #[test]
    fn tight_and_narrow_can_differ() {
        // Fig. 10 path: 155 Mb/s POS tight link, 100 Mb/s FE narrow link.
        let p = FluidPath::new(vec![
            FluidLink::new(mbps(155.0), mbps(74.0)),
            FluidLink::new(mbps(100.0), mbps(95.0)),
        ]);
        assert_eq!(p.tight_index(), 0);
        assert_eq!(p.narrow_index(), 1);
        assert_eq!(p.avail_bw().mbps(), 74.0);
        assert_eq!(p.capacity().mbps(), 100.0);
    }

    #[test]
    fn exit_rate_below_avail_is_identity() {
        let l = FluidLink::new(mbps(10.0), mbps(4.0));
        assert_eq!(l.exit_rate(mbps(3.0)).mbps(), 3.0);
        assert_eq!(l.exit_rate(mbps(4.0)).mbps(), 4.0);
    }

    #[test]
    fn exit_rate_above_avail_compresses_toward_avail() {
        let l = FluidLink::new(mbps(10.0), mbps(4.0));
        // R=8 > A=4: out = 8*10/(8+6) = 5.714...
        let out = l.exit_rate(mbps(8.0));
        assert!((out.mbps() - 8.0 * 10.0 / 14.0).abs() < 1e-9);
        assert!(out.mbps() < 8.0 && out.mbps() > 4.0);
        // At R = C the output equals C*C/(C + C - A)
        let out_c = l.exit_rate(mbps(10.0));
        assert!(out_c.mbps() < 10.0 && out_c.mbps() >= 4.0);
    }

    #[test]
    fn proposition_1_dichotomy() {
        let p = paper_path();
        let a = p.avail_bw();
        // R below A: flat OWDs.
        assert_eq!(p.owd_slope(mbps(3.9), 300), 0.0);
        let owds = p.owds(mbps(3.9), 300, 10);
        assert!(owds.windows(2).all(|w| w[1] == w[0]));
        // R above A: strictly increasing OWDs.
        assert!(p.owd_slope(a + mbps(0.1), 300) > 0.0);
        let owds = p.owds(mbps(6.0), 300, 10);
        assert!(owds.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn owd_slope_matches_hand_computation_single_link() {
        let p = FluidPath::new(vec![FluidLink::new(mbps(10.0), mbps(4.0))]);
        // L=500 B, R=8: slope = 4000 bits * (1 - 4/8) / 10e6 = 0.0002 s
        let s = p.owd_slope(mbps(8.0), 500);
        assert!((s - 0.0002).abs() < 1e-12);
    }

    #[test]
    fn proposition_2_exit_rate_depends_on_upstream_links() {
        // Same tight link, different upstream link => different exit rate,
        // demonstrating that dispersion is not a function of A alone.
        let tight = FluidLink::new(mbps(10.0), mbps(4.0));
        let p1 = FluidPath::new(vec![FluidLink::new(mbps(12.0), mbps(5.0)), tight]);
        let p2 = FluidPath::new(vec![FluidLink::new(mbps(50.0), mbps(5.0)), tight]);
        assert_eq!(p1.avail_bw().mbps(), 4.0);
        assert_eq!(p2.avail_bw().mbps(), 4.0);
        let r = mbps(9.0);
        assert!(
            (p1.exit_rate(r).bps() - p2.exit_rate(r).bps()).abs() > 1e3,
            "exit rates should differ"
        );
    }

    #[test]
    fn adr_exceeds_avail_bw() {
        // The classic cprobe fallacy: a long train's dispersion rate (ADR)
        // sits between A and C, not at A.
        let p = paper_path();
        let adr = p.exit_rate(p.capacity());
        assert!(adr.mbps() > p.avail_bw().mbps());
        assert!(adr.mbps() <= p.capacity().mbps());
    }

    #[test]
    #[should_panic(expected = "avail-bw cannot exceed capacity")]
    fn invalid_link_panics() {
        let _ = FluidLink::new(mbps(5.0), mbps(6.0));
    }
}
