//! Small, allocation-light statistics helpers used by the trend tests,
//! the dynamics experiments, and the reporting code.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator); 0.0 for fewer than 2 samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Median of a slice (averaging the two central elements for even lengths).
///
/// Sorts a copy; intended for the short series used by the trend tests.
/// Returns 0.0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) * 0.5
    }
}

/// `p`-th percentile (0..=100) by linear interpolation between order
/// statistics. Returns 0.0 for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = rank - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// The {5, 15, 25, ..., 95} percentiles of `xs`, as `(percentile, value)`
/// pairs — the CDF sampling used by the paper's Figs. 11–14.
pub fn cdf_points(xs: &[f64]) -> Vec<(f64, f64)> {
    (0..10)
        .map(|i| {
            let p = 5.0 + 10.0 * i as f64;
            (p, percentile(xs, p))
        })
        .collect()
}

/// A five-number-plus summary of a sample, for experiment reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns an all-zero summary for an empty slice.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                p50: 0.0,
                p75: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        Summary {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            p50: percentile(xs, 50.0),
            p75: percentile(xs, 75.0),
            p95: percentile(xs, 95.0),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Coefficient of variation (σ/μ); 0.0 when the mean is 0.
    pub fn cov(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.13808993).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert_eq!(percentile(&xs, 50.0), 25.0);
        assert!((percentile(&xs, 75.0) - 32.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_points_has_ten_entries_and_is_monotone() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let cdf = cdf_points(&xs);
        assert_eq!(cdf.len(), 10);
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(cdf[0].0, 5.0);
        assert_eq!(cdf[9].0, 95.0);
    }

    #[test]
    fn summary_of_sample() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert!(s.cov() > 0.0);
        assert_eq!(Summary::of(&[]).n, 0);
    }
}
