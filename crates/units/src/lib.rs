//! Shared units and small statistics helpers for the availbw workspace.
//!
//! Everything in the workspace measures time in integer **nanoseconds** and
//! rates in **bits per second**. Using newtypes instead of bare integers
//! keeps transmission-time and rate arithmetic honest across crates: a
//! store-and-forward simulator lives or dies by the consistency of this
//! arithmetic.
//!
//! The crate is dependency-free and `#![forbid(unsafe_code)]`.

#![forbid(unsafe_code)]

pub mod stats;
pub mod time;

pub use stats::{cdf_points, mean, median, percentile, std_dev, Summary};
pub use time::{TimeNs, NS_PER_MS, NS_PER_SEC, NS_PER_US};

use core::fmt;

/// Ethernet MTU in bytes, the default maximum probe packet size.
pub const MTU: u32 = 1500;

/// A data rate in bits per second.
///
/// Stored as `f64` because the estimation algorithms bisect over rates;
/// helper constructors/readers keep the Mb/s convention of the paper.
///
/// ```
/// use units::Rate;
/// let r = Rate::from_mbps(10.0);
/// assert_eq!(r.bps(), 10_000_000.0);
/// // 1500 B at 10 Mb/s takes 1.2 ms to transmit
/// assert_eq!(r.tx_time_ns(1500), 1_200_000);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Rate(f64);

impl Rate {
    /// Zero rate.
    pub const ZERO: Rate = Rate(0.0);

    /// Construct from bits per second.
    #[inline]
    pub fn from_bps(bps: f64) -> Self {
        debug_assert!(bps.is_finite() && bps >= 0.0, "invalid rate: {bps}");
        Rate(bps)
    }

    /// Construct from megabits per second (the paper's unit).
    #[inline]
    pub fn from_mbps(mbps: f64) -> Self {
        Self::from_bps(mbps * 1e6)
    }

    /// Construct from kilobits per second.
    #[inline]
    pub fn from_kbps(kbps: f64) -> Self {
        Self::from_bps(kbps * 1e3)
    }

    /// The rate in bits per second.
    #[inline]
    pub fn bps(self) -> f64 {
        self.0
    }

    /// The rate in megabits per second.
    #[inline]
    pub fn mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Time to transmit `bytes` bytes at this rate, in nanoseconds
    /// (rounded to nearest). Panics in debug builds if the rate is zero.
    #[inline]
    pub fn tx_time_ns(self, bytes: u32) -> u64 {
        debug_assert!(self.0 > 0.0, "tx_time_ns on zero rate");
        let ns = (bytes as f64) * 8.0 * 1e9 / self.0;
        ns.round() as u64
    }

    /// Time to transmit `bytes` bytes at this rate.
    #[inline]
    pub fn tx_time(self, bytes: u32) -> TimeNs {
        TimeNs(self.tx_time_ns(bytes))
    }

    /// Number of whole bytes transferred in `dur` at this rate.
    #[inline]
    pub fn bytes_in(self, dur: TimeNs) -> u64 {
        (self.0 * dur.secs_f64() / 8.0) as u64
    }

    /// The rate that transfers `bytes` bytes in `dur`.
    ///
    /// Returns [`Rate::ZERO`] when `dur` is zero.
    #[inline]
    pub fn from_transfer(bytes: u64, dur: TimeNs) -> Rate {
        if dur.is_zero() {
            Rate::ZERO
        } else {
            Rate::from_bps(bytes as f64 * 8.0 / dur.secs_f64())
        }
    }

    /// True if this rate is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Midpoint of two rates (used by the bisection search).
    #[inline]
    pub fn midpoint(self, other: Rate) -> Rate {
        Rate((self.0 + other.0) * 0.5)
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: Rate) -> Rate {
        Rate(self.0.min(other.0))
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: Rate) -> Rate {
        Rate(self.0.max(other.0))
    }
}

impl core::ops::Add for Rate {
    type Output = Rate;
    #[inline]
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl core::ops::Sub for Rate {
    type Output = Rate;
    #[inline]
    fn sub(self, rhs: Rate) -> Rate {
        Rate((self.0 - rhs.0).max(0.0))
    }
}

impl core::ops::Mul<f64> for Rate {
    type Output = Rate;
    #[inline]
    fn mul(self, rhs: f64) -> Rate {
        Rate(self.0 * rhs)
    }
}

impl core::ops::Div<f64> for Rate {
    type Output = Rate;
    #[inline]
    fn div(self, rhs: f64) -> Rate {
        Rate(self.0 / rhs)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.2} Mb/s", self.mbps())
        } else if self.0 >= 1e3 {
            write!(f, "{:.2} kb/s", self.0 / 1e3)
        } else {
            write!(f, "{:.0} b/s", self.0)
        }
    }
}

impl fmt::Debug for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        <Self as fmt::Display>::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_constructors_agree() {
        assert_eq!(Rate::from_mbps(1.0).bps(), 1e6);
        assert_eq!(Rate::from_kbps(1.0).bps(), 1e3);
        assert_eq!(Rate::from_bps(42.0).bps(), 42.0);
    }

    #[test]
    fn tx_time_round_trips_bytes() {
        let r = Rate::from_mbps(8.0); // 1 byte per microsecond
        assert_eq!(r.tx_time_ns(1), 1_000);
        assert_eq!(r.tx_time_ns(1500), 1_500_000);
        let d = r.tx_time(1000);
        assert_eq!(r.bytes_in(d), 1000);
    }

    #[test]
    fn from_transfer_inverts_bytes_in() {
        let r = Rate::from_mbps(13.37);
        let d = TimeNs::from_millis(250);
        let b = r.bytes_in(d);
        let r2 = Rate::from_transfer(b, d);
        assert!((r.bps() - r2.bps()).abs() / r.bps() < 1e-3);
    }

    #[test]
    fn from_transfer_zero_duration_is_zero() {
        assert!(Rate::from_transfer(1000, TimeNs::ZERO).is_zero());
    }

    #[test]
    fn midpoint_min_max() {
        let a = Rate::from_mbps(2.0);
        let b = Rate::from_mbps(4.0);
        assert_eq!(a.midpoint(b).mbps(), 3.0);
        assert_eq!(a.min(b).mbps(), 2.0);
        assert_eq!(a.max(b).mbps(), 4.0);
    }

    #[test]
    fn sub_saturates_at_zero() {
        let a = Rate::from_mbps(2.0);
        let b = Rate::from_mbps(4.0);
        assert!((a - b).is_zero());
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", Rate::from_mbps(10.0)), "10.00 Mb/s");
        assert_eq!(format!("{}", Rate::from_kbps(10.0)), "10.00 kb/s");
        assert_eq!(format!("{}", Rate::from_bps(10.0)), "10 b/s");
    }
}
