//! Nanosecond time type used for both instants and durations.
//!
//! The simulator clock is a single monotonically increasing `u64` of
//! nanoseconds since simulation start, so one type serves as both an
//! instant and a duration; arithmetic that would underflow panics in debug
//! builds (a negative time is always a bug in event ordering).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// Nanoseconds in one microsecond.
pub const NS_PER_US: u64 = 1_000;
/// Nanoseconds in one millisecond.
pub const NS_PER_MS: u64 = 1_000_000;
/// Nanoseconds in one second.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// A point in (or span of) simulated time, in nanoseconds.
///
/// ```
/// use units::TimeNs;
/// let t = TimeNs::from_millis(2) + TimeNs::from_micros(500);
/// assert_eq!(t.as_micros(), 2_500);
/// assert_eq!(t.secs_f64(), 0.0025);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeNs(pub u64);

impl TimeNs {
    /// Time zero (simulation start / zero duration).
    pub const ZERO: TimeNs = TimeNs(0);
    /// The maximum representable time; used as an "infinite" horizon.
    pub const MAX: TimeNs = TimeNs(u64::MAX);

    /// From whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        TimeNs(ns)
    }

    /// From whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        TimeNs(us * NS_PER_US)
    }

    /// From whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        TimeNs(ms * NS_PER_MS)
    }

    /// From whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        TimeNs(s * NS_PER_SEC)
    }

    /// From fractional seconds (rounded to nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "invalid seconds: {s}");
        TimeNs((s * NS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncated).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / NS_PER_US
    }

    /// Whole milliseconds (truncated).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / NS_PER_MS
    }

    /// Fractional seconds.
    #[inline]
    pub fn secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_SEC as f64
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn millis_f64(self) -> f64 {
        self.0 as f64 / NS_PER_MS as f64
    }

    /// True if this is time zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction (zero instead of underflow).
    #[inline]
    pub const fn saturating_sub(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[inline]
    pub const fn checked_sub(self, rhs: TimeNs) -> Option<TimeNs> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(TimeNs(v)),
            None => None,
        }
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: TimeNs) -> TimeNs {
        TimeNs(self.0.min(other.0))
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: TimeNs) -> TimeNs {
        TimeNs(self.0.max(other.0))
    }

    /// Convert to a std `Duration` (for the real-socket implementation).
    #[inline]
    pub const fn to_std(self) -> core::time::Duration {
        core::time::Duration::from_nanos(self.0)
    }

    /// Convert from a std `Duration`, saturating at `u64::MAX` nanoseconds.
    #[inline]
    pub fn from_std(d: core::time::Duration) -> Self {
        TimeNs(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl Add for TimeNs {
    type Output = TimeNs;
    #[inline]
    fn add(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0 + rhs.0)
    }
}

impl AddAssign for TimeNs {
    #[inline]
    fn add_assign(&mut self, rhs: TimeNs) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeNs {
    type Output = TimeNs;
    #[inline]
    fn sub(self, rhs: TimeNs) -> TimeNs {
        debug_assert!(self.0 >= rhs.0, "time underflow: {} - {}", self.0, rhs.0);
        TimeNs(self.0 - rhs.0)
    }
}

impl Mul<u64> for TimeNs {
    type Output = TimeNs;
    #[inline]
    fn mul(self, rhs: u64) -> TimeNs {
        TimeNs(self.0 * rhs)
    }
}

impl Div<u64> for TimeNs {
    type Output = TimeNs;
    #[inline]
    fn div(self, rhs: u64) -> TimeNs {
        TimeNs(self.0 / rhs)
    }
}

impl fmt::Display for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NS_PER_SEC {
            write!(f, "{:.3}s", self.secs_f64())
        } else if self.0 >= NS_PER_MS {
            write!(f, "{:.3}ms", self.millis_f64())
        } else if self.0 >= NS_PER_US {
            write!(f, "{:.3}us", self.0 as f64 / NS_PER_US as f64)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Debug for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        <Self as fmt::Display>::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(TimeNs::from_micros(1).as_nanos(), 1_000);
        assert_eq!(TimeNs::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(TimeNs::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(TimeNs::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    fn arithmetic() {
        let a = TimeNs::from_millis(5);
        let b = TimeNs::from_millis(3);
        assert_eq!((a + b).as_millis(), 8);
        assert_eq!((a - b).as_millis(), 2);
        assert_eq!((a * 2).as_millis(), 10);
        assert_eq!((a / 5).as_millis(), 1);
        assert_eq!(b.saturating_sub(a), TimeNs::ZERO);
        assert_eq!(a.checked_sub(b), Some(TimeNs::from_millis(2)));
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    #[should_panic(expected = "time underflow")]
    #[cfg(debug_assertions)]
    fn sub_underflow_panics_in_debug() {
        let _ = TimeNs::from_millis(1) - TimeNs::from_millis(2);
    }

    #[test]
    fn std_round_trip() {
        let t = TimeNs::from_micros(1234);
        assert_eq!(TimeNs::from_std(t.to_std()), t);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", TimeNs::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", TimeNs::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", TimeNs::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", TimeNs::from_nanos(2)), "2ns");
    }
}
