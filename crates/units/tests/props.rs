//! Property tests for the unit types and statistics helpers.

use proptest::prelude::*;
use units::{percentile, Rate, Summary, TimeNs};

proptest! {
    /// Rate::tx_time and Rate::bytes_in are inverse within rounding.
    #[test]
    fn tx_time_bytes_roundtrip(mbps in 0.1f64..10_000.0, bytes in 1u32..100_000) {
        let r = Rate::from_mbps(mbps);
        let d = r.tx_time(bytes);
        let back = r.bytes_in(d);
        // One byte of slack for ns rounding.
        prop_assert!((back as i64 - bytes as i64).abs() <= 1, "{bytes} -> {back}");
    }

    /// from_transfer inverts bytes_in for non-trivial durations.
    #[test]
    fn transfer_rate_roundtrip(mbps in 0.1f64..1_000.0, ms in 1u64..100_000) {
        let r = Rate::from_mbps(mbps);
        let d = TimeNs::from_millis(ms);
        let b = r.bytes_in(d);
        prop_assume!(b > 100);
        let r2 = Rate::from_transfer(b, d);
        prop_assert!((r.bps() - r2.bps()).abs() / r.bps() < 0.01);
    }

    /// Time arithmetic is consistent: (a + b) - b == a.
    #[test]
    fn time_add_sub_inverse(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let ta = TimeNs::from_nanos(a);
        let tb = TimeNs::from_nanos(b);
        prop_assert_eq!((ta + tb) - tb, ta);
        prop_assert_eq!(ta.max(tb).min(ta.min(tb)), ta.min(tb));
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentile_monotone_and_bounded(
        xs in prop::collection::vec(-1e9f64..1e9, 1..200),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let vlo = percentile(&xs, lo);
        let vhi = percentile(&xs, hi);
        prop_assert!(vlo <= vhi + 1e-9);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(min - 1e-9 <= vlo && vhi <= max + 1e-9);
    }

    /// Summary invariants: min <= p50 <= p75 <= p95 <= max, mean within
    /// [min, max].
    #[test]
    fn summary_invariants(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.p50 + 1e-9);
        prop_assert!(s.p50 <= s.p75 + 1e-9);
        prop_assert!(s.p75 <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.max + 1e-9);
        prop_assert!(s.min - 1e-9 <= s.mean && s.mean <= s.max + 1e-9);
        prop_assert_eq!(s.n, xs.len());
    }
}
