//! The TCP Reno sender state machine.

use crate::rtt::RttEstimator;
use crate::{HEADER, MSS};
use netsim::{App, Ctx, FlowId, Packet, Payload, RouteSpec, TcpFlags, TcpHeader};
use std::sync::Arc;
use units::TimeNs;

/// Congestion-control phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    SlowStart,
    CongestionAvoidance,
    FastRecovery,
}

/// Sender configuration.
#[derive(Clone, Debug)]
pub struct TcpSenderConfig {
    /// Connection id (must match the receiver's).
    pub conn: u32,
    /// Flow id for the data direction.
    pub flow: FlowId,
    /// Total payload bytes to send; `None` = greedy (unbounded).
    pub limit: Option<u64>,
    /// Receiver advertised window in bytes; `None` = unbounded (the BTC
    /// definition). A small window models flows whose throughput is
    /// window·RTT-limited — they lose throughput when the path RTT
    /// inflates, which is how a greedy connection "steals" bandwidth
    /// (paper §VII).
    pub rwnd: Option<u64>,
    /// Initial slow-start threshold in bytes; `None` = effectively
    /// unbounded (slow start until the first loss). Setting it from an
    /// avail-bw estimate is the §I application suggested by Allman &
    /// Paxson: slow start hands off to congestion avoidance at the
    /// estimated bandwidth-delay product instead of overshooting the
    /// queue.
    pub initial_ssthresh: Option<u64>,
    /// Initial congestion window in segments (RFC 5681 allows up to 4).
    pub initial_cwnd_segments: u32,
}

impl TcpSenderConfig {
    /// A greedy (BTC) sender for connection `conn`.
    pub fn greedy(conn: u32) -> TcpSenderConfig {
        TcpSenderConfig {
            conn,
            flow: FlowId(0x5443_0000 + conn), // 'TC'
            limit: None,
            rwnd: None,
            initial_ssthresh: None,
            initial_cwnd_segments: 2,
        }
    }
}

/// TCP Reno sender application.
///
/// Drive it by scheduling one timer (token 0) at the connection start time;
/// it then self-clocks off ACKs and its retransmission timer.
pub struct TcpSender {
    cfg: TcpSenderConfig,
    route: Arc<RouteSpec>,
    // --- sequence state (bytes) ---
    snd_una: u64,
    snd_nxt: u64,
    // --- congestion control ---
    cwnd: f64,
    ssthresh: f64,
    phase: Phase,
    dupacks: u32,
    recover: u64,
    // --- timers ---
    rtt: RttEstimator,
    timer_gen: u64,
    // --- stats ---
    /// Cumulatively acknowledged payload bytes.
    pub acked_bytes: u64,
    /// Segments retransmitted (RTO + fast retransmit).
    pub retransmits: u64,
    /// RTO events.
    pub timeouts: u64,
}

const TOKEN_START: u64 = 0;

impl TcpSender {
    /// Create a sender that sends data along `route` (which must end at the
    /// matching [`crate::TcpReceiver`]).
    pub fn new(cfg: TcpSenderConfig, route: Arc<RouteSpec>) -> TcpSender {
        let cwnd = (cfg.initial_cwnd_segments * MSS) as f64;
        let ssthresh = cfg
            .initial_ssthresh
            .map_or(f64::MAX / 4.0, |s| (s as f64).max((2 * MSS) as f64));
        TcpSender {
            cfg,
            route,
            snd_una: 0,
            snd_nxt: 0,
            cwnd,
            ssthresh,
            phase: Phase::SlowStart,
            dupacks: 0,
            recover: 0,
            rtt: RttEstimator::default(),
            timer_gen: 0,
            acked_bytes: 0,
            retransmits: 0,
            timeouts: 0,
        }
    }

    /// Replace the data route (used by the connection wiring helper, which
    /// must allocate the sender before the receiver exists).
    pub fn set_route(&mut self, route: Arc<RouteSpec>) {
        self.route = route;
    }

    /// Stop offering new data: the connection drains its flight and goes
    /// quiet. Used to end a BTC interval (paper §VII phases B and D).
    pub fn stop(&mut self) {
        self.cfg.limit = Some(self.snd_nxt);
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    /// Smoothed RTT estimate, once available.
    pub fn srtt(&self) -> Option<TimeNs> {
        self.rtt.srtt()
    }

    fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn segment_len(&self, seq: u64) -> u32 {
        match self.cfg.limit {
            Some(limit) => {
                let remaining = limit.saturating_sub(seq);
                remaining.min(MSS as u64) as u32
            }
            None => MSS,
        }
    }

    fn done(&self) -> bool {
        matches!(self.cfg.limit, Some(limit) if self.snd_una >= limit)
    }

    fn emit(&mut self, ctx: &mut Ctx<'_>, seq: u64, is_retransmit: bool) {
        let len = self.segment_len(seq);
        if len == 0 {
            return;
        }
        let hdr = TcpHeader {
            conn: self.cfg.conn,
            seq,
            ack: 0,
            len,
            flags: TcpFlags {
                syn: false,
                ack: false,
                fin: false,
            },
            ts_echo: ctx.now(),
        };
        let pkt = Packet::with_payload(
            len + HEADER,
            self.cfg.flow,
            seq,
            self.route.clone(),
            Payload::Tcp(hdr),
        );
        ctx.send(pkt);
        if is_retransmit {
            self.retransmits += 1;
        }
    }

    /// Send as much new data as the window allows.
    fn fill_window(&mut self, ctx: &mut Ctx<'_>) {
        let mut window = self.cwnd as u64;
        if let Some(rwnd) = self.cfg.rwnd {
            window = window.min(rwnd);
        }
        while self.flight() + (MSS as u64) <= window {
            let len = self.segment_len(self.snd_nxt) as u64;
            if len == 0 {
                break;
            }
            self.emit(ctx, self.snd_nxt, false);
            self.snd_nxt += len;
        }
    }

    fn arm_rto(&mut self, ctx: &mut Ctx<'_>) {
        self.timer_gen += 1;
        ctx.timer_in(self.rtt.rto(), self.timer_gen);
    }

    fn on_rto(&mut self, ctx: &mut Ctx<'_>) {
        if self.done() || self.flight() == 0 {
            return;
        }
        self.timeouts += 1;
        // Classic Reno timeout: collapse to one segment, halve ssthresh,
        // back off the timer, and go back to the last cumulative ACK.
        self.ssthresh = (self.flight() as f64 / 2.0).max((2 * MSS) as f64);
        self.cwnd = MSS as f64;
        self.phase = Phase::SlowStart;
        self.dupacks = 0;
        self.rtt.backoff();
        self.snd_nxt = self.snd_una;
        self.emit(ctx, self.snd_una, true);
        self.snd_nxt += self.segment_len(self.snd_una) as u64;
        self.arm_rto(ctx);
    }

    fn on_ack(&mut self, ctx: &mut Ctx<'_>, ack: u64, ts_echo: TimeNs) {
        // Timestamp echo gives an unambiguous RTT sample (Karn-safe).
        let now = ctx.now();
        if now > ts_echo {
            self.rtt.sample(now - ts_echo);
        }
        if ack > self.snd_una {
            let newly = ack - self.snd_una;
            self.snd_una = ack;
            // A late ACK can cover data sent before an RTO rewound snd_nxt.
            self.snd_nxt = self.snd_nxt.max(ack);
            self.acked_bytes += newly;
            self.dupacks = 0;
            match self.phase {
                Phase::FastRecovery => {
                    if ack >= self.recover {
                        // Full recovery: deflate to ssthresh.
                        self.cwnd = self.ssthresh;
                        self.phase = Phase::CongestionAvoidance;
                    } else {
                        // Partial ACK (NewReno-style minimal handling):
                        // retransmit the next hole, stay in recovery.
                        self.emit(ctx, self.snd_una, true);
                        self.cwnd = (self.cwnd - newly as f64).max(MSS as f64);
                    }
                }
                Phase::SlowStart => {
                    self.cwnd += newly.min(MSS as u64) as f64;
                    if self.cwnd >= self.ssthresh {
                        self.phase = Phase::CongestionAvoidance;
                    }
                }
                Phase::CongestionAvoidance => {
                    self.cwnd += (MSS as f64) * (MSS as f64) / self.cwnd;
                }
            }
            if !self.done() {
                self.arm_rto(ctx);
            }
        } else if ack == self.snd_una && self.flight() > 0 {
            self.dupacks += 1;
            match self.phase {
                Phase::FastRecovery => {
                    // Window inflation keeps the ACK clock running.
                    self.cwnd += MSS as f64;
                }
                _ if self.dupacks == 3 => {
                    // Fast retransmit.
                    self.ssthresh = (self.flight() as f64 / 2.0).max((2 * MSS) as f64);
                    self.cwnd = self.ssthresh + (3 * MSS) as f64;
                    self.recover = self.snd_nxt;
                    self.phase = Phase::FastRecovery;
                    self.emit(ctx, self.snd_una, true);
                    self.arm_rto(ctx);
                }
                _ => {}
            }
        }
        self.fill_window(ctx);
    }
}

impl App for TcpSender {
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_START {
            self.fill_window(ctx);
            self.arm_rto(ctx);
        } else if token == self.timer_gen {
            // Only the most recently armed RTO counts; stale timers are
            // cancelled generations.
            self.on_rto(ctx);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if let Payload::Tcp(hdr) = pkt.payload {
            if hdr.conn == self.cfg.conn && hdr.flags.ack {
                self.on_ack(ctx, hdr.ack, hdr.ts_echo);
            }
        }
    }
}
