//! # tcpsim — TCP Reno over netsim
//!
//! A segment-level TCP Reno implementation for the paper's §VII
//! experiments: the relation between avail-bw and the throughput of a
//! greedy bulk-transfer-capacity (BTC) connection, and the damage such a
//! connection does to path delays and competing traffic (Figs. 15–16).
//!
//! Implemented: slow start, congestion avoidance, fast retransmit after
//! three duplicate ACKs, Reno fast recovery, RTO with Jacobson/Karn
//! estimation and exponential backoff, cumulative ACKs with out-of-order
//! buffering at the receiver, and timestamp echo for unambiguous RTT
//! samples.
//!
//! Simplifications (see DESIGN.md): no handshake or FIN teardown
//! (connections start established — the experiments study steady state),
//! no delayed ACKs, unbounded receiver window (the BTC definition: only
//! the network limits the transfer), no SACK (Reno, as in the paper's
//! 2002-era stacks).
//!
//! ```
//! use netsim::{ChainConfig, LinkConfig, Simulator, Chain};
//! use tcpsim::TcpConnection;
//! use units::{Rate, TimeNs};
//!
//! let mut sim = Simulator::new(7);
//! let chain = Chain::build(&mut sim, &ChainConfig::symmetric(vec![
//!     LinkConfig::new(Rate::from_mbps(8.0), TimeNs::from_millis(20))
//!         .with_queue_limit(64 * 1024), // a realistic router buffer
//! ]));
//! let conn = TcpConnection::greedy(&mut sim, &chain, 1);
//! sim.run_until(TimeNs::from_secs(30));
//! let tput = conn.throughput(&sim, TimeNs::from_secs(5), TimeNs::from_secs(30));
//! // A lone greedy connection saturates the 8 Mb/s link.
//! assert!(tput.mbps() > 7.0, "got {tput}");
//! ```

#![forbid(unsafe_code)]

pub mod conn;
pub mod receiver;
pub mod rtt;
pub mod sender;

pub use conn::TcpConnection;
pub use receiver::TcpReceiver;
pub use rtt::RttEstimator;
pub use sender::{TcpSender, TcpSenderConfig};

/// Maximum segment size used by all connections (Ethernet MTU minus
/// 40 bytes of IP+TCP header).
pub const MSS: u32 = 1460;

/// Wire overhead per segment (IP + TCP headers).
pub const HEADER: u32 = 40;
