//! Convenience wiring of a sender/receiver pair across a chain.

use crate::receiver::TcpReceiver;
use crate::sender::{TcpSender, TcpSenderConfig};
use netsim::{AppId, Chain, Simulator};
use units::{Rate, TimeNs};

/// A wired TCP connection: sender at the chain head, receiver at the tail,
/// ACKs on the reverse path.
#[derive(Clone, Copy, Debug)]
pub struct TcpConnection {
    /// Connection id.
    pub conn: u32,
    /// Sender app id.
    pub sender: AppId,
    /// Receiver app id.
    pub receiver: AppId,
}

impl TcpConnection {
    /// Create a greedy (BTC) connection over `chain`, starting immediately.
    pub fn greedy(sim: &mut Simulator, chain: &Chain, conn: u32) -> TcpConnection {
        Self::start_at(sim, chain, TcpSenderConfig::greedy(conn), sim.now())
    }

    /// Create a connection with explicit sender configuration, whose first
    /// segment leaves at `start`.
    pub fn start_at(
        sim: &mut Simulator,
        chain: &Chain,
        cfg: TcpSenderConfig,
        start: TimeNs,
    ) -> TcpConnection {
        let conn = cfg.conn;
        // Allocate the sender first so the receiver's ACK route can point
        // at it; patch the sender's data route afterwards.
        let placeholder = sim.route(&[], AppId(0));
        let sender = sim.add_app(Box::new(TcpSender::new(cfg, placeholder)));
        let ack_route = chain.reverse_route(sim, sender);
        let receiver = sim.add_app(Box::new(TcpReceiver::new(
            conn,
            ack_route,
            TimeNs::from_secs(1),
        )));
        let data_route = chain.forward_route(sim, receiver);
        sim.app_mut::<TcpSender>(sender).set_route(data_route);
        sim.schedule_timer(sender, start, 0);
        TcpConnection {
            conn,
            sender,
            receiver,
        }
    }

    /// Average goodput of the connection between two times.
    pub fn throughput(&self, sim: &Simulator, from: TimeNs, to: TimeNs) -> Rate {
        sim.app::<TcpReceiver>(self.receiver)
            .goodput_between(from, to)
    }

    /// Per-second goodput series between two times.
    pub fn throughput_series(&self, sim: &Simulator, from: TimeNs, to: TimeNs) -> Vec<Rate> {
        sim.app::<TcpReceiver>(self.receiver)
            .goodput_series(from, to)
    }

    /// Total payload bytes delivered in order.
    pub fn delivered(&self, sim: &Simulator) -> u64 {
        sim.app::<TcpReceiver>(self.receiver).delivered
    }

    /// Sender-side statistics `(retransmits, timeouts)`.
    pub fn loss_events(&self, sim: &Simulator) -> (u64, u64) {
        let s = sim.app::<TcpSender>(self.sender);
        (s.retransmits, s.timeouts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HEADER, MSS};
    use netsim::{ChainConfig, LinkConfig};
    use units::Rate;

    fn chain_with(sim: &mut Simulator, mbps: f64, delay_ms: u64, queue_bytes: u64) -> Chain {
        Chain::build(
            sim,
            &ChainConfig::symmetric(vec![LinkConfig::new(
                Rate::from_mbps(mbps),
                TimeNs::from_millis(delay_ms),
            )
            .with_queue_limit(queue_bytes)]),
        )
    }

    #[test]
    fn lone_connection_saturates_the_link() {
        let mut sim = Simulator::new(3);
        let chain = chain_with(&mut sim, 8.0, 20, 64 * 1024);
        let conn = TcpConnection::greedy(&mut sim, &chain, 1);
        sim.run_until(TimeNs::from_secs(30));
        let tput = conn.throughput(&sim, TimeNs::from_secs(5), TimeNs::from_secs(30));
        // Goodput ≥ ~90% of capacity (header overhead is 1460/1500).
        assert!(tput.mbps() > 7.0, "throughput {tput}");
        let (retx, _) = conn.loss_events(&sim);
        assert!(retx > 0, "a greedy flow over a finite buffer must see loss");
    }

    #[test]
    fn slow_start_doubles_every_rtt() {
        let mut sim = Simulator::new(4);
        // Huge buffer and short run: no loss, pure slow start.
        let chain = chain_with(&mut sim, 100.0, 50, 64 * 1024 * 1024);
        let conn = TcpConnection::greedy(&mut sim, &chain, 1);
        // RTT ~ 100 ms. After ~5 RTTs cwnd ~ 2 * 2^5 = 64 segments.
        sim.run_until(TimeNs::from_millis(520));
        let cwnd = sim.app::<TcpSender>(conn.sender).cwnd();
        let segs = cwnd / MSS as u64;
        assert!(
            (32..=128).contains(&segs),
            "cwnd after 5 RTTs: {segs} segments"
        );
    }

    #[test]
    fn fixed_transfer_stops_at_limit() {
        let mut sim = Simulator::new(5);
        let chain = chain_with(&mut sim, 10.0, 10, 1024 * 1024);
        let mut cfg = TcpSenderConfig::greedy(2);
        cfg.limit = Some(1_000_000);
        let conn = TcpConnection::start_at(&mut sim, &chain, cfg, TimeNs::ZERO);
        sim.run_until(TimeNs::from_secs(60));
        assert_eq!(conn.delivered(&sim), 1_000_000);
    }

    #[test]
    fn two_connections_share_fairly() {
        let mut sim = Simulator::new(6);
        let chain = chain_with(&mut sim, 8.0, 20, 64 * 1024);
        let c1 = TcpConnection::greedy(&mut sim, &chain, 1);
        let c2 = TcpConnection::greedy(&mut sim, &chain, 2);
        sim.run_until(TimeNs::from_secs(60));
        let t1 = c1.throughput(&sim, TimeNs::from_secs(10), TimeNs::from_secs(60));
        let t2 = c2.throughput(&sim, TimeNs::from_secs(10), TimeNs::from_secs(60));
        let total = t1.mbps() + t2.mbps();
        assert!(total > 6.5, "combined {total} Mb/s");
        let ratio = t1.mbps().max(t2.mbps()) / t1.mbps().min(t2.mbps());
        assert!(ratio < 2.5, "unfair split: {t1} vs {t2}");
    }

    #[test]
    fn rto_recovers_from_total_blackout() {
        // Fault injection: 30% random loss makes fast retransmit
        // insufficient; the connection must survive on RTOs.
        let mut sim = Simulator::new(7);
        let fwd =
            LinkConfig::new(Rate::from_mbps(10.0), TimeNs::from_millis(10)).with_drop_prob(0.3);
        let rev = LinkConfig::new(Rate::from_mbps(10.0), TimeNs::from_millis(10));
        let chain = Chain::build(
            &mut sim,
            &ChainConfig {
                forward: vec![fwd],
                reverse: Some(vec![rev]),
            },
        );
        let conn = TcpConnection::greedy(&mut sim, &chain, 1);
        sim.run_until(TimeNs::from_secs(120));
        let (_, timeouts) = conn.loss_events(&sim);
        assert!(timeouts > 0, "expected RTO events at 30% loss");
        assert!(
            conn.delivered(&sim) > 500_000,
            "connection starved: {} bytes",
            conn.delivered(&sim)
        );
    }

    #[test]
    fn goodput_excludes_headers() {
        let mut sim = Simulator::new(8);
        let chain = chain_with(&mut sim, 8.0, 20, 64 * 1024);
        let conn = TcpConnection::greedy(&mut sim, &chain, 1);
        sim.run_until(TimeNs::from_secs(20));
        let goodput = conn.throughput(&sim, TimeNs::from_secs(5), TimeNs::from_secs(20));
        // Wire rate can be at most capacity; goodput at most
        // capacity * MSS/(MSS+HEADER).
        let cap = 8.0 * MSS as f64 / (MSS + HEADER) as f64;
        assert!(
            goodput.mbps() <= cap + 0.1,
            "goodput {goodput} > payload cap"
        );
    }
}
