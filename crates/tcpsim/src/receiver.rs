//! The TCP receiver: cumulative ACKs with out-of-order buffering, and
//! per-interval goodput accounting for the BTC experiments.

use crate::HEADER;
use netsim::{App, Ctx, FlowId, Packet, Payload, RouteSpec, TcpFlags, TcpHeader};
use std::collections::BTreeMap;
use std::sync::Arc;
use units::{Rate, TimeNs};

/// TCP receiver application.
pub struct TcpReceiver {
    conn: u32,
    ack_flow: FlowId,
    ack_route: Arc<RouteSpec>,
    rcv_nxt: u64,
    /// Out-of-order segments: start → length.
    ooo: BTreeMap<u64, u32>,
    /// Goodput accounting: in-order payload bytes per bin.
    bins: Vec<u64>,
    bin_width: TimeNs,
    /// Total in-order payload bytes delivered.
    pub delivered: u64,
    /// RFC 1122 delayed ACKs: acknowledge every second in-order segment
    /// (out-of-order arrivals still ACK immediately, as RFC 5681 requires
    /// for fast retransmit to work). Off by default — the 2002 experiments
    /// behave the same either way, but the option exists for fidelity
    /// studies. The timer half of delayed ACKs (the 500 ms flush) is NOT
    /// modeled; with greedy senders a second segment always arrives first.
    pub delayed_acks: bool,
    held_ack: bool,
}

impl TcpReceiver {
    /// Create a receiver for connection `conn`, acknowledging along
    /// `ack_route` (which must end at the matching [`crate::TcpSender`]).
    /// `bin_width` sets the goodput-histogram resolution (1 s in Fig. 15).
    pub fn new(conn: u32, ack_route: Arc<RouteSpec>, bin_width: TimeNs) -> TcpReceiver {
        assert!(!bin_width.is_zero());
        TcpReceiver {
            conn,
            ack_flow: FlowId(0x4143_0000 + conn), // 'AC'
            ack_route,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            bins: Vec::new(),
            bin_width,
            delivered: 0,
            delayed_acks: false,
            held_ack: false,
        }
    }

    /// Goodput in bin `idx` (payload bytes that became in-order during it).
    pub fn goodput_bin(&self, idx: usize) -> u64 {
        self.bins.get(idx).copied().unwrap_or(0)
    }

    /// Number of goodput bins touched so far.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Average goodput between two times (whole-bin granularity).
    pub fn goodput_between(&self, from: TimeNs, to: TimeNs) -> Rate {
        if to <= from {
            return Rate::ZERO;
        }
        let w = self.bin_width.as_nanos();
        let first = (from.as_nanos() / w) as usize;
        let last = ((to.as_nanos() - 1) / w) as usize;
        let bytes: u64 = (first..=last).map(|i| self.goodput_bin(i)).sum();
        Rate::from_transfer(bytes, TimeNs::from_nanos((last - first + 1) as u64 * w))
    }

    /// Per-bin goodput rates over `[from, to)`, one entry per bin.
    pub fn goodput_series(&self, from: TimeNs, to: TimeNs) -> Vec<Rate> {
        let w = self.bin_width.as_nanos();
        let first = (from.as_nanos() / w) as usize;
        let last = ((to.as_nanos().saturating_sub(1)) / w) as usize;
        (first..=last)
            .map(|i| Rate::from_transfer(self.goodput_bin(i), self.bin_width))
            .collect()
    }

    fn credit(&mut self, now: TimeNs, bytes: u64) {
        self.delivered += bytes;
        let idx = (now.as_nanos() / self.bin_width.as_nanos()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += bytes;
    }

    /// Core reassembly step, independent of the packet transport: offer a
    /// segment `[seq, seq+len)` observed at `now`. Exposed for testing and
    /// for alternative framings.
    pub fn absorb(&mut self, now: TimeNs, seq: u64, len: u32) {
        let end = seq + len as u64;
        if end <= self.rcv_nxt {
            return; // duplicate
        }
        if seq <= self.rcv_nxt {
            // In-order (possibly partially duplicate) segment.
            let newly = end - self.rcv_nxt;
            self.rcv_nxt = end;
            self.credit(now, newly);
            // Drain any out-of-order segments that are now in order.
            while let Some((&s, &l)) = self.ooo.first_key_value() {
                let e = s + l as u64;
                if s > self.rcv_nxt {
                    break;
                }
                self.ooo.pop_first();
                if e > self.rcv_nxt {
                    let newly = e - self.rcv_nxt;
                    self.rcv_nxt = e;
                    self.credit(now, newly);
                }
            }
        } else {
            // Keep the longest segment seen at this offset: retransmissions
            // after an RTO can carry different boundaries than the original.
            self.ooo
                .entry(seq)
                .and_modify(|l| *l = (*l).max(len))
                .or_insert(len);
        }
    }
}

impl App for TcpReceiver {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let Payload::Tcp(hdr) = pkt.payload else {
            return;
        };
        if hdr.conn != self.conn || hdr.flags.ack {
            return;
        }
        let now = ctx.now();
        let in_order = hdr.seq <= self.rcv_nxt;
        self.absorb(now, hdr.seq, hdr.len);
        if self.delayed_acks && in_order && self.ooo.is_empty() {
            // Hold every second ACK for in-order traffic.
            if !self.held_ack {
                self.held_ack = true;
                return;
            }
            self.held_ack = false;
        }
        let ack_hdr = TcpHeader {
            conn: self.conn,
            seq: 0,
            ack: self.rcv_nxt,
            len: 0,
            flags: TcpFlags {
                syn: false,
                ack: true,
                fin: false,
            },
            // Echo the data segment's timestamp for the RTT sample.
            ts_echo: hdr.ts_echo,
        };
        let ack = Packet::with_payload(
            HEADER,
            self.ack_flow,
            self.rcv_nxt,
            self.ack_route.clone(),
            Payload::Tcp(ack_hdr),
        );
        ctx.send(ack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::AppId;

    fn rx() -> TcpReceiver {
        TcpReceiver::new(
            1,
            Arc::new(RouteSpec {
                links: vec![],
                dst: AppId(0),
            }),
            TimeNs::from_secs(1),
        )
    }

    #[test]
    fn in_order_delivery_advances_rcv_nxt() {
        let mut r = rx();
        r.absorb(TimeNs::from_millis(10), 0, 1000);
        r.absorb(TimeNs::from_millis(20), 1000, 1000);
        assert_eq!(r.rcv_nxt, 2000);
        assert_eq!(r.delivered, 2000);
    }

    #[test]
    fn out_of_order_is_buffered_then_drained() {
        let mut r = rx();
        r.absorb(TimeNs::from_millis(1), 1000, 1000); // hole at 0
        assert_eq!(r.rcv_nxt, 0);
        assert_eq!(r.delivered, 0);
        r.absorb(TimeNs::from_millis(2), 2000, 1000); // second hole segment
        r.absorb(TimeNs::from_millis(3), 0, 1000); // fills the hole
        assert_eq!(r.rcv_nxt, 3000);
        assert_eq!(r.delivered, 3000);
        assert!(r.ooo.is_empty());
    }

    #[test]
    fn duplicates_do_not_double_count() {
        let mut r = rx();
        r.absorb(TimeNs::from_millis(1), 0, 1000);
        r.absorb(TimeNs::from_millis(2), 0, 1000); // full duplicate
        r.absorb(TimeNs::from_millis(3), 500, 1000); // overlapping
        assert_eq!(r.rcv_nxt, 1500);
        assert_eq!(r.delivered, 1500);
    }

    #[test]
    fn goodput_bins_accumulate_by_time() {
        let mut r = rx();
        r.absorb(TimeNs::from_millis(500), 0, 1000);
        r.absorb(TimeNs::from_millis(1500), 1000, 2000);
        assert_eq!(r.goodput_bin(0), 1000);
        assert_eq!(r.goodput_bin(1), 2000);
        assert_eq!(r.goodput_bin(2), 0);
        // 3000 B over 2 s = 12 kb/s
        let g = r.goodput_between(TimeNs::ZERO, TimeNs::from_secs(2));
        assert!((g.bps() - 12_000.0).abs() < 1.0);
        assert_eq!(
            r.goodput_series(TimeNs::ZERO, TimeNs::from_secs(2)).len(),
            2
        );
    }
}

#[cfg(test)]
mod delayed_ack_tests {
    use crate::conn::TcpConnection;
    use crate::receiver::TcpReceiver;
    use netsim::{Chain, ChainConfig, LinkConfig, Simulator};
    use units::{Rate, TimeNs};

    fn throughput_with(delayed: bool) -> f64 {
        let mut sim = Simulator::new(41);
        let chain = Chain::build(
            &mut sim,
            &ChainConfig::symmetric(vec![LinkConfig::new(
                Rate::from_mbps(8.0),
                TimeNs::from_millis(20),
            )
            .with_queue_limit(64 * 1024)]),
        );
        let conn = TcpConnection::greedy(&mut sim, &chain, 1);
        sim.app_mut::<TcpReceiver>(conn.receiver).delayed_acks = delayed;
        sim.run_until(TimeNs::from_secs(30));
        conn.throughput(&sim, TimeNs::from_secs(5), TimeNs::from_secs(30))
            .mbps()
    }

    #[test]
    fn delayed_acks_still_saturate_the_link() {
        let immediate = throughput_with(false);
        let delayed = throughput_with(true);
        assert!(immediate > 7.0, "immediate-ACK throughput {immediate:.2}");
        // Delayed ACKs halve the ACK rate but must not cripple throughput.
        assert!(
            delayed > immediate * 0.85,
            "delayed-ACK throughput {delayed:.2} vs {immediate:.2}"
        );
    }
}
