//! RTT estimation and retransmission timeout (Jacobson/Karn, RFC 6298).

use units::TimeNs;

/// Smoothed RTT estimator with Jacobson's variance term.
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<f64>, // seconds
    rttvar: f64,
    rto: TimeNs,
    min_rto: TimeNs,
    max_rto: TimeNs,
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator {
            srtt: None,
            rttvar: 0.0,
            rto: TimeNs::from_secs(1), // RFC 6298 initial RTO
            min_rto: TimeNs::from_millis(200),
            max_rto: TimeNs::from_secs(60),
        }
    }
}

impl RttEstimator {
    /// Record an RTT sample (must come from a non-retransmitted segment or
    /// a timestamp echo — Karn's rule is the caller's responsibility).
    pub fn sample(&mut self, rtt: TimeNs) {
        let r = rtt.secs_f64();
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                const ALPHA: f64 = 1.0 / 8.0;
                const BETA: f64 = 1.0 / 4.0;
                self.rttvar = (1.0 - BETA) * self.rttvar + BETA * (srtt - r).abs();
                self.srtt = Some((1.0 - ALPHA) * srtt + ALPHA * r);
            }
        }
        let rto = TimeNs::from_secs_f64(self.srtt.unwrap() + 4.0 * self.rttvar);
        self.rto = rto.max(self.min_rto).min(self.max_rto);
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> TimeNs {
        self.rto
    }

    /// Exponential backoff after a timeout (doubles the RTO).
    pub fn backoff(&mut self) {
        self.rto = (self.rto * 2).min(self.max_rto);
    }

    /// Smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<TimeNs> {
        self.srtt.map(TimeNs::from_secs_f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::default();
        assert_eq!(e.rto(), TimeNs::from_secs(1));
        e.sample(TimeNs::from_millis(100));
        assert_eq!(e.srtt(), Some(TimeNs::from_millis(100)));
        // RTO = srtt + 4 * (srtt/2) = 300 ms
        assert_eq!(e.rto(), TimeNs::from_millis(300));
    }

    #[test]
    fn steady_samples_tighten_rto_to_min() {
        let mut e = RttEstimator::default();
        for _ in 0..100 {
            e.sample(TimeNs::from_millis(50));
        }
        // Constant RTT: variance decays, RTO floors at min_rto.
        assert_eq!(e.rto(), TimeNs::from_millis(200));
        let srtt = e.srtt().unwrap();
        assert!((srtt.millis_f64() - 50.0).abs() < 1.0);
    }

    #[test]
    fn variance_raises_rto() {
        let mut e = RttEstimator::default();
        for i in 0..100 {
            let ms = if i % 2 == 0 { 50 } else { 250 };
            e.sample(TimeNs::from_millis(ms));
        }
        assert!(e.rto() > TimeNs::from_millis(400), "rto = {}", e.rto());
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let mut e = RttEstimator::default();
        e.sample(TimeNs::from_millis(100));
        let r0 = e.rto();
        e.backoff();
        assert_eq!(e.rto(), r0 * 2);
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), TimeNs::from_secs(60));
    }
}
