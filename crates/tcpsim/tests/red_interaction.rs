//! TCP over RED vs drop-tail: RED keeps the standing queue (and hence the
//! RTT) low at a small throughput cost — the AQM behavior that motivates
//! it, exercised end to end through the simulator.

use netsim::{Chain, ChainConfig, LinkConfig, RedConfig, Simulator};
use tcpsim::TcpConnection;
use units::{Rate, TimeNs};

fn run(red: bool) -> (f64, f64, u64) {
    let mut sim = Simulator::new(31);
    let limit = 256 * 1024u64;
    let mut tight =
        LinkConfig::new(Rate::from_mbps(10.0), TimeNs::from_millis(20)).with_queue_limit(limit);
    if red {
        tight = tight.with_red(RedConfig::for_queue_limit(limit));
    }
    let chain = Chain::build(
        &mut sim,
        &ChainConfig::symmetric(vec![
            LinkConfig::new(Rate::from_mbps(100.0), TimeNs::from_millis(2)),
            tight,
            LinkConfig::new(Rate::from_mbps(100.0), TimeNs::from_millis(2)),
        ]),
    );
    let c1 = TcpConnection::greedy(&mut sim, &chain, 1);
    let c2 = TcpConnection::greedy(&mut sim, &chain, 2);
    // Sample the instantaneous queue to get the *standing* occupancy —
    // RED bounds the average, not the slow-start high-water mark.
    let mut samples = Vec::new();
    let mut t = TimeNs::from_secs(10);
    while t < TimeNs::from_secs(60) {
        sim.run_until(t);
        samples.push(sim.link(chain.forward[1]).queue_bytes() as f64);
        t += TimeNs::from_millis(100);
    }
    sim.run_until(TimeNs::from_secs(60));
    let tput = c1
        .throughput(&sim, TimeNs::from_secs(10), TimeNs::from_secs(60))
        .mbps()
        + c2.throughput(&sim, TimeNs::from_secs(10), TimeNs::from_secs(60))
            .mbps();
    let link = sim.link(chain.forward[1]);
    let early = link.red().map_or(0, |r| r.early_drops);
    let avg_queue = samples.iter().sum::<f64>() / samples.len() as f64;
    (tput, avg_queue, early)
}

#[test]
fn red_caps_the_standing_queue() {
    let (tput_dt, q_dt, early_dt) = run(false);
    let (tput_red, q_red, early_red) = run(true);
    assert_eq!(early_dt, 0);
    assert!(early_red > 0, "RED must early-drop under greedy TCP");
    // Drop-tail keeps the buffer mostly full; RED holds the standing
    // queue far lower.
    assert!(q_dt > 128.0 * 1024.0, "drop-tail standing queue {q_dt:.0}");
    assert!(
        q_red < q_dt * 0.75,
        "RED standing queue {q_red:.0} not below drop-tail {q_dt:.0}"
    );
    // Throughput cost is modest.
    assert!(
        tput_red > tput_dt * 0.75,
        "RED throughput {tput_red:.2} vs drop-tail {tput_dt:.2}"
    );
}
