//! Property tests for the TCP receiver's reassembly logic: any arrival
//! order of any segmentation of a byte stream must deliver every byte
//! exactly once, in order.

use netsim::{AppId, RouteSpec};
use proptest::prelude::*;
use std::sync::Arc;
use tcpsim::TcpReceiver;
use units::TimeNs;

fn rx() -> TcpReceiver {
    TcpReceiver::new(
        1,
        Arc::new(RouteSpec {
            links: vec![],
            dst: AppId(0),
        }),
        TimeNs::from_secs(1),
    )
}

proptest! {
    /// Segments covering [0, total) delivered in an arbitrary order (with
    /// duplicates) always reassemble to exactly `total` bytes.
    #[test]
    fn reassembly_is_exact_under_reordering(
        seg_sizes in prop::collection::vec(1u32..3000, 1..40),
        order_seed in 0u64..10_000,
        dup_every in 1usize..5,
    ) {
        // Build the segment list.
        let mut segs: Vec<(u64, u32)> = Vec::new();
        let mut off = 0u64;
        for s in &seg_sizes {
            segs.push((off, *s));
            off += *s as u64;
        }
        let total = off;
        // Duplicate some segments.
        let dups: Vec<(u64, u32)> = segs.iter().step_by(dup_every).cloned().collect();
        segs.extend(dups);
        // Deterministic shuffle.
        let mut state = order_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for i in (1..segs.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % (i as u64 + 1)) as usize;
            segs.swap(i, j);
        }
        // Feed the receiver.
        let mut r = rx();
        for (i, (seq, len)) in segs.iter().enumerate() {
            r.absorb(TimeNs::from_micros(i as u64), *seq, *len);
        }
        prop_assert_eq!(r.delivered, total);
    }

    /// Delivered bytes never decrease and never exceed the contiguous
    /// prefix that has been offered.
    #[test]
    fn delivery_is_monotone_and_bounded(
        segs in prop::collection::vec((0u64..20_000, 1u32..2000), 1..60),
    ) {
        let mut r = rx();
        let mut prev = 0;
        for (i, (seq, len)) in segs.iter().enumerate() {
            r.absorb(TimeNs::from_micros(i as u64), *seq, *len);
            prop_assert!(r.delivered >= prev);
            prev = r.delivered;
        }
    }
}
