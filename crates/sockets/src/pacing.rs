//! Absolute-deadline packet pacing.
//!
//! Periodic streams are defined by *absolute* send deadlines `t0 + i·T`;
//! sleeping for relative intervals accumulates drift and context-switch
//! error. We sleep coarsely until shortly before the deadline and spin for
//! the remainder — the standard technique for µs-accurate userspace pacing
//! (and the reason this crate runs on dedicated threads, not an async
//! runtime; see DESIGN.md §5).

use crate::clock::MonoClock;
use std::time::Duration;

/// How close to the deadline the coarse sleep is allowed to get; the rest
/// is spun. Linux nanosleep overshoot is typically ≲ 100 µs.
const SPIN_WINDOW_NS: u64 = 300_000;

/// Block until `deadline_ns` on `clock`. Returns the overshoot in
/// nanoseconds (0 if we were already past the deadline).
pub fn pace_until(clock: &MonoClock, deadline_ns: u64) -> u64 {
    loop {
        let now = clock.now_ns();
        if now >= deadline_ns {
            return now - deadline_ns;
        }
        let remaining = deadline_ns - now;
        if remaining > SPIN_WINDOW_NS {
            std::thread::sleep(Duration::from_nanos(remaining - SPIN_WINDOW_NS));
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_deadlines_with_low_overshoot() {
        let clock = MonoClock::new();
        let start = clock.now_ns();
        let mut max_overshoot = 0u64;
        for i in 1..=20u64 {
            let deadline = start + i * 2_000_000; // every 2 ms
            let overshoot = pace_until(&clock, deadline);
            max_overshoot = max_overshoot.max(overshoot);
            assert!(clock.now_ns() >= deadline);
        }
        // Allow generous slack for loaded CI machines; the point is that
        // overshoot is bounded, not that the box is an RTOS.
        assert!(
            max_overshoot < 2_000_000,
            "overshoot {max_overshoot}ns is pathological"
        );
    }

    #[test]
    fn past_deadline_returns_immediately() {
        let clock = MonoClock::new();
        std::thread::sleep(Duration::from_millis(2));
        let overshoot = pace_until(&clock, 0);
        assert!(overshoot >= 2_000_000);
    }
}
