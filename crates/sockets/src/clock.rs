//! Monotonic nanosecond clocks with a process-local epoch.

use std::time::Instant;

/// A monotonic clock reporting nanoseconds since its own creation.
///
/// Each endpoint creates its own — the epochs differ, so one-way delays
/// computed across endpoints carry an arbitrary constant offset, exactly
/// the situation SLoPS is designed for (§IV "Clock and Timing Issues").
#[derive(Clone, Debug)]
pub struct MonoClock {
    epoch: Instant,
}

impl MonoClock {
    /// A clock whose epoch is now.
    pub fn new() -> MonoClock {
        MonoClock {
            epoch: Instant::now(),
        }
    }

    /// A clock sharing this clock's epoch.
    ///
    /// A *fleet* of sender transports on one host must read one common
    /// timeline: the `monitord` scheduler staggers starts across paths on
    /// a single clock, so every transport of a fleet is built from clones
    /// of the same epoch. (Across hosts the epochs still differ — relative
    /// OWDs remain the only cross-host quantity.)
    pub fn same_epoch(&self) -> MonoClock {
        self.clone()
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Default for MonoClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_and_advancing() {
        let c = MonoClock::new();
        let a = c.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let b = c.now_ns();
        assert!(b > a);
        assert!(b - a >= 4_000_000, "slept 5ms but clock moved {}ns", b - a);
    }

    #[test]
    fn distinct_clocks_have_distinct_epochs() {
        let c1 = MonoClock::new();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let c2 = MonoClock::new();
        // c2's epoch is later, so its readings are smaller.
        assert!(c1.now_ns() > c2.now_ns());
    }

    #[test]
    fn same_epoch_clocks_agree() {
        let c1 = MonoClock::new();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let c2 = c1.same_epoch();
        let (a, b) = (c1.now_ns(), c2.now_ns());
        // Read back to back, two same-epoch clocks differ by at most the
        // read overhead — far below the 2 ms that separates fresh epochs.
        assert!(b >= a && b - a < 1_000_000, "epochs diverged: {a} vs {b}");
    }
}
