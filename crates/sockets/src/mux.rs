//! The readiness event loop: epoll plus a deadline timer queue.
//!
//! This is the substrate of the **async** socket driver: one thread, one
//! [`Poller`], hundreds of registered sockets, and a [`TimerQueue`] whose
//! entries are the pacing deadlines that `pacing::pace_until` realizes by
//! sleeping in the blocking driver. [`EventLoop`] combines the two and
//! hands the caller a stream of [`MuxEvent`]s — I/O readiness keyed by the
//! registration token, and expired timers keyed by the token they were
//! armed with.
//!
//! The poller is epoll, called directly through the C library that `std`
//! already links on Linux — the workspace's no-new-deps rule applies to an
//! async executor exactly as it does to a config framework, and a
//! measurement tool needs none of an executor's machinery: no tasks, no
//! wakers, just readiness and deadlines. On non-Linux targets the module
//! compiles but [`Poller::new`] returns `Unsupported`; the blocking
//! thread-per-path driver remains fully portable.
//!
//! Timer precision: `epoll_wait` takes milliseconds, which is far too
//! coarse for probe pacing (periods go down to 100 µs). [`EventLoop::wait`]
//! therefore sleeps in epoll only up to [`SPIN_WINDOW_NS`] short of the
//! earliest deadline and spins the remainder — the same sleep-then-spin
//! technique as `pacing::pace_until`, applied to a whole fleet's merged
//! deadline queue instead of one blocking thread per stream.

// Datapath module: a panicking branch here takes the whole fleet down,
// so `unwrap`/`expect` are denied outright (errors must travel as values).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::clock::MonoClock;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io;
use std::time::Duration;
use telemetry::{Counter, Histogram};

/// The raw file descriptor type the poller registers.
///
/// The real `std::os::fd::RawFd` on Unix; a placeholder alias elsewhere
/// so this module (and the `Poller` API surface) still compiles on
/// targets where the poller can never be constructed.
#[cfg(unix)]
pub use std::os::fd::RawFd;
#[cfg(not(unix))]
#[allow(missing_docs)]
pub type RawFd = i32;

/// How close to the earliest timer deadline the epoll sleep may get; the
/// remainder is spun (matches `pacing::SPIN_WINDOW_NS`).
pub const SPIN_WINDOW_NS: u64 = 300_000;

/// What a registered file descriptor wants to be woken for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable.
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Registered but dormant (errors/hangups are still reported).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One I/O readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct IoReady {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (or in an error/hangup state).
    pub readable: bool,
    /// The fd is writable (or in an error/hangup state).
    pub writable: bool,
}

/// One event out of the loop: readiness or an expired timer.
#[derive(Clone, Copy, Debug)]
pub enum MuxEvent {
    /// A registered fd became ready.
    Io(IoReady),
    /// A timer armed with [`EventLoop::arm_timer`] expired.
    Timer {
        /// The token the timer was armed with.
        token: u64,
    },
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)] // FFI onto the epoll syscalls of the libc std links.
mod sys {
    use std::io;
    use std::os::fd::RawFd;

    // `struct epoll_event` is packed on x86-64 (the kernel ABI predates
    // the alignment rules) and naturally aligned elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0x80000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub fn create() -> io::Result<i32> {
        // SAFETY: epoll_create1 takes no pointers; the flags value is the
        // kernel's own constant and the return is checked below.
        match unsafe { epoll_create1(EPOLL_CLOEXEC) } {
            -1 => Err(io::Error::last_os_error()),
            fd => Ok(fd),
        }
    }

    pub fn ctl(
        epfd: i32,
        op_add_mod_del: i32,
        fd: RawFd,
        events: u32,
        data: u64,
    ) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        let op = match op_add_mod_del {
            0 => EPOLL_CTL_ADD,
            1 => EPOLL_CTL_MOD,
            _ => EPOLL_CTL_DEL,
        };
        // SAFETY: `ev` is a live, initialized EpollEvent for the whole
        // call; the kernel only reads it (and only during the call).
        match unsafe { epoll_ctl(epfd, op, fd, &mut ev) } {
            0 => Ok(()),
            _ => Err(io::Error::last_os_error()),
        }
    }

    pub fn wait(epfd: i32, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the out-pointer and capacity come from the same
            // live `buf` slice; the kernel writes at most `buf.len()`
            // entries, each plain-old-data.
            let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    pub fn close_fd(fd: i32) {
        // SAFETY: no pointers; the caller owns `fd` (the Poller's epoll
        // fd, closed exactly once on drop).
        unsafe {
            close(fd);
        }
    }
}

/// A readiness poller over epoll. Register fds with a `u64` token; `wait`
/// reports which tokens became ready. Error/hangup conditions are
/// reported as both readable and writable, so handlers attempt the I/O
/// and surface the real `io::Error`.
#[derive(Debug)]
pub struct Poller {
    #[cfg(target_os = "linux")]
    epfd: i32,
}

#[cfg(target_os = "linux")]
impl Poller {
    /// A fresh epoll instance.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::create()?,
        })
    }

    fn events_of(interest: Interest) -> u32 {
        let mut ev = 0;
        if interest.readable {
            ev |= sys::EPOLLIN;
        }
        if interest.writable {
            ev |= sys::EPOLLOUT;
        }
        ev
    }

    /// Register `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::ctl(self.epfd, 0, fd, Self::events_of(interest), token)
    }

    /// Change a registered fd's interest (and/or token).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::ctl(self.epfd, 1, fd, Self::events_of(interest), token)
    }

    /// Remove a registered fd.
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        sys::ctl(self.epfd, 2, fd, 0, 0)
    }

    /// Wait up to `timeout` (`None` = forever) and append readiness
    /// notifications to `out`. Returns how many were appended.
    pub fn wait(&self, out: &mut Vec<IoReady>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => i32::try_from(d.as_millis()).unwrap_or(i32::MAX),
        };
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 64];
        let n = sys::wait(self.epfd, &mut buf, timeout_ms)?;
        // `wait` contracts n <= buf.len(); `take` keeps the bound out of
        // the panic path.
        for ev in buf.iter().take(n) {
            let bits = ev.events;
            let err = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
            out.push(IoReady {
                token: ev.data,
                readable: bits & sys::EPOLLIN != 0 || err,
                writable: bits & sys::EPOLLOUT != 0 || err,
            });
        }
        Ok(n)
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

#[cfg(not(target_os = "linux"))]
impl Poller {
    /// Unsupported on this platform: the async driver is Linux-only; the
    /// blocking thread-per-path driver remains fully portable.
    pub fn new() -> io::Result<Poller> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the epoll event loop requires Linux; use the blocking (thread) driver",
        ))
    }

    /// See [`Poller::new`]: unreachable off Linux (no constructor
    /// succeeds), but answered with the same `Unsupported` error rather
    /// than a panic — the datapath is panic-free.
    pub fn add(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
        Err(Poller::unsupported())
    }

    /// See [`Poller::add`].
    pub fn modify(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
        Err(Poller::unsupported())
    }

    /// See [`Poller::add`].
    pub fn remove(&self, _fd: RawFd) -> io::Result<()> {
        Err(Poller::unsupported())
    }

    /// See [`Poller::add`].
    pub fn wait(&self, _out: &mut Vec<IoReady>, _timeout: Option<Duration>) -> io::Result<usize> {
        Err(Poller::unsupported())
    }

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "the epoll event loop requires Linux; use the blocking (thread) driver",
        )
    }
}

/// A queue of one-shot deadline timers on a [`MonoClock`] timeline.
///
/// Entries are `(deadline, token)`; ties expire in arming order. Entries
/// may optionally carry a nonzero *generation* ([`TimerQueue::arm_with_generation`]):
/// [`TimerQueue::cancel_generation`] then cancels every entry of that
/// generation armed so far, without touching entries armed afterwards —
/// so a generation number can be reused across a session's lifetime.
/// Cancelled entries are reaped lazily as pops walk past them; the
/// bookkeeping (per-generation live counts and a cancel horizon) is
/// dropped as soon as a generation has no entries left in the heap, so
/// memory stays bounded by the number of pending entries.
///
/// Plain [`TimerQueue::arm`] entries have generation 0 and cannot be
/// cancelled — callers that stop caring simply ignore the token when it
/// fires (lazy cancellation), which keeps the pacing hot path free of
/// hash-map traffic.
#[derive(Debug, Default)]
pub struct TimerQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u64, u64)>>,
    seq: u64,
    /// generation → number of its entries still in the heap.
    live: HashMap<u64, u64>,
    /// generation → cancel horizon: entries with `seq <= horizon` are
    /// cancelled; entries armed later (larger seq) are not.
    cancelled: HashMap<u64, u64>,
}

impl TimerQueue {
    /// An empty queue.
    pub fn new() -> TimerQueue {
        TimerQueue::default()
    }

    /// Arm a one-shot timer for `deadline_ns` (clock nanoseconds) carrying
    /// `token`. The entry has generation 0: it cannot be cancelled.
    pub fn arm(&mut self, deadline_ns: u64, token: u64) {
        self.arm_with_generation(deadline_ns, token, 0);
    }

    /// Arm a one-shot timer carrying `token` under `generation` (nonzero
    /// to make it cancellable via [`TimerQueue::cancel_generation`];
    /// generation 0 is the uncancellable default of [`TimerQueue::arm`]).
    pub fn arm_with_generation(&mut self, deadline_ns: u64, token: u64, generation: u64) {
        self.seq += 1;
        if generation != 0 {
            *self.live.entry(generation).or_insert(0) += 1;
        }
        self.heap
            .push(Reverse((deadline_ns, self.seq, token, generation)));
    }

    /// Cancel every entry of `generation` armed so far. Entries armed
    /// *after* this call under the same generation are unaffected. A
    /// no-op for generation 0 or a generation with nothing pending.
    pub fn cancel_generation(&mut self, generation: u64) {
        if generation != 0 && self.live.contains_key(&generation) {
            self.cancelled.insert(generation, self.seq);
        }
    }

    /// The earliest pending deadline, if any. Conservative: a
    /// not-yet-reaped cancelled entry may be reported (waking early is
    /// harmless; the pop then skips it).
    pub fn next_deadline(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((d, _, _, _))| *d)
    }

    /// Pop the earliest timer if it has expired by `now_ns`.
    pub fn pop_expired(&mut self, now_ns: u64) -> Option<u64> {
        self.pop_expired_at(now_ns).map(|(token, _)| token)
    }

    /// Like [`TimerQueue::pop_expired`], but also reports the deadline the
    /// timer was armed for — the event loop uses `now − deadline` as its
    /// timer-lag sample. Cancelled entries are reaped silently on the way.
    pub fn pop_expired_at(&mut self, now_ns: u64) -> Option<(u64, u64)> {
        // Entries are Copy tuples, so peek-then-pop folds into one
        // panic-free `while let` over the heap head.
        while let Some(&Reverse((deadline, seq, token, generation))) = self.heap.peek() {
            if deadline > now_ns {
                return None;
            }
            let _ = self.heap.pop();
            if generation != 0 && !self.reap(seq, generation) {
                continue; // cancelled: skip silently
            }
            return Some((token, deadline));
        }
        None
    }

    /// Bookkeeping for a popped entry of a nonzero generation. Returns
    /// false when the entry was cancelled.
    fn reap(&mut self, seq: u64, generation: u64) -> bool {
        let alive = self
            .cancelled
            .get(&generation)
            .is_none_or(|&horizon| seq > horizon);
        if let Some(count) = self.live.get_mut(&generation) {
            *count -= 1;
            if *count == 0 {
                self.live.remove(&generation);
                self.cancelled.remove(&generation);
            }
        }
        alive
    }

    /// Number of entries still in the heap (cancelled entries count until
    /// a pop walks past them).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries remain in the heap.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The event loop: a [`Poller`] and a [`TimerQueue`] on one [`MonoClock`].
///
/// One instance multiplexes a whole fleet: every session's control TCP and
/// probe UDP sockets are registered here, every pacing deadline and
/// scheduler start instant is a timer entry, and the host drains
/// [`EventLoop::wait`] in a loop, routing each [`MuxEvent`] by token.
#[derive(Debug)]
pub struct EventLoop {
    poller: Poller,
    timers: TimerQueue,
    clock: MonoClock,
    /// Calls of [`EventLoop::wait`] (`None`: not recorded).
    wakeups: Option<Counter>,
    /// Nanoseconds between a timer's deadline and the wakeup that
    /// delivered it (`None`: not recorded).
    timer_lag: Option<Histogram>,
}

impl EventLoop {
    /// A fresh loop reading time from `clock` (the fleet's shared epoch,
    /// so timer deadlines and `TimeNs` instants agree).
    pub fn new(clock: MonoClock) -> io::Result<EventLoop> {
        Ok(EventLoop {
            poller: Poller::new()?,
            timers: TimerQueue::new(),
            clock,
            wakeups: None,
            timer_lag: None,
        })
    }

    /// Record loop wakeups and timer lag into the given metric handles
    /// (register the same handles in a `telemetry::Registry` to expose
    /// them). Timer lag is the gap between a timer's armed deadline and
    /// the `wait` wakeup that delivered it — the fleet-level analogue of
    /// the blocking pacer's overshoot.
    pub fn set_metrics(&mut self, wakeups: Counter, timer_lag: Histogram) {
        self.wakeups = Some(wakeups);
        self.timer_lag = Some(timer_lag);
    }

    /// Pop every timer expired by `now`, recording lag; true if any fired.
    fn drain_expired(&mut self, now: u64, out: &mut Vec<MuxEvent>) -> bool {
        let mut any = false;
        while let Some((token, deadline)) = self.timers.pop_expired_at(now) {
            if let Some(h) = &self.timer_lag {
                h.observe(now.saturating_sub(deadline));
            }
            out.push(MuxEvent::Timer { token });
            any = true;
        }
        any
    }

    /// The loop's clock (shared epoch).
    pub fn clock(&self) -> &MonoClock {
        &self.clock
    }

    /// Register `fd` under `token`.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.poller.add(fd, token, interest)
    }

    /// Change a registered fd's interest.
    pub fn set_interest(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.poller.modify(fd, token, interest)
    }

    /// Remove a registered fd.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.poller.remove(fd)
    }

    /// Arm a one-shot timer at `deadline_ns` on the loop's clock. The
    /// entry is uncancellable (generation 0): ignore the token when it no
    /// longer matters.
    pub fn arm_timer(&mut self, deadline_ns: u64, token: u64) {
        self.timers.arm(deadline_ns, token);
    }

    /// Arm a one-shot timer under a nonzero `generation`, cancellable via
    /// [`EventLoop::cancel_timer_generation`].
    pub fn arm_timer_with_generation(&mut self, deadline_ns: u64, token: u64, generation: u64) {
        self.timers
            .arm_with_generation(deadline_ns, token, generation);
    }

    /// Cancel every timer armed so far under `generation` (see
    /// [`TimerQueue::cancel_generation`]).
    pub fn cancel_timer_generation(&mut self, generation: u64) {
        self.timers.cancel_generation(generation);
    }

    /// Pending timer count (diagnostics).
    pub fn timers_pending(&self) -> usize {
        self.timers.len()
    }

    /// Wait for the next batch of events and append them to `out`:
    /// expired timers (earliest first) and I/O readiness. Blocks at most
    /// `max_wait` even with no timers pending, so hosts can re-check
    /// shutdown flags. May return with `out` empty (timeout); never
    /// returns I/O the caller didn't register or timers it didn't arm.
    ///
    /// Deadlines within [`SPIN_WINDOW_NS`] are spun for rather than slept
    /// for — epoll's millisecond timeout is too coarse for probe pacing.
    pub fn wait(&mut self, out: &mut Vec<MuxEvent>, max_wait: Duration) -> io::Result<()> {
        if let Some(c) = &self.wakeups {
            c.inc();
        }
        let now = self.clock.now_ns();
        // Already-expired timers: deliver without touching epoll (but
        // still collect instantly-ready I/O so a busy timer treadmill
        // cannot starve socket readiness).
        if self.drain_expired(now, out) {
            let mut io_ready = Vec::new();
            self.poller.wait(&mut io_ready, Some(Duration::ZERO))?;
            out.extend(io_ready.into_iter().map(MuxEvent::Io));
            return Ok(());
        }

        // Sleep in epoll until just short of the earliest deadline.
        let budget_ns = match self.timers.next_deadline() {
            Some(d) => (d - now).saturating_sub(SPIN_WINDOW_NS),
            None => u64::MAX,
        };
        let timeout = Duration::from_nanos(budget_ns).min(max_wait);
        let mut io_ready = Vec::new();
        // Millisecond floor: never sleep past `deadline - spin window`.
        let timeout_ms = Duration::from_millis(timeout.as_millis() as u64);
        self.poller.wait(&mut io_ready, Some(timeout_ms))?;
        if !io_ready.is_empty() {
            out.extend(io_ready.into_iter().map(MuxEvent::Io));
            // Deliver timers that expired while we slept, too.
            let now = self.clock.now_ns();
            self.drain_expired(now, out);
            return Ok(());
        }

        // No I/O: if a deadline is imminent, spin it down (µs-accurate),
        // then deliver whatever expired.
        if let Some(d) = self.timers.next_deadline() {
            if d.saturating_sub(self.clock.now_ns()) <= SPIN_WINDOW_NS {
                while self.clock.now_ns() < d {
                    std::hint::spin_loop();
                }
            }
        }
        let now = self.clock.now_ns();
        self.drain_expired(now, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn timer_queue_orders_by_deadline_then_arming_order() {
        let mut q = TimerQueue::new();
        q.arm(300, 3);
        q.arm(100, 1);
        q.arm(100, 2);
        q.arm(200, 9);
        assert_eq!(q.next_deadline(), Some(100));
        assert_eq!(q.pop_expired(99), None, "not yet expired");
        assert_eq!(q.pop_expired(100), Some(1), "ties fire in arming order");
        assert_eq!(q.pop_expired(100), Some(2));
        assert_eq!(q.pop_expired(100), None);
        assert_eq!(q.pop_expired(1_000), Some(9));
        assert_eq!(q.pop_expired(1_000), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_generation_skips_pending_entries_but_not_later_arms() {
        let mut q = TimerQueue::new();
        q.arm_with_generation(100, 1, 7);
        q.arm_with_generation(200, 2, 7);
        q.arm_with_generation(150, 3, 8);
        q.cancel_generation(7);
        // Generation reuse: armed after the cancel, so it survives.
        q.arm_with_generation(300, 4, 7);
        assert_eq!(q.pop_expired(1_000), Some(3), "gen 8 untouched");
        assert_eq!(q.pop_expired(1_000), Some(4), "post-cancel arm fires");
        assert_eq!(q.pop_expired(1_000), None);
        assert!(q.is_empty(), "cancelled entries reaped by the pops");
    }

    #[test]
    fn cancel_generation_zero_is_a_no_op() {
        let mut q = TimerQueue::new();
        q.arm(50, 1);
        q.cancel_generation(0);
        assert_eq!(q.pop_expired(60), Some(1));
    }

    #[cfg(target_os = "linux")]
    mod linux {
        use super::super::*;
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;

        #[test]
        fn poller_reports_readability_by_token() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut tx = TcpStream::connect(addr).unwrap();
            let (rx, _) = listener.accept().unwrap();
            rx.set_nonblocking(true).unwrap();

            let poller = Poller::new().unwrap();
            poller.add(rx.as_raw_fd(), 77, Interest::READ).unwrap();

            let mut out = Vec::new();
            poller
                .wait(&mut out, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(out.is_empty(), "nothing written yet");

            tx.write_all(b"ping").unwrap();
            let mut out = Vec::new();
            poller.wait(&mut out, Some(Duration::from_secs(2))).unwrap();
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].token, 77);
            assert!(out[0].readable);
        }

        #[test]
        fn poller_interest_can_be_modified_and_removed() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut tx = TcpStream::connect(addr).unwrap();
            let (rx, _) = listener.accept().unwrap();
            rx.set_nonblocking(true).unwrap();

            let poller = Poller::new().unwrap();
            poller.add(rx.as_raw_fd(), 1, Interest::NONE).unwrap();
            tx.write_all(b"x").unwrap();
            let mut out = Vec::new();
            poller
                .wait(&mut out, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(out.is_empty(), "dormant interest must not wake");

            poller.modify(rx.as_raw_fd(), 2, Interest::READ).unwrap();
            let mut out = Vec::new();
            poller.wait(&mut out, Some(Duration::from_secs(2))).unwrap();
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].token, 2, "token travels with the modify");

            poller.remove(rx.as_raw_fd()).unwrap();
            let mut out = Vec::new();
            poller
                .wait(&mut out, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(out.is_empty(), "removed fd must not wake");
        }

        #[test]
        fn event_loop_fires_timers_near_their_deadlines() {
            let clock = MonoClock::new();
            let mut lp = EventLoop::new(clock.clone()).unwrap();
            let t0 = clock.now_ns();
            lp.arm_timer(t0 + 2_000_000, 1); // 2 ms
            lp.arm_timer(t0 + 4_000_000, 2); // 4 ms
            let mut fired = Vec::new();
            while fired.len() < 2 {
                let mut out = Vec::new();
                lp.wait(&mut out, Duration::from_millis(50)).unwrap();
                for ev in out {
                    if let MuxEvent::Timer { token } = ev {
                        fired.push((token, clock.now_ns()));
                    }
                }
            }
            assert_eq!(fired[0].0, 1);
            assert_eq!(fired[1].0, 2);
            for (token, at) in &fired {
                let deadline = t0 + 2_000_000 * *token;
                assert!(*at >= deadline, "timer {token} fired early");
                assert!(
                    *at - deadline < 20_000_000,
                    "timer {token} fired {} ns late",
                    *at - deadline
                );
            }
        }

        #[test]
        fn event_loop_interleaves_timers_and_io() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut tx = TcpStream::connect(addr).unwrap();
            let (rx, _) = listener.accept().unwrap();
            rx.set_nonblocking(true).unwrap();

            let clock = MonoClock::new();
            let mut lp = EventLoop::new(clock.clone()).unwrap();
            lp.register(rx.as_raw_fd(), 10, Interest::READ).unwrap();
            lp.arm_timer(clock.now_ns() + 3_000_000, 20);
            tx.write_all(b"now").unwrap();

            let (mut saw_io, mut saw_timer) = (false, false);
            let deadline = std::time::Instant::now() + Duration::from_secs(2);
            while (!saw_io || !saw_timer) && std::time::Instant::now() < deadline {
                let mut out = Vec::new();
                lp.wait(&mut out, Duration::from_millis(50)).unwrap();
                for ev in out {
                    match ev {
                        MuxEvent::Io(r) => {
                            assert_eq!(r.token, 10);
                            saw_io = true;
                        }
                        MuxEvent::Timer { token } => {
                            assert_eq!(token, 20);
                            saw_timer = true;
                        }
                    }
                }
            }
            assert!(saw_io && saw_timer);
        }
    }
}
