//! The sender side (`pathload_snd`): [`SocketTransport`], a real-network
//! [`slops::ProbeTransport`].

use crate::clock::MonoClock;
use crate::pacing::pace_until;
use crate::proto::{CtrlMsg, ProbeKind, ProbePacket, PROBE_HEADER_LEN};
use crate::receiver::connect_ctrl;
use slops::{
    PacketSample, ProbeTransport, StreamRecord, StreamRequest, TrainRecord, TransportError,
};
use std::io;
use std::net::{SocketAddr, TcpStream, UdpSocket};
use telemetry::Histogram;
use units::{Rate, TimeNs};

/// SLoPS probing over real UDP/TCP sockets.
#[derive(Debug)]
pub struct SocketTransport {
    ctrl: TcpStream,
    udp: UdpSocket,
    clock: MonoClock,
    /// Session token minted by the receiver at `Hello`; stamped into
    /// every probe packet so the receiver's shared UDP socket can route
    /// it to this session's collector.
    session: u64,
    next_id: u32,
    /// Cap on the stream rates this host can pace reliably. Defaults to
    /// 80 Mb/s (MTU-sized packets every ~150 µs), which a commodity Linux
    /// box sustains with the sleep-spin pacer; raise it on fast dedicated
    /// hardware.
    pub rate_cap: Rate,
    /// Per-packet pacing error sink: each stream packet's overshoot past
    /// its absolute deadline, in nanoseconds. `None` = not recorded.
    pacing_hist: Option<Histogram>,
}

impl SocketTransport {
    /// Connect to a receiver's control address.
    pub fn connect(addr: SocketAddr) -> io::Result<SocketTransport> {
        Self::connect_with_clock(addr, MonoClock::new())
    }

    /// Connect with an explicit sender clock.
    ///
    /// `elapsed()` reports this clock, so transports built from
    /// [`MonoClock::same_epoch`] clones of one clock share a timeline —
    /// what a fleet scheduler staggering starts across paths requires.
    pub fn connect_with_clock(addr: SocketAddr, clock: MonoClock) -> io::Result<SocketTransport> {
        let (ctrl, udp_port, session) = connect_ctrl(addr)?;
        let mut peer = addr;
        peer.set_port(udp_port);
        let local: SocketAddr = match addr {
            SocketAddr::V4(_) => "0.0.0.0:0".parse().unwrap(),
            SocketAddr::V6(_) => "[::]:0".parse().unwrap(),
        };
        let udp = UdpSocket::bind(local)?;
        udp.connect(peer)?;
        Ok(SocketTransport {
            ctrl,
            udp,
            clock,
            session,
            next_id: 0,
            rate_cap: Rate::from_mbps(80.0),
            pacing_hist: None,
        })
    }

    /// The session token the receiver minted for this connection.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Record each stream packet's pacing error (nanoseconds late past
    /// its absolute send deadline) into `hist`. The histogram is shared:
    /// register the same handle in a `telemetry::Registry` to expose it.
    pub fn set_pacing_histogram(&mut self, hist: Histogram) {
        self.pacing_hist = Some(hist);
    }

    /// Switch both sockets (control TCP and probe UDP) between blocking
    /// and non-blocking mode.
    ///
    /// The blocking [`ProbeTransport`] methods of this type assume
    /// blocking mode; in non-blocking mode the transport is driven by an
    /// [`EventedSession`](crate::evented::EventedSession) registered with
    /// a [`mux::EventLoop`](crate::mux::EventLoop) instead.
    pub fn set_nonblocking(&mut self, nonblocking: bool) -> io::Result<()> {
        self.ctrl.set_nonblocking(nonblocking)?;
        self.udp.set_nonblocking(nonblocking)
    }

    /// The control TCP stream (for event-loop registration and
    /// non-blocking frame I/O by the evented driver).
    pub(crate) fn ctrl(&self) -> &TcpStream {
        &self.ctrl
    }

    /// The probe UDP socket (for event-loop registration and non-blocking
    /// sends by the evented driver).
    pub(crate) fn udp(&self) -> &UdpSocket {
        &self.udp
    }

    /// The sender clock.
    pub(crate) fn clock(&self) -> &MonoClock {
        &self.clock
    }

    /// Allocate the next stream/train id.
    pub(crate) fn next_stream_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn io_err(e: io::Error) -> TransportError {
        TransportError::Io(ctrl_error_text(&e))
    }

    pub(crate) fn expect_ready(&mut self, id: u32) -> Result<(), TransportError> {
        match CtrlMsg::read_from(&mut self.ctrl).map_err(Self::io_err)? {
            CtrlMsg::Ready { id: got } if got == id => Ok(()),
            other => Err(TransportError::Io(format!(
                "expected Ready({id}), got {other:?}"
            ))),
        }
    }
}

/// Assemble a [`StreamRecord`] from the receiver's per-packet report and
/// the **actual** send instants recorded while pacing (indexed by packet
/// index). Shared by the blocking transport and the evented driver so
/// both build byte-identical records from the same wire data.
pub(crate) fn stream_record(
    sent: u32,
    actual_send: &[u64],
    samples: &[crate::proto::SampleWire],
) -> StreamRecord {
    let first_send = actual_send.first().copied().unwrap_or(0);
    let records = samples
        .iter()
        .map(|s| PacketSample {
            idx: s.idx,
            send_offset: TimeNs::from_nanos(
                actual_send
                    .get(s.idx as usize)
                    .map_or(0, |t| t.saturating_sub(first_send)),
            ),
            owd_ns: s.recv_ns as i64 - s.send_ns as i64,
        })
        .collect();
    StreamRecord {
        sent,
        samples: records,
    }
}

/// Human diagnosis of a dead control channel. An abrupt EOF or reset on
/// the control TCP stream almost always means the receiver process went
/// away (crashed, or restarted — a restarted receiver mints session
/// tokens from a fresh random base, so the old connection *and* the old
/// token are both unusable). The session must fail cleanly here, at the
/// control channel, rather than limp on reporting silently-empty streams;
/// reconnecting performs a fresh `Hello` and obtains a live token.
pub(crate) fn ctrl_error_text(e: &io::Error) -> String {
    match e.kind() {
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => format!(
            "control channel closed by receiver (receiver gone or restarted; \
             reconnect for a fresh Hello and session token): {e}"
        ),
        _ => e.to_string(),
    }
}

impl ProbeTransport for SocketTransport {
    fn send_stream(&mut self, req: &StreamRequest) -> Result<StreamRecord, TransportError> {
        let id = self.next_stream_id();
        let size = (req.packet_size as usize).max(PROBE_HEADER_LEN);
        CtrlMsg::StreamAnnounce {
            id,
            count: req.count,
            period_ns: req.period.as_nanos(),
            size: size as u32,
        }
        .write_to(&mut self.ctrl)
        .map_err(Self::io_err)?;
        self.expect_ready(id)?;

        // Pace the stream on absolute deadlines, recording actual send
        // times for the receiver-side spacing validation.
        let mut buf = vec![0u8; size];
        let t0 = self.clock.now_ns() + 1_000_000; // 1 ms lead-in
        let mut actual_send = Vec::with_capacity(req.count as usize);
        for i in 0..req.count {
            let deadline = t0 + i as u64 * req.period.as_nanos();
            let overshoot = pace_until(&self.clock, deadline);
            if let Some(h) = &self.pacing_hist {
                h.observe(overshoot);
            }
            let send_ns = self.clock.now_ns();
            ProbePacket {
                session: self.session,
                kind: ProbeKind::Stream,
                id,
                idx: i,
                send_ns,
            }
            .encode(&mut buf);
            self.udp.send(&buf).map_err(Self::io_err)?;
            actual_send.push(send_ns);
        }

        match CtrlMsg::read_from(&mut self.ctrl).map_err(Self::io_err)? {
            CtrlMsg::StreamReport { id: got, samples } if got == id => {
                Ok(stream_record(req.count, &actual_send, &samples))
            }
            other => Err(TransportError::Io(format!(
                "expected StreamReport({id}), got {other:?}"
            ))),
        }
    }

    fn send_train(&mut self, len: u32, size: u32) -> Result<TrainRecord, TransportError> {
        let id = self.next_stream_id();
        let size = (size as usize).max(PROBE_HEADER_LEN);
        CtrlMsg::TrainAnnounce {
            id,
            count: len,
            size: size as u32,
        }
        .write_to(&mut self.ctrl)
        .map_err(Self::io_err)?;
        self.expect_ready(id)?;
        let mut buf = vec![0u8; size];
        for i in 0..len {
            ProbePacket {
                session: self.session,
                kind: ProbeKind::Train,
                id,
                idx: i,
                send_ns: self.clock.now_ns(),
            }
            .encode(&mut buf);
            self.udp.send(&buf).map_err(Self::io_err)?;
        }
        match CtrlMsg::read_from(&mut self.ctrl).map_err(Self::io_err)? {
            CtrlMsg::TrainReport {
                id: got,
                received,
                first_ns,
                last_ns,
            } if got == id => Ok(TrainRecord {
                sent: len,
                received,
                size: size as u32,
                first_recv: TimeNs::from_nanos(first_ns),
                last_recv: TimeNs::from_nanos(last_ns),
            }),
            other => Err(TransportError::Io(format!(
                "expected TrainReport({id}), got {other:?}"
            ))),
        }
    }

    fn rtt(&mut self) -> TimeNs {
        // Median of three control-channel echoes.
        let mut rtts = Vec::with_capacity(3);
        for token in 0..3u64 {
            let t0 = self.clock.now_ns();
            let echo = CtrlMsg::Echo { token };
            if echo.write_to(&mut self.ctrl).is_err() {
                break;
            }
            match CtrlMsg::read_from(&mut self.ctrl) {
                Ok(CtrlMsg::Echo { token: got }) if got == token => {
                    rtts.push(self.clock.now_ns() - t0);
                }
                _ => break,
            }
        }
        rtts.sort_unstable();
        match rtts.len() {
            0 => TimeNs::from_millis(100), // conservative fallback
            n => TimeNs::from_nanos(rtts[n / 2]),
        }
    }

    fn idle(&mut self, dur: TimeNs) {
        std::thread::sleep(dur.to_std());
    }

    fn max_rate(&self) -> Option<Rate> {
        Some(self.rate_cap)
    }

    fn elapsed(&self) -> TimeNs {
        TimeNs::from_nanos(self.clock.now_ns())
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        let _ = CtrlMsg::Bye.write_to(&mut self.ctrl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::Receiver;
    use slops::stream_params;
    use slops::SlopsConfig;
    use std::thread;

    fn loopback_pair() -> (SocketTransport, thread::JoinHandle<()>) {
        let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = rx.ctrl_addr();
        let handle = thread::spawn(move || {
            rx.serve_one().unwrap();
        });
        let tx = SocketTransport::connect(addr).unwrap();
        (tx, handle)
    }

    fn loopback_cfg() -> SlopsConfig {
        // Gentle pacing for shared CI machines: 1 ms period floor, short
        // streams.
        let mut cfg = SlopsConfig::default();
        cfg.min_period = TimeNs::from_millis(1);
        cfg.stream_len = 50;
        cfg
    }

    #[test]
    fn stream_round_trip_over_loopback() {
        let (mut tx, handle) = loopback_pair();
        let cfg = loopback_cfg();
        let req = stream_params(Rate::from_mbps(1.6), 0, &cfg); // 200B @ 1ms
        let rec = tx.send_stream(&req).unwrap();
        assert!(
            rec.samples.len() as u32 >= req.count - 2,
            "lost too much on loopback: {}/{}",
            rec.samples.len(),
            req.count
        );
        // Relative OWDs on loopback are small but never absurd (> 1 s).
        for s in &rec.samples {
            assert!(s.owd_ns.abs() < 1_000_000_000);
        }
        drop(tx);
        handle.join().unwrap();
    }

    #[test]
    fn train_round_trip_over_loopback() {
        let (mut tx, handle) = loopback_pair();
        let rec = tx.send_train(20, 1500).unwrap();
        assert!(rec.received >= 18, "train lost packets: {}", rec.received);
        let rate = rec.dispersion_rate().unwrap();
        assert!(rate.mbps() > 10.0, "loopback dispersion {rate} is absurd");
        drop(tx);
        handle.join().unwrap();
    }

    #[test]
    fn rtt_over_loopback_is_sub_millisecond() {
        let (mut tx, handle) = loopback_pair();
        let rtt = tx.rtt();
        assert!(rtt < TimeNs::from_millis(50), "loopback rtt {rtt}");
        drop(tx);
        handle.join().unwrap();
    }
}
