//! Wire formats: UDP probe packets and framed TCP control messages.
//!
//! Everything is hand-encoded little-endian — the formats are tiny and a
//! serialization framework would be the heaviest dependency in the crate.

use std::io::{self, Read, Write};

/// Magic tag identifying our UDP probe packets.
pub const PROBE_MAGIC: u32 = 0x534C_6F50; // "SLoP"

/// Wire protocol version, carried in the `Hello` frame and in every probe
/// packet. Version 2 added session multiplexing: the receiver mints a
/// session token at `Hello` and every probe packet carries it, so one
/// receiver (one control port, one UDP socket) serves many concurrent
/// senders. Endpoints reject a peer speaking a different version — the
/// formats are not compatible across versions.
pub const PROTO_VERSION: u8 = 2;

/// Fixed UDP probe header length (the rest of the packet is padding).
pub const PROBE_HEADER_LEN: usize = 32;

/// Kind byte of a probe packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeKind {
    /// Packet of a periodic stream.
    Stream,
    /// Packet of a back-to-back train.
    Train,
}

/// A decoded UDP probe packet header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbePacket {
    /// The sender's session token, minted by the receiver at `Hello`.
    /// The receiver demuxes its one shared UDP socket on this field.
    pub session: u64,
    /// Stream or train kind.
    pub kind: ProbeKind,
    /// Stream/train id.
    pub id: u32,
    /// Packet index within the stream/train.
    pub idx: u32,
    /// Sender clock at transmission (sender epoch, nanoseconds).
    pub send_ns: u64,
}

impl ProbePacket {
    /// Encode into `buf` (must be at least [`PROBE_HEADER_LEN`] long; the
    /// bytes beyond the header are left untouched as padding).
    pub fn encode(&self, buf: &mut [u8]) {
        assert!(buf.len() >= PROBE_HEADER_LEN);
        buf[0..4].copy_from_slice(&PROBE_MAGIC.to_le_bytes());
        buf[4] = match self.kind {
            ProbeKind::Stream => 0,
            ProbeKind::Train => 1,
        };
        buf[5] = PROTO_VERSION;
        buf[6..8].fill(0);
        buf[8..12].copy_from_slice(&self.id.to_le_bytes());
        buf[12..16].copy_from_slice(&self.idx.to_le_bytes());
        buf[16..24].copy_from_slice(&self.send_ns.to_le_bytes());
        buf[24..32].copy_from_slice(&self.session.to_le_bytes());
    }

    /// Decode from a received datagram; `None` if it is not ours (wrong
    /// magic, wrong version, unknown kind, or too short).
    pub fn decode(buf: &[u8]) -> Option<ProbePacket> {
        if buf.len() < PROBE_HEADER_LEN {
            return None;
        }
        if u32::from_le_bytes(buf[0..4].try_into().unwrap()) != PROBE_MAGIC {
            return None;
        }
        let kind = match buf[4] {
            0 => ProbeKind::Stream,
            1 => ProbeKind::Train,
            _ => return None,
        };
        if buf[5] != PROTO_VERSION {
            return None;
        }
        Some(ProbePacket {
            session: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
            kind,
            id: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
            idx: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
            send_ns: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
        })
    }
}

/// One receiver-side observation of a stream packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleWire {
    /// Packet index.
    pub idx: u32,
    /// Sender timestamp from the packet (sender epoch).
    pub send_ns: u64,
    /// Receiver arrival timestamp (receiver epoch).
    pub recv_ns: u64,
}

/// Control-channel messages (TCP, length-prefixed frames).
#[derive(Clone, Debug, PartialEq)]
pub enum CtrlMsg {
    /// Receiver → sender on connect: protocol version, the UDP port to
    /// probe, and the session token minted for this control connection.
    Hello {
        /// The receiver's [`PROTO_VERSION`]; the sender disconnects on a
        /// mismatch instead of mis-parsing probe reports.
        version: u8,
        /// Receiver's (shared) UDP port.
        udp_port: u16,
        /// Session token the sender must stamp into every probe packet;
        /// the receiver routes shared-socket datagrams by this token.
        session: u64,
    },
    /// Sender → receiver: a stream is about to start.
    StreamAnnounce {
        /// Stream id.
        id: u32,
        /// Number of packets.
        count: u32,
        /// Packet period in nanoseconds.
        period_ns: u64,
        /// Packet size in bytes.
        size: u32,
    },
    /// Receiver → sender: armed and ready for the announced stream.
    Ready {
        /// Echoed stream/train id.
        id: u32,
    },
    /// Receiver → sender: per-packet records of a finished stream.
    StreamReport {
        /// Stream id.
        id: u32,
        /// Observations, in arrival order.
        samples: Vec<SampleWire>,
    },
    /// Sender → receiver: a back-to-back train is about to start.
    TrainAnnounce {
        /// Train id.
        id: u32,
        /// Number of packets.
        count: u32,
        /// Packet size in bytes.
        size: u32,
    },
    /// Receiver → sender: train observations.
    TrainReport {
        /// Train id.
        id: u32,
        /// Packets received.
        received: u32,
        /// First arrival (receiver epoch, ns).
        first_ns: u64,
        /// Last arrival (receiver epoch, ns).
        last_ns: u64,
    },
    /// RTT probe (either direction bounces it back).
    Echo {
        /// Opaque payload echoed verbatim.
        token: u64,
    },
    /// Session end.
    Bye,
    /// Receiver → sender **instead of** `Hello`: the connection is
    /// refused. Versioned like `Hello` so a sender can always tell a
    /// policy refusal (e.g. [`DENY_AT_CAPACITY`]) apart from a protocol
    /// mismatch, and knows which protocol the refusing receiver speaks.
    Deny {
        /// The receiver's [`PROTO_VERSION`].
        version: u8,
        /// Why the session was refused (a `DENY_*` constant).
        code: u8,
    },
}

/// [`CtrlMsg::Deny`] code: the receiver is at its concurrent-session
/// capacity; retry later or point the path at another receiver.
pub const DENY_AT_CAPACITY: u8 = 1;

impl CtrlMsg {
    fn tag(&self) -> u8 {
        match self {
            CtrlMsg::Hello { .. } => 1,
            CtrlMsg::StreamAnnounce { .. } => 2,
            CtrlMsg::Ready { .. } => 3,
            CtrlMsg::StreamReport { .. } => 4,
            CtrlMsg::TrainAnnounce { .. } => 5,
            CtrlMsg::TrainReport { .. } => 6,
            CtrlMsg::Echo { .. } => 7,
            CtrlMsg::Bye => 8,
            CtrlMsg::Deny { .. } => 9,
        }
    }

    /// Queue the message as one length-prefixed frame onto `out`.
    ///
    /// Infallible counterpart of [`CtrlMsg::write_to`] for the evented
    /// shapes, whose write buffers are plain byte queues: `Vec<u8>`'s
    /// `io::Write` impl never errors, so queueing a frame has no error
    /// path and the datapath stays panic-free.
    pub fn append_to(&self, out: &mut Vec<u8>) {
        // Vec<u8> as io::Write cannot fail; discard the impossible Err.
        let _ = self.write_to(out);
    }

    /// Write the message as one length-prefixed frame.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut body = Vec::with_capacity(32);
        body.push(self.tag());
        match self {
            CtrlMsg::Hello {
                version,
                udp_port,
                session,
            } => {
                body.push(*version);
                body.extend_from_slice(&udp_port.to_le_bytes());
                body.extend_from_slice(&session.to_le_bytes());
            }
            CtrlMsg::StreamAnnounce {
                id,
                count,
                period_ns,
                size,
            } => {
                body.extend_from_slice(&id.to_le_bytes());
                body.extend_from_slice(&count.to_le_bytes());
                body.extend_from_slice(&period_ns.to_le_bytes());
                body.extend_from_slice(&size.to_le_bytes());
            }
            CtrlMsg::Ready { id } => body.extend_from_slice(&id.to_le_bytes()),
            CtrlMsg::StreamReport { id, samples } => {
                body.extend_from_slice(&id.to_le_bytes());
                body.extend_from_slice(&(samples.len() as u32).to_le_bytes());
                for s in samples {
                    body.extend_from_slice(&s.idx.to_le_bytes());
                    body.extend_from_slice(&s.send_ns.to_le_bytes());
                    body.extend_from_slice(&s.recv_ns.to_le_bytes());
                }
            }
            CtrlMsg::TrainAnnounce { id, count, size } => {
                body.extend_from_slice(&id.to_le_bytes());
                body.extend_from_slice(&count.to_le_bytes());
                body.extend_from_slice(&size.to_le_bytes());
            }
            CtrlMsg::TrainReport {
                id,
                received,
                first_ns,
                last_ns,
            } => {
                body.extend_from_slice(&id.to_le_bytes());
                body.extend_from_slice(&received.to_le_bytes());
                body.extend_from_slice(&first_ns.to_le_bytes());
                body.extend_from_slice(&last_ns.to_le_bytes());
            }
            CtrlMsg::Echo { token } => body.extend_from_slice(&token.to_le_bytes()),
            CtrlMsg::Bye => {}
            CtrlMsg::Deny { version, code } => {
                body.push(*version);
                body.push(*code);
            }
        }
        w.write_all(&(body.len() as u32).to_le_bytes())?;
        w.write_all(&body)
    }

    /// Read one length-prefixed frame.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<CtrlMsg> {
        let mut len4 = [0u8; 4];
        r.read_exact(&mut len4)?;
        let len = u32::from_le_bytes(len4) as usize;
        if len == 0 || len > 16 * 1024 * 1024 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad frame length",
            ));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        let tag = body[0];
        let mut cur = &body[1..];
        let mut take = |n: usize| -> io::Result<&[u8]> {
            if cur.len() < n {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "short frame"));
            }
            let (head, rest) = cur.split_at(n);
            cur = rest;
            Ok(head)
        };
        let msg = match tag {
            1 => CtrlMsg::Hello {
                version: take(1)?[0],
                udp_port: u16::from_le_bytes(take(2)?.try_into().unwrap()),
                session: u64::from_le_bytes(take(8)?.try_into().unwrap()),
            },
            2 => CtrlMsg::StreamAnnounce {
                id: u32::from_le_bytes(take(4)?.try_into().unwrap()),
                count: u32::from_le_bytes(take(4)?.try_into().unwrap()),
                period_ns: u64::from_le_bytes(take(8)?.try_into().unwrap()),
                size: u32::from_le_bytes(take(4)?.try_into().unwrap()),
            },
            3 => CtrlMsg::Ready {
                id: u32::from_le_bytes(take(4)?.try_into().unwrap()),
            },
            4 => {
                let id = u32::from_le_bytes(take(4)?.try_into().unwrap());
                let n = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
                let mut samples = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    samples.push(SampleWire {
                        idx: u32::from_le_bytes(take(4)?.try_into().unwrap()),
                        send_ns: u64::from_le_bytes(take(8)?.try_into().unwrap()),
                        recv_ns: u64::from_le_bytes(take(8)?.try_into().unwrap()),
                    });
                }
                CtrlMsg::StreamReport { id, samples }
            }
            5 => CtrlMsg::TrainAnnounce {
                id: u32::from_le_bytes(take(4)?.try_into().unwrap()),
                count: u32::from_le_bytes(take(4)?.try_into().unwrap()),
                size: u32::from_le_bytes(take(4)?.try_into().unwrap()),
            },
            6 => CtrlMsg::TrainReport {
                id: u32::from_le_bytes(take(4)?.try_into().unwrap()),
                received: u32::from_le_bytes(take(4)?.try_into().unwrap()),
                first_ns: u64::from_le_bytes(take(8)?.try_into().unwrap()),
                last_ns: u64::from_le_bytes(take(8)?.try_into().unwrap()),
            },
            7 => CtrlMsg::Echo {
                token: u64::from_le_bytes(take(8)?.try_into().unwrap()),
            },
            8 => CtrlMsg::Bye,
            9 => CtrlMsg::Deny {
                version: take(1)?[0],
                code: take(1)?[0],
            },
            _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "unknown tag")),
        };
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_packet_round_trip() {
        let p = ProbePacket {
            session: 0xDEAD_BEEF_0042,
            kind: ProbeKind::Stream,
            id: 42,
            idx: 7,
            send_ns: 123_456_789_012,
        };
        let mut buf = vec![0u8; 200];
        p.encode(&mut buf);
        assert_eq!(ProbePacket::decode(&buf), Some(p));
    }

    #[test]
    fn probe_packet_rejects_garbage() {
        assert_eq!(ProbePacket::decode(&[0u8; 10]), None);
        let mut buf = vec![0u8; 64];
        buf[0..4].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        assert_eq!(ProbePacket::decode(&buf), None);
        let p = ProbePacket {
            session: 9,
            kind: ProbeKind::Train,
            id: 1,
            idx: 2,
            send_ns: 3,
        };
        let mut buf = vec![0u8; 64];
        p.encode(&mut buf);
        buf[4] = 99; // invalid kind
        assert_eq!(ProbePacket::decode(&buf), None);
    }

    #[test]
    fn probe_packet_rejects_other_versions() {
        let p = ProbePacket {
            session: 1,
            kind: ProbeKind::Stream,
            id: 1,
            idx: 0,
            send_ns: 2,
        };
        let mut buf = vec![0u8; 64];
        p.encode(&mut buf);
        buf[5] = PROTO_VERSION + 1;
        assert_eq!(ProbePacket::decode(&buf), None);
        buf[5] = 0; // pre-versioning layout
        assert_eq!(ProbePacket::decode(&buf), None);
    }

    fn round_trip(msg: CtrlMsg) {
        let mut buf = Vec::new();
        msg.write_to(&mut buf).unwrap();
        let got = CtrlMsg::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn ctrl_messages_round_trip() {
        round_trip(CtrlMsg::Hello {
            version: PROTO_VERSION,
            udp_port: 9999,
            session: u64::MAX - 3,
        });
        round_trip(CtrlMsg::StreamAnnounce {
            id: 5,
            count: 100,
            period_ns: 100_000,
            size: 300,
        });
        round_trip(CtrlMsg::Ready { id: 5 });
        round_trip(CtrlMsg::StreamReport {
            id: 5,
            samples: vec![
                SampleWire {
                    idx: 0,
                    send_ns: 10,
                    recv_ns: 20,
                },
                SampleWire {
                    idx: 1,
                    send_ns: 30,
                    recv_ns: 45,
                },
            ],
        });
        round_trip(CtrlMsg::TrainAnnounce {
            id: 9,
            count: 48,
            size: 1500,
        });
        round_trip(CtrlMsg::TrainReport {
            id: 9,
            received: 48,
            first_ns: 1,
            last_ns: 2,
        });
        round_trip(CtrlMsg::Echo { token: u64::MAX });
        round_trip(CtrlMsg::Bye);
        round_trip(CtrlMsg::Deny {
            version: PROTO_VERSION,
            code: DENY_AT_CAPACITY,
        });
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        CtrlMsg::Hello {
            version: PROTO_VERSION,
            udp_port: 1,
            session: 7,
        }
        .write_to(&mut buf)
        .unwrap();
        buf.truncate(buf.len() - 1);
        assert!(CtrlMsg::read_from(&mut buf.as_slice()).is_err());
    }
}
