//! `pathload_snd <receiver-addr> [resolution-mbps]` — run one avail-bw
//! measurement against a running `pathload_rcv` and print the range.
//!
//! Example: `pathload_snd 192.0.2.7:9100 1.0`

use pathload_net::SocketTransport;
use slops::{Session, SlopsConfig};
use std::net::SocketAddr;
use std::process::exit;
use units::Rate;

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = match args.next() {
        Some(a) => a,
        None => {
            eprintln!("usage: pathload_snd <receiver-addr> [resolution-mbps]");
            exit(2);
        }
    };
    let addr: SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bad receiver address {addr:?}: {e}");
            exit(2);
        }
    };
    let mut cfg = SlopsConfig::default();
    if let Some(res) = args.next() {
        match res.parse::<f64>() {
            Ok(mbps) if mbps > 0.0 => {
                cfg.resolution = Rate::from_mbps(mbps);
                cfg.grey_resolution = Rate::from_mbps(2.0 * mbps);
            }
            _ => {
                eprintln!("bad resolution {res:?} (want Mb/s as a positive number)");
                exit(2);
            }
        }
    }
    let mut transport = match SocketTransport::connect(addr) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            exit(1);
        }
    };
    println!("pathload_snd: measuring toward {addr} ...");
    match Session::new(cfg).run(&mut transport) {
        Ok(est) => {
            println!(
                "avail-bw range: [{:.2}, {:.2}] Mb/s  (midpoint {:.2} Mb/s)",
                est.low.mbps(),
                est.high.mbps(),
                est.midpoint().mbps()
            );
            if let Some((glo, ghi)) = est.grey {
                println!(
                    "grey region:    [{:.2}, {:.2}] Mb/s",
                    glo.mbps(),
                    ghi.mbps()
                );
            }
            println!(
                "fleets: {}   termination: {:?}   elapsed: {}",
                est.fleets.len(),
                est.termination,
                est.elapsed
            );
        }
        Err(e) => {
            eprintln!("measurement failed: {e}");
            exit(1);
        }
    }
}
