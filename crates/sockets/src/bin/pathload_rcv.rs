//! `pathload_rcv [--evented] <listen-addr>` — the pathload receiver daemon.
//!
//! Example: `pathload_rcv 0.0.0.0:9100`
//!
//! One daemon serves any number of concurrent senders: each control
//! connection becomes an independent session, and the shared UDP probe
//! socket is demuxed by the session token minted at `Hello`. A whole
//! `monitord` fleet can therefore point every path at this one address.
//!
//! With `--evented` (Unix only) the sessions are hosted on one event-loop
//! thread with a `recvmmsg`-batched probe datapath instead of a thread
//! per session — same wire contract, far-end capacity in the thousands
//! of sessions.

use pathload_net::Receiver;
use std::net::SocketAddr;
use std::process::exit;
use std::sync::atomic::AtomicBool;

fn main() {
    let mut evented = false;
    let mut addr_arg = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--evented" => evented = true,
            _ => addr_arg = Some(arg),
        }
    }
    let addr = match addr_arg {
        Some(a) => a,
        None => {
            eprintln!("usage: pathload_rcv [--evented] <listen-addr>   (e.g. 0.0.0.0:9100)");
            exit(2);
        }
    };
    let addr: SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bad listen address {addr:?}: {e}");
            exit(2);
        }
    };
    if evented {
        serve_evented(addr);
    }
    let rx = match Receiver::bind(addr) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            exit(1);
        }
    };
    println!(
        "pathload_rcv: control on {} (multi-session: any number of senders)",
        rx.ctrl_addr()
    );
    if let Err(e) = rx.serve_forever() {
        eprintln!("fatal: {e}");
        exit(1);
    }
}

/// Serve on the one-thread evented receiver; never returns.
#[cfg(unix)]
fn serve_evented(addr: SocketAddr) {
    let mut rx = match pathload_net::EventedReceiver::bind(addr) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            exit(1);
        }
    };
    println!(
        "pathload_rcv: control on {} (evented: one thread, batched datapath)",
        rx.ctrl_addr()
    );
    static RUN_FOREVER: AtomicBool = AtomicBool::new(false);
    match rx.run(&RUN_FOREVER) {
        Ok(()) => exit(0),
        Err(e) => {
            eprintln!("fatal: {e}");
            exit(1);
        }
    }
}

#[cfg(not(unix))]
fn serve_evented(_addr: SocketAddr) {
    eprintln!("--evented requires an epoll event loop (Unix only)");
    exit(2);
}
