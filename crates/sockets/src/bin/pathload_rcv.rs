//! `pathload_rcv <listen-addr>` — the pathload receiver daemon.
//!
//! Example: `pathload_rcv 0.0.0.0:9100`
//!
//! One daemon serves any number of concurrent senders: each control
//! connection becomes an independent session, and the shared UDP probe
//! socket is demuxed by the session token minted at `Hello`. A whole
//! `monitord` fleet can therefore point every path at this one address.

use pathload_net::Receiver;
use std::net::SocketAddr;
use std::process::exit;

fn main() {
    let addr = match std::env::args().nth(1) {
        Some(a) => a,
        None => {
            eprintln!("usage: pathload_rcv <listen-addr>   (e.g. 0.0.0.0:9100)");
            exit(2);
        }
    };
    let addr: SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bad listen address {addr:?}: {e}");
            exit(2);
        }
    };
    let rx = match Receiver::bind(addr) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            exit(1);
        }
    };
    println!(
        "pathload_rcv: control on {} (multi-session: any number of senders)",
        rx.ctrl_addr()
    );
    if let Err(e) = rx.serve_forever() {
        eprintln!("fatal: {e}");
        exit(1);
    }
}
