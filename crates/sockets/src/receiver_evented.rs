//! The evented receiver: one thread, thousands of concurrent sessions.
//!
//! [`EventedReceiver`] is to [`Receiver`](crate::Receiver) what
//! [`EventedSession`](crate::EventedSession) is to the blocking sender
//! driver: the same wire behavior — `Hello` with a minted token,
//! announce/`Ready`/collect/report, `Echo`, `Bye`, a versioned `Deny` at
//! the session cap — but hosted on one [`mux::EventLoop`](crate::mux::EventLoop) instead of a
//! thread per session plus a demux thread. Concretely:
//!
//! * the control listener accepts non-blocking; each accepted connection
//!   becomes a slot in a session slab with its own buffered, non-blocking
//!   control state machine (the `rbuf`/`wbuf` framing idiom of
//!   [`EventedSession`](crate::EventedSession));
//! * the shared UDP probe socket is folded into the same loop: datagrams
//!   are drained in `recvmmsg` batches ([`batch::UdpRecvBatch`]), the
//!   arrival timestamp is stamped **once per batch at the socket read** —
//!   before any per-packet work, preserving the threaded demux's
//!   timestamp-at-read contract — and each packet is routed to its
//!   session by token;
//! * silence-window and deadline stops are timer entries: an active
//!   collection re-arms a check timer every `POLL_TIMEOUT` (the cadence
//!   the threaded collectors poll at) and the stop conditions are
//!   evaluated against the same constants, so both receiver shapes end
//!   collections identically. The timers are armed under the session
//!   token as a [`TimerQueue`](crate::mux::TimerQueue) *generation* and
//!   cancelled eagerly when the collection (or session) ends.
//!
//! Route/drop accounting shares `receiver::RecvCounters`, so both shapes
//! expose the exact same metric families; the evented receiver adds a
//! `receiver_sessions` gauge (live sessions) and a
//! `receiver_recv_batch_size` histogram (datagrams per kernel crossing).
//! `collector_full` can never fire here — arrivals are routed straight
//! into collection state, there is no bounded channel — but the family
//! is still registered, so dashboards and the structural-equivalence
//! test see an identical metric surface.

// Datapath module: a panicking branch here takes the whole fleet down,
// so `unwrap`/`expect` are denied outright (errors must travel as values).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::batch::{self, UdpRecvBatch};
use crate::clock::MonoClock;
use crate::mux::{EventLoop, Interest, MuxEvent};
use crate::proto::{CtrlMsg, ProbeKind, ProbePacket, SampleWire, DENY_AT_CAPACITY, PROTO_VERSION};
use crate::receiver::{
    check_count, AcceptBackoff, RecvCounters, DROP_WARN_INTERVAL_NS, DROP_WARN_THRESHOLD,
    POLL_TIMEOUT, STREAM_SILENCE_NS, TRAIN_SILENCE_NS,
};
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use telemetry::{Gauge, Histogram};

/// Event-loop token of the control listener.
const TOK_LISTEN: u64 = 1 << 60;
/// Event-loop token of the shared UDP probe socket.
const TOK_UDP: u64 = (1 << 60) + 1;
/// Timer token re-enabling a backed-off listener.
const TOK_ACCEPT_RESUME: u64 = (1 << 60) + 2;
/// Session-slot tokens live below this bound.
const TOK_SLOT_MAX: u64 = 1 << 60;

/// How many `recvmmsg` batches one UDP readability wakeup may drain
/// before yielding back to the loop, so a datagram flood cannot starve
/// control traffic and timers indefinitely.
const MAX_BATCHES_PER_WAKEUP: usize = 64;

/// Largest probe datagram the batch buffers accommodate (matches the
/// threaded demux's stack buffer).
const RECV_BUF_LEN: usize = 2048;

/// An in-progress stream collection (the evented analogue of the threaded
/// `collect_stream` local state).
#[derive(Debug)]
struct StreamCollect {
    id: u32,
    count: u32,
    period_ns: u64,
    samples: Vec<SampleWire>,
    seen: Vec<bool>,
    /// Hard deadline: `start + 2 s + count·period + 1 s` (same budget as
    /// the threaded collector).
    deadline: u64,
    first_arrival: Option<u64>,
    last_activity: u64,
}

/// An in-progress train collection.
#[derive(Debug)]
struct TrainCollect {
    id: u32,
    count: u32,
    received: u32,
    first_ns: u64,
    last_ns: u64,
    seen: Vec<bool>,
    /// Hard deadline: `start + 5 s`.
    deadline: u64,
    last_activity: u64,
}

/// What a session's probe arrivals currently feed.
#[derive(Debug)]
enum Collect {
    /// Between collections: routed arrivals are discarded (the threaded
    /// shape queues then drains them before the next `Ready`).
    Idle,
    Stream(StreamCollect),
    Train(TrainCollect),
}

/// One live session slot: a non-blocking control connection plus its
/// collection state.
#[derive(Debug)]
struct RxSession {
    ctrl: TcpStream,
    token: u64,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    collect: Collect,
    /// Drop tally across the session's collections (duplicates, malformed
    /// indices) — feeds the same rate-limited warning as the threaded
    /// shape.
    drops: u64,
}

/// The evented pathload receiver: one TCP control listener, one shared
/// UDP probe socket, one event-loop thread, any number of sessions. See
/// the module docs; the wire contract is identical to
/// [`Receiver`](crate::Receiver).
pub struct EventedReceiver {
    listener: TcpListener,
    /// Bound control address, captured at bind time so `ctrl_addr` has no
    /// error (or panic) path.
    ctrl_addr: SocketAddr,
    udp: UdpSocket,
    udp_port: u16,
    clock: MonoClock,
    lp: EventLoop,
    batch: UdpRecvBatch,
    sessions: Vec<Option<RxSession>>,
    free: Vec<usize>,
    by_token: HashMap<u64, usize>,
    next_token: u64,
    /// Concurrent-session cap; 0 = unlimited (see
    /// [`EventedReceiver::with_max_sessions`]).
    max_sessions: usize,
    counters: RecvCounters,
    /// Live sessions right now.
    sessions_gauge: Gauge,
    /// Datagrams per kernel crossing of the probe socket.
    batch_hist: Histogram,
    last_drop_warn_ns: u64,
    backoff: AcceptBackoff,
    accept_paused: bool,
    events: Vec<MuxEvent>,
}

impl EventedReceiver {
    /// Bind to `addr` (port 0 for ephemeral; `SO_REUSEADDR`, so a
    /// restarted receiver rebinds the same port immediately). The UDP
    /// probe socket binds the same IP with its own ephemeral port,
    /// advertised in every `Hello`. Fails with `Unsupported` off Linux —
    /// the event loop is epoll; use the threaded [`Receiver`](crate::Receiver)
    /// there.
    pub fn bind(addr: SocketAddr) -> io::Result<EventedReceiver> {
        let listener = batch::bind_reuse(addr)?;
        listener.set_nonblocking(true)?;
        let ctrl_addr = listener.local_addr()?;
        let mut udp_addr = ctrl_addr;
        udp_addr.set_port(0);
        let udp = UdpSocket::bind(udp_addr)?;
        udp.set_nonblocking(true)?;
        let udp_port = udp.local_addr()?.port();
        let clock = MonoClock::new();
        let lp = EventLoop::new(clock.clone())?;
        lp.register(listener.as_raw_fd(), TOK_LISTEN, Interest::READ)?;
        lp.register(udp.as_raw_fd(), TOK_UDP, Interest::READ)?;
        // Same token scheme as the threaded shape: count up from a random
        // 64-bit base so off-path probe spoofing cannot guess a live one.
        let next_token = RandomState::new().build_hasher().finish();
        Ok(EventedReceiver {
            listener,
            ctrl_addr,
            udp,
            udp_port,
            clock,
            lp,
            batch: UdpRecvBatch::new(batch::MAX_BATCH, RECV_BUF_LEN),
            sessions: Vec::new(),
            free: Vec::new(),
            by_token: HashMap::new(),
            next_token,
            max_sessions: 0,
            counters: RecvCounters::default(),
            sessions_gauge: Gauge::new(),
            batch_hist: Histogram::new(),
            last_drop_warn_ns: 0,
            backoff: AcceptBackoff::new(),
            accept_paused: false,
            events: Vec::new(),
        })
    }

    /// The control-channel address senders should connect to.
    pub fn ctrl_addr(&self) -> SocketAddr {
        self.ctrl_addr
    }

    /// Cap concurrent sessions at `max` (`0` = unlimited, the default).
    /// Beyond the cap a new connection is answered with a versioned
    /// [`CtrlMsg::Deny`] (code [`DENY_AT_CAPACITY`]) — same contract as
    /// [`Receiver::with_max_sessions`](crate::Receiver::with_max_sessions).
    pub fn with_max_sessions(mut self, max: usize) -> EventedReceiver {
        self.max_sessions = max;
        self
    }

    /// Force the scalar receive loop instead of `recvmmsg` (the
    /// batching-correctness test pins both paths identical).
    pub fn with_scalar_recv(mut self, scalar: bool) -> EventedReceiver {
        self.batch.set_scalar(scalar);
        self
    }

    /// Attach the receiver's metrics to `reg`: the same
    /// `receiver_demux_*`/`receiver_collect_*`/`receiver_sessions_denied_total`
    /// families as the threaded shape, plus the `receiver_sessions` gauge
    /// and the `receiver_recv_batch_size` histogram.
    pub fn register_metrics(&self, reg: &telemetry::Registry) {
        self.counters.register(reg);
        reg.register_gauge("receiver_sessions", &[], self.sessions_gauge.clone());
        reg.register_histogram("receiver_recv_batch_size", &[], self.batch_hist.clone());
    }

    /// Live session count (diagnostics; the `receiver_sessions` gauge
    /// carries the same number).
    pub fn sessions_live(&self) -> usize {
        self.by_token.len()
    }

    /// Serve until `stop` turns true (checked between event-loop waits,
    /// so shutdown latency is bounded by `POLL_TIMEOUT`).
    pub fn run(&mut self, stop: &AtomicBool) -> io::Result<()> {
        while !stop.load(Ordering::Relaxed) {
            self.poll_once(POLL_TIMEOUT)?;
        }
        Ok(())
    }

    /// One event-loop turn: wait up to `max_wait`, then dispatch every
    /// event. Exposed so tests can single-step the receiver.
    pub fn poll_once(&mut self, max_wait: Duration) -> io::Result<()> {
        let mut events = std::mem::take(&mut self.events);
        events.clear();
        self.lp.wait(&mut events, max_wait)?;
        for ev in &events {
            match *ev {
                MuxEvent::Io(r) if r.token == TOK_LISTEN => self.on_accept_ready(),
                MuxEvent::Io(r) if r.token == TOK_UDP && r.readable => self.on_udp_ready(),
                MuxEvent::Io(r) if r.token < TOK_SLOT_MAX => {
                    self.on_session_io(r.token as usize, r.readable, r.writable);
                }
                MuxEvent::Timer {
                    token: TOK_ACCEPT_RESUME,
                } => self.resume_accepting(),
                MuxEvent::Timer { token } if token < TOK_SLOT_MAX => {
                    self.on_collect_timer(token as usize);
                }
                _ => {}
            }
        }
        self.events = events;
        Ok(())
    }

    /// Move the receiver onto its own thread; the handle stops and joins
    /// it. (The receiver outlives any number of fleets: sessions come and
    /// go, the thread serves until [`EventedReceiverHandle::stop`].)
    pub fn spawn(self) -> EventedReceiverHandle {
        let addr = self.ctrl_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let mut rx = self;
        let join = std::thread::spawn(move || rx.run(&stop2));
        EventedReceiverHandle { addr, stop, join }
    }

    // ---- accept path ---------------------------------------------------

    fn mint_token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token = self.next_token.wrapping_add(1);
        t
    }

    fn on_accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((ctrl, _peer)) => {
                    self.backoff.on_success();
                    self.admit(ctrl);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Persistent accept errors (EMFILE & co.) are level-
                    // triggered: deregister the listener and re-enable it
                    // after a bounded backoff instead of hot-looping.
                    let delay = self.backoff.on_error();
                    eprintln!("receiver: accept error: {e} (pausing accepts for {delay:?})");
                    if self.lp.deregister(self.listener.as_raw_fd()).is_ok() {
                        self.accept_paused = true;
                        let deadline = self.clock.now_ns() + delay.as_nanos() as u64;
                        self.lp.arm_timer(deadline, TOK_ACCEPT_RESUME);
                    }
                    break;
                }
            }
        }
    }

    fn resume_accepting(&mut self) {
        if self.accept_paused
            && self
                .lp
                .register(self.listener.as_raw_fd(), TOK_LISTEN, Interest::READ)
                .is_ok()
        {
            self.accept_paused = false;
            self.on_accept_ready();
        }
    }

    /// Admit one accepted control connection: `Deny` past the cap, else
    /// mint a token, queue the `Hello`, and register the slot.
    fn admit(&mut self, mut ctrl: TcpStream) {
        let _ = ctrl.set_nodelay(true);
        if ctrl.set_nonblocking(true).is_err() {
            return;
        }
        if self.max_sessions != 0 && self.by_token.len() >= self.max_sessions {
            self.counters.denied.inc();
            // Best-effort single write: the frame is a handful of bytes
            // and the socket buffer of a fresh connection always holds it.
            let mut frame = Vec::new();
            let _ = CtrlMsg::Deny {
                version: PROTO_VERSION,
                code: DENY_AT_CAPACITY,
            }
            .write_to(&mut frame);
            let _ = ctrl.write(&frame);
            return;
        }
        let token = self.mint_token();
        let mut sess = RxSession {
            ctrl,
            token,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            collect: Collect::Idle,
            drops: 0,
        };
        CtrlMsg::Hello {
            version: PROTO_VERSION,
            udp_port: self.udp_port,
            session: token,
        }
        .append_to(&mut sess.wbuf);
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.sessions.push(None);
                self.sessions.len() - 1
            }
        };
        if self
            .lp
            .register(sess.ctrl.as_raw_fd(), slot as u64, Interest::BOTH)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.by_token.insert(token, slot);
        if let Some(entry) = self.sessions.get_mut(slot) {
            *entry = Some(sess);
        }
        self.sessions_gauge.set(self.by_token.len() as i64);
    }

    /// Tear a slot down: deregister, cancel its timers, free the token.
    fn close_session(&mut self, slot: usize) {
        if let Some(sess) = self.sessions.get_mut(slot).and_then(Option::take) {
            let _ = self.lp.deregister(sess.ctrl.as_raw_fd());
            self.lp.cancel_timer_generation(sess.token);
            self.by_token.remove(&sess.token);
            self.free.push(slot);
            self.sessions_gauge.set(self.by_token.len() as i64);
        }
    }

    // ---- control channel per session -----------------------------------

    fn on_session_io(&mut self, slot: usize, readable: bool, writable: bool) {
        let Some(sess) = self.sessions.get_mut(slot).and_then(Option::as_mut) else {
            return; // stale event for an already-closed slot
        };
        if writable && !sess.wbuf.is_empty() {
            match flush_wbuf(&mut sess.ctrl, &mut sess.wbuf) {
                Ok(()) => {}
                Err(e) => {
                    self.log_session_error(slot, &e);
                    self.close_session(slot);
                    return;
                }
            }
        }
        if readable {
            match fill_rbuf(&mut sess.ctrl, &mut sess.rbuf) {
                Ok(true) => {}
                Ok(false) => {
                    // Peer closed cleanly (EOF): same as the threaded
                    // session loop returning Ok on UnexpectedEof.
                    self.close_session(slot);
                    return;
                }
                Err(e) => {
                    self.log_session_error(slot, &e);
                    self.close_session(slot);
                    return;
                }
            }
            loop {
                let Some(sess) = self.sessions.get_mut(slot).and_then(Option::as_mut) else {
                    return; // a frame closed the session
                };
                match take_frame(&mut sess.rbuf) {
                    Ok(Some(msg)) => {
                        if let Err(e) = self.on_ctrl_msg(slot, msg) {
                            self.log_session_error(slot, &e);
                            self.close_session(slot);
                            return;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        self.log_session_error(slot, &e);
                        self.close_session(slot);
                        return;
                    }
                }
            }
        }
        self.update_interest(slot);
    }

    fn log_session_error(&self, slot: usize, e: &io::Error) {
        if let Some(sess) = self.sessions.get(slot).and_then(Option::as_ref) {
            eprintln!("session error: {e} (session {:#018x})", sess.token);
        }
    }

    /// Re-point epoll at what the slot's write buffer implies.
    fn update_interest(&mut self, slot: usize) {
        if let Some(sess) = self.sessions.get(slot).and_then(Option::as_ref) {
            let interest = if sess.wbuf.is_empty() {
                Interest::READ
            } else {
                Interest::BOTH
            };
            let _ = self
                .lp
                .set_interest(sess.ctrl.as_raw_fd(), slot as u64, interest);
        }
    }

    /// One control frame, mirroring the threaded `session_loop` arms.
    fn on_ctrl_msg(&mut self, slot: usize, msg: CtrlMsg) -> io::Result<()> {
        let now = self.clock.now_ns();
        let Some(sess) = self.sessions.get_mut(slot).and_then(Option::as_mut) else {
            return Ok(()); // slot already torn down; frame raced the close
        };
        match msg {
            CtrlMsg::StreamAnnounce {
                id,
                count,
                period_ns,
                size: _,
            } => {
                check_count(count)?;
                if !matches!(sess.collect, Collect::Idle) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "announce while a collection is active",
                    ));
                }
                CtrlMsg::Ready { id }.write_to(&mut sess.wbuf)?;
                sess.collect = Collect::Stream(StreamCollect {
                    id,
                    count,
                    period_ns,
                    samples: Vec::with_capacity(count as usize),
                    seen: vec![false; count as usize],
                    // Same arm-to-end budget as the threaded collector:
                    // 2 s to start + nominal duration + 1 s grace.
                    deadline: now + 2_000_000_000 + count as u64 * period_ns + 1_000_000_000,
                    first_arrival: None,
                    last_activity: now,
                });
                let token = sess.token;
                self.arm_check(slot, token, now);
            }
            CtrlMsg::TrainAnnounce { id, count, size: _ } => {
                check_count(count)?;
                if !matches!(sess.collect, Collect::Idle) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "announce while a collection is active",
                    ));
                }
                CtrlMsg::Ready { id }.write_to(&mut sess.wbuf)?;
                sess.collect = Collect::Train(TrainCollect {
                    id,
                    count,
                    received: 0,
                    first_ns: 0,
                    last_ns: 0,
                    seen: vec![false; count as usize],
                    deadline: now + 5_000_000_000,
                    last_activity: now,
                });
                let token = sess.token;
                self.arm_check(slot, token, now);
            }
            CtrlMsg::Echo { token } => {
                CtrlMsg::Echo { token }.write_to(&mut sess.wbuf)?;
            }
            CtrlMsg::Bye => {
                // Best-effort flush of anything still queued, then close.
                let _ = flush_wbuf(&mut sess.ctrl, &mut sess.wbuf);
                self.close_session(slot);
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected control message {other:?}"),
                ));
            }
        }
        Ok(())
    }

    /// Arm the next collection-check timer under the session token (its
    /// cancellation generation).
    fn arm_check(&mut self, slot: usize, token: u64, now: u64) {
        self.lp
            .arm_timer_with_generation(now + POLL_TIMEOUT.as_nanos() as u64, slot as u64, token);
    }

    // ---- probe datagrams -----------------------------------------------

    fn on_udp_ready(&mut self) {
        for _ in 0..MAX_BATCHES_PER_WAKEUP {
            match self.batch.recv(&self.udp) {
                Ok(n) => {
                    // Stamped once, at the socket read, before any
                    // routing — the timestamp contract of the threaded
                    // demux thread.
                    let recv_ns = self.clock.now_ns();
                    self.batch_hist.observe(n as u64);
                    for i in 0..n {
                        if let Some(packet) = ProbePacket::decode(self.batch.msg(i)) {
                            self.route(packet, recv_ns);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return, // transient; the loop re-polls
            }
        }
    }

    /// Route one decoded probe packet into its session's collection —
    /// the same decisions as the threaded demux + collectors, inline.
    fn route(&mut self, packet: ProbePacket, recv_ns: u64) {
        let Some(&slot) = self.by_token.get(&packet.session) else {
            self.counters.drop_unknown_token.inc();
            return;
        };
        self.counters.routed.inc();
        let Some(sess) = self.sessions.get_mut(slot).and_then(Option::as_mut) else {
            return; // token map raced a slot teardown; nothing to feed
        };
        let finished = match &mut sess.collect {
            // Between collections: the threaded shape queues the arrival
            // and drains it before the next Ready; discarding here is the
            // same observable outcome.
            Collect::Idle => false,
            Collect::Stream(st) => {
                if packet.kind != ProbeKind::Stream || packet.id != st.id {
                    return; // leftover of an earlier train/stream
                }
                st.last_activity = recv_ns;
                st.first_arrival.get_or_insert(recv_ns);
                let idx = packet.idx as usize;
                // Out of range or already seen: duplicate/malformed.
                if !matches!(st.seen.get(idx), Some(false)) {
                    sess.drops += 1;
                    self.counters.drop_dedup.inc();
                    let (token, drops) = (sess.token, sess.drops);
                    self.maybe_warn_drops(token, drops);
                    return;
                }
                if let Some(seen) = st.seen.get_mut(idx) {
                    *seen = true;
                }
                st.samples.push(SampleWire {
                    idx: packet.idx,
                    send_ns: packet.send_ns,
                    recv_ns,
                });
                st.samples.len() as u32 >= st.count
            }
            Collect::Train(tr) => {
                if packet.kind != ProbeKind::Train || packet.id != tr.id {
                    return;
                }
                tr.last_activity = recv_ns;
                let idx = packet.idx as usize;
                // Out of range or already seen: duplicate/malformed.
                if !matches!(tr.seen.get(idx), Some(false)) {
                    sess.drops += 1;
                    self.counters.drop_dedup.inc();
                    let (token, drops) = (sess.token, sess.drops);
                    self.maybe_warn_drops(token, drops);
                    return;
                }
                if let Some(seen) = tr.seen.get_mut(idx) {
                    *seen = true;
                }
                if tr.received == 0 {
                    tr.first_ns = recv_ns;
                }
                tr.last_ns = tr.last_ns.max(recv_ns);
                tr.received += 1;
                tr.received >= tr.count
            }
        };
        if finished {
            self.finish_collection(slot);
        }
    }

    // ---- collection completion -----------------------------------------

    /// A collection-check timer fired: evaluate the deadline and silence
    /// stop conditions — the same predicates the threaded collectors
    /// check on their channel timeouts — and re-arm if still collecting.
    fn on_collect_timer(&mut self, slot: usize) {
        let Some(sess) = self.sessions.get_mut(slot).and_then(Option::as_mut) else {
            return; // stale timer (slot closed; eager cancel usually beats this)
        };
        let now = self.clock.now_ns();
        let (token, verdict) = (
            sess.token,
            match &sess.collect {
                Collect::Idle => CheckVerdict::Stale,
                Collect::Stream(st) => {
                    if now >= st.deadline {
                        CheckVerdict::Stop { silence: false }
                    } else if let Some(first) = st.first_arrival {
                        let nominal_end = first + st.count as u64 * st.period_ns;
                        if now >= nominal_end
                            && now.saturating_sub(st.last_activity) >= STREAM_SILENCE_NS
                        {
                            CheckVerdict::Stop { silence: true }
                        } else {
                            CheckVerdict::KeepGoing
                        }
                    } else {
                        CheckVerdict::KeepGoing
                    }
                }
                Collect::Train(tr) => {
                    if now >= tr.deadline {
                        CheckVerdict::Stop { silence: false }
                    } else if tr.received > 0
                        && now.saturating_sub(tr.last_activity) >= TRAIN_SILENCE_NS
                    {
                        CheckVerdict::Stop { silence: true }
                    } else {
                        CheckVerdict::KeepGoing
                    }
                }
            },
        );
        match verdict {
            CheckVerdict::Stale => {}
            CheckVerdict::KeepGoing => self.arm_check(slot, token, now),
            CheckVerdict::Stop { silence } => {
                if silence {
                    self.counters.silence_stops.inc();
                }
                self.finish_collection(slot);
            }
        }
    }

    /// End the slot's active collection: queue the report frame, return
    /// to `Idle`, cancel the pending check timer.
    fn finish_collection(&mut self, slot: usize) {
        let Some(sess) = self.sessions.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let report = match std::mem::replace(&mut sess.collect, Collect::Idle) {
            Collect::Idle => return,
            Collect::Stream(st) => CtrlMsg::StreamReport {
                id: st.id,
                samples: st.samples,
            },
            Collect::Train(tr) => CtrlMsg::TrainReport {
                id: tr.id,
                received: tr.received,
                first_ns: tr.first_ns,
                last_ns: tr.last_ns,
            },
        };
        report.append_to(&mut sess.wbuf);
        let token = sess.token;
        self.lp.cancel_timer_generation(token);
        // Push what the socket takes now; the rest rides on writability.
        if let Some(sess) = self.sessions.get_mut(slot).and_then(Option::as_mut) {
            if let Err(e) = flush_wbuf(&mut sess.ctrl, &mut sess.wbuf) {
                self.log_session_error(slot, &e);
                self.close_session(slot);
                return;
            }
        }
        self.update_interest(slot);
    }

    /// Rate-limited stderr warning for suspicious drop totals (same
    /// threshold and interval as the threaded shape; plain fields — the
    /// whole receiver is one thread).
    fn maybe_warn_drops(&mut self, token: u64, session_drops: u64) {
        if session_drops < DROP_WARN_THRESHOLD {
            return;
        }
        let now = self.clock.now_ns();
        if now.saturating_sub(self.last_drop_warn_ns) < DROP_WARN_INTERVAL_NS {
            return;
        }
        self.last_drop_warn_ns = now;
        eprintln!(
            "receiver: session {token:#018x} dropped {session_drops} \
             duplicate/malformed probe datagrams ({} across all sessions)",
            self.counters.drop_dedup.get()
        );
    }
}

/// What a collection-check timer decided.
enum CheckVerdict {
    /// No collection active (stale timer).
    Stale,
    /// Still collecting: re-arm.
    KeepGoing,
    /// Finish the collection; `silence` says the silence window (not the
    /// hard deadline or completeness) ended it.
    Stop { silence: bool },
}

/// Flush as much of `wbuf` as the socket accepts. `Ok` with a non-empty
/// remainder means back-pressure (wait for writability).
fn flush_wbuf(ctrl: &mut TcpStream, wbuf: &mut Vec<u8>) -> io::Result<()> {
    while !wbuf.is_empty() {
        match ctrl.write(wbuf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "write returned 0",
                ))
            }
            Ok(n) => {
                wbuf.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Read whatever is available into `rbuf`. `Ok(false)` on a clean EOF.
fn fill_rbuf(ctrl: &mut TcpStream, rbuf: &mut Vec<u8>) -> io::Result<bool> {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match ctrl.read(&mut chunk) {
            Ok(0) => return Ok(false),
            Ok(n) => {
                // `read` contracts n <= chunk.len(); `get` keeps the
                // defensive bound out of the panic path.
                if let Some(read) = chunk.get(..n) {
                    rbuf.extend_from_slice(read);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(true),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Pop one complete control frame off `rbuf`, if present (the same
/// length-prefix framing as the evented sender).
fn take_frame(rbuf: &mut Vec<u8>) -> io::Result<Option<CtrlMsg>> {
    let Some(&header) = rbuf.first_chunk::<4>() else {
        return Ok(None); // length prefix not complete yet
    };
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 || len > 16 * 1024 * 1024 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad control frame length",
        ));
    }
    let Some(mut frame) = rbuf.get(..4 + len) else {
        return Ok(None); // body not complete yet
    };
    let msg = CtrlMsg::read_from(&mut frame)?;
    rbuf.drain(..4 + len);
    Ok(Some(msg))
}

/// A spawned [`EventedReceiver`]: stoppable, joinable.
pub struct EventedReceiverHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: JoinHandle<io::Result<()>>,
}

impl EventedReceiverHandle {
    /// The control-channel address senders should connect to.
    pub fn ctrl_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the receiver thread and join it (sockets close with it, so a
    /// successor can rebind the same port immediately — `SO_REUSEADDR`).
    pub fn stop(self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        match self.join.join() {
            Ok(r) => r,
            Err(_) => Err(io::Error::other("receiver thread panicked")),
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::receiver::connect_ctrl;
    use crate::sender::SocketTransport;

    fn bind() -> EventedReceiver {
        EventedReceiver::bind("127.0.0.1:0".parse().unwrap()).unwrap()
    }

    #[test]
    fn hello_echo_bye_roundtrip() {
        let rx = bind();
        let addr = rx.ctrl_addr();
        let h = rx.spawn();
        let (mut ctrl, udp_port, token) = connect_ctrl(addr).unwrap();
        assert_ne!(udp_port, 0);
        assert_ne!(token, 0);
        CtrlMsg::Echo { token: 42 }.write_to(&mut ctrl).unwrap();
        match CtrlMsg::read_from(&mut ctrl).unwrap() {
            CtrlMsg::Echo { token } => assert_eq!(token, 42),
            other => panic!("expected echo, got {other:?}"),
        }
        CtrlMsg::Bye.write_to(&mut ctrl).unwrap();
        drop(ctrl);
        h.stop().unwrap();
    }

    #[test]
    fn session_cap_refuses_with_versioned_deny() {
        let rx = bind().with_max_sessions(1);
        let addr = rx.ctrl_addr();
        let h = rx.spawn();
        let first = connect_ctrl(addr).expect("first session fits");
        let err = connect_ctrl(addr).expect_err("second session must be denied");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        let msg = err.to_string();
        assert!(msg.contains("capacity"), "{msg}");
        assert!(msg.contains(&format!("v{PROTO_VERSION}")), "{msg}");
        drop(first);
        h.stop().unwrap();
    }

    /// A blocking sender transport measures unchanged against the
    /// evented receiver — the wire contract is the threaded receiver's.
    #[test]
    fn blocking_transport_measures_through_the_evented_receiver() {
        use slops::{stream_params, ProbeTransport, SlopsConfig};
        use units::{Rate, TimeNs};
        let rx = bind();
        let addr = rx.ctrl_addr();
        let h = rx.spawn();
        let mut tx = SocketTransport::connect(addr).unwrap();
        let mut cfg = SlopsConfig::default();
        cfg.min_period = TimeNs::from_millis(1);
        cfg.stream_len = 50;
        let req = stream_params(Rate::from_mbps(1.6), 0, &cfg); // 200B @ 1ms
        let rec = tx.send_stream(&req).unwrap();
        assert!(
            rec.samples.len() as u32 >= req.count - 2,
            "lost too much on loopback: {}/{}",
            rec.samples.len(),
            req.count
        );
        let trec = tx.send_train(20, 1500).unwrap();
        assert!(trec.received >= 18, "train lost packets: {}", trec.received);
        drop(tx);
        h.stop().unwrap();
    }

    #[test]
    fn oversized_announce_closes_only_that_session() {
        let rx = bind();
        let addr = rx.ctrl_addr();
        let h = rx.spawn();
        let (mut bad, _port, _token) = connect_ctrl(addr).unwrap();
        let (mut good, _port2, _token2) = connect_ctrl(addr).unwrap();
        CtrlMsg::StreamAnnounce {
            id: 1,
            count: u32::MAX,
            period_ns: 1_000_000,
            size: 64,
        }
        .write_to(&mut bad)
        .unwrap();
        // The offender's connection closes (read returns EOF)...
        let err = CtrlMsg::read_from(&mut bad);
        assert!(err.is_err(), "oversized announce must close the session");
        // ...while the other session keeps working.
        CtrlMsg::Echo { token: 7 }.write_to(&mut good).unwrap();
        match CtrlMsg::read_from(&mut good).unwrap() {
            CtrlMsg::Echo { token } => assert_eq!(token, 7),
            other => panic!("expected echo, got {other:?}"),
        }
        h.stop().unwrap();
    }
}
