//! Batched kernel datapath: `recvmmsg`/`sendmmsg` with a scalar fallback.
//!
//! The evented receiver's demux loop and the evented sender's train blast
//! are the two hot paths where one measurement round moves dozens of
//! datagrams through a socket back-to-back. Linux batches those into one
//! syscall each way — `recvmmsg(2)` drains up to [`MAX_BATCH`] probe
//! datagrams per kernel crossing, `sendmmsg(2)` pushes a train slice out
//! in one call — through the same direct-FFI pattern as `mux::sys`
//! (the C library `std` already links; no new dependencies).
//!
//! Everywhere else (and on Linux when a caller forces it, which is how the
//! batching-correctness test pins the two paths byte-identical) the same
//! API runs a *scalar* loop of `recv_from`/`send` with identical
//! semantics: a receive call returns at least one datagram or
//! `WouldBlock`, a send call accepts a prefix of the slice and reports
//! how many messages the kernel took.
//!
//! [`bind_reuse`] also lives here: a TCP listener bound with
//! `SO_REUSEADDR`, so a restarted receiver daemon can rebind its control
//! port immediately while the previous incarnation's accepted sockets
//! linger in TIME_WAIT — the server half of the sender-side reconnect
//! policy.

// Datapath module: a panicking branch here takes the whole fleet down,
// so `unwrap`/`expect` are denied outright (errors must travel as values).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::io;
use std::net::{SocketAddr, TcpListener, UdpSocket};

/// Most datagrams moved per batched syscall. One SLoPS stream is ~100
/// packets and a train ~50; 32 keeps per-call buffer memory small while
/// still cutting syscall counts by an order of magnitude under load.
pub const MAX_BATCH: usize = 32;

#[cfg(target_os = "linux")]
#[allow(unsafe_code)] // FFI onto recvmmsg/sendmmsg/setsockopt of the libc std links.
mod sys {
    use std::io;
    use std::net::{SocketAddr, TcpListener, UdpSocket};
    use std::os::fd::{AsRawFd, FromRawFd};
    use std::ptr;

    use super::MAX_BATCH;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    // glibc/musl x86-64 `struct msghdr` layout (repr(C) inserts the
    // 4-byte pad after `namelen` exactly where the C definition has it).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MsgHdr {
        name: *mut u8,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut u8,
        controllen: usize,
        flags: i32,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    impl MMsgHdr {
        fn empty() -> MMsgHdr {
            MMsgHdr {
                hdr: MsgHdr {
                    name: ptr::null_mut(),
                    namelen: 0,
                    iov: ptr::null_mut(),
                    iovlen: 0,
                    control: ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            }
        }
    }

    extern "C" {
        fn recvmmsg(fd: i32, vec: *mut MMsgHdr, vlen: u32, flags: i32, timeout: *mut u8) -> i32;
        fn sendmmsg(fd: i32, vec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// One `recvmmsg` call: fills `bufs[i]` and `lens[i]` for each of the
    /// returned datagrams. `WouldBlock` when the socket is empty.
    pub fn recv_batch(
        sock: &UdpSocket,
        bufs: &mut [Vec<u8>],
        lens: &mut [usize],
    ) -> io::Result<usize> {
        let n = bufs.len().min(MAX_BATCH);
        let mut iovs = [IoVec {
            base: ptr::null_mut(),
            len: 0,
        }; MAX_BATCH];
        let mut msgs = [MMsgHdr::empty(); MAX_BATCH];
        for i in 0..n {
            iovs[i] = IoVec {
                base: bufs[i].as_mut_ptr(),
                len: bufs[i].len(),
            };
            msgs[i].hdr.iov = &mut iovs[i];
            msgs[i].hdr.iovlen = 1;
        }
        // SAFETY: every msg/iovec entry in `msgs[..n]` points into the
        // caller's live `bufs` slices, which outlive the call; the kernel
        // writes at most `bufs[i].len()` bytes per datagram and no
        // timeout struct is passed (null).
        let got = unsafe {
            recvmmsg(
                sock.as_raw_fd(),
                msgs.as_mut_ptr(),
                n as u32,
                0,
                ptr::null_mut(),
            )
        };
        if got < 0 {
            return Err(io::Error::last_os_error());
        }
        let got = got as usize;
        for i in 0..got {
            lens[i] = msgs[i].len as usize;
        }
        Ok(got)
    }

    /// One `sendmmsg` call over a *connected* socket: sends a prefix of
    /// `msgs`, returning how many the kernel accepted. `WouldBlock` when
    /// it accepted none.
    pub fn send_batch(sock: &UdpSocket, msgs: &[Vec<u8>]) -> io::Result<usize> {
        let n = msgs.len().min(MAX_BATCH);
        let mut iovs = [IoVec {
            base: ptr::null_mut(),
            len: 0,
        }; MAX_BATCH];
        let mut hdrs = [MMsgHdr::empty(); MAX_BATCH];
        for i in 0..n {
            iovs[i] = IoVec {
                // sendmmsg never writes through the iovec; the mut cast is
                // an artifact of sharing `struct iovec` with the read path.
                base: msgs[i].as_ptr() as *mut u8,
                len: msgs[i].len(),
            };
            hdrs[i].hdr.iov = &mut iovs[i];
            hdrs[i].hdr.iovlen = 1;
        }
        // SAFETY: every header in `hdrs[..n]` points into the caller's
        // live `msgs` buffers, which outlive the call; sendmmsg only
        // reads through the iovecs and only writes the per-entry `len`
        // fields inside `hdrs`.
        let sent = unsafe { sendmmsg(sock.as_raw_fd(), hdrs.as_mut_ptr(), n as u32, 0) };
        if sent < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(sent as usize)
    }

    const AF_INET: i32 = 2;
    const AF_INET6: i32 = 10;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0x80000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    /// A TCP listener bound with `SO_REUSEADDR` (see module docs).
    pub fn bind_reuse(addr: SocketAddr) -> io::Result<TcpListener> {
        let domain = match addr {
            SocketAddr::V4(_) => AF_INET,
            SocketAddr::V6(_) => AF_INET6,
        };
        // SAFETY: socket(2) takes no pointers; the return is checked.
        let fd = unsafe { socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fail = |fd: i32| {
            let err = io::Error::last_os_error();
            // SAFETY: `fd` was just created above, is owned by this
            // function, and is closed exactly once on this error path.
            unsafe { close(fd) };
            Err(err)
        };
        let one: i32 = 1;
        // SAFETY: `one` is a live i32 and the passed length is its exact
        // size; the kernel only reads it.
        if unsafe { setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) } != 0 {
            return fail(fd);
        }
        // sockaddr_in / sockaddr_in6, hand-packed: family is host order,
        // port and address are network order.
        let mut raw = [0u8; 28];
        let raw_len: u32 = match addr {
            SocketAddr::V4(a) => {
                raw[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
                raw[2..4].copy_from_slice(&a.port().to_be_bytes());
                raw[4..8].copy_from_slice(&a.ip().octets());
                16
            }
            SocketAddr::V6(a) => {
                raw[0..2].copy_from_slice(&(AF_INET6 as u16).to_ne_bytes());
                raw[2..4].copy_from_slice(&a.port().to_be_bytes());
                raw[4..8].copy_from_slice(&a.flowinfo().to_be_bytes());
                raw[8..24].copy_from_slice(&a.ip().octets());
                raw[24..28].copy_from_slice(&a.scope_id().to_ne_bytes());
                28
            }
        };
        // SAFETY: `raw` is a live, hand-packed sockaddr of `raw_len`
        // bytes (16 for v4, 28 for v6); the kernel only reads it.
        if unsafe { bind(fd, raw.as_ptr(), raw_len) } != 0 {
            return fail(fd);
        }
        // SAFETY: no pointers; the return is checked.
        if unsafe { listen(fd, 128) } != 0 {
            return fail(fd);
        }
        // SAFETY: `fd` is a freshly created, bound, listening TCP socket
        // owned by this function; ownership transfers to the listener,
        // which becomes its sole closer.
        Ok(unsafe { TcpListener::from_raw_fd(fd) })
    }
}

/// A TCP listener for a server control port: bound with `SO_REUSEADDR` on
/// Linux so a restarted receiver can rebind immediately (TIME_WAIT from
/// the previous incarnation's accepted sockets does not block it); a
/// plain [`TcpListener::bind`] elsewhere.
pub fn bind_reuse(addr: SocketAddr) -> io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    {
        sys::bind_reuse(addr)
    }
    #[cfg(not(target_os = "linux"))]
    {
        TcpListener::bind(addr)
    }
}

/// Reusable buffers for batched datagram receives.
///
/// One [`UdpRecvBatch::recv`] call is one kernel crossing: `recvmmsg` on
/// Linux, a scalar `recv_from` loop elsewhere (or when
/// [`UdpRecvBatch::set_scalar`] forces it). Either way it returns at
/// least one datagram or `WouldBlock`, and the received payloads are read
/// back with [`UdpRecvBatch::msg`].
#[derive(Debug)]
pub struct UdpRecvBatch {
    bufs: Vec<Vec<u8>>,
    lens: Vec<usize>,
    scalar: bool,
}

impl UdpRecvBatch {
    /// Buffers for up to `max_msgs` datagrams of up to `buf_len` bytes
    /// each (both clamped to sane minimums; `max_msgs` additionally to
    /// [`MAX_BATCH`]).
    pub fn new(max_msgs: usize, buf_len: usize) -> UdpRecvBatch {
        let max_msgs = max_msgs.clamp(1, MAX_BATCH);
        let buf_len = buf_len.max(64);
        UdpRecvBatch {
            bufs: vec![vec![0u8; buf_len]; max_msgs],
            lens: vec![0; max_msgs],
            scalar: cfg!(not(target_os = "linux")),
        }
    }

    /// Force the scalar receive loop even where `recvmmsg` is available
    /// (the batching-correctness test pins both paths identical). Off
    /// Linux the scalar loop is always used regardless.
    pub fn set_scalar(&mut self, scalar: bool) {
        self.scalar = scalar || cfg!(not(target_os = "linux"));
    }

    /// True when receives run the scalar loop.
    pub fn is_scalar(&self) -> bool {
        self.scalar
    }

    /// Receive a batch from `sock` (which must be non-blocking): `Ok(n)`
    /// with `n >= 1` datagrams now readable via [`UdpRecvBatch::msg`], or
    /// `WouldBlock` when the socket is empty.
    pub fn recv(&mut self, sock: &UdpSocket) -> io::Result<usize> {
        #[cfg(target_os = "linux")]
        if !self.scalar {
            return sys::recv_batch(sock, &mut self.bufs, &mut self.lens);
        }
        self.recv_scalar(sock)
    }

    fn recv_scalar(&mut self, sock: &UdpSocket) -> io::Result<usize> {
        let mut got = 0;
        while got < self.bufs.len() {
            match sock.recv_from(&mut self.bufs[got]) {
                Ok((len, _)) => {
                    self.lens[got] = len;
                    got += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    if got == 0 {
                        return Err(e);
                    }
                    break;
                }
            }
        }
        if got == 0 {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "no datagrams"));
        }
        Ok(got)
    }

    /// The `i`-th datagram of the last [`UdpRecvBatch::recv`] batch.
    pub fn msg(&self, i: usize) -> &[u8] {
        &self.bufs[i][..self.lens[i]]
    }
}

/// Send a slice of datagrams over a *connected* non-blocking socket in
/// one `sendmmsg` call (Linux) or a scalar `send` loop: returns how many
/// messages the kernel accepted (a prefix of `msgs`), or `WouldBlock`
/// when it accepted none.
pub fn send_batch(sock: &UdpSocket, msgs: &[Vec<u8>]) -> io::Result<usize> {
    if msgs.is_empty() {
        return Ok(0);
    }
    #[cfg(target_os = "linux")]
    {
        sys::send_batch(sock, msgs)
    }
    #[cfg(not(target_os = "linux"))]
    {
        send_batch_scalar(sock, msgs)
    }
}

#[cfg_attr(target_os = "linux", allow(dead_code))]
fn send_batch_scalar(sock: &UdpSocket, msgs: &[Vec<u8>]) -> io::Result<usize> {
    let mut sent = 0;
    for msg in msgs.iter().take(MAX_BATCH) {
        match sock.send(msg) {
            Ok(_) => sent += 1,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                if sent == 0 {
                    return Err(e);
                }
                // A prefix went out; the error resurfaces on the next call.
                break;
            }
        }
    }
    Ok(sent)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn pair() -> (UdpSocket, UdpSocket) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.connect(b.local_addr().unwrap()).unwrap();
        b.connect(a.local_addr().unwrap()).unwrap();
        (a, b)
    }

    fn recv_roundtrip(scalar: bool) {
        let (tx, rx) = pair();
        rx.set_nonblocking(true).unwrap();
        let mut batch = UdpRecvBatch::new(8, 64);
        batch.set_scalar(scalar);
        assert_eq!(
            batch.recv(&rx).unwrap_err().kind(),
            io::ErrorKind::WouldBlock,
            "empty socket"
        );
        for i in 0..5u8 {
            tx.send(&[i, i, i]).unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut seen = Vec::new();
        while seen.len() < 5 {
            match batch.recv(&rx) {
                Ok(n) => {
                    for i in 0..n {
                        seen.push(batch.msg(i).to_vec());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(5))
                }
                Err(e) => panic!("recv: {e}"),
            }
        }
        let want: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i, i, i]).collect();
        assert_eq!(seen, want, "order and payloads preserved");
    }

    #[test]
    fn scalar_recv_batch_preserves_order() {
        recv_roundtrip(true);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn batched_recv_matches_scalar_semantics() {
        recv_roundtrip(false);
    }

    #[test]
    fn send_batch_delivers_all_payloads_in_order() {
        let (tx, rx) = pair();
        tx.set_nonblocking(true).unwrap();
        let msgs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 4]).collect();
        let mut off = 0;
        while off < msgs.len() {
            off += send_batch(&tx, &msgs[off..]).unwrap();
        }
        rx.set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        let mut buf = [0u8; 64];
        for want in &msgs {
            let n = rx.recv(&mut buf).unwrap();
            assert_eq!(&buf[..n], &want[..]);
        }
    }

    #[test]
    fn bind_reuse_allows_immediate_rebind_after_close() {
        use std::io::Read;
        let l = bind_reuse("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = l.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            let mut b = [0u8; 1];
            let _ = s.read(&mut b);
        });
        let (s, _) = l.accept().unwrap();
        // Server closes first: its side of the connection enters
        // TIME_WAIT, which without SO_REUSEADDR blocks rebinding the port.
        drop(s);
        drop(l);
        t.join().unwrap();
        bind_reuse(addr).expect("immediate rebind of the same port");
    }
}
