//! # pathload-net — SLoPS over real sockets
//!
//! A faithful implementation of the pathload tool's transport (§IV):
//! UDP periodic probe streams timestamped at both ends, with a TCP control
//! channel that announces streams, acknowledges them, and carries the
//! receiver's per-packet records back to the sender. The receiver is
//! **session-multiplexing**: one control port and one shared UDP probe
//! socket serve any number of concurrent senders, demuxed by the session
//! token minted at `Hello` and carried in every probe packet (wire
//! protocol v2). The sender side
//! implements [`slops::ProbeTransport`], so the *same* estimation code that
//! runs over the simulator runs over a real network: the `pathload_snd`
//! binary calls the blocking `slops::Session::run` driver, which executes
//! the sans-IO `slops::SessionMachine` command by command over this
//! transport.
//!
//! Layout:
//!
//! * [`proto`] — wire formats: UDP probe packets and framed control
//!   messages (hand-rolled, dependency-free encoding).
//! * [`clock`] — monotonic nanosecond clocks. Sender and receiver use
//!   *different epochs* on purpose: SLoPS needs only relative OWDs.
//! * [`pacing`] — absolute-deadline packet pacing (sleep-then-spin), the
//!   part of a measurement tool a general-purpose runtime cannot do; this
//!   is why the crate uses plain threads — or its own readiness loop —
//!   instead of an async executor.
//! * [`mux`] — the readiness event loop: an epoll [`mux::Poller`] plus a
//!   deadline [`mux::TimerQueue`] (pacing deadlines as timer entries),
//!   combined in [`mux::EventLoop`]. No executor dependency: epoll is
//!   called straight through the C library `std` already links.
//! * [`evented`] — [`EventedSession`], the non-blocking driver of the
//!   sans-IO machine over this transport: commands go out on
//!   writability/timer expiry, events come back on readability, so one
//!   thread can multiplex hundreds of concurrent sessions (the
//!   `monitord --driver async` fleet).
//! * [`batch`] — the kernel-fast datapath: `recvmmsg`/`sendmmsg`
//!   batching (one syscall, many datagrams) behind scalar fallbacks, and
//!   a `SO_REUSEADDR` listener bind so a restarted receiver reclaims its
//!   port through `TIME_WAIT`.
//! * [`receiver`] — the threaded `pathload_rcv` side: accepts concurrent
//!   sender sessions (a thread per session plus a demux thread), demuxes
//!   the shared probe socket by session token, collects (de-duplicating,
//!   loss-tolerant), timestamps arrivals, ships records back.
//! * [`receiver_evented`] — [`EventedReceiver`], the same receiver
//!   contract hosted on one [`mux::EventLoop`] thread: non-blocking
//!   accept, per-session control state machines, batched probe reads,
//!   silence windows as timer entries. Thousands of sessions, one
//!   thread.
//! * [`sender`] — the `pathload_snd` side: [`SocketTransport`].
//! * [`driver`] — [`SocketDriver`], the explicit command/event pump of the
//!   sans-IO `slops::SessionMachine` over this transport (the reference
//!   mapping a new transport driver should copy; see `docs/DRIVERS.md`).
//!
//! Binaries `pathload_snd` / `pathload_rcv` wrap these (see `src/bin`).
//!
//! Localhost quick start (two terminals):
//!
//! ```text
//! pathload_rcv 127.0.0.1:9100
//! pathload_snd 127.0.0.1:9100
//! ```

// `deny`, not `forbid`: the exceptions are the FFI blocks in `mux::sys`
// (epoll) and `batch::sys` (`recvmmsg`/`sendmmsg`/`SO_REUSEADDR`) wrapping
// syscalls std links but does not expose; each opts in explicitly with
// `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]

pub mod batch;
pub mod clock;
pub mod driver;
// The evented driver registers raw fds (`std::os::fd`), a Unix-only
// surface; the blocking driver stays fully portable.
#[cfg(unix)]
pub mod evented;
pub mod mux;
pub mod pacing;
pub mod proto;
pub mod receiver;
#[cfg(unix)]
pub mod receiver_evented;
pub mod sender;

pub use batch::UdpRecvBatch;
pub use driver::SocketDriver;
#[cfg(unix)]
pub use evented::{EventedSession, SessionTokens};
pub use receiver::{AcceptBackoff, Receiver};
#[cfg(unix)]
pub use receiver_evented::{EventedReceiver, EventedReceiverHandle};
pub use sender::SocketTransport;
