//! # pathload-net — SLoPS over real sockets
//!
//! A faithful implementation of the pathload tool's transport (§IV):
//! UDP periodic probe streams timestamped at both ends, with a TCP control
//! channel that announces streams, acknowledges them, and carries the
//! receiver's per-packet records back to the sender. The receiver is
//! **session-multiplexing**: one control port and one shared UDP probe
//! socket serve any number of concurrent senders, demuxed by the session
//! token minted at `Hello` and carried in every probe packet (wire
//! protocol v2). The sender side
//! implements [`slops::ProbeTransport`], so the *same* estimation code that
//! runs over the simulator runs over a real network: the `pathload_snd`
//! binary calls the blocking `slops::Session::run` driver, which executes
//! the sans-IO `slops::SessionMachine` command by command over this
//! transport.
//!
//! Layout:
//!
//! * [`proto`] — wire formats: UDP probe packets and framed control
//!   messages (hand-rolled, dependency-free encoding).
//! * [`clock`] — monotonic nanosecond clocks. Sender and receiver use
//!   *different epochs* on purpose: SLoPS needs only relative OWDs.
//! * [`pacing`] — absolute-deadline packet pacing (sleep-then-spin), the
//!   part of a measurement tool a general-purpose runtime cannot do; this
//!   is why the crate uses plain threads instead of an async executor.
//! * [`receiver`] — the `pathload_rcv` side: accepts concurrent sender
//!   sessions, demuxes the shared probe socket by session token, collects
//!   (de-duplicating, loss-tolerant), timestamps arrivals, ships records
//!   back.
//! * [`sender`] — the `pathload_snd` side: [`SocketTransport`].
//! * [`driver`] — [`SocketDriver`], the explicit command/event pump of the
//!   sans-IO `slops::SessionMachine` over this transport (the reference
//!   mapping a new transport driver should copy; see `docs/DRIVERS.md`).
//!
//! Binaries `pathload_snd` / `pathload_rcv` wrap these (see `src/bin`).
//!
//! Localhost quick start (two terminals):
//!
//! ```text
//! pathload_rcv 127.0.0.1:9100
//! pathload_snd 127.0.0.1:9100
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod driver;
pub mod pacing;
pub mod proto;
pub mod receiver;
pub mod sender;

pub use driver::SocketDriver;
pub use receiver::{AcceptBackoff, Receiver};
pub use sender::SocketTransport;
