//! The receiver side (`pathload_rcv`): timestamps probe arrivals and ships
//! records back over the control channel.

use crate::clock::MonoClock;
use crate::proto::{CtrlMsg, ProbeKind, ProbePacket, SampleWire};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::time::Duration;

/// The pathload receiver: one TCP control listener plus one UDP probe
/// socket.
pub struct Receiver {
    listener: TcpListener,
    udp: UdpSocket,
    clock: MonoClock,
}

impl Receiver {
    /// Bind to `addr` (use port 0 for an ephemeral port). The UDP socket
    /// binds to the same IP with its own (ephemeral) port, which is
    /// advertised to each sender in the `Hello`.
    pub fn bind(addr: SocketAddr) -> io::Result<Receiver> {
        let listener = TcpListener::bind(addr)?;
        let mut udp_addr = listener.local_addr()?;
        udp_addr.set_port(0);
        let udp = UdpSocket::bind(udp_addr)?;
        udp.set_read_timeout(Some(Duration::from_millis(50)))?;
        Ok(Receiver {
            listener,
            udp,
            clock: MonoClock::new(),
        })
    }

    /// The control-channel address senders should connect to.
    pub fn ctrl_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// Serve exactly one sender session (blocking), then return.
    pub fn serve_one(&self) -> io::Result<()> {
        let (mut ctrl, _peer) = self.listener.accept()?;
        ctrl.set_nodelay(true)?;
        let udp_port = self.udp.local_addr()?.port();
        CtrlMsg::Hello { udp_port }.write_to(&mut ctrl)?;
        loop {
            let msg = match CtrlMsg::read_from(&mut ctrl) {
                Ok(m) => m,
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
                Err(e) => return Err(e),
            };
            match msg {
                CtrlMsg::StreamAnnounce {
                    id,
                    count,
                    period_ns,
                    size: _,
                } => {
                    self.drain_udp();
                    CtrlMsg::Ready { id }.write_to(&mut ctrl)?;
                    let samples = self.collect_stream(id, count, period_ns);
                    CtrlMsg::StreamReport { id, samples }.write_to(&mut ctrl)?;
                }
                CtrlMsg::TrainAnnounce { id, count, size: _ } => {
                    self.drain_udp();
                    CtrlMsg::Ready { id }.write_to(&mut ctrl)?;
                    let (received, first_ns, last_ns) = self.collect_train(id, count);
                    CtrlMsg::TrainReport {
                        id,
                        received,
                        first_ns,
                        last_ns,
                    }
                    .write_to(&mut ctrl)?;
                }
                CtrlMsg::Echo { token } => {
                    CtrlMsg::Echo { token }.write_to(&mut ctrl)?;
                }
                CtrlMsg::Bye => return Ok(()),
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected control message {other:?}"),
                    ))
                }
            }
        }
    }

    /// Discard any stale datagrams from previous streams.
    fn drain_udp(&self) {
        let mut buf = [0u8; 2048];
        let _ = self.udp.set_read_timeout(Some(Duration::from_micros(1)));
        while self.udp.recv_from(&mut buf).is_ok() {}
        let _ = self.udp.set_read_timeout(Some(Duration::from_millis(50)));
    }

    /// Collect packets of stream `id` until all `count` arrived or the
    /// stream has clearly ended (nominal duration plus a grace period).
    fn collect_stream(&self, id: u32, count: u32, period_ns: u64) -> Vec<SampleWire> {
        let mut samples = Vec::with_capacity(count as usize);
        let mut buf = [0u8; 2048];
        let start = self.clock.now_ns();
        // Arm-to-end budget: 2 s to start + nominal duration + 1 s grace.
        let deadline = start + 2_000_000_000 + count as u64 * period_ns + 1_000_000_000;
        while (samples.len() as u32) < count && self.clock.now_ns() < deadline {
            match self.udp.recv_from(&mut buf) {
                Ok((n, _from)) => {
                    let recv_ns = self.clock.now_ns();
                    if let Some(p) = ProbePacket::decode(&buf[..n]) {
                        if p.kind == ProbeKind::Stream && p.id == id {
                            samples.push(SampleWire {
                                idx: p.idx,
                                send_ns: p.send_ns,
                                recv_ns,
                            });
                        }
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // If we have seen the last index already, or nothing new
                    // arrives after the stream should be over, stop early.
                    if samples
                        .last()
                        .is_some_and(|s: &SampleWire| s.idx + 1 == count)
                    {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        samples
    }

    fn collect_train(&self, id: u32, count: u32) -> (u32, u64, u64) {
        let mut received = 0u32;
        let mut first_ns = 0u64;
        let mut last_ns = 0u64;
        let mut buf = [0u8; 2048];
        let start = self.clock.now_ns();
        let deadline = start + 5_000_000_000;
        while received < count && self.clock.now_ns() < deadline {
            match self.udp.recv_from(&mut buf) {
                Ok((n, _)) => {
                    let recv_ns = self.clock.now_ns();
                    if let Some(p) = ProbePacket::decode(&buf[..n]) {
                        if p.kind == ProbeKind::Train && p.id == id {
                            if received == 0 {
                                first_ns = recv_ns;
                            }
                            last_ns = recv_ns;
                            received += 1;
                        }
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if received > 0 {
                        // Back-to-back train: 50 ms of silence means it ended
                        // (possibly with losses).
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        (received, first_ns, last_ns)
    }

    /// Serve sessions forever (for the `pathload_rcv` binary).
    pub fn serve_forever(&self) -> io::Result<()> {
        loop {
            if let Err(e) = self.serve_one() {
                eprintln!("session error: {e}");
            }
        }
    }
}

/// Connect a control channel to a receiver and perform the hello exchange.
/// Returns the stream and the receiver's UDP port.
pub(crate) fn connect_ctrl(addr: SocketAddr) -> io::Result<(TcpStream, u16)> {
    let mut ctrl = TcpStream::connect(addr)?;
    ctrl.set_nodelay(true)?;
    ctrl.set_read_timeout(Some(Duration::from_secs(30)))?;
    match CtrlMsg::read_from(&mut ctrl)? {
        CtrlMsg::Hello { udp_port } => Ok((ctrl, udp_port)),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected Hello, got {other:?}"),
        )),
    }
}
