//! The receiver side (`pathload_rcv`): timestamps probe arrivals and ships
//! records back over the control channel — for **many concurrent senders**
//! on one control port and one shared UDP socket.
//!
//! Session multiplexing works like this:
//!
//! * every accepted control connection becomes a *session*: the receiver
//!   mints a session token, registers a collector channel under it, and
//!   advertises the token (plus the shared UDP port) in the `Hello`;
//! * the sender stamps the token into every [`ProbePacket`] it emits;
//! * one background *demux* thread owns the shared UDP socket: it
//!   timestamps each datagram at arrival, decodes the header, and routes
//!   the packet to the owning session's collector by token. Datagrams
//!   carrying an unknown (stale, never-issued, foreign) token are dropped,
//!   so a late packet from a finished session can never contaminate a live
//!   collection. Tokens count up from a random 64-bit base, so an off-path
//!   attacker cannot guess a live one; collector channels are bounded, so
//!   a datagram flood cannot grow receiver memory;
//! * [`Receiver::serve_forever`] accepts concurrently, one thread per
//!   session, with bounded backoff on persistent accept errors (EMFILE &
//!   co.) so a starved listener does not hot-loop at 100% CPU.
//!
//! Collection is loss- and reorder-tolerant: stream packets are
//! de-duplicated on index (a duplicated datagram is counted once), and a
//! stream with a lost or reordered tail stops after a short silence window
//! once its nominal duration has passed instead of blocking for the full
//! multi-second deadline.

// Datapath module: a panicking branch here takes the whole fleet down,
// so `unwrap`/`expect` are denied outright (errors must travel as values).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::clock::MonoClock;
use crate::proto::{CtrlMsg, ProbeKind, ProbePacket, SampleWire, DENY_AT_CAPACITY, PROTO_VERSION};
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver as ChanReceiver, RecvTimeoutError, SyncSender};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;
use telemetry::Counter;

/// A probe packet as the demux thread hands it to a session's collector:
/// decoded header plus the arrival timestamp (receiver clock, stamped at
/// the socket read, before any queueing).
#[derive(Clone, Copy, Debug)]
struct Arrival {
    packet: ProbePacket,
    recv_ns: u64,
}

type Registry = Mutex<HashMap<u64, SyncSender<Arrival>>>;

/// How long a collector waits on its channel per wakeup (also bounds how
/// fast the demux thread notices shutdown). The evented receiver uses the
/// same period for its collection-check timers, so both shapes notice
/// silence windows and deadlines at the same cadence.
pub(crate) const POLL_TIMEOUT: Duration = Duration::from_millis(50);

/// Bound on a session's collector channel. Far above any stream or train
/// the sender announces (default stream length is 100 packets), so a
/// datagram flood cannot grow receiver memory without bound — the demux
/// drops for that session once full (dropped probes read as loss, which
/// collection already tolerates) and other sessions are unaffected.
const COLLECTOR_CAPACITY: usize = 4096;

/// Upper bound on the `count` a single announce may name. Collection
/// allocates per-stream state proportional to `count` (the seen-index
/// set, the sample vector), so without a cap one malicious
/// `StreamAnnounce { count: u32::MAX, .. }` frame would make the receiver
/// allocate gigabytes. Far above any real configuration (default stream
/// length is 100 packets); an announce beyond it is a protocol error that
/// closes the offending session — other sessions are unaffected.
pub const MAX_ANNOUNCE_COUNT: u32 = 1 << 16;

/// A stream whose nominal duration has passed is considered over after
/// this much silence (covers a lost or reordered final packet without
/// waiting out the full deadline).
pub(crate) const STREAM_SILENCE_NS: u64 = 200_000_000;

/// A back-to-back train is considered over after this much silence.
pub(crate) const TRAIN_SILENCE_NS: u64 = 50_000_000;

/// A session whose collections have dropped at least this many datagrams
/// (duplicates, malformed indices) earns a stderr warning — silent loss of
/// this magnitude usually means a broken sender or a duplicating path.
pub(crate) const DROP_WARN_THRESHOLD: u64 = 32;

/// Minimum spacing between drop warnings across all sessions, so a flood
/// of duplicates cannot turn the log into its own flood.
pub(crate) const DROP_WARN_INTERVAL_NS: u64 = 5_000_000_000;

/// Route/drop accounting for the shared demux thread and the per-session
/// collectors. Dropping a datagram is often *by design* here (stale
/// tokens, duplicated datagrams, bounded collector channels); these
/// counters make the by-design drops visible instead of silent. Handles
/// are created at [`Receiver::bind`] time and can be attached to any
/// [`telemetry::Registry`] later via [`Receiver::register_metrics`].
///
/// The evented receiver shares this struct (and [`RecvCounters::register`])
/// so both receiver shapes expose the exact same metric families — the
/// structural-equivalence test pins that.
#[derive(Clone, Debug, Default)]
pub(crate) struct RecvCounters {
    /// Datagrams routed to a live session's collector.
    pub(crate) routed: Counter,
    /// Datagrams carrying a token no live session owns (stale session,
    /// never issued, foreign).
    pub(crate) drop_unknown_token: Counter,
    /// Datagrams dropped because the owning session's collector channel
    /// was full (flood protection; reads as loss to the session).
    pub(crate) drop_collector_full: Counter,
    /// Stream/train packets discarded by a collector: duplicated datagram
    /// or out-of-range index.
    pub(crate) drop_dedup: Counter,
    /// Collections ended by the silence window instead of a complete
    /// arrival set (the missing tail is treated as lost).
    pub(crate) silence_stops: Counter,
    /// Control connections refused with `Deny` at the session cap.
    pub(crate) denied: Counter,
}

impl RecvCounters {
    /// Register every family under its canonical name (both receiver
    /// shapes go through here, so the families can never drift apart).
    pub(crate) fn register(&self, reg: &telemetry::Registry) {
        reg.register_counter("receiver_demux_routed_total", &[], self.routed.clone());
        reg.register_counter(
            "receiver_demux_drops_total",
            &[("reason", "unknown_token")],
            self.drop_unknown_token.clone(),
        );
        reg.register_counter(
            "receiver_demux_drops_total",
            &[("reason", "collector_full")],
            self.drop_collector_full.clone(),
        );
        reg.register_counter(
            "receiver_demux_drops_total",
            &[("reason", "dedup")],
            self.drop_dedup.clone(),
        );
        reg.register_counter(
            "receiver_collect_silence_stops_total",
            &[],
            self.silence_stops.clone(),
        );
        reg.register_counter("receiver_sessions_denied_total", &[], self.denied.clone());
    }
}

fn lock_registry(reg: &Registry) -> MutexGuard<'_, HashMap<u64, SyncSender<Arrival>>> {
    // A poisoned registry only means some session thread panicked while
    // holding the (insert/remove-only) lock; the map itself stays sound.
    reg.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Session-serving state shared by the accept loop, the session threads,
/// and the demux thread.
struct Shared {
    udp_port: u16,
    clock: MonoClock,
    registry: Registry,
    next_token: AtomicU64,
    /// Concurrent-session cap; 0 = unlimited. When full, a new control
    /// connection is refused with a versioned `Deny` instead of `Hello`.
    /// (Atomic only so [`Receiver::with_max_sessions`] can set it after
    /// the demux thread already shares the struct.)
    max_sessions: AtomicUsize,
    counters: RecvCounters,
    /// Receiver-clock timestamp of the last drop warning (rate limiting).
    last_drop_warn_ns: AtomicU64,
}

/// The pathload receiver: one TCP control listener plus one **shared** UDP
/// probe socket, serving any number of concurrent sender sessions.
pub struct Receiver {
    listener: TcpListener,
    /// Bound control address, captured at bind time so `ctrl_addr` has no
    /// error (or panic) path.
    ctrl_addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    demux: Option<JoinHandle<()>>,
}

impl Receiver {
    /// Bind to `addr` (use port 0 for an ephemeral port). The UDP socket
    /// binds to the same IP with its own (ephemeral) port; that one port
    /// is shared by every session and advertised in each `Hello`. The
    /// demux thread routing its datagrams starts here and runs until the
    /// receiver is dropped.
    pub fn bind(addr: SocketAddr) -> io::Result<Receiver> {
        // SO_REUSEADDR: a restarted receiver daemon rebinds its control
        // port immediately even while the previous incarnation's accepted
        // sockets linger in TIME_WAIT (see `batch::bind_reuse`).
        let listener = crate::batch::bind_reuse(addr)?;
        let ctrl_addr = listener.local_addr()?;
        let mut udp_addr = ctrl_addr;
        udp_addr.set_port(0);
        let udp = UdpSocket::bind(udp_addr)?;
        udp.set_read_timeout(Some(POLL_TIMEOUT))?;
        // Tokens count up from a random 64-bit base (std's OS-seeded
        // hasher entropy): an off-path attacker who cannot observe the
        // control channel cannot guess a live token to spoof probe
        // datagrams into a session's collection.
        let token_base = RandomState::new().build_hasher().finish();
        let shared = Arc::new(Shared {
            udp_port: udp.local_addr()?.port(),
            clock: MonoClock::new(),
            registry: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(token_base),
            max_sessions: AtomicUsize::new(0),
            counters: RecvCounters::default(),
            last_drop_warn_ns: AtomicU64::new(0),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let demux = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            thread::spawn(move || demux_loop(&udp, &shared, &stop))
        };
        Ok(Receiver {
            listener,
            ctrl_addr,
            shared,
            stop,
            demux: Some(demux),
        })
    }

    /// The control-channel address senders should connect to.
    pub fn ctrl_addr(&self) -> SocketAddr {
        self.ctrl_addr
    }

    /// Cap concurrent sessions at `max` (`0` = unlimited, the default).
    ///
    /// A receiver serving a fleet cannot accept sessions unboundedly:
    /// every session costs a serving thread, a collector channel, and
    /// demux-registry space. Beyond the cap a new control connection is
    /// answered with a **versioned [`CtrlMsg::Deny`]** (code
    /// [`DENY_AT_CAPACITY`]) instead of `Hello` — the sender gets a clean
    /// "receiver at capacity" error instead of a hung or half-open
    /// session, and sessions already running are untouched.
    pub fn with_max_sessions(self, max: usize) -> Receiver {
        self.shared.max_sessions.store(max, Ordering::SeqCst);
        self
    }

    /// Attach this receiver's route/drop counters to `reg` so a scrape or
    /// digest sees them. The counters exist (and count) from
    /// [`Receiver::bind`] on; registering merely names them. Safe to call
    /// any number of times, on any number of registries.
    pub fn register_metrics(&self, reg: &telemetry::Registry) {
        self.shared.counters.register(reg);
    }

    /// Serve exactly one sender session (blocking), then return. Other
    /// sessions may be served concurrently by other calls or threads —
    /// the probe socket demux keeps them apart.
    pub fn serve_one(&self) -> io::Result<()> {
        let (ctrl, _peer) = self.listener.accept()?;
        self.shared.serve_session(ctrl)
    }

    /// Accept exactly `n` sender sessions, serve them **concurrently**
    /// (one thread each), and return once all have finished. Errors are
    /// reported only after every spawned session is joined — including
    /// when a later `accept` fails, so no session is left running
    /// detached with its outcome lost. The accept error (if any) wins
    /// over session errors.
    pub fn serve_n(&self, n: usize) -> io::Result<()> {
        let mut sessions = Vec::with_capacity(n);
        let mut accept_err = None;
        for _ in 0..n {
            match self.listener.accept() {
                Ok((ctrl, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    sessions.push(thread::spawn(move || shared.serve_session(ctrl)));
                }
                Err(e) => {
                    accept_err = Some(e);
                    break;
                }
            }
        }
        let mut first_err = accept_err;
        for handle in sessions {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    first_err.get_or_insert(e);
                }
                Err(_) => {
                    first_err.get_or_insert_with(|| io::Error::other("session thread panicked"));
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Serve sessions forever (for the `pathload_rcv` binary): accept
    /// concurrently, one detached thread per session. Session errors are
    /// logged and do not affect other sessions; accept errors are retried
    /// with bounded exponential backoff (a persistent failure such as
    /// EMFILE must not hot-loop the accept thread at 100% CPU).
    pub fn serve_forever(&self) -> io::Result<()> {
        let mut backoff = AcceptBackoff::new();
        loop {
            match self.listener.accept() {
                Ok((ctrl, _peer)) => {
                    backoff.on_success();
                    let shared = Arc::clone(&self.shared);
                    thread::spawn(move || {
                        if let Err(e) = shared.serve_session(ctrl) {
                            eprintln!("session error: {e}");
                        }
                    });
                }
                Err(e) => {
                    let delay = backoff.on_error();
                    eprintln!("accept error: {e} (retrying in {delay:?})");
                    thread::sleep(delay);
                }
            }
        }
    }
}

impl Drop for Receiver {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.demux.take() {
            let _ = handle.join();
        }
    }
}

/// Bounded exponential backoff for a failing `accept` loop: starts small
/// (a transient error costs almost nothing), doubles per consecutive
/// error, and caps so a persistent failure retries at a gentle steady
/// rate instead of spinning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AcceptBackoff {
    delay: Duration,
}

impl AcceptBackoff {
    /// Delay after the first error.
    pub const INITIAL: Duration = Duration::from_millis(10);
    /// Ceiling for consecutive errors.
    pub const MAX: Duration = Duration::from_secs(1);

    /// A fresh policy (next error waits [`AcceptBackoff::INITIAL`]).
    pub fn new() -> AcceptBackoff {
        AcceptBackoff {
            delay: Self::INITIAL,
        }
    }

    /// An accept succeeded: reset to the initial delay.
    pub fn on_success(&mut self) {
        self.delay = Self::INITIAL;
    }

    /// An accept failed: how long to sleep before retrying. Consecutive
    /// errors double the delay up to [`AcceptBackoff::MAX`].
    pub fn on_error(&mut self) -> Duration {
        let delay = self.delay;
        self.delay = (delay * 2).min(Self::MAX);
        delay
    }
}

impl Default for AcceptBackoff {
    fn default() -> Self {
        Self::new()
    }
}

/// The demux loop: read the shared probe socket, stamp arrivals, route by
/// session token. Runs until the receiver sets `stop`.
fn demux_loop(udp: &UdpSocket, shared: &Shared, stop: &AtomicBool) {
    let mut buf = [0u8; 2048];
    while !stop.load(Ordering::Relaxed) {
        match udp.recv_from(&mut buf) {
            Ok((n, _from)) => {
                let recv_ns = shared.clock.now_ns();
                // `recv_from` contracts n <= buf.len(); `get` keeps the
                // defensive bound out of the panic path.
                if let Some(packet) = buf.get(..n).and_then(ProbePacket::decode) {
                    // Unknown token (stale session, never issued): drop.
                    // A full collector also drops (never block the demux
                    // — other sessions' packets are behind this one).
                    if let Some(tx) = lock_registry(&shared.registry).get(&packet.session) {
                        match tx.try_send(Arrival { packet, recv_ns }) {
                            Ok(()) => shared.counters.routed.inc(),
                            Err(_) => shared.counters.drop_collector_full.inc(),
                        }
                    } else {
                        shared.counters.drop_unknown_token.inc();
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => {
                // Transient socket error: don't busy-loop on it.
                thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

impl Shared {
    fn mint_token(&self) -> u64 {
        self.next_token.fetch_add(1, Ordering::Relaxed)
    }

    /// Serve one control connection to completion: mint a session, say
    /// `Hello`, answer announces with collections, deregister on the way
    /// out (any exit path). A receiver at its session cap refuses the
    /// connection with a versioned `Deny` instead (see
    /// [`Receiver::with_max_sessions`]).
    fn serve_session(&self, mut ctrl: TcpStream) -> io::Result<()> {
        ctrl.set_nodelay(true)?;
        let token = self.mint_token();
        let (tx, arrivals) = mpsc::sync_channel(COLLECTOR_CAPACITY);
        {
            // Check-and-insert under one lock, so racing accepts cannot
            // both squeeze into the last slot.
            let mut registry = lock_registry(&self.registry);
            let max = self.max_sessions.load(Ordering::SeqCst);
            if max != 0 && registry.len() >= max {
                drop(registry);
                self.counters.denied.inc();
                CtrlMsg::Deny {
                    version: PROTO_VERSION,
                    code: DENY_AT_CAPACITY,
                }
                .write_to(&mut ctrl)?;
                return Ok(());
            }
            registry.insert(token, tx);
        }
        let result = self.session_loop(&mut ctrl, token, &arrivals);
        lock_registry(&self.registry).remove(&token);
        result
    }

    fn session_loop(
        &self,
        ctrl: &mut TcpStream,
        token: u64,
        arrivals: &ChanReceiver<Arrival>,
    ) -> io::Result<()> {
        CtrlMsg::Hello {
            version: PROTO_VERSION,
            udp_port: self.udp_port,
            session: token,
        }
        .write_to(ctrl)?;
        // Per-session drop tally across all of the session's collections
        // (the total counters aggregate every session; this one names the
        // offender in the warning).
        let mut session_drops = 0u64;
        loop {
            let msg = match CtrlMsg::read_from(ctrl) {
                Ok(m) => m,
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
                Err(e) => return Err(e),
            };
            match msg {
                CtrlMsg::StreamAnnounce {
                    id,
                    count,
                    period_ns,
                    size: _,
                } => {
                    check_count(count)?;
                    drain(arrivals);
                    CtrlMsg::Ready { id }.write_to(ctrl)?;
                    let (samples, dropped) = self.collect_stream(arrivals, id, count, period_ns);
                    session_drops += dropped;
                    self.maybe_warn_drops(token, session_drops);
                    CtrlMsg::StreamReport { id, samples }.write_to(ctrl)?;
                }
                CtrlMsg::TrainAnnounce { id, count, size: _ } => {
                    check_count(count)?;
                    drain(arrivals);
                    CtrlMsg::Ready { id }.write_to(ctrl)?;
                    let (received, first_ns, last_ns, dropped) =
                        self.collect_train(arrivals, id, count);
                    session_drops += dropped;
                    self.maybe_warn_drops(token, session_drops);
                    CtrlMsg::TrainReport {
                        id,
                        received,
                        first_ns,
                        last_ns,
                    }
                    .write_to(ctrl)?;
                }
                CtrlMsg::Echo { token } => {
                    CtrlMsg::Echo { token }.write_to(ctrl)?;
                }
                CtrlMsg::Bye => return Ok(()),
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected control message {other:?}"),
                    ))
                }
            }
        }
    }

    /// Collect packets of stream `id` until all `count` **distinct**
    /// indices arrived, or the stream has clearly ended: its nominal
    /// duration (measured from the first arrival) has passed and a
    /// silence window elapsed with nothing new — which covers a lost or
    /// reordered final packet without stalling to the full deadline.
    /// Duplicated datagrams are counted once (first arrival wins).
    /// Returns the samples plus how many datagrams the dedup discarded.
    fn collect_stream(
        &self,
        arrivals: &ChanReceiver<Arrival>,
        id: u32,
        count: u32,
        period_ns: u64,
    ) -> (Vec<SampleWire>, u64) {
        let mut samples = Vec::with_capacity(count as usize);
        let mut seen = vec![false; count as usize];
        let mut dropped = 0u64;
        let start = self.clock.now_ns();
        // Arm-to-end budget: 2 s to start + nominal duration + 1 s grace.
        let deadline = start + 2_000_000_000 + count as u64 * period_ns + 1_000_000_000;
        let mut first_arrival: Option<u64> = None;
        let mut last_activity = start;
        while (samples.len() as u32) < count && self.clock.now_ns() < deadline {
            match arrivals.recv_timeout(POLL_TIMEOUT) {
                Ok(Arrival { packet: p, recv_ns }) => {
                    if p.kind != ProbeKind::Stream || p.id != id {
                        continue; // leftover of an earlier train/stream
                    }
                    last_activity = recv_ns;
                    first_arrival.get_or_insert(recv_ns);
                    let idx = p.idx as usize;
                    match seen.get_mut(idx) {
                        // In range and fresh: mark and record below.
                        Some(mark @ false) => *mark = true,
                        // Malformed index or duplicated datagram.
                        _ => {
                            dropped += 1;
                            self.counters.drop_dedup.inc();
                            continue;
                        }
                    }
                    samples.push(SampleWire {
                        idx: p.idx,
                        send_ns: p.send_ns,
                        recv_ns,
                    });
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(first) = first_arrival {
                        let nominal_end = first + count as u64 * period_ns;
                        let now = self.clock.now_ns();
                        if now >= nominal_end
                            && now.saturating_sub(last_activity) >= STREAM_SILENCE_NS
                        {
                            // Stream over; the missing tail is lost.
                            self.counters.silence_stops.inc();
                            break;
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        (samples, dropped)
    }

    /// Collect a back-to-back train: distinct packets of train `id`,
    /// de-duplicated on index, until all arrived or a silence window
    /// passed after the first arrival. The last tuple element counts the
    /// datagrams the dedup discarded.
    fn collect_train(
        &self,
        arrivals: &ChanReceiver<Arrival>,
        id: u32,
        count: u32,
    ) -> (u32, u64, u64, u64) {
        let mut received = 0u32;
        let mut first_ns = 0u64;
        let mut last_ns = 0u64;
        let mut seen = vec![false; count as usize];
        let mut dropped = 0u64;
        let start = self.clock.now_ns();
        let deadline = start + 5_000_000_000;
        let mut last_activity = start;
        while received < count && self.clock.now_ns() < deadline {
            match arrivals.recv_timeout(POLL_TIMEOUT) {
                Ok(Arrival { packet: p, recv_ns }) => {
                    if p.kind != ProbeKind::Train || p.id != id {
                        continue;
                    }
                    last_activity = recv_ns;
                    let idx = p.idx as usize;
                    match seen.get_mut(idx) {
                        // In range and fresh: mark and count below.
                        Some(mark @ false) => *mark = true,
                        // Malformed index or duplicated datagram.
                        _ => {
                            dropped += 1;
                            self.counters.drop_dedup.inc();
                            continue;
                        }
                    }
                    if received == 0 {
                        first_ns = recv_ns;
                    }
                    last_ns = last_ns.max(recv_ns);
                    received += 1;
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Back-to-back train: a silence window after the first
                    // arrival means it ended (possibly with losses).
                    if received > 0
                        && self.clock.now_ns().saturating_sub(last_activity) >= TRAIN_SILENCE_NS
                    {
                        self.counters.silence_stops.inc();
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        (received, first_ns, last_ns, dropped)
    }

    /// Warn (rate-limited) once a session's collections have discarded a
    /// suspicious number of datagrams. The threshold keeps the occasional
    /// duplicated datagram quiet; the interval keeps a duplicate *flood*
    /// from flooding stderr too.
    fn maybe_warn_drops(&self, token: u64, session_drops: u64) {
        if session_drops < DROP_WARN_THRESHOLD {
            return;
        }
        let now = self.clock.now_ns();
        let last = self.last_drop_warn_ns.load(Ordering::Relaxed);
        if now.saturating_sub(last) < DROP_WARN_INTERVAL_NS {
            return;
        }
        if self
            .last_drop_warn_ns
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            eprintln!(
                "receiver: session {token:#018x} dropped {session_drops} \
                 duplicate/malformed probe datagrams ({} across all sessions)",
                self.counters.drop_dedup.get()
            );
        }
    }
}

/// Discard any arrivals buffered from this session's previous streams.
fn drain(arrivals: &ChanReceiver<Arrival>) {
    while arrivals.try_recv().is_ok() {}
}

/// Bound per-session collection memory: refuse an announce whose `count`
/// would make the receiver allocate absurd per-stream state (see
/// [`MAX_ANNOUNCE_COUNT`]). The offending session is closed with a
/// protocol error; other sessions are unaffected.
pub(crate) fn check_count(count: u32) -> io::Result<()> {
    if count > MAX_ANNOUNCE_COUNT {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("announced count {count} exceeds the {MAX_ANNOUNCE_COUNT} cap"),
        ));
    }
    Ok(())
}

/// Connect a control channel to a receiver and perform the hello
/// exchange. Returns the stream, the receiver's UDP port, and the minted
/// session token.
pub(crate) fn connect_ctrl(addr: SocketAddr) -> io::Result<(TcpStream, u16, u64)> {
    let mut ctrl = TcpStream::connect(addr)?;
    ctrl.set_nodelay(true)?;
    ctrl.set_read_timeout(Some(Duration::from_secs(30)))?;
    match CtrlMsg::read_from(&mut ctrl)? {
        CtrlMsg::Hello {
            version,
            udp_port,
            session,
        } => {
            if version != PROTO_VERSION {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("receiver speaks protocol v{version}, we speak v{PROTO_VERSION}"),
                ));
            }
            Ok((ctrl, udp_port, session))
        }
        CtrlMsg::Deny { version, code } => {
            let reason = match code {
                DENY_AT_CAPACITY => "receiver at its concurrent-session capacity",
                _ => "connection refused by receiver policy",
            };
            Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("{reason} (receiver speaks protocol v{version})"),
            ))
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected Hello, got {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let mut b = AcceptBackoff::new();
        let mut prev = Duration::ZERO;
        for _ in 0..20 {
            let d = b.on_error();
            assert!(d >= prev, "backoff shrank: {prev:?} -> {d:?}");
            assert!(d <= AcceptBackoff::MAX, "backoff above cap: {d:?}");
            prev = d;
        }
        assert_eq!(prev, AcceptBackoff::MAX, "persistent errors must cap");
        // The whole first minute of a persistent failure costs few retries.
        let mut b = AcceptBackoff::new();
        assert_eq!(b.on_error(), AcceptBackoff::INITIAL);
        assert_eq!(b.on_error(), AcceptBackoff::INITIAL * 2);
        assert_eq!(b.on_error(), AcceptBackoff::INITIAL * 4);
    }

    #[test]
    fn backoff_resets_on_success() {
        let mut b = AcceptBackoff::new();
        for _ in 0..10 {
            b.on_error();
        }
        b.on_success();
        assert_eq!(b.on_error(), AcceptBackoff::INITIAL);
    }

    #[test]
    fn tokens_are_unique_per_receiver() {
        let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let a = rx.shared.mint_token();
        let b = rx.shared.mint_token();
        assert_ne!(a, b);
    }

    /// Two receiver incarnations mint from different random bases: a
    /// token from one can essentially never be live on the other, so
    /// probes stamped with a pre-restart token are dropped by the demux
    /// instead of contaminating the restarted receiver's sessions.
    #[test]
    fn token_bases_differ_across_receiver_incarnations() {
        let a = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let base_a = a.shared.mint_token();
        drop(a);
        let b = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let base_b = b.shared.mint_token();
        assert_ne!(base_a, base_b, "restarted receiver reused its token base");
    }

    /// Beyond `with_max_sessions`, a connection is refused with a
    /// versioned `Deny` that `connect_ctrl` turns into a clean error;
    /// sessions already running are untouched.
    #[test]
    fn session_cap_refuses_with_versioned_deny() {
        let rx = Receiver::bind("127.0.0.1:0".parse().unwrap())
            .unwrap()
            .with_max_sessions(1);
        let addr = rx.ctrl_addr();
        let server = thread::spawn(move || {
            // First session occupies the only slot; second is denied.
            rx.serve_n(2)
        });
        let first = connect_ctrl(addr).expect("first session fits");
        let err = connect_ctrl(addr).expect_err("second session must be denied");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        let msg = err.to_string();
        assert!(msg.contains("capacity"), "{msg}");
        assert!(
            msg.contains(&format!("v{PROTO_VERSION}")),
            "deny must carry the receiver's protocol version: {msg}"
        );
        drop(first);
        server.join().unwrap().unwrap();
    }

    /// Datagrams carrying a token no live session owns are dropped *and
    /// counted*: the by-design drop is visible in the registry.
    #[test]
    fn unknown_token_datagrams_are_counted_as_drops() {
        use crate::proto::PROBE_HEADER_LEN;

        let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let reg = telemetry::Registry::new();
        rx.register_metrics(&reg);
        let drops = reg.counter("receiver_demux_drops_total", &[("reason", "unknown_token")]);
        let addr = rx.ctrl_addr();
        let server = thread::spawn(move || rx.serve_one());
        let (ctrl, udp_port, token) = connect_ctrl(addr).unwrap();
        let udp = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut buf = [0u8; PROBE_HEADER_LEN];
        ProbePacket {
            session: token.wrapping_add(0xdead), // never issued
            kind: ProbeKind::Stream,
            id: 1,
            idx: 0,
            send_ns: 0,
        }
        .encode(&mut buf);
        let target = SocketAddr::new(addr.ip(), udp_port);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while drops.get() == 0 && std::time::Instant::now() < deadline {
            udp.send_to(&buf, target).unwrap();
            thread::sleep(Duration::from_millis(10));
        }
        assert!(drops.get() > 0, "unknown-token drop was not counted");
        drop(ctrl);
        server.join().unwrap().unwrap();
    }

    /// An announce whose count would allocate absurd per-stream state is
    /// refused (the session closes with a protocol error).
    #[test]
    fn oversized_announce_is_rejected() {
        let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = rx.ctrl_addr();
        let server = thread::spawn(move || rx.serve_one());
        let (mut ctrl, _port, _session) = connect_ctrl(addr).unwrap();
        CtrlMsg::StreamAnnounce {
            id: 1,
            count: u32::MAX,
            period_ns: 1_000_000,
            size: 64,
        }
        .write_to(&mut ctrl)
        .unwrap();
        let err = server
            .join()
            .unwrap()
            .expect_err("announce must be refused");
        assert!(err.to_string().contains("cap"), "{err}");
    }
}
