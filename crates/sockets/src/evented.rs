//! The evented socket driver: the sans-IO machine pumped from readiness
//! events and timers instead of blocking calls.
//!
//! [`EventedSession`] is to an [`EventLoop`] what
//! [`SocketDriver`](crate::SocketDriver) is to a blocking thread: one
//! measurement session over one [`SocketTransport`], but driven strictly
//! by the DRIVERS.md contract with **no blocking call anywhere** — so a
//! single thread can host hundreds of these at once. The command→substrate
//! mapping is:
//!
//! | command | event-loop realization | event fed back |
//! |---|---|---|
//! | `SendTrain` | announce queued on ctrl writability; on `Ready`, blast UDP packets (resuming on UDP writability if the socket back-pressures) | `TrainDone` on the `TrainReport` frame |
//! | `SendStream(req)` | announce queued; on `Ready`, one **timer entry per packet deadline** (`t0 + i·period`), actual send instants recorded | `StreamDone` on the `StreamReport` frame |
//! | `Idle(d)` | a timer entry at `now + d` | `Tick(clock)` when it fires |
//! | `Finish(est)` | terminal: stamp `elapsed`, expose the outcome | — |
//!
//! Before the machine is built the session runs a short non-blocking RTT
//! phase (three control-channel echoes, median taken), mirroring what the
//! blocking `ProbeTransport::rtt` measures.
//!
//! There is **no estimation logic here** (the repo invariant): loss
//! accounting, spacing validation, trend classification and the rate
//! search all stay in `slops::SessionMachine`. A send that would block
//! mid-stream is recorded at its attempted instant and dropped — the
//! receiver sees it as loss, which the machine already judges.
//!
//! The host owns the event loop and the token space: it registers the
//! session ([`EventedSession::register`]) and routes every [`MuxEvent`]
//! whose token belongs to this session into [`EventedSession::on_event`].
//! When [`EventedSession::is_finished`] turns true the host takes the
//! transport and the outcome back with [`EventedSession::finish`].

// Datapath module: a panicking branch here takes the whole fleet down,
// so `unwrap`/`expect` are denied outright (errors must travel as values).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::mux::{EventLoop, Interest, MuxEvent};
use crate::proto::{CtrlMsg, ProbeKind, ProbePacket, PROBE_HEADER_LEN};
use crate::sender::{ctrl_error_text, stream_record, SocketTransport};
use slops::machine::{Command, Event, SessionMachine};
use slops::{Estimate, ProbeTransport, SlopsConfig, SlopsError, StreamRequest, TransportError};
use std::io::{self, Read, Write};
use std::os::fd::AsRawFd;
use std::sync::Arc;
use telemetry::{Histogram, TraceSink};
use units::TimeNs;

/// Number of control-channel echoes in the RTT phase (median taken).
const RTT_PROBES: usize = 3;

/// Lead-in before a stream's first packet (matches the blocking pacer).
const LEAD_IN_NS: u64 = 1_000_000;

/// The event-loop tokens one session registers under. The host allocates
/// them (disjoint per live session) and routes events back by them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionTokens {
    /// Token of the control TCP stream registration.
    pub ctrl: u64,
    /// Token of the probe UDP socket registration.
    pub probe: u64,
    /// Token this session's timer entries are armed with. The session
    /// arms plain (uncancellable) entries and relies on lazy
    /// cancellation, so the host must never reuse a timer token for a
    /// *later* session while entries may still be pending — tag it with a
    /// per-path generation (or arm through
    /// [`EventLoop::arm_timer_with_generation`] and cancel eagerly).
    pub timer: u64,
}

/// What the session is executing for the machine right now.
#[derive(Debug)]
enum Exec {
    /// RTT phase: echo `t_sent` is in flight, `rtts` collected so far.
    Rtt { t_sent: u64, rtts: Vec<u64> },
    /// An announce was queued; waiting for the `Ready` frame.
    AwaitReady(AfterReady),
    /// Mid-train: next packet to blast is `next` (resumes on UDP
    /// writability when the socket back-pressures). `bufs` are the
    /// per-message packet buffers of one `sendmmsg` batch, allocated once
    /// per train.
    BlastTrain {
        id: u32,
        len: u32,
        size: u32,
        next: u32,
        bufs: Vec<Vec<u8>>,
    },
    /// Train sent; waiting for the `TrainReport` frame.
    AwaitTrainReport { id: u32, len: u32, size: u32 },
    /// Mid-stream: packet `next`'s deadline is `t0 + next·period`; a
    /// timer entry is armed for it. `buf` is the packet buffer, allocated
    /// once per stream — the pacing path is timing-critical and must not
    /// touch the allocator per packet.
    PaceStream {
        id: u32,
        req: StreamRequest,
        t0: u64,
        next: u32,
        actual_send: Vec<u64>,
        buf: Vec<u8>,
    },
    /// Stream sent; waiting for the `StreamReport` frame.
    AwaitStreamReport {
        id: u32,
        req: StreamRequest,
        actual_send: Vec<u64>,
    },
    /// An `Idle` timer is armed; feeds `Tick` when it fires.
    AwaitTick,
    /// Terminal (estimate or error available).
    Done,
}

impl Exec {
    fn name(&self) -> &'static str {
        match self {
            Exec::Rtt { .. } => "Rtt",
            Exec::AwaitReady(_) => "AwaitReady",
            Exec::BlastTrain { .. } => "BlastTrain",
            Exec::AwaitTrainReport { .. } => "AwaitTrainReport",
            Exec::PaceStream { .. } => "PaceStream",
            Exec::AwaitStreamReport { .. } => "AwaitStreamReport",
            Exec::AwaitTick => "AwaitTick",
            Exec::Done => "Done",
        }
    }
}

/// What command execution is pending after a `Ready` frame.
#[derive(Debug)]
enum AfterReady {
    Train {
        id: u32,
        len: u32,
        size: u32,
    },
    Stream {
        id: u32,
        req: StreamRequest,
        size: u32,
    },
}

/// A shared trace sink with a `Debug` impl (the trait object itself has
/// none), so the session struct can keep deriving `Debug`.
struct SinkHandle(Arc<dyn TraceSink>);

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceSink")
    }
}

/// One measurement session driven by an event loop. See the module docs.
#[derive(Debug)]
pub struct EventedSession {
    transport: SocketTransport,
    /// Built after the RTT phase (the machine wants the RTT up front).
    machine: Option<SessionMachine>,
    /// Held until the machine is built.
    cfg: Option<SlopsConfig>,
    tokens: SessionTokens,
    start: TimeNs,
    /// Control-channel inbound bytes not yet forming a complete frame.
    rbuf: Vec<u8>,
    /// Control-channel outbound bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    exec: Exec,
    outcome: Option<Result<Estimate, SlopsError>>,
    registered: bool,
    /// Where the machine's trace events are forwarded (`None`: dropped).
    sink: Option<SinkHandle>,
    /// Per-packet pacing error (ns past each packet's send deadline);
    /// `None`: not recorded.
    pacing_hist: Option<Histogram>,
}

impl EventedSession {
    /// Start a session over `transport` (switched to non-blocking mode).
    /// The first activity — the RTT echoes — is queued immediately;
    /// nothing moves until the session is [`register`](Self::register)ed
    /// and events are routed in.
    ///
    /// On failure the transport travels back with the error, so a fleet
    /// host keeps its long-lived connection for the path's next attempt.
    pub fn new(
        mut transport: SocketTransport,
        cfg: SlopsConfig,
        tokens: SessionTokens,
    ) -> Result<EventedSession, (SocketTransport, SlopsError)> {
        if let Err(msg) = cfg.validate() {
            return Err((transport, SlopsError::BadConfig(msg)));
        }
        if let Err(e) = transport.set_nonblocking(true) {
            let err = SlopsError::Transport(TransportError::Io(e.to_string()));
            return Err((transport, err));
        }
        let start = transport.elapsed();
        let t_sent = transport.clock().now_ns();
        let mut session = EventedSession {
            transport,
            machine: None,
            cfg: Some(cfg),
            tokens,
            start,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            exec: Exec::Rtt {
                t_sent,
                rtts: Vec::with_capacity(RTT_PROBES),
            },
            outcome: None,
            registered: false,
            sink: None,
            pacing_hist: None,
        };
        CtrlMsg::Echo { token: 0 }.append_to(&mut session.wbuf);
        Ok(session)
    }

    /// Tear the session down before completion (e.g. the host failed to
    /// register it, or is abandoning the measurement): deregisters and
    /// returns the transport, back in blocking mode.
    pub fn abort(mut self, lp: &EventLoop) -> SocketTransport {
        self.deregister(lp);
        let _ = self.transport.set_nonblocking(false);
        self.transport
    }

    /// Register the session's sockets with the event loop under its
    /// tokens. The control stream starts read+write (the RTT echo is
    /// already queued); the probe socket starts dormant.
    pub fn register(&mut self, lp: &EventLoop) -> io::Result<()> {
        lp.register(
            self.transport.ctrl().as_raw_fd(),
            self.tokens.ctrl,
            self.ctrl_interest(),
        )?;
        lp.register(
            self.transport.udp().as_raw_fd(),
            self.tokens.probe,
            Interest::NONE,
        )?;
        self.registered = true;
        Ok(())
    }

    /// The tokens this session was built with.
    pub fn tokens(&self) -> SessionTokens {
        self.tokens
    }

    /// Forward the machine's trace events to `sink`. The driver only
    /// relays: every event is minted inside the sans-IO machine, so the
    /// trace matches the blocking drivers' byte for byte.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(SinkHandle(sink));
    }

    /// Record each stream packet's pacing error (nanoseconds past its
    /// absolute send deadline) into `hist`. Register the same handle in a
    /// `telemetry::Registry` to expose it.
    pub fn set_pacing_histogram(&mut self, hist: Histogram) {
        self.pacing_hist = Some(hist);
    }

    /// Drain and forward (or drop, without a sink) the machine's trace.
    fn forward_trace(&mut self) {
        if let Some(machine) = self.machine.as_mut() {
            let events = machine.take_trace();
            if let Some(SinkHandle(sink)) = &self.sink {
                for e in &events {
                    sink.record(e);
                }
            }
        }
    }

    /// True once the session has an outcome (estimate or error).
    pub fn is_finished(&self) -> bool {
        self.outcome.is_some()
    }

    /// True while a machine command is being executed on the substrate —
    /// the interval during which the DRIVERS.md contract requires the
    /// machine's own `poll()` to return `None` (assert it through
    /// [`machine_mut`](Self::machine_mut); the call is side-effect-free
    /// in exactly this situation).
    pub fn command_in_flight(&self) -> bool {
        !matches!(self.exec, Exec::Rtt { .. } | Exec::Done)
    }

    /// The underlying machine, once the RTT phase built it. Exposed for
    /// contract tests (e.g. asserting `poll() == None` while
    /// [`command_in_flight`](Self::command_in_flight)); drivers and hosts
    /// must not feed it events of their own.
    pub fn machine_mut(&mut self) -> Option<&mut SessionMachine> {
        self.machine.as_mut()
    }

    /// Deregister from the loop, return the transport (back in blocking
    /// mode) and the outcome. Calling it on a session that has not
    /// finished is a host bug, reported as an error outcome (the
    /// datapath is panic-free).
    pub fn finish(mut self, lp: &EventLoop) -> (SocketTransport, Result<Estimate, SlopsError>) {
        let outcome = self
            .outcome
            .take()
            .unwrap_or_else(|| Err(machine_protocol_violated("finish() before completion")));
        self.deregister(lp);
        let _ = self.transport.set_nonblocking(false);
        (self.transport, outcome)
    }

    /// Remove the session's sockets from the loop (idempotent; called by
    /// [`finish`](Self::finish)).
    pub fn deregister(&mut self, lp: &EventLoop) {
        if self.registered {
            let _ = lp.deregister(self.transport.ctrl().as_raw_fd());
            let _ = lp.deregister(self.transport.udp().as_raw_fd());
            self.registered = false;
        }
    }

    /// Route one event-loop event into the session. Events whose token
    /// does not belong to this session, and stale timers (from an
    /// execution state that has already moved on), are ignored.
    pub fn on_event(&mut self, lp: &mut EventLoop, ev: &MuxEvent) {
        if self.is_finished() {
            return;
        }
        let result = match *ev {
            MuxEvent::Io(r) if r.token == self.tokens.ctrl => {
                self.handle_ctrl(lp, r.readable, r.writable)
            }
            MuxEvent::Io(r) if r.token == self.tokens.probe => {
                // EPOLLERR/EPOLLHUP reach us as readable+writable even on
                // the otherwise-dormant probe socket (e.g. an ICMP
                // unreachable from a dead receiver pends SO_ERROR on the
                // connected UDP socket). Consume it FIRST: a pending
                // error is level-triggered, and a handler that ignores it
                // would spin the whole loop thread at 100% CPU while the
                // session waits forever on a report that cannot come.
                match self.transport.udp().take_error() {
                    Ok(Some(e)) => Err(TransportError::Io(format!("probe socket error: {e}"))),
                    Ok(None) | Err(_) if r.writable => self.resume_blast(lp),
                    _ => Ok(()),
                }
            }
            MuxEvent::Timer { token } if token == self.tokens.timer => self.handle_timer(lp),
            _ => Ok(()),
        };
        if let Err(e) = result {
            self.exec = Exec::Done;
            self.outcome = Some(Err(SlopsError::Transport(e)));
        }
    }

    // ---- control channel ----------------------------------------------

    fn ctrl_interest(&self) -> Interest {
        if self.wbuf.is_empty() {
            Interest::READ
        } else {
            Interest::BOTH
        }
    }

    fn queue_ctrl(&mut self, lp: Option<&EventLoop>, msg: &CtrlMsg) -> Result<(), TransportError> {
        msg.append_to(&mut self.wbuf);
        if let Some(lp) = lp {
            self.update_ctrl_interest(lp)?;
        }
        Ok(())
    }

    fn update_ctrl_interest(&self, lp: &EventLoop) -> Result<(), TransportError> {
        if self.registered {
            lp.set_interest(
                self.transport.ctrl().as_raw_fd(),
                self.tokens.ctrl,
                self.ctrl_interest(),
            )
            .map_err(|e| TransportError::Io(e.to_string()))?;
        }
        Ok(())
    }

    fn handle_ctrl(
        &mut self,
        lp: &mut EventLoop,
        readable: bool,
        writable: bool,
    ) -> Result<(), TransportError> {
        if writable && !self.wbuf.is_empty() {
            self.flush_ctrl(lp)?;
        }
        if readable {
            self.fill_rbuf()?;
            while let Some(msg) = self.take_frame()? {
                self.on_ctrl_msg(lp, msg)?;
                if matches!(self.exec, Exec::Done) {
                    break;
                }
            }
        }
        Ok(())
    }

    fn flush_ctrl(&mut self, lp: &EventLoop) -> Result<(), TransportError> {
        while !self.wbuf.is_empty() {
            match self.transport.ctrl().write(&self.wbuf) {
                Ok(0) => {
                    return Err(TransportError::Io(ctrl_error_text(&io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "write returned 0",
                    ))))
                }
                Ok(n) => {
                    self.wbuf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TransportError::Io(ctrl_error_text(&e))),
            }
        }
        self.update_ctrl_interest(lp)
    }

    fn fill_rbuf(&mut self) -> Result<(), TransportError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.transport.ctrl().read(&mut chunk) {
                Ok(0) => {
                    return Err(TransportError::Io(ctrl_error_text(&io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF on the control channel",
                    ))))
                }
                // `read` contracts n <= chunk.len(); `get` keeps the
                // defensive bound out of the panic path.
                Ok(n) => {
                    if let Some(read) = chunk.get(..n) {
                        self.rbuf.extend_from_slice(read);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TransportError::Io(ctrl_error_text(&e))),
            }
        }
    }

    /// Pop one complete control frame off the inbound buffer, if present.
    fn take_frame(&mut self) -> Result<Option<CtrlMsg>, TransportError> {
        let Some(&header) = self.rbuf.first_chunk::<4>() else {
            return Ok(None); // length prefix not complete yet
        };
        let len = u32::from_le_bytes(header) as usize;
        if len == 0 || len > 16 * 1024 * 1024 {
            return Err(TransportError::Io("bad control frame length".into()));
        }
        let Some(mut frame) = self.rbuf.get(..4 + len) else {
            return Ok(None); // body not complete yet
        };
        let msg = CtrlMsg::read_from(&mut frame).map_err(|e| TransportError::Io(e.to_string()))?;
        self.rbuf.drain(..4 + len);
        Ok(Some(msg))
    }

    fn protocol_error(&self, got: &CtrlMsg) -> TransportError {
        TransportError::Io(format!(
            "unexpected control message {got:?} in state {}",
            self.exec.name()
        ))
    }

    fn on_ctrl_msg(&mut self, lp: &mut EventLoop, msg: CtrlMsg) -> Result<(), TransportError> {
        // Take the execution state by value; every arm either installs its
        // successor or leaves `Done` behind on the way to an error.
        match (std::mem::replace(&mut self.exec, Exec::Done), msg) {
            (Exec::Rtt { t_sent, mut rtts }, CtrlMsg::Echo { token })
                if token == rtts.len() as u64 =>
            {
                let now = self.transport.clock().now_ns();
                rtts.push(now.saturating_sub(t_sent));
                if rtts.len() < RTT_PROBES {
                    let next = rtts.len() as u64;
                    self.exec = Exec::Rtt { t_sent: now, rtts };
                    self.queue_ctrl(Some(lp), &CtrlMsg::Echo { token: next })
                } else {
                    rtts.sort_unstable();
                    // rtts holds RTT_PROBES (> 0) samples here, so the
                    // median index is in range; 0 is a dead fallback.
                    let median = rtts.get(rtts.len() / 2).copied().unwrap_or(0);
                    let rtt = TimeNs::from_nanos(median);
                    let Some(cfg) = self.cfg.take() else {
                        // cfg is held until the machine is built;
                        // unreachable, surfaced as a failed outcome
                        // rather than a panic.
                        self.outcome = Some(Err(machine_protocol_violated("cfg already taken")));
                        return Ok(());
                    };
                    let max_rate = self.transport.max_rate();
                    match SessionMachine::new(cfg, rtt, max_rate) {
                        Ok(machine) => {
                            self.machine = Some(machine);
                            self.advance(lp)
                        }
                        Err(e) => {
                            // Config was validated in `new`; unreachable in
                            // practice, but fail cleanly rather than panic.
                            self.outcome = Some(Err(e));
                            Ok(())
                        }
                    }
                }
            }
            (Exec::AwaitReady(AfterReady::Train { id, len, size }), CtrlMsg::Ready { id: got })
                if got == id =>
            {
                let batch = (len as usize).clamp(1, crate::batch::MAX_BATCH);
                self.exec = Exec::BlastTrain {
                    id,
                    len,
                    size,
                    next: 0,
                    bufs: vec![vec![0u8; size as usize]; batch],
                };
                self.resume_blast(lp)
            }
            (
                Exec::AwaitReady(AfterReady::Stream { id, req, size }),
                CtrlMsg::Ready { id: got },
            ) if got == id => {
                let t0 = self.transport.clock().now_ns() + LEAD_IN_NS;
                let count = req.count;
                self.exec = Exec::PaceStream {
                    id,
                    req,
                    t0,
                    next: 0,
                    actual_send: Vec::with_capacity(count as usize),
                    buf: vec![0u8; size as usize],
                };
                lp.arm_timer(t0, self.tokens.timer);
                Ok(())
            }
            (
                Exec::AwaitTrainReport { id, len, size },
                CtrlMsg::TrainReport {
                    id: got,
                    received,
                    first_ns,
                    last_ns,
                },
            ) if got == id => {
                let record = slops::TrainRecord {
                    sent: len,
                    received,
                    size,
                    first_recv: TimeNs::from_nanos(first_ns),
                    last_recv: TimeNs::from_nanos(last_ns),
                };
                self.feed(lp, Event::TrainDone(record))
            }
            (
                Exec::AwaitStreamReport {
                    id,
                    req,
                    actual_send,
                },
                CtrlMsg::StreamReport { id: got, samples },
            ) if got == id => {
                let record = stream_record(req.count, &actual_send, &samples);
                self.feed(lp, Event::StreamDone(record))
            }
            (exec, other) => {
                self.exec = exec; // restore so the error names the state
                Err(self.protocol_error(&other))
            }
        }
    }

    // ---- probe socket --------------------------------------------------

    /// Send as much of a pending train blast as the UDP socket accepts —
    /// batched through `sendmmsg` where available, one kernel crossing
    /// per [`crate::batch::MAX_BATCH`] packets; on back-pressure, wait
    /// for writability and resume. Packets the kernel refuses keep their
    /// place: they are re-encoded (fresh `send_ns`) on the next attempt,
    /// so the timestamp on the wire is always the actual send instant.
    fn resume_blast(&mut self, lp: &mut EventLoop) -> Result<(), TransportError> {
        let Exec::BlastTrain {
            id,
            len,
            size,
            next,
            bufs,
        } = &mut self.exec
        else {
            return Ok(()); // stale writability notification
        };
        let (id, len, size) = (*id, *len, *size);
        while *next < len {
            let k = ((len - *next) as usize).min(bufs.len());
            for (j, buf) in bufs.iter_mut().take(k).enumerate() {
                ProbePacket {
                    session: self.transport.session(),
                    kind: ProbeKind::Train,
                    id,
                    idx: *next + j as u32,
                    send_ns: self.transport.clock().now_ns(),
                }
                .encode(buf);
            }
            match crate::batch::send_batch(self.transport.udp(), bufs.get(..k).unwrap_or(&[])) {
                Ok(sent) => {
                    *next += sent as u32;
                    if sent < k {
                        // The kernel took a prefix; wait out the back-pressure.
                        return lp
                            .set_interest(
                                self.transport.udp().as_raw_fd(),
                                self.tokens.probe,
                                Interest::WRITE,
                            )
                            .map_err(|e| TransportError::Io(e.to_string()));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return lp
                        .set_interest(
                            self.transport.udp().as_raw_fd(),
                            self.tokens.probe,
                            Interest::WRITE,
                        )
                        .map_err(|e| TransportError::Io(e.to_string()));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
        self.exec = Exec::AwaitTrainReport { id, len, size };
        lp.set_interest(
            self.transport.udp().as_raw_fd(),
            self.tokens.probe,
            Interest::NONE,
        )
        .map_err(|e| TransportError::Io(e.to_string()))
    }

    // ---- timers --------------------------------------------------------

    fn handle_timer(&mut self, lp: &mut EventLoop) -> Result<(), TransportError> {
        match std::mem::replace(&mut self.exec, Exec::Done) {
            Exec::PaceStream {
                id,
                req,
                t0,
                mut next,
                mut actual_send,
                mut buf,
            } => {
                let (count, period) = (req.count, req.period.as_nanos());
                // Send every packet whose deadline has passed (the blocking
                // pacer catches up the same way when it overshoots).
                loop {
                    let now = self.transport.clock().now_ns();
                    let deadline = t0 + next as u64 * period;
                    if deadline > now {
                        lp.arm_timer(deadline, self.tokens.timer);
                        self.exec = Exec::PaceStream {
                            id,
                            req,
                            t0,
                            next,
                            actual_send,
                            buf,
                        };
                        return Ok(());
                    }
                    let send_ns = now;
                    if let Some(h) = &self.pacing_hist {
                        h.observe(now - deadline);
                    }
                    ProbePacket {
                        session: self.transport.session(),
                        kind: ProbeKind::Stream,
                        id,
                        idx: next,
                        send_ns,
                    }
                    .encode(&mut buf);
                    // A send the socket refuses (back-pressure) cannot be
                    // retried — its deadline is now. Record the attempt
                    // honestly and move on; the receiver counts it as
                    // loss. Hard socket errors abort the measurement.
                    match self.transport.udp().send(&buf) {
                        Ok(_) => {}
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(TransportError::Io(e.to_string())),
                    }
                    actual_send.push(send_ns);
                    next += 1;
                    if next >= count {
                        self.exec = Exec::AwaitStreamReport {
                            id,
                            req,
                            actual_send,
                        };
                        return Ok(());
                    }
                }
            }
            Exec::AwaitTick => {
                let now = self.transport.elapsed();
                self.feed(lp, Event::Tick(now))
            }
            // Stale timer (the stream/idle it paced errored or completed
            // through another path): restore the state and ignore it.
            other => {
                self.exec = other;
                Ok(())
            }
        }
    }

    // ---- machine pump --------------------------------------------------

    fn feed(&mut self, lp: &mut EventLoop, event: Event) -> Result<(), TransportError> {
        // The machine is built before any command executes and accepts
        // the event answering its own command; invariant breaks surface
        // as transport errors, not panics.
        let Some(machine) = self.machine.as_mut() else {
            return Err(protocol_violation("no machine built"));
        };
        if machine.on_event(event).is_err() {
            return Err(protocol_violation("event refused by the machine"));
        }
        self.forward_trace();
        self.advance(lp)
    }

    /// Poll the machine and begin executing the command it emits.
    fn advance(&mut self, lp: &mut EventLoop) -> Result<(), TransportError> {
        // The session answers each command before advancing, so the
        // machine never pends here; see `feed` on the error mapping.
        let Some(cmd) = self.machine.as_mut().and_then(SessionMachine::poll) else {
            return Err(protocol_violation("poll pended mid-session"));
        };
        self.forward_trace();
        match cmd {
            Command::SendTrain { len, size } => {
                let size = (size as usize).max(PROBE_HEADER_LEN) as u32;
                let id = self.transport.next_stream_id();
                self.queue_ctrl(
                    Some(lp),
                    &CtrlMsg::TrainAnnounce {
                        id,
                        count: len,
                        size,
                    },
                )?;
                self.exec = Exec::AwaitReady(AfterReady::Train { id, len, size });
                Ok(())
            }
            Command::SendStream(req) => {
                let size = (req.packet_size as usize).max(PROBE_HEADER_LEN) as u32;
                let id = self.transport.next_stream_id();
                self.queue_ctrl(
                    Some(lp),
                    &CtrlMsg::StreamAnnounce {
                        id,
                        count: req.count,
                        period_ns: req.period.as_nanos(),
                        size,
                    },
                )?;
                self.exec = Exec::AwaitReady(AfterReady::Stream { id, req, size });
                Ok(())
            }
            Command::Idle(dur) => {
                self.exec = Exec::AwaitTick;
                let deadline = self.transport.clock().now_ns() + dur.as_nanos();
                lp.arm_timer(deadline, self.tokens.timer);
                Ok(())
            }
            Command::Finish(est) => {
                let mut est = *est;
                est.elapsed = self.transport.elapsed().saturating_sub(self.start);
                self.exec = Exec::Done;
                self.outcome = Some(Ok(est));
                Ok(())
            }
        }
    }
}

/// A break of the command/event protocol between this session and the
/// machine — unreachable by construction of the pump (`feed`/`advance`
/// answer every command before polling again), and reported as an error
/// so the datapath stays panic-free.
fn protocol_violation(what: &str) -> TransportError {
    TransportError::Io(format!("machine protocol violated: {what}"))
}

/// [`protocol_violation`] as a session outcome.
fn machine_protocol_violated(what: &str) -> SlopsError {
    SlopsError::Transport(protocol_violation(what))
}
