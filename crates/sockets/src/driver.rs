//! The socket driver over the sans-IO machine: commands onto the wire,
//! wire outcomes back as events.
//!
//! [`SocketDriver`] owns a [`SocketTransport`] and pumps a
//! `slops::machine::SessionMachine` over it. The whole mapping from the
//! machine's command/event protocol onto real UDP/TCP sockets is the
//! [`SocketDriver::execute`] method:
//!
//! | command | wire operation | event fed back |
//! |---|---|---|
//! | `SendTrain { len, size }` | announce on the TCP control channel, blast `len` back-to-back UDP packets, await the `TrainReport` | `TrainDone(record)` |
//! | `SendStream(req)` | announce, pace `req.count` UDP packets at `req.period` on absolute deadlines, await the `StreamReport` | `StreamDone(record)` |
//! | `Idle(d)` | sleep `d` | `Tick(clock now)` |
//! | `Finish(est)` | nothing — terminal | — |
//!
//! There is **no estimation logic here**: loss accounting, spacing
//! validation, trend classification, rate search — everything that turns
//! packets into an avail-bw range — happens inside the machine. A stream
//! whose report comes back empty is fed to the machine as a record with
//! zero samples, which the machine already treats as a fully lost stream;
//! a control-channel failure aborts the measurement with a transport
//! error. That is the repo's driver-equivalence invariant applied to the
//! wire (see `docs/DRIVERS.md`).
//!
//! [`SocketDriver::run`] is the blocking poll/execute/feed loop — the same
//! loop as the generic `slops::Session::run`, specialized to sockets and
//! exposed step by step so callers (and tests) can drive the machine one
//! command at a time over a real network stack.

// Datapath module: a panicking branch here takes the whole fleet down,
// so `unwrap`/`expect` are denied outright (errors must travel as values).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::clock::MonoClock;
use crate::sender::SocketTransport;
use slops::machine::{Command, Event, SessionMachine};
use slops::{Estimate, ProbeTransport, SlopsConfig, SlopsError, TransportError};
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use telemetry::TraceSink;

/// A blocking socket driver for the sans-IO measurement machine.
pub struct SocketDriver {
    transport: SocketTransport,
    /// Where the machine's trace events are forwarded (`None`: dropped).
    sink: Option<Arc<dyn TraceSink>>,
}

impl SocketDriver {
    /// Connect to a `pathload_rcv`-style receiver's control address.
    pub fn connect(addr: SocketAddr) -> io::Result<SocketDriver> {
        Ok(SocketDriver {
            transport: SocketTransport::connect(addr)?,
            sink: None,
        })
    }

    /// Connect with an explicit sender clock (see
    /// [`SocketTransport::connect_with_clock`]); fleets of drivers share
    /// one epoch so a scheduler can stagger them on a common timeline.
    pub fn connect_with_clock(addr: SocketAddr, clock: MonoClock) -> io::Result<SocketDriver> {
        Ok(SocketDriver {
            transport: SocketTransport::connect_with_clock(addr, clock)?,
            sink: None,
        })
    }

    /// Wrap an already-connected transport.
    pub fn from_transport(transport: SocketTransport) -> SocketDriver {
        SocketDriver {
            transport,
            sink: None,
        }
    }

    /// Forward the machine's trace events to `sink` during
    /// [`SocketDriver::run`]. The driver only relays: every event is
    /// minted by the sans-IO machine (see `docs/OBSERVABILITY.md`).
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Drain and forward (or drop, without a sink) the machine's trace.
    fn forward_trace(&self, machine: &mut SessionMachine) {
        let events = machine.take_trace();
        if let Some(sink) = &self.sink {
            for e in &events {
                sink.record(e);
            }
        }
    }

    /// The underlying transport (e.g. to adjust its `rate_cap`).
    pub fn transport_mut(&mut self) -> &mut SocketTransport {
        &mut self.transport
    }

    /// Unwrap back into the transport (e.g. to hand it to the `monitord`
    /// fleet driver, which owns transports per path).
    pub fn into_transport(self) -> SocketTransport {
        self.transport
    }

    /// Execute one machine command on the wire and return the event to
    /// feed back. This method is the entire command→socket mapping; see
    /// the module docs for the table.
    ///
    /// # Panics
    ///
    /// Panics on [`Command::Finish`]: it is terminal and carries the
    /// result — there is nothing to execute and no event to feed.
    pub fn execute(&mut self, cmd: &Command) -> Result<Event, TransportError> {
        match cmd {
            Command::SendTrain { len, size } => {
                Ok(Event::TrainDone(self.transport.send_train(*len, *size)?))
            }
            Command::SendStream(req) => Ok(Event::StreamDone(self.transport.send_stream(req)?)),
            Command::Idle(dur) => {
                self.transport.idle(*dur);
                Ok(Event::Tick(self.transport.elapsed()))
            }
            // Terminal: there is no wire operation to perform. Surfaced
            // as an error instead of a panic — the datapath is
            // panic-free; `run` never reaches this arm.
            Command::Finish(_) => Err(TransportError::Unsupported(
                "Finish is terminal: nothing to execute".into(),
            )),
        }
    }

    /// Run one full measurement session: poll the machine, [`execute`]
    /// each command, feed the event back, until the machine finishes.
    /// Identical in behavior to `slops::Session::run` over the transport
    /// (both are thin pumps around the same machine).
    ///
    /// [`execute`]: SocketDriver::execute
    pub fn run(&mut self, cfg: SlopsConfig) -> Result<Estimate, SlopsError> {
        cfg.validate().map_err(SlopsError::BadConfig)?;
        let start = self.transport.elapsed();
        let rtt = self.transport.rtt();
        let mut machine = SessionMachine::new(cfg, rtt, self.transport.max_rate())?;
        loop {
            // The loop answers every command before polling again, so
            // `poll` cannot pend and `on_event` cannot be unexpected;
            // both invariant breaks surface as errors, not panics (the
            // datapath aborts the measurement instead of the process).
            let Some(cmd) = machine.poll() else {
                return Err(machine_protocol_violated("poll pended mid-loop"));
            };
            self.forward_trace(&mut machine);
            if let Command::Finish(est) = cmd {
                let mut est = *est;
                est.elapsed = self.transport.elapsed().saturating_sub(start);
                return Ok(est);
            }
            let event = self.execute(&cmd)?;
            if machine.on_event(event).is_err() {
                return Err(machine_protocol_violated("event refused by the machine"));
            }
            self.forward_trace(&mut machine);
        }
    }
}

/// A break of the command/event protocol between this driver and the
/// machine — unreachable by construction of [`SocketDriver::run`], and
/// reported as an error so the datapath stays panic-free.
fn machine_protocol_violated(what: &str) -> SlopsError {
    SlopsError::Transport(TransportError::Io(format!(
        "machine protocol violated: {what}"
    )))
}
