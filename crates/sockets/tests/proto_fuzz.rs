//! Fuzz-style property tests of the wire formats: arbitrary bytes must
//! never panic the decoders, and encode/decode must round-trip.

use pathload_net::proto::{CtrlMsg, ProbeKind, ProbePacket, SampleWire, PROTO_VERSION};
use proptest::prelude::*;

proptest! {
    /// Arbitrary datagrams never panic the probe decoder.
    #[test]
    fn probe_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = ProbePacket::decode(&bytes);
    }

    /// Arbitrary control frames never panic the frame reader (errors are
    /// fine; panics and unbounded allocations are not).
    #[test]
    fn ctrl_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let mut cursor = bytes.as_slice();
        let _ = CtrlMsg::read_from(&mut cursor);
    }

    /// Probe header round-trips through any buffer size >= header length.
    #[test]
    fn probe_round_trip(
        session in any::<u64>(),
        kind_train in any::<bool>(),
        id in any::<u32>(),
        idx in any::<u32>(),
        send_ns in any::<u64>(),
        pad in 32usize..1500,
    ) {
        let p = ProbePacket {
            session,
            kind: if kind_train { ProbeKind::Train } else { ProbeKind::Stream },
            id,
            idx,
            send_ns,
        };
        let mut buf = vec![0u8; pad];
        p.encode(&mut buf);
        prop_assert_eq!(ProbePacket::decode(&buf), Some(p));
    }

    /// Stream reports with arbitrary sample contents round-trip exactly.
    #[test]
    fn stream_report_round_trip(
        id in any::<u32>(),
        samples in prop::collection::vec((any::<u32>(), any::<u64>(), any::<u64>()), 0..200),
    ) {
        let msg = CtrlMsg::StreamReport {
            id,
            samples: samples
                .iter()
                .map(|(idx, s, r)| SampleWire { idx: *idx, send_ns: *s, recv_ns: *r })
                .collect(),
        };
        let mut buf = Vec::new();
        msg.write_to(&mut buf).unwrap();
        let got = CtrlMsg::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(got, msg);
    }

    /// Concatenated frames decode in order (stream framing is
    /// self-delimiting).
    #[test]
    fn frames_are_self_delimiting(
        port1 in any::<u16>(),
        port2 in any::<u16>(),
        tok1 in any::<u64>(),
        tok2 in any::<u64>(),
    ) {
        let hello = |udp_port, session| CtrlMsg::Hello { version: PROTO_VERSION, udp_port, session };
        let mut buf = Vec::new();
        hello(port1, tok1).write_to(&mut buf).unwrap();
        hello(port2, tok2).write_to(&mut buf).unwrap();
        let mut cursor = buf.as_slice();
        prop_assert_eq!(CtrlMsg::read_from(&mut cursor).unwrap(), hello(port1, tok1));
        prop_assert_eq!(CtrlMsg::read_from(&mut cursor).unwrap(), hello(port2, tok2));
        prop_assert!(cursor.is_empty());
    }
}
