//! The in-sim session driver: a measurement session as a **native
//! discrete-event application**.
//!
//! The blocking shim ([`crate::SimTransport`]) drives the simulator from
//! the outside: every probe call seizes the event loop (`run_until` slices)
//! until its stream completes, so exactly one measurement can run per
//! simulator and nothing else can own the loop meanwhile. [`SessionApp`]
//! inverts that: it runs the sans-IO [`slops::SessionMachine`] *inside*
//! the simulation, executing its commands from packet and timer callbacks.
//! The simulation is then free to host anything else concurrently — cross
//! traffic, TCP flows, pingers, several measurement sessions on disjoint
//! (or shared!) paths — under one ordinary `run_until` loop.
//!
//! Timing is deliberately bit-compatible with the blocking shim: the same
//! lead-in (`LEAD_IN`) before the first packet, the same completion-poll
//! grid (`POLL_SLICE`), the same straggler grace (`STREAM_GRACE`), the
//! same probe flow
//! id and payloads. For the same simulator seed and start instant, both
//! drivers therefore inject identical packet sequences, observe identical
//! OWDs, and report **identical estimates** — which is exactly what the
//! driver-equivalence tests assert.

use crate::clock::ClockModel;
use crate::transport::{LEAD_IN, POLL_SLICE, PROBE_FLOW, STREAM_GRACE};
use netsim::{App, AppId, Chain, Ctx, Packet, Payload, RouteSpec, Simulator};
use slops::machine::{Command, Event, SessionMachine};
use slops::{
    Estimate, PacketSample, SlopsConfig, SlopsError, StreamRecord, StreamRequest, TrainRecord,
};
use std::sync::Arc;
use telemetry::TraceSink;
use units::{Rate, TimeNs};

/// Timer-token kinds (high byte of the token).
const TOK_START: u64 = 1 << 56;
const TOK_SEND: u64 = 2 << 56;
const TOK_CHECK: u64 = 3 << 56;
const TOK_IDLE: u64 = 4 << 56;
const TOK_KIND_MASK: u64 = 0xFF << 56;
const TOK_GEN_MASK: u64 = !TOK_KIND_MASK;

/// What the app is currently executing for the machine.
#[derive(Debug)]
enum Exec {
    /// Waiting for the start timer.
    NotStarted,
    /// A periodic stream is in flight.
    Stream {
        req: StreamRequest,
        tag: u32,
        /// First-packet instant.
        t0: TimeNs,
        /// No completion past this point; missing packets are lost.
        deadline: TimeNs,
        /// Next packet index to send.
        next_send: u32,
        /// Arrivals `(idx, sender_ts, recv_at)` in arrival order.
        arrivals: Vec<(u32, TimeNs, TimeNs)>,
    },
    /// A back-to-back train is in flight.
    Train {
        len: u32,
        size: u32,
        tag: u32,
        deadline: TimeNs,
        count: u32,
        first: TimeNs,
        last: TimeNs,
    },
    /// A pacing idle is in progress.
    Idling,
    /// The session finished.
    Done,
}

/// A pathload measurement session running as a simulator application.
///
/// Build with [`install_session`], kick implicitly (the installer arms the
/// start timer), run the simulator however the experiment likes, and read
/// the result with [`SessionApp::estimate`] or [`run_session`].
pub struct SessionApp {
    machine: SessionMachine,
    /// Where the machine's trace events are forwarded (`None`: dropped).
    sink: Option<Arc<dyn TraceSink>>,
    /// Forward route to this app; set by [`install_session`].
    route: Option<Arc<RouteSpec>>,
    /// Endpoint clock model (offset + quantization).
    pub clock: ClockModel,
    /// Narrowest forward capacity (train drain-time bound).
    narrowest: Rate,
    exec: Exec,
    start_at: Option<TimeNs>,
    next_stream_tag: u32,
    next_train_tag: u32,
    idle_gen: u32,
    /// Total probe bytes injected (streams + trains).
    pub probe_bytes_sent: u64,
    result: Option<Estimate>,
}

impl SessionApp {
    /// The finished estimate, once the session has terminated.
    pub fn estimate(&self) -> Option<&Estimate> {
        self.result.as_ref()
    }

    /// Take the finished estimate out of the app.
    pub fn take_estimate(&mut self) -> Option<Estimate> {
        self.result.take()
    }

    /// Forward the machine's trace events to `sink` from now on. The app
    /// only relays: every event is minted inside the sans-IO machine, so
    /// the trace matches the other drivers' byte for byte.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Drain and forward (or drop, without a sink) the machine's trace.
    fn forward_trace(&mut self) {
        let events = self.machine.take_trace();
        if let Some(sink) = &self.sink {
            for e in &events {
                sink.record(e);
            }
        }
    }

    /// Poll the machine once and execute the command it emits.
    fn advance(&mut self, ctx: &mut Ctx<'_>) {
        let cmd = self
            .machine
            .poll()
            .expect("SessionApp always answers the previous command before advancing");
        self.forward_trace();
        match cmd {
            Command::SendTrain { len, size } => {
                let now = ctx.now();
                let t0 = now + LEAD_IN;
                let tag = self.next_train_tag;
                self.next_train_tag += 1;
                // Worst-case drain time at the narrowest capacity, plus
                // queueing grace (mirrors the blocking shim).
                let drain = TimeNs::from_secs_f64(
                    (len as u64 * size as u64 * 8) as f64 / self.narrowest.bps(),
                );
                let deadline = t0 + drain * 2 + TimeNs::from_secs(1);
                self.exec = Exec::Train {
                    len,
                    size,
                    tag,
                    deadline,
                    count: 0,
                    first: TimeNs::ZERO,
                    last: TimeNs::ZERO,
                };
                ctx.timer_at(t0, TOK_SEND | tag as u64);
                ctx.timer_at((now + POLL_SLICE).min(deadline), TOK_CHECK | tag as u64);
            }
            Command::SendStream(req) => {
                let now = ctx.now();
                let t0 = now + LEAD_IN;
                let tag = self.next_stream_tag;
                self.next_stream_tag += 1;
                let deadline = t0 + req.period * req.count as u64 + STREAM_GRACE;
                self.exec = Exec::Stream {
                    req,
                    tag,
                    t0,
                    deadline,
                    next_send: 0,
                    arrivals: Vec::with_capacity(req.count as usize),
                };
                ctx.timer_at(t0, TOK_SEND | tag as u64);
                ctx.timer_at((now + POLL_SLICE).min(deadline), TOK_CHECK | tag as u64);
            }
            Command::Idle(dur) => {
                self.idle_gen += 1;
                self.exec = Exec::Idling;
                ctx.timer_in(dur, TOK_IDLE | self.idle_gen as u64);
            }
            Command::Finish(est) => {
                let mut est = *est;
                est.elapsed = ctx
                    .now()
                    .saturating_sub(self.start_at.expect("session was started"));
                self.result = Some(est);
                self.exec = Exec::Done;
            }
        }
    }

    /// Feed an event to the machine and execute the follow-up command.
    fn feed(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        self.machine
            .on_event(event)
            .expect("SessionApp feeds only the event answering its own command");
        self.forward_trace();
        self.advance(ctx);
    }

    /// Send the next pending stream packet (exactly on its schedule).
    fn send_stream_packet(&mut self, ctx: &mut Ctx<'_>) {
        let route = self.route.clone().expect("route installed");
        let Exec::Stream {
            req,
            tag,
            t0,
            next_send,
            ..
        } = &mut self.exec
        else {
            return; // stale timer from an already-finalized stream
        };
        let i = *next_send;
        let pkt = Packet::with_payload(
            req.packet_size,
            PROBE_FLOW,
            i as u64,
            route,
            Payload::Probe {
                stream: *tag,
                idx: i,
                sender_ts: ctx.now(),
            },
        );
        ctx.send(pkt);
        self.probe_bytes_sent += req.packet_size as u64;
        *next_send += 1;
        if *next_send < req.count {
            ctx.timer_at(*t0 + req.period * *next_send as u64, TOK_SEND | *tag as u64);
        }
    }

    /// Inject the whole train back to back (the first link's FIFO
    /// serializes it, exactly like a sender NIC at line rate).
    fn send_train_packets(&mut self, ctx: &mut Ctx<'_>) {
        let route = self.route.clone().expect("route installed");
        let Exec::Train { len, size, tag, .. } = self.exec else {
            return; // stale timer
        };
        for i in 0..len {
            let pkt = Packet::with_payload(
                size,
                PROBE_FLOW,
                i as u64,
                route.clone(),
                Payload::Train { train: tag, idx: i },
            );
            ctx.send(pkt);
            self.probe_bytes_sent += size as u64;
        }
    }

    /// Completion poll: finalize when everything arrived or the deadline
    /// passed; otherwise re-arm on the poll grid.
    fn check_completion(&mut self, ctx: &mut Ctx<'_>, gen: u32) {
        let now = ctx.now();
        match &self.exec {
            Exec::Stream {
                req,
                tag,
                deadline,
                arrivals,
                ..
            } if *tag == gen => {
                if arrivals.len() as u32 >= req.count || now >= *deadline {
                    self.finalize_stream(ctx);
                } else {
                    let at = (now + POLL_SLICE).min(*deadline);
                    ctx.timer_at(at, TOK_CHECK | gen as u64);
                }
            }
            Exec::Train {
                len,
                tag,
                deadline,
                count,
                ..
            } if *tag == gen => {
                if *count >= *len || now >= *deadline {
                    self.finalize_train(ctx);
                } else {
                    let at = (now + POLL_SLICE).min(*deadline);
                    ctx.timer_at(at, TOK_CHECK | gen as u64);
                }
            }
            // Stale check timers (from finished commands) are ignored.
            _ => {}
        }
    }

    /// Build the stream record and hand it to the machine.
    fn finalize_stream(&mut self, ctx: &mut Ctx<'_>) {
        let Exec::Stream {
            req, t0, arrivals, ..
        } = std::mem::replace(&mut self.exec, Exec::Idling)
        else {
            unreachable!("finalize_stream outside a stream");
        };
        let event = if arrivals.is_empty() {
            // Nothing came back at all: the stream is lost outright.
            Event::StreamLost
        } else {
            let first_send = self.clock.sender_reading(t0);
            let samples = arrivals
                .iter()
                .map(|&(idx, sender_ts, recv_at)| PacketSample {
                    idx,
                    send_offset: TimeNs::from_nanos(
                        (self.clock.sender_reading(sender_ts) - first_send).max(0) as u64,
                    ),
                    owd_ns: self.clock.owd_ns(sender_ts, recv_at),
                })
                .collect();
            Event::StreamDone(StreamRecord {
                sent: req.count,
                samples,
            })
        };
        self.feed(ctx, event);
    }

    /// Build the train record and hand it to the machine.
    fn finalize_train(&mut self, ctx: &mut Ctx<'_>) {
        let Exec::Train {
            len,
            size,
            count,
            first,
            last,
            ..
        } = std::mem::replace(&mut self.exec, Exec::Idling)
        else {
            unreachable!("finalize_train outside a train");
        };
        // Dispersion is a timestamp difference, so the clock offset
        // cancels; report quantized sender-clock readings of the global
        // instants (mirrors the blocking shim).
        let rec = TrainRecord {
            sent: len,
            received: count,
            size,
            first_recv: TimeNs::from_nanos(self.clock.sender_reading(first).max(0) as u64),
            last_recv: TimeNs::from_nanos(self.clock.sender_reading(last).max(0) as u64),
        };
        self.feed(ctx, Event::TrainDone(rec));
    }
}

impl App for SessionApp {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let now = ctx.now();
        match (&mut self.exec, pkt.payload) {
            (
                Exec::Stream { tag, arrivals, .. },
                Payload::Probe {
                    stream,
                    idx,
                    sender_ts,
                },
            ) if *tag == stream => {
                arrivals.push((idx, sender_ts, now));
            }
            (
                Exec::Train {
                    tag,
                    count,
                    first,
                    last,
                    ..
                },
                Payload::Train { train, .. },
            ) if *tag == train => {
                if *count == 0 {
                    *first = now;
                }
                *last = now;
                *count += 1;
            }
            // Stragglers from already-finalized streams/trains are dropped,
            // exactly like the blocking shim's receiver buffer.
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let gen = (token & TOK_GEN_MASK) as u32;
        match token & TOK_KIND_MASK {
            TOK_START => {
                if matches!(self.exec, Exec::NotStarted) {
                    self.start_at = Some(ctx.now());
                    self.advance(ctx);
                }
            }
            TOK_SEND => match &self.exec {
                Exec::Stream { tag, .. } if *tag == gen => self.send_stream_packet(ctx),
                Exec::Train { tag, .. } if *tag == gen => self.send_train_packets(ctx),
                _ => {} // stale
            },
            TOK_CHECK => self.check_completion(ctx, gen),
            TOK_IDLE => {
                if matches!(self.exec, Exec::Idling) && gen == self.idle_gen {
                    self.feed(ctx, Event::Tick(ctx.now()));
                }
            }
            _ => unreachable!("unknown timer token {token:#x}"),
        }
    }
}

/// Install a measurement session on `chain`, starting at the current
/// simulated instant. Returns the app id; read the result with
/// [`SessionApp::estimate`] once the simulation has run long enough, or
/// use [`run_session`].
///
/// The RTT estimate handed to the machine is the chain's base RTT for
/// small control packets, like the blocking shim's `rtt()`.
pub fn install_session(
    sim: &mut Simulator,
    chain: &Chain,
    cfg: SlopsConfig,
) -> Result<AppId, SlopsError> {
    install_session_at(sim, chain, cfg, sim.now())
}

/// [`install_session`] with an explicit start instant (≥ the current
/// simulated time).
pub fn install_session_at(
    sim: &mut Simulator,
    chain: &Chain,
    cfg: SlopsConfig,
    start_at: TimeNs,
) -> Result<AppId, SlopsError> {
    let rtt = chain.base_rtt(sim, 100, 100);
    // The simulator can inject at any rate; slops caps at MTU/T_min.
    let machine = SessionMachine::new(cfg, rtt, None)?;
    let narrowest = chain
        .forward
        .iter()
        .map(|l| sim.link(*l).capacity())
        .reduce(Rate::min)
        .expect("non-empty chain");
    let app = SessionApp {
        machine,
        sink: None,
        route: None,
        clock: ClockModel::default(),
        narrowest,
        exec: Exec::NotStarted,
        start_at: None,
        next_stream_tag: 0,
        next_train_tag: 0,
        idle_gen: 0,
        probe_bytes_sent: 0,
        result: None,
    };
    let id = sim.add_app(Box::new(app));
    let route = chain.forward_route(sim, id);
    sim.app_mut::<SessionApp>(id).route = Some(route);
    sim.schedule_timer(id, start_at, TOK_START);
    Ok(id)
}

/// Run the simulation until session `id` finishes (or `limit` is hit) and
/// return its estimate. Other apps — cross traffic, TCP flows, further
/// sessions — keep running concurrently; the clock is left wherever the
/// session ended, not at `limit`.
pub fn run_session(sim: &mut Simulator, id: AppId, limit: TimeNs) -> Option<Estimate> {
    const SLICE: TimeNs = TimeNs::from_millis(50);
    while sim.app::<SessionApp>(id).result.is_none() && sim.now() < limit {
        let target = (sim.now() + SLICE).min(limit);
        sim.run_until(target);
    }
    sim.app_mut::<SessionApp>(id).take_estimate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::ProbeReceiver;
    use crate::transport::SimTransport;
    use netsim::{ChainConfig, LinkConfig};
    use slops::Session;

    fn empty_chain(sim: &mut Simulator) -> Chain {
        Chain::build(
            sim,
            &ChainConfig::symmetric(vec![
                LinkConfig::new(Rate::from_mbps(10.0), TimeNs::from_millis(5)),
                LinkConfig::new(Rate::from_mbps(8.0), TimeNs::from_millis(5)),
            ]),
        )
    }

    #[test]
    fn in_sim_session_measures_empty_path_capacity() {
        let mut sim = Simulator::new(5);
        let chain = empty_chain(&mut sim);
        let id = install_session(&mut sim, &chain, SlopsConfig::default()).unwrap();
        let est = run_session(&mut sim, id, TimeNs::from_secs(600)).expect("session finished");
        assert!(
            est.low.mbps() <= 8.0 && 8.0 <= est.high.mbps() + 0.5,
            "reported [{}, {}]",
            est.low,
            est.high
        );
        assert!(est.elapsed > TimeNs::ZERO);
    }

    #[test]
    fn bad_config_is_rejected_at_install() {
        let mut sim = Simulator::new(5);
        let chain = empty_chain(&mut sim);
        let mut cfg = SlopsConfig::default();
        cfg.fleet_fraction = 0.1;
        assert!(install_session(&mut sim, &chain, cfg).is_err());
    }

    /// The acid test: on the identical topology and seed, the event-driven
    /// in-sim driver and the blocking shim produce the *same* estimate.
    #[test]
    fn matches_blocking_driver_on_empty_path() {
        let blocking = {
            let mut sim = Simulator::new(42);
            let chain = empty_chain(&mut sim);
            let rx = sim.add_app(Box::new(ProbeReceiver::default()));
            let mut t = SimTransport::new(sim, chain, rx);
            Session::new(SlopsConfig::default()).run(&mut t).unwrap()
        };
        let in_sim = {
            let mut sim = Simulator::new(42);
            let chain = empty_chain(&mut sim);
            let id = install_session(&mut sim, &chain, SlopsConfig::default()).unwrap();
            run_session(&mut sim, id, TimeNs::from_secs(600)).unwrap()
        };
        assert_eq!(blocking, in_sim);
    }
}
