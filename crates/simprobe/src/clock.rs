//! The endpoint clock model shared by the blocking transport shim and the
//! in-sim session driver.
//!
//! The simulator has one global clock; real measurement endpoints have two
//! unsynchronized ones. This model derives both endpoint readings from a
//! global instant: the sender reads the global clock, the receiver reads it
//! offset by a constant, and both readings are quantized to the clock
//! resolution (1 µs by default, like `gettimeofday`). SLoPS only ever uses
//! OWD *differences*, so the offset must cancel — probing code that gets
//! this wrong fails loudly under the default negative offset.

use units::TimeNs;

/// Sender/receiver clock readings derived from the global simulated clock.
#[derive(Clone, Copy, Debug)]
pub struct ClockModel {
    /// Receiver clock = global clock + `offset_ns` (may be negative).
    pub offset_ns: i64,
    /// Timestamp quantization of both endpoint clocks, in nanoseconds.
    pub resolution_ns: u64,
}

impl Default for ClockModel {
    fn default() -> Self {
        ClockModel {
            offset_ns: -7_777_777_777, // clocks are not synchronized
            resolution_ns: 1_000,
        }
    }
}

impl ClockModel {
    /// Quantize a raw nanosecond reading to the clock resolution.
    pub fn quantize(&self, ns: i64) -> i64 {
        let res = self.resolution_ns as i64;
        if res > 1 {
            ns.div_euclid(res) * res
        } else {
            ns
        }
    }

    /// Sender-clock reading of a global instant.
    pub fn sender_reading(&self, t: TimeNs) -> i64 {
        self.quantize(t.as_nanos() as i64)
    }

    /// Receiver-clock reading of a global instant.
    pub fn receiver_reading(&self, t: TimeNs) -> i64 {
        self.quantize(t.as_nanos() as i64 + self.offset_ns)
    }

    /// Relative OWD of a packet sent at `sent` and received at `recv`
    /// (receiver reading minus sender reading; signed, offset included).
    pub fn owd_ns(&self, sent: TimeNs, recv: TimeNs) -> i64 {
        self.receiver_reading(recv) - self.sender_reading(sent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_floors_toward_negative_infinity() {
        let c = ClockModel {
            offset_ns: 0,
            resolution_ns: 1_000,
        };
        assert_eq!(c.quantize(1_999), 1_000);
        assert_eq!(c.quantize(-1), -1_000);
        let fine = ClockModel {
            offset_ns: 0,
            resolution_ns: 1,
        };
        assert_eq!(fine.quantize(1_999), 1_999);
    }

    #[test]
    fn offset_cancels_in_owd_differences() {
        let a = ClockModel {
            offset_ns: 0,
            resolution_ns: 1,
        };
        let b = ClockModel {
            offset_ns: -123_456_789,
            resolution_ns: 1,
        };
        let sent = TimeNs::from_micros(100);
        let r1 = TimeNs::from_micros(150);
        let r2 = TimeNs::from_micros(175);
        assert_eq!(
            a.owd_ns(sent, r2) - a.owd_ns(sent, r1),
            b.owd_ns(sent, r2) - b.owd_ns(sent, r1),
        );
    }
}
