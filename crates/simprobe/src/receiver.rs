//! The probe receiver application: collects stream and train packets.

use netsim::{App, Ctx, Packet, Payload};
use std::collections::HashMap;
use units::TimeNs;

/// One received probe packet, as seen by the receiver.
#[derive(Clone, Copy, Debug)]
pub struct ProbeArrival {
    /// Packet index within its stream.
    pub idx: u32,
    /// Sender timestamp carried in the packet (sender clock).
    pub sender_ts: TimeNs,
    /// Arrival time (global simulated clock; the transport converts this
    /// to a receiver-clock reading).
    pub recv_at: TimeNs,
}

/// Observations of one packet train.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrainObs {
    /// Packets received so far.
    pub count: u32,
    /// First arrival time.
    pub first: TimeNs,
    /// Last arrival time.
    pub last: TimeNs,
}

/// Receiver app: buffers probe-stream and train arrivals keyed by id.
#[derive(Debug, Default)]
pub struct ProbeReceiver {
    streams: HashMap<u32, Vec<ProbeArrival>>,
    trains: HashMap<u32, TrainObs>,
}

impl ProbeReceiver {
    /// Arrivals of stream `id` so far (in arrival order).
    pub fn stream(&self, id: u32) -> &[ProbeArrival] {
        self.streams.get(&id).map_or(&[], |v| v.as_slice())
    }

    /// Number of packets of stream `id` received so far.
    pub fn stream_count(&self, id: u32) -> u32 {
        self.streams.get(&id).map_or(0, |v| v.len() as u32)
    }

    /// Take (and forget) the arrivals of stream `id`.
    pub fn take_stream(&mut self, id: u32) -> Vec<ProbeArrival> {
        self.streams.remove(&id).unwrap_or_default()
    }

    /// Observations of train `id`.
    pub fn train(&self, id: u32) -> TrainObs {
        self.trains.get(&id).copied().unwrap_or_default()
    }

    /// Take (and forget) the observations of train `id`.
    pub fn take_train(&mut self, id: u32) -> TrainObs {
        self.trains.remove(&id).unwrap_or_default()
    }
}

impl App for ProbeReceiver {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        match pkt.payload {
            Payload::Probe {
                stream,
                idx,
                sender_ts,
            } => {
                self.streams.entry(stream).or_default().push(ProbeArrival {
                    idx,
                    sender_ts,
                    recv_at: ctx.now(),
                });
            }
            Payload::Train { train, idx: _ } => {
                let obs = self.trains.entry(train).or_default();
                if obs.count == 0 {
                    obs.first = ctx.now();
                }
                obs.last = ctx.now();
                obs.count += 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{FlowId, LinkConfig, Simulator};
    use units::Rate;

    #[test]
    fn collects_streams_and_trains_separately() {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkConfig::new(Rate::from_mbps(10.0), TimeNs::ZERO));
        let rx = sim.add_app(Box::new(ProbeReceiver::default()));
        let route = sim.route(&[l], rx);
        for i in 0..5 {
            sim.inject(
                Packet::with_payload(
                    500,
                    FlowId(1),
                    i,
                    route.clone(),
                    Payload::Probe {
                        stream: 7,
                        idx: i as u32,
                        sender_ts: TimeNs::from_micros(100 * i),
                    },
                ),
                TimeNs::from_micros(100 * i),
            );
        }
        for i in 0..3 {
            sim.inject(
                Packet::with_payload(
                    1500,
                    FlowId(2),
                    i,
                    route.clone(),
                    Payload::Train {
                        train: 3,
                        idx: i as u32,
                    },
                ),
                TimeNs::from_millis(10),
            );
        }
        sim.run_until_idle(TimeNs::from_secs(1));
        let rx_ref = sim.app::<ProbeReceiver>(rx);
        assert_eq!(rx_ref.stream_count(7), 5);
        assert_eq!(rx_ref.stream_count(8), 0);
        let t = rx_ref.train(3);
        assert_eq!(t.count, 3);
        assert!(t.last > t.first);
        // take_* drains.
        let rx_mut = sim.app_mut::<ProbeReceiver>(rx);
        assert_eq!(rx_mut.take_stream(7).len(), 5);
        assert_eq!(rx_mut.take_stream(7).len(), 0);
        assert_eq!(rx_mut.take_train(3).count, 3);
        assert_eq!(rx_mut.take_train(3).count, 0);
    }
}
