//! Builders for every topology in the paper's evaluation.
//!
//! All scenarios are chains (paper Fig. 4): probe traffic traverses every
//! hop; cross traffic enters and exits at each hop. The tight link sits in
//! the middle. Ground-truth avail-bw is `min_i C_i (1 − u_i)` by
//! construction (eq. 3).

use crate::receiver::ProbeReceiver;
use crate::transport::SimTransport;
use netsim::app::CountingSink;
use netsim::{Chain, ChainConfig, LinkConfig, LinkId, Simulator};
use traffic::{attach_onoff_sources, attach_sources, SourceConfig};
use units::{Rate, TimeNs};

/// How a link's cross traffic is generated.
#[derive(Clone, Debug)]
pub enum TrafficModel {
    /// Independent renewal sources (Poisson / Pareto / CBR interarrivals).
    Renewal(SourceConfig),
    /// Pareto ON/OFF sources (statistical-multiplexing experiments).
    ParetoOnOff,
}

/// Load specification of one hop.
#[derive(Clone, Debug)]
pub struct LinkLoad {
    /// Link capacity.
    pub capacity: Rate,
    /// Target long-run utilization from cross traffic, in `[0, 1)`.
    pub util: f64,
    /// Number of independent cross-traffic sources (paper: 10 per hop).
    pub n_sources: usize,
    /// Traffic model.
    pub model: TrafficModel,
}

impl LinkLoad {
    /// Renewal-model load with the paper's Pareto cross traffic.
    pub fn pareto(capacity: Rate, util: f64, n_sources: usize) -> LinkLoad {
        LinkLoad {
            capacity,
            util,
            n_sources,
            model: TrafficModel::Renewal(SourceConfig::paper_pareto()),
        }
    }

    /// This link's average available bandwidth `C(1 − u)`.
    pub fn avail(&self) -> Rate {
        self.capacity * (1.0 - self.util)
    }
}

/// Non-load options of a scenario.
#[derive(Clone, Debug)]
pub struct PathOpts {
    /// Propagation delay per hop (paper: 50 ms end-to-end over H hops).
    pub prop_per_hop: TimeNs,
    /// Utilization-monitor window for every link.
    pub monitor_window: TimeNs,
    /// Cross-traffic warm-up simulated before the transport is handed out.
    pub warmup: TimeNs,
    /// Drop-tail queue limit per link, bytes.
    pub queue_limit: u64,
}

impl Default for PathOpts {
    fn default() -> Self {
        PathOpts {
            prop_per_hop: TimeNs::from_millis(10),
            monitor_window: TimeNs::from_secs(300),
            warmup: TimeNs::from_secs(2),
            queue_limit: 8 * 1024 * 1024,
        }
    }
}

/// The end-to-end average avail-bw implied by a load vector (eq. 3).
pub fn path_avail_bw(loads: &[LinkLoad]) -> Rate {
    loads
        .iter()
        .map(LinkLoad::avail)
        .reduce(Rate::min)
        .expect("non-empty path")
}

/// Build one loaded chain **inside an existing simulator**: links, cross
/// traffic per hop, and a cross-traffic sink — no warm-up, no transport.
/// Link names get `name_prefix` prepended so multi-path simulations stay
/// readable. The multi-path builders and [`build_loaded_path`] share this.
pub fn attach_loaded_chain(
    sim: &mut Simulator,
    loads: &[LinkLoad],
    opts: &PathOpts,
    name_prefix: &str,
) -> Chain {
    assert!(!loads.is_empty());
    let forward: Vec<LinkConfig> = loads
        .iter()
        .enumerate()
        .map(|(i, l)| {
            LinkConfig::new(l.capacity, opts.prop_per_hop)
                .with_queue_limit(opts.queue_limit)
                .with_monitor_window(opts.monitor_window)
                .with_name(format!("{name_prefix}hop{i}"))
        })
        .collect();
    let chain = Chain::build(sim, &ChainConfig::symmetric(forward));
    // Declare the whole chain — forward and reverse directions — one
    // component for the shard planner. Routes alone would leave unloaded
    // hops and the (initially route-less) reverse direction unplaced.
    let all_links: Vec<LinkId> = chain
        .forward
        .iter()
        .chain(chain.reverse.iter())
        .copied()
        .collect();
    sim.bind_links(&all_links);
    let cross_sink = sim.add_app(Box::new(CountingSink::default()));
    // Anchor the sink to the chain even when every hop is unloaded.
    sim.bind_app(
        cross_sink,
        &netsim::RouteSpec {
            links: vec![chain.forward[0]],
            dst: cross_sink,
        },
    );
    for (hop, load) in loads.iter().enumerate() {
        if load.util <= 0.0 {
            continue;
        }
        let rate = load.capacity * load.util;
        let route = chain.hop_route(sim, hop, cross_sink);
        match &load.model {
            TrafficModel::Renewal(cfg) => {
                attach_sources(sim, route, rate, load.n_sources, cfg);
            }
            TrafficModel::ParetoOnOff => {
                attach_onoff_sources(sim, route, rate, load.n_sources);
            }
        }
    }
    chain
}

/// Build a loaded chain and return its probe transport.
///
/// The reverse path mirrors the forward capacities but carries no cross
/// traffic (the paper's experiments only load the forward direction).
pub fn build_loaded_path(loads: &[LinkLoad], opts: &PathOpts, seed: u64) -> SimTransport {
    let mut sim = Simulator::new(seed);
    let chain = attach_loaded_chain(&mut sim, loads, opts, "");
    let receiver = sim.add_app(Box::new(ProbeReceiver::default()));
    sim.run_until(opts.warmup);
    SimTransport::new(sim, chain, receiver)
}

/// Build `paths.len()` **disjoint** loaded chains inside one simulator —
/// the multi-path monitoring substrate: one in-sim measurement session per
/// chain, all under a single event loop. Applies `opts.warmup` once after
/// all paths are built. Path `i`'s links are named `p{i}hop{j}`.
pub fn build_disjoint_paths(
    sim: &mut Simulator,
    paths: &[Vec<LinkLoad>],
    opts: &PathOpts,
) -> Vec<Chain> {
    let chains: Vec<Chain> = paths
        .iter()
        .enumerate()
        .map(|(i, loads)| attach_loaded_chain(sim, loads, opts, &format!("p{i}")))
        .collect();
    let warm_until = sim.now() + opts.warmup;
    sim.run_until(warm_until);
    chains
}

/// A set of paths sharing one **tight link** (§VI cross-traffic dynamics):
/// path `i` is `access_i → tight → egress_i`. All cross traffic rides the
/// tight link, so concurrent probe streams on different paths interfere
/// there — exactly the self-interference a monitoring scheduler's
/// concurrency cap exists to avoid.
pub struct SharedTightLink {
    /// One chain per path; every `forward[1]` is the same tight link.
    pub chains: Vec<Chain>,
    /// The shared tight link.
    pub tight: LinkId,
    /// Sink of the tight-link cross traffic (reusable for load steps).
    pub cross_sink: netsim::AppId,
}

/// Configuration for [`shared_tight_link`].
#[derive(Clone, Debug)]
pub struct SharedTightLinkConfig {
    /// Number of paths through the tight link.
    pub paths: usize,
    /// The shared tight link's capacity, load and traffic model.
    pub tight: LinkLoad,
    /// Capacity of each path's private access/egress links.
    pub edge_capacity: Rate,
    /// Propagation delay per hop.
    pub prop_per_hop: TimeNs,
    /// Warm-up simulated after construction.
    pub warmup: TimeNs,
}

impl Default for SharedTightLinkConfig {
    fn default() -> Self {
        SharedTightLinkConfig {
            paths: 2,
            tight: LinkLoad::pareto(Rate::from_mbps(10.0), 0.20, 10),
            edge_capacity: Rate::from_mbps(100.0),
            prop_per_hop: TimeNs::from_millis(10),
            warmup: TimeNs::from_secs(2),
        }
    }
}

/// Build the shared-tight-link topology inside `sim` and warm it up.
pub fn shared_tight_link(sim: &mut Simulator, cfg: &SharedTightLinkConfig) -> SharedTightLink {
    assert!(cfg.paths > 0, "need at least one path");
    let edge = |name: String| LinkConfig::new(cfg.edge_capacity, cfg.prop_per_hop).with_name(name);
    let tight = sim.add_link(
        LinkConfig::new(cfg.tight.capacity, cfg.prop_per_hop).with_name("tight".to_string()),
    );
    let mut chains = Vec::with_capacity(cfg.paths);
    for i in 0..cfg.paths {
        let access = sim.add_link(edge(format!("p{i}access")));
        let egress = sim.add_link(edge(format!("p{i}egress")));
        // Private mirrored reverse path (control/ACK direction; unloaded).
        let rev: Vec<LinkId> = [
            edge(format!("p{i}rev0")),
            LinkConfig::new(cfg.tight.capacity, cfg.prop_per_hop).with_name(format!("p{i}rev1")),
            edge(format!("p{i}rev2")),
        ]
        .into_iter()
        .map(|lc| sim.add_link(lc))
        .collect();
        let chain = Chain {
            forward: vec![access, tight, egress],
            reverse: rev,
        };
        // Bind each chain's links into one component; because every
        // forward direction crosses `tight`, the whole topology collapses
        // to a single component and the shard planner refuses — the
        // intended fallback for shared-link fleets.
        let all_links: Vec<LinkId> = chain
            .forward
            .iter()
            .chain(chain.reverse.iter())
            .copied()
            .collect();
        sim.bind_links(&all_links);
        chains.push(chain);
    }
    let cross_sink = sim.add_app(Box::new(CountingSink::default()));
    if cfg.tight.util > 0.0 {
        let rate = cfg.tight.capacity * cfg.tight.util;
        let route = sim.route(&[tight], cross_sink);
        match &cfg.tight.model {
            TrafficModel::Renewal(src) => {
                attach_sources(sim, route, rate, cfg.tight.n_sources, src);
            }
            TrafficModel::ParetoOnOff => {
                attach_onoff_sources(sim, route, rate, cfg.tight.n_sources);
            }
        }
    }
    let warm_until = sim.now() + cfg.warmup;
    sim.run_until(warm_until);
    SharedTightLink {
        chains,
        tight,
        cross_sink,
    }
}

/// Step a link's load **mid-run** by attaching `n_sources` additional
/// renewal sources totalling `extra_rate`, sinking into `sink` — the §VI
/// scenario where the avail-bw shifts under a running monitor. Works on
/// any link of any topology ([`SharedTightLink`] exposes `tight` and
/// `cross_sink` for exactly this). Returns the new source app ids.
pub fn step_link_load(
    sim: &mut Simulator,
    link: LinkId,
    sink: netsim::AppId,
    extra_rate: Rate,
    n_sources: usize,
    src: &SourceConfig,
) -> Vec<netsim::AppId> {
    let route = sim.route(&[link], sink);
    attach_sources(sim, route, extra_rate, n_sources, src)
}

/// Configuration of the paper's default simulation topology (Fig. 4):
/// H hops, tight link in the middle, identical nontight links elsewhere.
///
/// Defaults (§V-A, OCR-damaged values reconstructed — see DESIGN.md):
/// H = 5, C_t = 10 Mb/s, u_t = 60 %, C_nt = 40 Mb/s, u_nt = 20 %,
/// 10 Pareto (α = 1.9) sources per hop with the 40/550/1500 B size mix.
#[derive(Clone, Debug)]
pub struct PaperPathConfig {
    /// Number of hops H.
    pub hops: usize,
    /// Tight-link capacity C_t.
    pub tight_capacity: Rate,
    /// Tight-link utilization u_t.
    pub tight_util: f64,
    /// Nontight-link capacity C_nt.
    pub nontight_capacity: Rate,
    /// Nontight-link utilization u_nt.
    pub nontight_util: f64,
    /// Cross-traffic sources per hop.
    pub sources_per_link: usize,
    /// Cross-traffic model for every hop.
    pub source_cfg: SourceConfig,
    /// Non-load options.
    pub opts: PathOpts,
}

impl Default for PaperPathConfig {
    fn default() -> Self {
        PaperPathConfig {
            hops: 5,
            tight_capacity: Rate::from_mbps(10.0),
            tight_util: 0.60,
            nontight_capacity: Rate::from_mbps(40.0),
            nontight_util: 0.20,
            sources_per_link: 10,
            source_cfg: SourceConfig::paper_pareto(),
            opts: PathOpts::default(),
        }
    }
}

impl PaperPathConfig {
    /// The end-to-end average avail-bw (the tight link's, by construction
    /// as long as the tightness factor β < 1).
    pub fn avail_bw(&self) -> Rate {
        self.tight_avail().min(self.nontight_avail())
    }

    /// Tight-link avail-bw `A_t = C_t (1 − u_t)`.
    pub fn tight_avail(&self) -> Rate {
        self.tight_capacity * (1.0 - self.tight_util)
    }

    /// Nontight-link avail-bw `A_nt = C_nt (1 − u_nt)`.
    pub fn nontight_avail(&self) -> Rate {
        self.nontight_capacity * (1.0 - self.nontight_util)
    }

    /// The path tightness factor β = A_t / A_nt (eq. 10).
    pub fn tightness(&self) -> f64 {
        self.tight_avail().bps() / self.nontight_avail().bps()
    }

    /// Set the nontight capacity so the tightness factor becomes β while
    /// keeping `nontight_util` fixed: `C_nt = A_t / (β (1 − u_nt))`.
    /// β = 1 makes every link a tight link (Fig. 7).
    pub fn set_tightness(&mut self, beta: f64) {
        assert!(beta > 0.0 && beta <= 1.0);
        let a_nt = self.tight_avail().bps() / beta;
        self.nontight_capacity = Rate::from_bps(a_nt / (1.0 - self.nontight_util));
    }

    /// The per-hop load vector this configuration describes.
    pub fn loads(&self) -> Vec<LinkLoad> {
        let tight_hop = self.hops / 2;
        (0..self.hops)
            .map(|h| {
                let (cap, util) = if h == tight_hop {
                    (self.tight_capacity, self.tight_util)
                } else {
                    (self.nontight_capacity, self.nontight_util)
                };
                LinkLoad {
                    capacity: cap,
                    util,
                    n_sources: self.sources_per_link,
                    model: TrafficModel::Renewal(self.source_cfg.clone()),
                }
            })
            .collect()
    }
}

/// The paper's Fig. 4 topology, built and warmed up.
pub struct PaperPath {
    transport: SimTransport,
    /// The tight link's id (for MRTG-style monitoring).
    pub tight_link: LinkId,
}

impl PaperPath {
    /// Build the topology with the given seed.
    pub fn build(cfg: &PaperPathConfig, seed: u64) -> PaperPath {
        let mut opts = cfg.opts.clone();
        // 50 ms end-to-end propagation split across hops (paper §V-A).
        opts.prop_per_hop =
            TimeNs::from_nanos(TimeNs::from_millis(50).as_nanos() / cfg.hops as u64);
        let transport = build_loaded_path(&cfg.loads(), &opts, seed);
        let tight_link = transport.chain().forward[cfg.hops / 2];
        PaperPath {
            transport,
            tight_link,
        }
    }

    /// Consume, returning the probe transport.
    pub fn into_transport(self) -> SimTransport {
        self.transport
    }

    /// Borrow the probe transport.
    pub fn transport_mut(&mut self) -> &mut SimTransport {
        &mut self.transport
    }
}

/// The Fig. 10 verification path: a lightly loaded access link, a 155 Mb/s
/// POS backbone link carrying the interesting load (the **tight** link),
/// and a 100 Mb/s Fast-Ethernet egress (the **narrow** link).
///
/// Returns the transport and the tight link's id.
pub fn verification_path(tight_util: f64, seed: u64) -> (SimTransport, LinkId) {
    verification_path_with_window(tight_util, seed, TimeNs::from_secs(300))
}

/// [`verification_path`] with an explicit MRTG monitor window (the Fig. 10
/// harness shortens it in quick mode so one window fits the run).
pub fn verification_path_with_window(
    tight_util: f64,
    seed: u64,
    monitor_window: TimeNs,
) -> (SimTransport, LinkId) {
    // Backbone-grade statistical multiplexing: a real OC-3 aggregates
    // thousands of flows and is close to Poisson at the 10 ms timescale of
    // one probe stream. With heavy-tailed (alpha = 1.9) renewal sources the
    // short-timescale utilization stays right-skewed, and SLoPS — which
    // converges to the *median* of the short-timescale avail-bw — then
    // sits systematically above the MRTG *mean* (see EXPERIMENTS.md,
    // Fig. 10 notes; this is the paper's tau-averaging discussion in
    // action).
    let poisson = |c: f64, u: f64, n: usize| LinkLoad {
        capacity: Rate::from_mbps(c),
        util: u,
        n_sources: n,
        model: TrafficModel::Renewal(SourceConfig::paper_poisson()),
    };
    let loads = vec![
        poisson(622.0, 0.05, 100),
        poisson(155.0, tight_util, 180),
        poisson(100.0, 0.05, 30),
    ];
    let opts = PathOpts {
        prop_per_hop: TimeNs::from_millis(12), // ~70 ms RTT, a wide-area path
        monitor_window,
        ..PathOpts::default()
    };
    let t = build_loaded_path(&loads, &opts, seed);
    let tight = t.chain().forward[1];
    (t, tight)
}

/// A path whose **reverse** direction is congested while the forward
/// direction is lightly loaded. SLoPS measures one-way delays, so its
/// estimate must track the forward avail-bw and ignore the reverse
/// congestion entirely — where any RTT-based method would collapse.
/// Returns the transport; the forward avail-bw is
/// `fwd_capacity·(1 − fwd_util)`.
pub fn reverse_loaded_path(
    fwd_capacity: Rate,
    fwd_util: f64,
    rev_util: f64,
    seed: u64,
) -> SimTransport {
    let mut sim = Simulator::new(seed);
    let mk = |name: &str| {
        LinkConfig::new(fwd_capacity, TimeNs::from_millis(10)).with_name(name.to_string())
    };
    let chain = Chain::build(
        &mut sim,
        &ChainConfig {
            forward: vec![mk("fwd0"), mk("fwd1")],
            reverse: Some(vec![mk("rev0"), mk("rev1")]),
        },
    );
    let sink = sim.add_app(Box::new(CountingSink::default()));
    // Forward load on hop 1.
    if fwd_util > 0.0 {
        let route = chain.hop_route(&sim, 1, sink);
        attach_sources(
            &mut sim,
            route,
            fwd_capacity * fwd_util,
            10,
            &SourceConfig::paper_pareto(),
        );
    }
    // Heavy load on the reverse hop 0 (the ACK/control direction).
    if rev_util > 0.0 {
        let route = sim.route(&[chain.reverse[0]], sink);
        attach_sources(
            &mut sim,
            route,
            fwd_capacity * rev_util,
            10,
            &SourceConfig::paper_pareto(),
        );
    }
    let receiver = sim.add_app(Box::new(ProbeReceiver::default()));
    sim.run_until(TimeNs::from_secs(2));
    SimTransport::new(sim, chain, receiver)
}

/// The Fig. 12 statistical-multiplexing paths: one bottleneck at the given
/// capacity and utilization, fed by `n_sources` Pareto ON/OFF sources, with
/// a fast, lightly loaded link on either side.
pub fn multiplexing_path(capacity: Rate, util: f64, n_sources: usize, seed: u64) -> SimTransport {
    let loads = vec![
        LinkLoad::pareto(Rate::from_mbps(622.0), 0.05, 40),
        LinkLoad {
            capacity,
            util,
            n_sources,
            model: TrafficModel::ParetoOnOff,
        },
        LinkLoad::pareto(Rate::from_mbps(622.0), 0.05, 40),
    ];
    let opts = PathOpts {
        warmup: TimeNs::from_secs(5), // ON/OFF aggregates converge slower
        ..PathOpts::default()
    };
    build_loaded_path(&loads, &opts, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let cfg = PaperPathConfig::default();
        assert_eq!(cfg.hops, 5);
        assert!((cfg.avail_bw().mbps() - 4.0).abs() < 1e-9);
        assert!((cfg.nontight_avail().mbps() - 32.0).abs() < 1e-9);
        assert!((cfg.tightness() - 0.125).abs() < 1e-9);
    }

    #[test]
    fn set_tightness_solves_for_nontight_capacity() {
        let mut cfg = PaperPathConfig::default();
        cfg.set_tightness(0.5);
        assert!((cfg.nontight_avail().mbps() - 8.0).abs() < 1e-9);
        assert!((cfg.tightness() - 0.5).abs() < 1e-9);
        cfg.set_tightness(1.0);
        // All links now have A = 4 Mb/s.
        assert!((cfg.nontight_avail().mbps() - 4.0).abs() < 1e-9);
        assert!((path_avail_bw(&cfg.loads()).mbps() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn loads_place_tight_link_in_the_middle() {
        let cfg = PaperPathConfig::default();
        let loads = cfg.loads();
        assert_eq!(loads.len(), 5);
        assert_eq!(loads[2].capacity.mbps(), 10.0);
        for (i, l) in loads.iter().enumerate() {
            if i != 2 {
                assert_eq!(l.capacity.mbps(), 40.0);
            }
        }
        assert!((path_avail_bw(&loads).mbps() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn built_path_carries_configured_load() {
        use slops::ProbeTransport;
        let cfg = PaperPathConfig::default();
        let path = PaperPath::build(&cfg, 99);
        let mut t = path.into_transport();
        // Run 20 s and check the tight link's utilization.
        t.idle(TimeNs::from_secs(20));
        let sim = t.sim();
        let tight = sim.link(t.chain().forward[2]);
        let util = tight.stats.utilization(t.elapsed());
        assert!(
            (util - 0.60).abs() < 0.05,
            "tight-link utilization {util}, want ~0.60"
        );
    }

    #[test]
    fn disjoint_paths_are_independent_and_loaded() {
        use slops::ProbeTransport;
        let mut sim = Simulator::new(11);
        let paths = vec![
            vec![LinkLoad::pareto(Rate::from_mbps(10.0), 0.4, 5); 2],
            vec![LinkLoad::pareto(Rate::from_mbps(20.0), 0.2, 5); 2],
        ];
        let opts = PathOpts::default();
        let chains = build_disjoint_paths(&mut sim, &paths, &opts);
        assert_eq!(chains.len(), 2);
        // No link is shared between the two paths.
        for a in chains[0].forward.iter().chain(&chains[0].reverse) {
            assert!(!chains[1].forward.contains(a) && !chains[1].reverse.contains(a));
        }
        // Each path carries its own configured load.
        sim.run_until(sim.now() + TimeNs::from_secs(20));
        let elapsed = sim.now();
        let u0 = sim.link(chains[0].forward[0]).stats.utilization(elapsed);
        let u1 = sim.link(chains[1].forward[0]).stats.utilization(elapsed);
        assert!((u0 - 0.4).abs() < 0.08, "path 0 util {u0}");
        assert!((u1 - 0.2).abs() < 0.08, "path 1 util {u1}");
        // The refactor kept the single-path builder byte-compatible.
        let mut t = build_loaded_path(&paths[0], &opts, 3);
        t.idle(TimeNs::from_secs(5));
        assert!(t.elapsed() >= TimeNs::from_secs(5));
    }

    #[test]
    fn shared_tight_link_shares_exactly_one_link() {
        let mut sim = Simulator::new(12);
        let cfg = SharedTightLinkConfig {
            paths: 3,
            ..SharedTightLinkConfig::default()
        };
        let shared = shared_tight_link(&mut sim, &cfg);
        assert_eq!(shared.chains.len(), 3);
        for c in &shared.chains {
            assert_eq!(c.forward[1], shared.tight);
        }
        // Private edges are not shared across paths.
        for (i, a) in shared.chains.iter().enumerate() {
            for b in shared.chains.iter().skip(i + 1) {
                assert_ne!(a.forward[0], b.forward[0]);
                assert_ne!(a.forward[2], b.forward[2]);
            }
        }
        // The tight link carries ~20% load; a mid-run step raises it.
        sim.run_until(sim.now() + TimeNs::from_secs(20));
        let u = sim.link(shared.tight).stats.utilization(sim.now());
        assert!((u - 0.20).abs() < 0.06, "tight util {u}");
        step_link_load(
            &mut sim,
            shared.tight,
            shared.cross_sink,
            Rate::from_mbps(4.0),
            5,
            &SourceConfig::paper_pareto(),
        );
        let t_step = sim.now();
        sim.run_until(t_step + TimeNs::from_secs(20));
        let win = sim.link(shared.tight).stats.utilization(sim.now());
        assert!(win > 0.30, "stepped util {win} should exceed 30%");
    }

    #[test]
    fn verification_path_has_distinct_tight_and_narrow() {
        let (t, tight) = verification_path(0.52, 1);
        let sim = t.sim();
        assert_eq!(sim.link(tight).capacity().mbps(), 155.0);
        // Narrow link is the 100 Mb/s one.
        let narrowest = t
            .chain()
            .forward
            .iter()
            .map(|l| sim.link(*l).capacity().mbps())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(narrowest, 100.0);
    }
}
