//! [`slops::ProbeTransport`] implementation over [`netsim::Simulator`].

use crate::clock::ClockModel;
use crate::receiver::ProbeReceiver;
use netsim::{AppId, Chain, FlowId, Packet, Payload, Simulator};
use slops::{
    PacketSample, ProbeTransport, StreamRecord, StreamRequest, TrainRecord, TransportError,
};
use units::{Rate, TimeNs};

/// Flow id used for probe traffic (shared with the in-sim driver so both
/// probing styles are indistinguishable on the wire).
pub(crate) const PROBE_FLOW: FlowId = FlowId(0x504C_0001); // 'PL'

/// How long past the nominal stream end the transport waits for stragglers
/// before declaring the remaining packets lost.
pub(crate) const STREAM_GRACE: TimeNs = TimeNs::from_millis(500);

/// Scheduling delay between issuing a stream/train and its first packet.
pub(crate) const LEAD_IN: TimeNs = TimeNs::from_millis(1);

/// Completion-poll granularity. The in-sim driver checks stream completion
/// on the same grid so both drivers make every decision at the same
/// simulated instant (their estimates are bit-identical).
pub(crate) const POLL_SLICE: TimeNs = TimeNs::from_millis(5);

/// SLoPS probing over a simulated path.
///
/// Owns the simulator; between probes, [`SimTransport::idle`] advances
/// simulated time so cross traffic (and any other application in the
/// simulation, e.g. TCP flows or pingers) keeps running. The simulator can
/// be borrowed back at any time through [`SimTransport::sim`] /
/// [`SimTransport::sim_mut`] for inspection or for driving other apps.
pub struct SimTransport {
    sim: Simulator,
    chain: Chain,
    receiver: AppId,
    /// Receiver clock = global clock + `clock_offset_ns` (may be negative).
    pub clock_offset_ns: i64,
    /// Timestamp quantization of both endpoint clocks (default 1 µs).
    pub clock_resolution_ns: u64,
    next_stream_tag: u32,
    next_train_tag: u32,
    lead_in: TimeNs,
    /// Total probe bytes injected (streams + trains); lets experiments
    /// discount the tool's own footprint from link counters.
    pub probe_bytes_sent: u64,
}

impl SimTransport {
    /// Wrap a simulator whose probe path is `chain`, delivering to a
    /// [`ProbeReceiver`] app with id `receiver`.
    pub fn new(sim: Simulator, chain: Chain, receiver: AppId) -> SimTransport {
        SimTransport {
            sim,
            chain,
            receiver,
            clock_offset_ns: ClockModel::default().offset_ns,
            clock_resolution_ns: ClockModel::default().resolution_ns,
            next_stream_tag: 0,
            next_train_tag: 0,
            lead_in: LEAD_IN,
            probe_bytes_sent: 0,
        }
    }

    /// Borrow the underlying simulator.
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// Mutably borrow the underlying simulator (to read link stats, drive
    /// other applications, ...).
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// The probe path.
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// Consume the transport, returning the simulator.
    pub fn into_sim(self) -> Simulator {
        self.sim
    }

    /// The clock model implied by the public offset/resolution fields.
    fn clock(&self) -> ClockModel {
        ClockModel {
            offset_ns: self.clock_offset_ns,
            resolution_ns: self.clock_resolution_ns,
        }
    }

    /// Sender-clock reading of a global instant.
    fn sender_reading(&self, t: TimeNs) -> i64 {
        self.clock().sender_reading(t)
    }

    /// Run the simulation in slices until `receiver` holds `want` packets
    /// of stream/train `tag`, or until `deadline`.
    fn run_until_collected(&mut self, tag: u32, want: u32, deadline: TimeNs, train: bool) {
        let slice = POLL_SLICE;
        loop {
            let now = self.sim.now();
            if now >= deadline {
                break;
            }
            let target = (now + slice).min(deadline);
            self.sim.run_until(target);
            let rx = self.sim.app::<ProbeReceiver>(self.receiver);
            let have = if train {
                rx.train(tag).count
            } else {
                rx.stream_count(tag)
            };
            if have >= want {
                break;
            }
        }
    }
}

impl ProbeTransport for SimTransport {
    fn send_stream(&mut self, req: &StreamRequest) -> Result<StreamRecord, TransportError> {
        let tag = self.next_stream_tag;
        self.next_stream_tag += 1;
        let t0 = self.sim.now() + self.lead_in;
        let route = self.chain.forward_route(&self.sim, self.receiver);
        for i in 0..req.count {
            let at = t0 + req.period * i as u64;
            let pkt = Packet::with_payload(
                req.packet_size,
                PROBE_FLOW,
                i as u64,
                route.clone(),
                Payload::Probe {
                    stream: tag,
                    idx: i,
                    sender_ts: at,
                },
            );
            self.sim.inject(pkt, at);
            self.probe_bytes_sent += req.packet_size as u64;
        }
        let deadline = t0 + req.period * req.count as u64 + STREAM_GRACE;
        self.run_until_collected(tag, req.count, deadline, false);

        let arrivals = self
            .sim
            .app_mut::<ProbeReceiver>(self.receiver)
            .take_stream(tag);
        let clock = self.clock();
        let first_send = clock.sender_reading(t0);
        let samples = arrivals
            .iter()
            .map(|a| PacketSample {
                idx: a.idx,
                send_offset: TimeNs::from_nanos(
                    (clock.sender_reading(a.sender_ts) - first_send).max(0) as u64,
                ),
                owd_ns: clock.owd_ns(a.sender_ts, a.recv_at),
            })
            .collect();
        Ok(StreamRecord {
            sent: req.count,
            samples,
        })
    }

    fn send_train(&mut self, len: u32, size: u32) -> Result<TrainRecord, TransportError> {
        let tag = self.next_train_tag;
        self.next_train_tag += 1;
        let t0 = self.sim.now() + self.lead_in;
        let route = self.chain.forward_route(&self.sim, self.receiver);
        for i in 0..len {
            // Injected simultaneously: the first link's FIFO serializes them
            // back to back, exactly like a sender NIC at line rate.
            let pkt = Packet::with_payload(
                size,
                PROBE_FLOW,
                i as u64,
                route.clone(),
                Payload::Train { train: tag, idx: i },
            );
            self.sim.inject(pkt, t0);
            self.probe_bytes_sent += size as u64;
        }
        // Worst-case drain time: the whole train at the narrowest capacity,
        // plus queueing grace.
        let narrowest = self
            .chain
            .forward
            .iter()
            .map(|l| self.sim.link(*l).capacity())
            .reduce(Rate::min)
            .expect("non-empty chain");
        let drain = TimeNs::from_secs_f64((len as u64 * size as u64 * 8) as f64 / narrowest.bps());
        let deadline = t0 + drain * 2 + TimeNs::from_secs(1);
        self.run_until_collected(tag, len, deadline, true);

        let obs = self
            .sim
            .app_mut::<ProbeReceiver>(self.receiver)
            .take_train(tag);
        // Dispersion is a timestamp difference, so the clock offset cancels;
        // report quantized receiver timestamps on the global clock to keep
        // the u64 fields meaningful.
        Ok(TrainRecord {
            sent: len,
            received: obs.count,
            size,
            first_recv: TimeNs::from_nanos(self.sender_reading(obs.first).max(0) as u64),
            last_recv: TimeNs::from_nanos(self.sender_reading(obs.last).max(0) as u64),
        })
    }

    fn rtt(&mut self) -> TimeNs {
        // Control messages are small; base RTT of the (possibly loaded)
        // path is what the real tool's control channel would measure.
        self.chain.base_rtt(&self.sim, 100, 100)
    }

    fn idle(&mut self, dur: TimeNs) {
        let target = self.sim.now() + dur;
        self.sim.run_until(target);
    }

    fn max_rate(&self) -> Option<Rate> {
        None // the simulator can inject at any rate; slops caps at MTU/T_min
    }

    fn elapsed(&self) -> TimeNs {
        self.sim.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{ChainConfig, LinkConfig};
    use slops::stream_params;
    use slops::SlopsConfig;

    /// Empty 2-hop path: 10 Mb/s then 8 Mb/s links.
    fn empty_path() -> SimTransport {
        let mut sim = Simulator::new(5);
        let chain = Chain::build(
            &mut sim,
            &ChainConfig::symmetric(vec![
                LinkConfig::new(Rate::from_mbps(10.0), TimeNs::from_millis(5)),
                LinkConfig::new(Rate::from_mbps(8.0), TimeNs::from_millis(5)),
            ]),
        );
        let rx = sim.add_app(Box::new(ProbeReceiver::default()));
        SimTransport::new(sim, chain, rx)
    }

    #[test]
    fn stream_on_empty_path_is_flat_below_capacity() {
        let mut t = empty_path();
        let cfg = SlopsConfig::default();
        let req = stream_params(Rate::from_mbps(4.0), 0, &cfg);
        let rec = t.send_stream(&req).unwrap();
        assert_eq!(rec.samples.len(), 100);
        assert_eq!(rec.loss_fraction(), 0.0);
        let owds = rec.owds();
        // No cross traffic, rate below capacity: OWDs constant within
        // clock quantization.
        let min = *owds.iter().min().unwrap();
        let max = *owds.iter().max().unwrap();
        assert!(
            max - min <= 2 * t.clock_resolution_ns as i64,
            "OWD spread {} on an empty path",
            max - min
        );
    }

    #[test]
    fn stream_above_path_capacity_ramps() {
        let mut t = empty_path();
        let cfg = SlopsConfig::default();
        // 9 Mb/s > 8 Mb/s second-link capacity: self-loading.
        let req = stream_params(Rate::from_mbps(9.0), 1, &cfg);
        let rec = t.send_stream(&req).unwrap();
        let owds = rec.owds();
        assert!(owds.last().unwrap() > owds.first().unwrap());
        // Fluid prediction: slope = L·8(1 − 8/9)/8e6 per packet.
        let l_bits = req.packet_size as f64 * 8.0;
        let slope = l_bits * (1.0 - 8.0 / 9.0) / 8e6 * 1e9; // ns per packet
        let total_pred = slope * 99.0;
        let total_obs = (owds[99] - owds[0]) as f64;
        assert!(
            (total_obs - total_pred).abs() / total_pred < 0.05,
            "observed ramp {total_obs} vs fluid {total_pred}"
        );
    }

    #[test]
    fn clock_offset_cancels_in_owd_differences() {
        let cfg = SlopsConfig::default();
        let run = |offset: i64| {
            let mut t = empty_path();
            t.clock_offset_ns = offset;
            let req = stream_params(Rate::from_mbps(9.0), 0, &cfg);
            let rec = t.send_stream(&req).unwrap();
            let owds = rec.owds();
            owds[99] - owds[0]
        };
        let ramp_no_offset = run(0);
        let ramp_offset = run(123_456_789_012);
        assert!((ramp_no_offset - ramp_offset).abs() <= 2_000);
    }

    #[test]
    fn train_dispersion_on_empty_path_equals_narrow_capacity() {
        let mut t = empty_path();
        let rec = t.send_train(48, 1500).unwrap();
        assert_eq!(rec.received, 48);
        let adr = rec.dispersion_rate().unwrap();
        // Empty path: dispersion = narrow link capacity = 8 Mb/s.
        assert!((adr.mbps() - 8.0).abs() < 0.1, "adr = {adr}");
    }

    #[test]
    fn rtt_matches_chain_base_rtt() {
        let mut t = empty_path();
        let rtt = t.rtt();
        // 2*(tx100B + 5ms) per direction, four links total: > 20 ms.
        assert!(rtt > TimeNs::from_millis(20));
        assert!(rtt < TimeNs::from_millis(21));
    }

    #[test]
    fn idle_advances_simulated_time() {
        let mut t = empty_path();
        let before = t.elapsed();
        t.idle(TimeNs::from_millis(123));
        assert_eq!(t.elapsed() - before, TimeNs::from_millis(123));
    }

    #[test]
    fn session_measures_empty_path_capacity() {
        // On an empty path the avail-bw equals the narrow capacity (8 Mb/s).
        let mut t = empty_path();
        let est = slops::Session::new(SlopsConfig::default())
            .run(&mut t)
            .unwrap();
        assert!(
            est.low.mbps() <= 8.0 && 8.0 <= est.high.mbps() + 0.5,
            "reported [{}, {}]",
            est.low,
            est.high
        );
    }
}
