//! # simprobe — SLoPS probing over the packet-level simulator
//!
//! Implements [`slops::ProbeTransport`] on top of a [`netsim::Simulator`]
//! (periodic UDP-like streams, back-to-back trains, pacing idles), together
//! with builders for every topology in the paper's evaluation:
//!
//! * [`scenarios::PaperPath`] — the H-hop chain of Fig. 4 with a tight link
//!   in the middle and per-hop cross traffic (Figs. 5–9, 11, 13, 14).
//! * [`scenarios::verification_path`] — the Univ-Oregon → Univ-Delaware
//!   style path where the tight link (155 Mb/s POS) differs from the narrow
//!   link (100 Mb/s FE) (Figs. 1–3, 10).
//! * [`scenarios::multiplexing_path`] — a bottleneck fed by a configurable
//!   number of Pareto ON/OFF sources (Fig. 12).
//!
//! Timestamping model: the simulated receiver reads its own clock, which is
//! offset from the sender's by a configurable constant and quantized to a
//! configurable resolution (1 µs default, like `gettimeofday`; see
//! [`clock::ClockModel`]). SLoPS only uses OWD *differences*, so the offset
//! cancels — the transport exists to prove exactly that on a
//! packet-accurate path.
//!
//! Two drivers run a measurement over the simulator:
//!
//! * [`SimTransport`] — the blocking shim: implements
//!   [`slops::ProbeTransport`], seizing the event loop per probe call.
//!   One measurement per simulator; simplest to use.
//! * [`SessionApp`] (via [`install_session`] / [`run_session`]) — the
//!   **in-sim driver**: runs the sans-IO [`slops::SessionMachine`] as a
//!   native simulator application from packet/timer callbacks, so
//!   measurements coexist with cross traffic, TCP flows and each other
//!   under one ordinary event loop. Timing is bit-compatible with the
//!   blocking shim: same seed, same estimate.

#![forbid(unsafe_code)]

pub mod clock;
pub mod driver;
pub mod receiver;
pub mod scenarios;
pub mod transport;

pub use clock::ClockModel;
pub use driver::{install_session, install_session_at, run_session, SessionApp};
pub use receiver::ProbeReceiver;
pub use scenarios::{
    build_disjoint_paths, multiplexing_path, reverse_loaded_path, shared_tight_link,
    step_link_load, verification_path, verification_path_with_window, PaperPath, PaperPathConfig,
    SharedTightLink, SharedTightLinkConfig,
};
pub use transport::SimTransport;
