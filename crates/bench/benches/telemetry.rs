//! Criterion micro-benchmarks of the observability layer (ROADMAP item
//! 5 / PR 7): `SessionMachine` step throughput, the event loop's
//! `TimerQueue`, and the telemetry registry's overhead on an
//! instrumented session relative to an uninstrumented one.
//!
//! Results are committed as `BENCH_7.json` at the repo root (op-count
//! and throughput metrics only; absolute times carry the single-core
//! container caveat from ARCHITECTURE.md).

use criterion::{criterion_group, criterion_main, Criterion};
use monitord::FleetTelemetry;
use pathload_net::mux::TimerQueue;
use slops::testutil::OracleTransport;
use slops::{Session, SlopsConfig};
use std::hint::black_box;
use units::Rate;

/// Every machine bench runs the paper's default configuration
/// (100-packet streams, 12-stream fleets): the per-stream trend work and
/// the per-stream trace events stay in their production ratio, so the
/// instrumented/uninstrumented delta measures the real relative
/// overhead.
fn bench_cfg() -> SlopsConfig {
    SlopsConfig::default()
}

fn bench_machine(c: &mut Criterion) {
    // One full sans-IO measurement against the deterministic oracle:
    // every poll/on_event step, the trend classification, and the rate
    // search — no I/O, no sleeping (the oracle answers instantly).
    c.bench_function("session_machine_full_run", |b| {
        let session = Session::new(bench_cfg());
        b.iter(|| {
            let mut t = OracleTransport::new(Rate::from_mbps(47.0), 3);
            black_box(session.run(&mut t).unwrap())
        })
    });
}

fn bench_machine_instrumented(c: &mut Criterion) {
    // The same measurement with the production telemetry attached: the
    // machine minting trace events and the driver relaying them into a
    // labeled registry sink. The per-iteration delta against
    // `session_machine_full_run` is the registry overhead BENCH_7.json
    // commits (<5% required).
    c.bench_function("session_machine_full_run_instrumented", |b| {
        let telemetry = FleetTelemetry::new();
        let session = Session::new(bench_cfg()).with_trace_sink(telemetry.trace_sink("bench"));
        b.iter(|| {
            let mut t = OracleTransport::new(Rate::from_mbps(47.0), 3);
            black_box(session.run(&mut t).unwrap())
        })
    });
}

fn bench_timer_queue(c: &mut Criterion) {
    // The event loop's timer heap under fleet-scale churn: 1k arms with
    // interleaved deadlines, then drain in deadline order.
    c.bench_function("timer_queue_arm_pop_1k", |b| {
        b.iter(|| {
            let mut q = TimerQueue::new();
            for i in 0..1000u64 {
                q.arm((i * 7919) % 1000, i);
            }
            let mut popped = 0u64;
            while q.pop_expired(u64::MAX).is_some() {
                popped += 1;
            }
            black_box(popped)
        })
    });
}

fn bench_registry_primitives(c: &mut Criterion) {
    // The hot-path primitives drivers call per packet / per wakeup.
    let registry = telemetry::Registry::new();
    let counter = registry.counter("bench_total", &[("path", "lo0")]);
    let hist = registry.histogram("bench_ns", &[("path", "lo0")]);
    c.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    c.bench_function("histogram_observe", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.observe(black_box(v >> 40))
        })
    });
}

criterion_group!(
    benches,
    bench_machine,
    bench_machine_instrumented,
    bench_timer_queue,
    bench_registry_primitives
);
criterion_main!(benches);
