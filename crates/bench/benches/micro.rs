//! Criterion micro-benchmarks of the hot paths: trend statistics, OWD
//! preprocessing, the simulator's event loop, the PRNG, and the rate
//! search.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_trend_stats(c: &mut Criterion) {
    let owds: Vec<i64> = (0..100).map(|i| 1000 + i * 37 + (i % 7) * 1000).collect();
    c.bench_function("group_medians_k100", |b| {
        b.iter(|| slops::owd::group_medians(black_box(&owds)))
    });
    let medians = slops::owd::group_medians(&owds);
    c.bench_function("pct_metric", |b| {
        b.iter(|| slops::pct_metric(black_box(&medians)))
    });
    c.bench_function("pdt_metric", |b| {
        b.iter(|| slops::pdt_metric(black_box(&medians)))
    });
    let cfg = slops::SlopsConfig::default();
    c.bench_function("classify_medians", |b| {
        b.iter(|| slops::classify_medians(black_box(&medians), &cfg))
    });
}

fn bench_prng(c: &mut Criterion) {
    c.bench_function("prng_next_u64", |b| {
        let mut rng = netsim::Prng::new(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    c.bench_function("prng_pareto", |b| {
        let mut rng = netsim::Prng::new(1);
        b.iter(|| black_box(rng.pareto_mean(1.9, 0.005)))
    });
}

fn bench_event_loop(c: &mut Criterion) {
    use netsim::app::CountingSink;
    use netsim::{FlowId, LinkConfig, Packet, Simulator};
    use units::{Rate, TimeNs};
    // Throughput of the engine: one link, 10k packets, run to completion.
    c.bench_function("engine_10k_packets_one_link", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulator::new(1);
                let l = sim.add_link(LinkConfig::new(
                    Rate::from_mbps(1000.0),
                    TimeNs::from_micros(10),
                ));
                let sink = sim.add_app(Box::new(CountingSink::default()));
                let route = sim.route(&[l], sink);
                for i in 0..10_000u64 {
                    sim.inject(
                        Packet::new(500, FlowId(1), i, route.clone()),
                        TimeNs::from_nanos(i * 100),
                    );
                }
                sim
            },
            |mut sim| {
                sim.run_until_idle(TimeNs::from_secs(10));
                black_box(sim.events_processed())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_rate_search(c: &mut Criterion) {
    use slops::{FleetOutcome, RateSearch};
    use units::Rate;
    c.bench_function("rate_search_full_convergence", |b| {
        b.iter(|| {
            let mut s = RateSearch::new(
                Rate::from_mbps(120.0),
                Rate::from_mbps(1.0),
                Rate::from_mbps(1.5),
                None,
            );
            while let Some(r) = s.next_rate() {
                let outcome = if r.mbps() > 47.3 {
                    FleetOutcome::AboveAvailBw
                } else {
                    FleetOutcome::BelowAvailBw
                };
                s.record(r, outcome);
            }
            black_box(s.bounds())
        })
    });
}

fn bench_fluid(c: &mut Criterion) {
    use fluid::{FluidLink, FluidPath};
    use units::Rate;
    let path = FluidPath::new(
        (0..10)
            .map(|i| {
                FluidLink::new(
                    Rate::from_mbps(100.0 - i as f64),
                    Rate::from_mbps(50.0 - i as f64),
                )
            })
            .collect(),
    );
    c.bench_function("fluid_owds_k100_h10", |b| {
        b.iter(|| black_box(path.owds(Rate::from_mbps(60.0), 500, 100)))
    });
}

criterion_group!(
    benches,
    bench_trend_stats,
    bench_prng,
    bench_event_loop,
    bench_rate_search,
    bench_fluid
);
criterion_main!(benches);
