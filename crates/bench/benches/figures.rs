//! `cargo bench --bench figures` — regenerate every figure of the paper at
//! reduced fidelity (quick preset), so a single `cargo bench` run exercises
//! the entire reproduction end to end. Full-fidelity runs: the per-figure
//! binaries (`cargo run --release -p availbw-bench --bin fig05`).

use availbw_bench::figs;
use availbw_bench::RunOpts;

fn main() {
    // cargo bench passes --bench; ignore all arguments.
    let opts = RunOpts::quick();
    println!("availbw reproduction, quick preset: {opts:?}");
    let t0 = std::time::Instant::now();
    type FigureFn = fn(&RunOpts) -> String;
    let figures: &[(&str, FigureFn)] = &[
        ("fig01_03", figs::fig01_03::run),
        ("fig05", figs::fig05::run),
        ("fig06", figs::fig06::run),
        ("fig07", figs::fig07::run),
        ("fig08", figs::fig08::run),
        ("fig09", figs::fig09::run),
        ("fig10", figs::fig10::run),
        ("fig11", figs::fig11::run),
        ("fig12", figs::fig12::run),
        ("fig13", figs::fig13::run),
        ("fig14", figs::fig14::run),
        ("fig15_16", figs::fig15_16::run),
        ("fig17_18", figs::fig17_18::run),
        ("ablations", figs::ablations::run),
        ("comparison", figs::comparison::run),
        ("ssthresh", figs::ssthresh::run),
    ];
    for (name, f) in figures {
        let t = std::time::Instant::now();
        let _ = f(&opts);
        eprintln!("[{name} done in {:.1?}]", t.elapsed());
    }
    eprintln!("all figures regenerated in {:.1?}", t0.elapsed());
}
