//! The fleet-scale engine benchmark (ROADMAP item 5 / PR 10): a
//! 256-disjoint-path in-sim monitored fleet driven through
//! `SimFleetMonitor`, run on the sharded engine and on the single-queue
//! baseline.
//!
//! Wall-clock on this container is noise (single shared core — see
//! ARCHITECTURE.md § Performance notes), so the numbers that matter are
//! the engine's own op counts, printed as `fleet256 …` summary lines
//! before the timed runs: events per estimate, real heap ops per event,
//! and the comparison-weight proxy (Σ ceil(log2(depth)) per heap op)
//! where the log(global) → log(per-shard) win shows even when raw op
//! counts converge. Results are committed as `BENCH_9.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use monitord::{ScheduleConfig, SeriesConfig, SimEngine, SimFleetMonitor, SimPathSpec};
use netsim::{EngineStats, Simulator};
use simprobe::scenarios::{build_disjoint_paths, LinkLoad, PathOpts};
use slops::SlopsConfig;
use std::hint::black_box;
use units::{Rate, TimeNs};

const PATHS: usize = 256;
const SEED: u64 = 0xF1EE7;

/// Build and run the whole monitored fleet; returns (engine stats,
/// estimates harvested, shard count).
fn run_fleet(engine: SimEngine) -> (EngineStats, u64, usize) {
    let mut sim = Simulator::new(SEED);
    // 256 disjoint one-hop paths, capacities cycling 5/10/20 Mb/s, each
    // carrying modest Pareto cross traffic — small enough links that the
    // probe logic (not the cross traffic) dominates the event count.
    let loads: Vec<Vec<LinkLoad>> = (0..PATHS)
        .map(|i| {
            let cap = [5.0, 10.0, 20.0][i % 3];
            vec![LinkLoad::pareto(Rate::from_mbps(cap), 0.20, 2)]
        })
        .collect();
    let mut opts = PathOpts::default();
    opts.warmup = TimeNs::from_millis(500);
    let chains = build_disjoint_paths(&mut sim, &loads, &opts);
    let specs = chains
        .into_iter()
        .enumerate()
        .map(|(i, chain)| SimPathSpec {
            label: format!("p{i}"),
            chain,
            cfg: SlopsConfig::default(),
        })
        .collect();
    let sched = ScheduleConfig {
        period: TimeNs::from_secs(4),
        jitter: TimeNs::from_secs(2),
        max_concurrent: 0, // uncapped: all 256 paths measure concurrently
        seed: SEED,
    };
    let mut mon = SimFleetMonitor::with_engine(
        sim,
        specs,
        &sched,
        &SeriesConfig::default(),
        TimeNs::from_secs(8),
        engine,
    )
    .expect("default config is valid");
    mon.run_to_completion();
    let estimates: u64 = mon.series().iter().map(|s| s.len() as u64).sum();
    (mon.engine_stats(), estimates, mon.shards())
}

/// One instrumented run per engine, printed as greppable `fleet256` lines
/// (this is the op-count record for BENCH_9.json; the criterion loop below
/// only adds wall-clock context).
fn print_summary() {
    let mut per_engine = Vec::new();
    for (name, engine) in [
        ("sharded", SimEngine::Auto),
        ("single-queue", SimEngine::SingleQueue),
    ] {
        let t = std::time::Instant::now();
        let (s, estimates, shards) = run_fleet(engine);
        let secs = t.elapsed().as_secs_f64();
        println!(
            "fleet256 {name}: shards={shards} events={} estimates={estimates} \
             events/estimate={:.0} heap_ops={} ({:.3}/event) cmp_weight/event={:.2} \
             front_hits={} max_depth={} pool_peak={} events/sec={:.0}",
            s.events_processed,
            s.events_processed as f64 / estimates.max(1) as f64,
            s.heap_ops(),
            s.heap_ops_per_event(),
            s.cmp_weight_per_event(),
            s.front_hits,
            s.heap_max_depth,
            s.pool_live_max,
            s.events_processed as f64 / secs,
        );
        per_engine.push(s);
    }
    let (sharded, single) = (per_engine[0], per_engine[1]);
    assert_eq!(
        sharded.events_processed, single.events_processed,
        "both engines must dispatch the same fleet"
    );
    println!(
        "fleet256 reduction: heap_ops/event {:.2}x cmp_weight/event {:.2}x max_depth {:.2}x",
        single.heap_ops_per_event() / sharded.heap_ops_per_event(),
        single.cmp_weight_per_event() / sharded.cmp_weight_per_event(),
        single.heap_max_depth as f64 / sharded.heap_max_depth as f64,
    );
}

fn bench_fleet(c: &mut Criterion) {
    print_summary();
    c.bench_function("fleet256_sharded", |b| {
        b.iter(|| black_box(run_fleet(SimEngine::Auto)))
    });
    c.bench_function("fleet256_single_queue", |b| {
        b.iter(|| black_box(run_fleet(SimEngine::SingleQueue)))
    });
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
