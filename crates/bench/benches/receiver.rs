//! Criterion micro-benchmarks of the receiver's hot datapath (ROADMAP
//! item 5 / PR 8): probe-packet demux routing (decode + token lookup,
//! the per-datagram work of both receiver shapes) and the kernel
//! crossing itself — a 32-datagram drain through `recvmmsg` batching
//! versus the scalar one-syscall-per-datagram fallback.
//!
//! Results are committed as `BENCH_8.json` at the repo root (absolute
//! times carry the single-core container caveat from ARCHITECTURE.md;
//! the batched/scalar ratio is the stable signal).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pathload_net::batch::UdpRecvBatch;
use pathload_net::proto::{ProbeKind, ProbePacket};
use std::collections::HashMap;
use std::hint::black_box;
use std::net::UdpSocket;

fn bench_demux_routing(c: &mut Criterion) {
    // The evented receiver's per-datagram routing decision at fleet
    // scale: decode the 32-byte header, look the session token up in a
    // 1024-session table. Every 4th packet carries an unknown token (the
    // drop path is part of the hot loop: stale sessions keep sending).
    const SESSIONS: usize = 1024;
    const PACKETS: usize = 1024;
    let base = 0x9E37_79B9_7F4A_7C15u64;
    let mut by_token: HashMap<u64, usize> = HashMap::with_capacity(SESSIONS);
    for s in 0..SESSIONS {
        by_token.insert(base.wrapping_add(s as u64), s);
    }
    let bufs: Vec<[u8; 64]> = (0..PACKETS)
        .map(|i| {
            let session = if i % 4 == 0 {
                base.wrapping_sub(1 + i as u64) // never minted
            } else {
                base.wrapping_add((i % SESSIONS) as u64)
            };
            let mut buf = [0u8; 64];
            ProbePacket {
                session,
                kind: ProbeKind::Stream,
                id: 7,
                idx: i as u32,
                send_ns: i as u64,
            }
            .encode(&mut buf);
            buf
        })
        .collect();
    c.bench_function("demux_route_1k_packets", |b| {
        b.iter(|| {
            let mut routed = 0usize;
            let mut unknown = 0usize;
            for buf in &bufs {
                match ProbePacket::decode(buf).and_then(|p| by_token.get(&p.session)) {
                    Some(_) => routed += 1,
                    None => unknown += 1,
                }
            }
            black_box((routed, unknown))
        })
    });
}

fn bench_udp_drain(c: &mut Criterion) {
    // One readability wakeup's worth of kernel crossings: 32 loopback
    // datagrams drained batched (`recvmmsg`, one syscall for up to 32)
    // versus scalar (one `recv` per datagram). Setup (sending the 32)
    // is not timed. Off Linux the batched case silently runs the scalar
    // loop, so the two numbers converge there.
    let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
    rx.set_nonblocking(true).unwrap();
    let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
    tx.connect(rx.local_addr().unwrap()).unwrap();
    let payload = [0u8; 64];
    for (name, scalar) in [
        ("udp_drain_32_recvmmsg", false),
        ("udp_drain_32_scalar", true),
    ] {
        let mut batch = UdpRecvBatch::new(32, 2048);
        batch.set_scalar(scalar);
        c.bench_function(name, |b| {
            b.iter_batched(
                || {
                    for _ in 0..32 {
                        tx.send(&payload).unwrap();
                    }
                },
                |()| {
                    let mut got = 0usize;
                    loop {
                        match batch.recv(&rx) {
                            Ok(n) => got += n,
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(e) => panic!("drain: {e}"),
                        }
                    }
                    black_box(got)
                },
                BatchSize::PerIteration,
            )
        });
    }
}

criterion_group!(receiver, bench_demux_routing, bench_udp_drain);
criterion_main!(receiver);
