//! Plain-text report formatting: aligned tables and CDF listings, printed
//! the way the paper's figures tabulate their series.

use std::fmt::Write as _;

/// A simple aligned-column table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", cells[i], width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Render a CDF sampled at the {5, 15, …, 95} percentiles, one series per
/// labelled column (the layout of the paper's Figs. 11–14).
pub fn render_cdfs(metric: &str, series: &[(String, Vec<(f64, f64)>)]) -> String {
    let mut header: Vec<&str> = vec!["percentile"];
    for (label, _) in series {
        header.push(label);
    }
    let mut t = Table::new(&header);
    if let Some((_, first)) = series.first() {
        for (i, (p, _)) in first.iter().enumerate() {
            let mut row = vec![format!("{p:.0}%")];
            for (_, cdf) in series {
                row.push(format!("{:.3}", cdf[i].1));
            }
            t.row(&row);
        }
    }
    format!("{metric}\n{}", t.render())
}

/// Section header for figure reports.
pub fn section(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["a", "long-header", "b"]);
        t.row(&["1".into(), "2".into(), "333333".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn cdf_rendering() {
        let cdf = vec![(5.0, 0.1), (15.0, 0.2)];
        let s = render_cdfs("rho", &[("pathA".into(), cdf)]);
        assert!(s.contains("rho"));
        assert!(s.contains("pathA"));
        assert!(s.contains("5%"));
        assert!(s.contains("0.100"));
    }
}
