//! # availbw-bench — the reproduction harness
//!
//! One module (and one binary) per figure of the paper's evaluation.
//! Each figure function takes a [`RunOpts`] and returns the formatted
//! report it also prints, so the quick-mode `cargo bench` target, the
//! full-mode binaries, and EXPERIMENTS.md all share one code path.
//!
//! Run a single figure at full fidelity:
//!
//! ```text
//! cargo run --release -p availbw-bench --bin fig05
//! ```
//!
//! Environment knobs: `AVAILBW_RUNS` overrides the per-point run count,
//! `AVAILBW_QUICK=1` selects the reduced preset (also used by
//! `cargo bench`).

#![forbid(unsafe_code)]

pub mod figs;
pub mod report;

use units::TimeNs;

/// Execution options shared by all figures.
#[derive(Clone, Copy, Debug)]
pub struct RunOpts {
    /// pathload runs per configuration point (the paper uses 50 for
    /// Figs. 5–7 and 110 for Figs. 11–14).
    pub runs: usize,
    /// Experiment phase length for the 25-minute TCP experiments
    /// (5 minutes in the paper; shorter in quick mode).
    pub phase: TimeNs,
    /// Root seed; every run derives its own.
    pub seed: u64,
}

impl RunOpts {
    /// The paper's full fidelity.
    pub fn full() -> RunOpts {
        RunOpts {
            runs: 50,
            phase: TimeNs::from_secs(300),
            seed: 20020819, // SIGCOMM 2002 started August 19
        }
    }

    /// Reduced preset for `cargo bench` / smoke testing.
    pub fn quick() -> RunOpts {
        RunOpts {
            runs: 6,
            phase: TimeNs::from_secs(45),
            seed: 20020819,
        }
    }

    /// `full()` unless `AVAILBW_QUICK=1`; `AVAILBW_RUNS` overrides `runs`.
    pub fn from_env() -> RunOpts {
        let mut opts = if std::env::var("AVAILBW_QUICK").is_ok_and(|v| v == "1") {
            RunOpts::quick()
        } else {
            RunOpts::full()
        };
        if let Ok(r) = std::env::var("AVAILBW_RUNS") {
            if let Ok(r) = r.parse::<usize>() {
                opts.runs = r.max(1);
            }
        }
        opts
    }

    /// Per-run derived seed.
    pub fn run_seed(&self, point: usize, run: usize) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((point as u64) << 32)
            .wrapping_add(run as u64)
    }
}
