//! Figures 17–18: is pathload intrusive? The same world as Figs. 15–16,
//! but pathload (instead of a greedy TCP) runs during phases B and D, and
//! the pings fire every 100 ms to catch even short-lived queueing.
//!
//! Expected: no measurable avail-bw decrease during B/D, no measurable RTT
//! increase, no probe-stream or ping losses.

use crate::figs::btc::build_btc_world;
use crate::figs::common::emit;
use crate::report::{section, Table};
use crate::RunOpts;
use slops::{ProbeTransport, Session, SlopsConfig};
use units::{Rate, TimeNs};

/// Run the experiment and return the report.
pub fn run(opts: &RunOpts) -> String {
    let phase = opts.phase;
    let total = phase * 5;
    let mut out = section(&format!(
        "Figures 17-18: pathload non-intrusiveness (5 x {phase} phases, pathload in B and D, 100 ms pings)"
    ));
    let world = build_btc_world(opts.seed ^ 0xF17, total, TimeNs::from_millis(100), phase);
    let (mut t, tight, pinger_id) = world.into_transport();

    let session = Session::new(SlopsConfig::default());
    let mut estimates = Vec::new();
    let mut stream_losses = 0usize;
    let mut streams_sent = 0usize;
    for i in 0..5u64 {
        let start = phase * i;
        let end = start + phase;
        if i == 1 || i == 3 {
            // Run pathload back to back for the whole phase.
            while t.elapsed() < end {
                match session.run(&mut t) {
                    Ok(est) => {
                        for f in &est.fleets {
                            streams_sent += f.losses.len();
                            stream_losses += f.losses.iter().filter(|&&l| l > 0.0).count();
                        }
                        estimates.push((i, est));
                    }
                    Err(e) => {
                        eprintln!("phase {i}: {e}");
                        break;
                    }
                }
            }
        } else if t.elapsed() < end {
            t.idle(end - t.elapsed());
        }
    }
    t.idle(TimeNs::from_millis(1));

    // Per-phase MRTG avail and RTT.
    let sim = t.sim();
    let link = sim.link(tight);
    let mut tab = Table::new(&[
        "phase",
        "MRTG avail (Mb/s)",
        "RTT p50 (ms)",
        "RTT p95",
        "RTT max",
        "pings lost",
    ]);
    let pinger = sim.app::<netsim::Pinger>(pinger_id);
    let mut avail = [0.0f64; 5];
    let mut rtt_p50 = [0.0f64; 5];
    for (i, name) in ["A", "B", "C", "D", "E"].iter().enumerate() {
        let start = phase * i as u64;
        let idx = (start.as_nanos() / link.monitor().window().as_nanos()) as usize;
        avail[i] = link
            .monitor()
            .avail_bw_in_window(idx, link.capacity())
            .mbps();
        let stats = pinger.stats_between(start, start + phase);
        rtt_p50[i] = stats.rtt_ms.p50;
        tab.row(&[
            name.to_string(),
            format!("{:.2}", avail[i]),
            format!("{:.1}", stats.rtt_ms.p50),
            format!("{:.1}", stats.rtt_ms.p95),
            format!("{:.1}", stats.rtt_ms.max),
            format!("{}", stats.lost),
        ]);
    }
    out.push_str(&tab.render());

    out.push_str("\npathload estimates during B and D:\n");
    let mut est_tab = Table::new(&["phase", "range (Mb/s)", "fleets", "duration"]);
    for (i, est) in &estimates {
        est_tab.row(&[
            if *i == 1 { "B" } else { "D" }.to_string(),
            format!("[{:.2}, {:.2}]", est.low.mbps(), est.high.mbps()),
            format!("{}", est.fleets.len()),
            format!("{}", est.elapsed),
        ]);
    }
    out.push_str(&est_tab.render());

    let quiet = (avail[0] + avail[2] + avail[4]) / 3.0;
    let probed = (avail[1] + avail[3]) / 2.0;
    let rtt_quiet = (rtt_p50[0] + rtt_p50[2] + rtt_p50[4]) / 3.0;
    let rtt_probed = (rtt_p50[1] + rtt_p50[3]) / 2.0;
    out.push_str(&format!(
        "\navail-bw quiet {quiet:.2} vs probed {probed:.2} Mb/s (delta {:.2});\n\
         median RTT quiet {rtt_quiet:.1} vs probed {rtt_probed:.1} ms;\n\
         probe streams with any loss: {stream_losses}/{streams_sent}\n\
         paper shape: no measurable avail-bw decrease, no measurable RTT\n\
         increase, no stream or ping losses while pathload runs.\n",
        (quiet - probed).abs(),
    ));
    let _ = Rate::ZERO; // keep units in scope for future extensions
    emit(out)
}
