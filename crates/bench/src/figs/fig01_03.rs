//! Figures 1–3: one-way delays of periodic streams at rates above, below,
//! and near the avail-bw, on a wide-area path with A ≈ 74 Mb/s
//! (Univ-Oregon → Univ-Delaware in the paper; our simulated stand-in has
//! the same 155 Mb/s tight link loaded to leave ~74 Mb/s available).

use crate::figs::common::emit;
use crate::report::{section, Table};
use crate::RunOpts;
use simprobe::scenarios::verification_path;
use slops::{stream_params, ProbeTransport, SlopsConfig};
use units::Rate;

/// Paper parameters: stream rates of Figs. 1, 2, 3.
const RATES_MBPS: [f64; 3] = [96.0, 37.0, 82.0];

/// Run the experiment and return the report.
pub fn run(opts: &RunOpts) -> String {
    let mut out = section("Figures 1-3: OWD trends at R > A, R < A, R ~ A (A ~ 74 Mb/s)");
    // 155 Mb/s tight link at u = 0.52 leaves ~74.4 Mb/s.
    let (mut t, _tight) = verification_path(0.52, opts.seed);
    let cfg = SlopsConfig::default();
    for (i, rate) in RATES_MBPS.iter().enumerate() {
        let req = stream_params(Rate::from_mbps(*rate), i as u32, &cfg);
        let rec = t.send_stream(&req).expect("sim transport cannot fail");
        let owds = rec.owds();
        let first = *owds.first().unwrap_or(&0);
        let rel_ms: Vec<f64> = owds.iter().map(|o| (o - first) as f64 / 1e6).collect();
        out.push_str(&format!(
            "\nFig. {}: stream rate {:.0} Mb/s ({} packets of {} B every {}):\n",
            i + 1,
            rate,
            req.count,
            req.packet_size,
            req.period
        ));
        let mut tab = Table::new(&["packet", "relative OWD (ms)"]);
        for (k, v) in rel_ms.iter().enumerate().step_by(5) {
            tab.row(&[format!("{k}"), format!("{v:+.3}")]);
        }
        out.push_str(&tab.render());
        let net = rel_ms.last().copied().unwrap_or(0.0);
        let verdict = slops::classify_stream(&rec, &cfg);
        out.push_str(&format!(
            "net OWD change over the stream: {net:+.3} ms -> {verdict:?}\n"
        ));
        t.idle(units::TimeNs::from_millis(500));
    }
    out.push_str(
        "\npaper shape: Fig.1 (96 Mb/s > A) clear increasing trend;\n\
         Fig.2 (37 Mb/s < A) no trend; Fig.3 (82 Mb/s ~ A) mixed/partial trend.\n",
    );
    emit(out)
}
