//! Helpers shared by the accuracy and dynamics figures.

use crate::RunOpts;
use simprobe::scenarios::{PaperPath, PaperPathConfig};
use slops::{Session, SlopsConfig};
use units::stats;

/// Result of repeated pathload runs on one configuration point.
#[derive(Debug, Clone)]
pub struct RepeatedRuns {
    /// Reported lower bounds, Mb/s.
    pub lows: Vec<f64>,
    /// Reported upper bounds, Mb/s.
    pub highs: Vec<f64>,
    /// Relative variation ρ of each run.
    pub rhos: Vec<f64>,
}

impl RepeatedRuns {
    /// Mean of the lower bounds.
    pub fn avg_low(&self) -> f64 {
        stats::mean(&self.lows)
    }

    /// Mean of the upper bounds.
    pub fn avg_high(&self) -> f64 {
        stats::mean(&self.highs)
    }

    /// Center of the average range.
    pub fn center(&self) -> f64 {
        (self.avg_low() + self.avg_high()) / 2.0
    }

    /// Coefficient of variation of the upper bounds (the paper reports
    /// 0.10–0.30 for its 50-run averages).
    pub fn cov_high(&self) -> f64 {
        stats::Summary::of(&self.highs).cov()
    }

    /// CDF of ρ at the {5,…,95} percentiles.
    pub fn rho_cdf(&self) -> Vec<(f64, f64)> {
        stats::cdf_points(&self.rhos)
    }
}

/// Run pathload `opts.runs` times on fresh instances of `path_cfg`
/// (a new seed per run, as the paper's 50-run averages do).
pub fn repeated_runs(
    path_cfg: &PaperPathConfig,
    slops_cfg: &SlopsConfig,
    opts: &RunOpts,
    point: usize,
) -> RepeatedRuns {
    let mut lows = Vec::with_capacity(opts.runs);
    let mut highs = Vec::with_capacity(opts.runs);
    let mut rhos = Vec::with_capacity(opts.runs);
    for run in 0..opts.runs {
        let seed = opts.run_seed(point, run);
        let mut t = PaperPath::build(path_cfg, seed).into_transport();
        match Session::new(slops_cfg.clone()).run(&mut t) {
            Ok(est) => {
                lows.push(est.low.mbps());
                highs.push(est.high.mbps());
                rhos.push(est.relative_variation());
            }
            Err(e) => eprintln!("run {run} failed: {e}"),
        }
    }
    RepeatedRuns { lows, highs, rhos }
}

/// Print-and-return convention shared by all figure mains.
pub fn emit(report: String) -> String {
    println!("{report}");
    report
}
