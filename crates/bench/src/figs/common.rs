//! Helpers shared by the accuracy and dynamics figures.

use crate::RunOpts;
use simprobe::scenarios::{PaperPath, PaperPathConfig};
use slops::runner::{run_sessions, SessionJob};
use slops::SlopsConfig;
use units::stats;

/// Result of repeated pathload runs on one configuration point.
#[derive(Debug, Clone)]
pub struct RepeatedRuns {
    /// Reported lower bounds, Mb/s.
    pub lows: Vec<f64>,
    /// Reported upper bounds, Mb/s.
    pub highs: Vec<f64>,
    /// Relative variation ρ of each run.
    pub rhos: Vec<f64>,
}

impl RepeatedRuns {
    /// Mean of the lower bounds.
    pub fn avg_low(&self) -> f64 {
        stats::mean(&self.lows)
    }

    /// Mean of the upper bounds.
    pub fn avg_high(&self) -> f64 {
        stats::mean(&self.highs)
    }

    /// Center of the average range.
    pub fn center(&self) -> f64 {
        (self.avg_low() + self.avg_high()) / 2.0
    }

    /// Coefficient of variation of the upper bounds (the paper reports
    /// 0.10–0.30 for its 50-run averages).
    pub fn cov_high(&self) -> f64 {
        stats::Summary::of(&self.highs).cov()
    }

    /// CDF of ρ at the {5,…,95} percentiles.
    pub fn rho_cdf(&self) -> Vec<(f64, f64)> {
        stats::cdf_points(&self.rhos)
    }
}

/// One configuration point of a figure's grid: a path topology plus a
/// session configuration, identified by the figure's `point` id (which
/// also roots the per-run seeds, so ports from the serial loops keep
/// byte-identical seeding).
pub struct GridPoint {
    /// Seed-rooting point id (see [`RunOpts::run_seed`]).
    pub point: usize,
    /// Path topology of this point.
    pub path_cfg: PaperPathConfig,
    /// Session configuration of this point.
    pub slops_cfg: SlopsConfig,
}

/// Run pathload `opts.runs` times on **every** grid point as one batch on
/// the [`slops::runner`] layer: all `points × runs` sessions self-schedule
/// across the worker pool together, so a figure's slowest point no longer
/// serializes behind its fastest. Results come back per point, in point
/// order; lost sessions are reported on stderr and skipped.
pub fn repeated_runs_grid(points: &[GridPoint], opts: &RunOpts) -> Vec<RepeatedRuns> {
    let jobs: Vec<SessionJob> = points
        .iter()
        .flat_map(|p| {
            (0..opts.runs).map(|run| {
                let seed = opts.run_seed(p.point, run);
                let path_cfg = p.path_cfg.clone();
                SessionJob::new(
                    format!("point{}/run{run}", p.point),
                    p.slops_cfg.clone(),
                    move || PaperPath::build(&path_cfg, seed).into_transport(),
                )
            })
        })
        .collect();
    let outcomes = run_sessions(jobs, 0);
    outcomes
        .chunks(opts.runs)
        .map(|chunk| {
            let mut res = RepeatedRuns {
                lows: Vec::with_capacity(opts.runs),
                highs: Vec::with_capacity(opts.runs),
                rhos: Vec::with_capacity(opts.runs),
            };
            for out in chunk {
                match out.estimate() {
                    Some(est) => {
                        res.lows.push(est.low.mbps());
                        res.highs.push(est.high.mbps());
                        res.rhos.push(est.relative_variation());
                    }
                    None => eprintln!(
                        "{} failed: {}",
                        out.label,
                        out.error().expect("no estimate implies an error")
                    ),
                }
            }
            res
        })
        .collect()
}

/// Run pathload `opts.runs` times on fresh instances of `path_cfg`
/// (a new seed per run, as the paper's 50-run averages do).
///
/// Single-point convenience wrapper over [`repeated_runs_grid`].
pub fn repeated_runs(
    path_cfg: &PaperPathConfig,
    slops_cfg: &SlopsConfig,
    opts: &RunOpts,
    point: usize,
) -> RepeatedRuns {
    repeated_runs_grid(
        &[GridPoint {
            point,
            path_cfg: path_cfg.clone(),
            slops_cfg: slops_cfg.clone(),
        }],
        opts,
    )
    .pop()
    .expect("one point in, one result out")
}

/// Print-and-return convention shared by all figure mains.
pub fn emit(report: String) -> String {
    println!("{report}");
    report
}
