//! Helpers shared by the accuracy and dynamics figures.

use crate::RunOpts;
use simprobe::scenarios::{PaperPath, PaperPathConfig};
use slops::runner::{run_sessions, SessionJob};
use slops::SlopsConfig;
use units::stats;

/// Result of repeated pathload runs on one configuration point.
#[derive(Debug, Clone)]
pub struct RepeatedRuns {
    /// Reported lower bounds, Mb/s.
    pub lows: Vec<f64>,
    /// Reported upper bounds, Mb/s.
    pub highs: Vec<f64>,
    /// Relative variation ρ of each run.
    pub rhos: Vec<f64>,
}

impl RepeatedRuns {
    /// Mean of the lower bounds.
    pub fn avg_low(&self) -> f64 {
        stats::mean(&self.lows)
    }

    /// Mean of the upper bounds.
    pub fn avg_high(&self) -> f64 {
        stats::mean(&self.highs)
    }

    /// Center of the average range.
    pub fn center(&self) -> f64 {
        (self.avg_low() + self.avg_high()) / 2.0
    }

    /// Coefficient of variation of the upper bounds (the paper reports
    /// 0.10–0.30 for its 50-run averages).
    pub fn cov_high(&self) -> f64 {
        stats::Summary::of(&self.highs).cov()
    }

    /// CDF of ρ at the {5,…,95} percentiles.
    pub fn rho_cdf(&self) -> Vec<(f64, f64)> {
        stats::cdf_points(&self.rhos)
    }
}

/// Run pathload `opts.runs` times on fresh instances of `path_cfg`
/// (a new seed per run, as the paper's 50-run averages do).
///
/// Runs execute concurrently on the [`slops::runner`] batch layer — one
/// independent simulator per run, one worker per CPU — and come back in
/// run order, so the averages are identical to the old serial loop.
pub fn repeated_runs(
    path_cfg: &PaperPathConfig,
    slops_cfg: &SlopsConfig,
    opts: &RunOpts,
    point: usize,
) -> RepeatedRuns {
    let jobs: Vec<SessionJob> = (0..opts.runs)
        .map(|run| {
            let seed = opts.run_seed(point, run);
            let path_cfg = path_cfg.clone();
            SessionJob::new(
                format!("point{point}/run{run}"),
                slops_cfg.clone(),
                move || PaperPath::build(&path_cfg, seed).into_transport(),
            )
        })
        .collect();
    let mut lows = Vec::with_capacity(opts.runs);
    let mut highs = Vec::with_capacity(opts.runs);
    let mut rhos = Vec::with_capacity(opts.runs);
    for out in run_sessions(jobs, 0) {
        match out.estimate {
            Ok(est) => {
                lows.push(est.low.mbps());
                highs.push(est.high.mbps());
                rhos.push(est.relative_variation());
            }
            Err(e) => eprintln!("{} failed: {e}", out.label),
        }
    }
    RepeatedRuns { lows, highs, rhos }
}

/// Print-and-return convention shared by all figure mains.
pub fn emit(report: String) -> String {
    println!("{report}");
    report
}
