//! Figure 8: effect of the fleet fraction f. A higher f demands a larger
//! supermajority before a fleet is called above/below, so more fleets land
//! in the grey region and the reported range widens.

use crate::figs::common::emit;
use crate::report::{section, Table};
use crate::RunOpts;
use simprobe::scenarios::{PaperPath, PaperPathConfig};
use slops::runner::{run_sessions, SessionJob};
use slops::SlopsConfig;

const FRACTIONS: [f64; 4] = [0.6, 0.7, 0.8, 0.9];

/// Run the experiment and return the report.
pub fn run(opts: &RunOpts) -> String {
    let mut out = section("Figure 8: effect of the fleet fraction f (A=4 Mb/s)");
    let mut tab = Table::new(&[
        "f",
        "avg R_lo",
        "avg R_hi",
        "avg width",
        "avg grey width",
        "grey detected",
    ]);
    // A handful of runs per f: single runs (as the paper plots) are noisy
    // in which fleets land grey; the monotone width-vs-f trend needs a
    // small average to be visible in a table.
    let runs = opts.runs.clamp(4, 10);
    // The whole {f × run} grid goes to the batch runner as one job list,
    // so every core stays busy across the fraction sweep.
    let jobs: Vec<SessionJob> = FRACTIONS
        .iter()
        .enumerate()
        .flat_map(|(i, f)| {
            (0..runs).map(move |run| {
                let path_cfg = PaperPathConfig::default();
                let mut scfg = SlopsConfig::default();
                scfg.fleet_fraction = *f;
                let seed = opts.run_seed(300 + i, run);
                SessionJob::new(format!("fig08/f={f:.1}/run{run}"), scfg, move || {
                    PaperPath::build(&path_cfg, seed).into_transport()
                })
            })
        })
        .collect();
    let outcomes = run_sessions(jobs, 0);
    for (f, group) in FRACTIONS.iter().zip(outcomes.chunks(runs)) {
        let mut lows = Vec::new();
        let mut highs = Vec::new();
        let mut widths = Vec::new();
        let mut grey_widths = Vec::new();
        let mut grey_count = 0;
        for out in group {
            match &out.estimate {
                Ok(est) => {
                    lows.push(est.low.mbps());
                    highs.push(est.high.mbps());
                    widths.push((est.high - est.low).mbps());
                    if let Some((glo, ghi)) = est.grey {
                        grey_widths.push((ghi - glo).mbps());
                        grey_count += 1;
                    } else {
                        grey_widths.push(0.0);
                    }
                }
                Err(e) => eprintln!("{}: {e}", out.label),
            }
        }
        tab.row(&[
            format!("{f:.1}"),
            format!("{:.2}", units::mean(&lows)),
            format!("{:.2}", units::mean(&highs)),
            format!("{:.2}", units::mean(&widths)),
            format!("{:.2}", units::mean(&grey_widths)),
            format!("{grey_count}/{runs}"),
        ]);
    }
    out.push_str(&tab.render());
    out.push_str(
        "\npaper shape: the width of the grey region, and hence of the reported\n\
         range, grows with f.\n",
    );
    emit(out)
}
