//! Figure 11: avail-bw variability vs load. CDFs of the relative variation
//! ρ = (R_hi − R_lo)/midpoint over repeated runs in three tight-link
//! utilization bands; ρ grows strongly with utilization.

use crate::figs::common::{emit, repeated_runs_grid, GridPoint};
use crate::report::{render_cdfs, section};
use crate::RunOpts;
use simprobe::scenarios::PaperPathConfig;
use slops::SlopsConfig;
use units::stats::percentile;

const BANDS: [(f64, f64); 3] = [(0.20, 0.30), (0.40, 0.50), (0.75, 0.85)];

/// Run the experiment and return the report.
pub fn run(opts: &RunOpts) -> String {
    let mut out =
        section("Figure 11: CDF of relative variation rho in three load bands (Ct=10 Mb/s)");
    // The paper's 110 runs sample real load fluctuation; we sweep each
    // band deterministically across runs. Every (band, run) cell is its
    // own grid point — the whole figure is one batch on the runner.
    let mut points = Vec::new();
    for (bi, (lo, hi)) in BANDS.iter().enumerate() {
        for run in 0..opts.runs {
            let mut cfg = PaperPathConfig::default();
            cfg.tight_util = lo + (hi - lo) * (run as f64 / opts.runs.max(2) as f64);
            points.push(GridPoint {
                point: 600 + bi * 200 + run,
                path_cfg: cfg,
                slops_cfg: SlopsConfig::default(),
            });
        }
    }
    let one = RunOpts { runs: 1, ..*opts };
    let results = repeated_runs_grid(&points, &one);
    let mut series = Vec::new();
    let mut p75s = Vec::new();
    for (bi, (lo, hi)) in BANDS.iter().enumerate() {
        let rhos: Vec<f64> = results[bi * opts.runs..(bi + 1) * opts.runs]
            .iter()
            .flat_map(|r| r.rhos.iter().copied())
            .collect();
        p75s.push(percentile(&rhos, 75.0));
        series.push((
            format!("u={:.0}-{:.0}%", lo * 100.0, hi * 100.0),
            units::stats::cdf_points(&rhos),
        ));
    }
    out.push_str(&render_cdfs("rho", &series));
    out.push_str(&format!(
        "\n75th-percentile rho: light {:.2}, medium {:.2}, heavy {:.2}\n\
         paper shape: rho rises strongly with utilization (the paper sees ~5x\n\
         between the 20-30% and 75-85% bands at the 75th percentile).\n",
        p75s[0], p75s[1], p75s[2]
    ));
    emit(out)
}
