//! The §VII/§VIII experiment world: an 8.2 Mb/s tight link carrying a mix
//! of reactive TCP transfers and UDP cross traffic, a pinger, and hooks
//! for either a greedy BTC connection (Figs. 15–16) or pathload
//! (Figs. 17–18).
//!
//! Background TCP flows arrive by a Poisson process with Pareto-distributed
//! sizes (mice and elephants), pre-scheduled for the whole experiment so
//! the load process is independent of what the foreground tool does —
//! the flows themselves, of course, *react* to it, which is exactly the
//! effect the paper measures.

use netsim::app::CountingSink;
use netsim::{
    AppId, Chain, ChainConfig, EchoReflector, FlowId, LinkConfig, LinkId, Pinger, PingerConfig,
    Simulator,
};
use simprobe::{ProbeReceiver, SimTransport};
use tcpsim::{TcpConnection, TcpSenderConfig};
use traffic::{attach_sources, SourceConfig};
use units::{Rate, TimeNs};

/// Tight-link capacity of the experiment (paper: 8.2 Mb/s).
pub const TIGHT_CAPACITY_MBPS: f64 = 8.2;

/// The built world.
pub struct BtcWorld {
    /// The simulator.
    pub sim: Simulator,
    /// The probe/traffic path.
    pub chain: Chain,
    /// The tight link (for MRTG monitoring).
    pub tight: LinkId,
    /// The RTT prober.
    pub pinger: AppId,
    /// Probe receiver (for wrapping into a [`SimTransport`]).
    pub receiver: AppId,
    /// The background TCP connections, in arrival order.
    pub background: Vec<TcpConnection>,
}

/// Build the world. `ping_period` is 1 s for Fig. 16 and 100 ms for
/// Fig. 18; `monitor_window` should equal the experiment's phase length so
/// each phase is one MRTG reading.
pub fn build_btc_world(
    seed: u64,
    total: TimeNs,
    ping_period: TimeNs,
    monitor_window: TimeNs,
) -> BtcWorld {
    let mut sim = Simulator::new(seed);
    let mk = |mbps: f64, delay_ms: u64, queue: u64| {
        LinkConfig::new(Rate::from_mbps(mbps), TimeNs::from_millis(delay_ms))
            .with_queue_limit(queue)
            .with_monitor_window(monitor_window)
    };
    // Access and egress are fast and lightly buffered-enough; the tight
    // link gets the paper's ~180 kB drop-tail buffer (the RTT inflation in
    // Fig. 16 implies ~170 kB of queueing at 8.2 Mb/s).
    let chain = Chain::build(
        &mut sim,
        &ChainConfig::symmetric(vec![
            mk(100.0, 5, 1024 * 1024),
            mk(TIGHT_CAPACITY_MBPS, 20, 180 * 1024),
            mk(100.0, 5, 1024 * 1024),
        ]),
    );
    let tight = chain.forward[1];

    // UDP cross traffic: 1.5 Mb/s of Pareto renewal traffic on the tight
    // hop only (unreactive component of the load).
    let cross_sink = sim.add_app(Box::new(CountingSink::default()));
    let tight_route = chain.hop_route(&sim, 1, cross_sink);
    attach_sources(
        &mut sim,
        tight_route,
        Rate::from_mbps(1.5),
        6,
        &SourceConfig::paper_pareto(),
    );

    // Background TCP, two populations (see DESIGN.md):
    //
    // (a) A queue of finite transfers (Poisson arrivals, Pareto sizes,
    //     ~3 Mb/s offered): elastic but work-conserving — they slow down
    //     under pressure and catch up later.
    // (b) A few persistent *window-limited* flows (~1.4 Mb/s aggregate):
    //     their throughput is rwnd/RTT, so when a greedy connection fills
    //     the tight-link buffer and inflates RTT, their demand drops —
    //     this is the bandwidth a BTC connection permanently steals
    //     (paper §VII: "the increased RTTs and losses reduce the
    //     throughput of other TCP flows").
    //
    // Together with 1.5 Mb/s of UDP the tight link idles near 25%,
    // leaving ~2 Mb/s available — the regime of the paper's Fig. 15.
    let offered = Rate::from_mbps(3.3);
    let mean_size_bytes = 120_000.0;
    let lambda = offered.bps() / (mean_size_bytes * 8.0); // flows per second
    let mut rng = sim.rng();
    let mut t = 0.0f64;
    let mut background = Vec::new();
    let mut conn_id = 1000u32;
    loop {
        t += rng.exponential(1.0 / lambda);
        let start = TimeNs::from_secs_f64(t);
        if start >= total {
            break;
        }
        let size = rng
            .pareto_mean(1.5, mean_size_bytes)
            .clamp(5_000.0, 600_000.0) as u64;
        let mut cfg = TcpSenderConfig::greedy(conn_id);
        cfg.limit = Some(size);
        conn_id += 1;
        background.push(TcpConnection::start_at(&mut sim, &chain, cfg, start));
    }
    for k in 0..4 {
        let mut cfg = TcpSenderConfig::greedy(100 + k);
        cfg.rwnd = Some(2 * tcpsim::MSS as u64); // ~0.35 Mb/s at the base RTT
        background.push(TcpConnection::start_at(
            &mut sim,
            &chain,
            cfg,
            TimeNs::from_millis(200 * k as u64),
        ));
    }

    // RTT prober: echo reflector at the far end, pinger at the near end.
    let pinger = sim.add_app(Box::new(Pinger::new(
        PingerConfig {
            period: ping_period,
            size: 64,
            stop_at: total,
            flow: FlowId(0x5049_0000),
        },
        // Placeholder; patched below once the reflector exists.
        sim.route(&[], AppId(0)),
    )));
    let reflector_route = chain.reverse_route(&sim, pinger);
    let reflector = sim.add_app(Box::new(EchoReflector::new(
        reflector_route,
        64,
        FlowId(0x5049_0001),
    )));
    let fwd = chain.forward_route(&sim, reflector);
    sim.app_mut::<Pinger>(pinger).set_route(fwd);
    sim.schedule_timer(pinger, TimeNs::ZERO, 0);

    let receiver = sim.add_app(Box::new(ProbeReceiver::default()));
    BtcWorld {
        sim,
        chain,
        tight,
        pinger,
        receiver,
        background,
    }
}

impl BtcWorld {
    /// Wrap the world into a probe transport (consumes it; the pinger and
    /// background traffic keep running inside).
    pub fn into_transport(self) -> (SimTransport, LinkId, AppId) {
        let t = SimTransport::new(self.sim, self.chain, self.receiver);
        (t, self.tight, self.pinger)
    }

    /// MRTG avail-bw reading of the tight link for the monitor window
    /// starting at `window_start`.
    pub fn avail_in_window(&self, window_start: TimeNs) -> Rate {
        let link = self.sim.link(self.tight);
        let idx = (window_start.as_nanos() / link.monitor().window().as_nanos()) as usize;
        link.monitor().avail_bw_in_window(idx, link.capacity())
    }
}
