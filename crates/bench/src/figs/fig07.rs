//! Figure 7: accuracy vs path tightness factor β = A_t / A_nt. As β → 1
//! every link becomes a tight link and pathload starts to underestimate
//! (a stream can pick up an increasing trend at any of the tight links),
//! more severely on the longer path.

use crate::figs::common::{emit, repeated_runs};
use crate::report::{section, Table};
use crate::RunOpts;
use simprobe::scenarios::PaperPathConfig;
use slops::SlopsConfig;

const BETAS: [f64; 4] = [0.4, 0.6, 0.8, 1.0];
const HOPS: [usize; 2] = [3, 5];

/// Run the experiment and return the report.
pub fn run(opts: &RunOpts) -> String {
    let mut out =
        section("Figure 7: accuracy vs path tightness factor (A=4 Mb/s at the middle link)");
    let mut tab = Table::new(&[
        "H",
        "beta",
        "A_nt (Mb/s)",
        "avg R_lo",
        "avg R_hi",
        "center",
        "center/A",
    ]);
    for (hi, hops) in HOPS.iter().enumerate() {
        for (bi, beta) in BETAS.iter().enumerate() {
            let mut cfg = PaperPathConfig::default();
            cfg.hops = *hops;
            cfg.tight_util = 0.60; // A_t = 4 Mb/s
            cfg.set_tightness(*beta);
            let res = repeated_runs(&cfg, &SlopsConfig::default(), opts, 200 + hi * 10 + bi);
            tab.row(&[
                format!("{hops}"),
                format!("{beta:.1}"),
                format!("{:.1}", cfg.nontight_avail().mbps()),
                format!("{:.2}", res.avg_low()),
                format!("{:.2}", res.avg_high()),
                format!("{:.2}", res.center()),
                format!("{:.2}", res.center() / 4.0),
            ]);
        }
    }
    out.push_str(&tab.render());
    out.push_str(
        "\npaper shape: accurate while beta < 1 (single tight link); at beta = 1\n\
         (all links tight) the estimate drops below A, and more so for H=5 than\n\
         H=3 (the per-link false-trend probability compounds as 1-(1-p)^H).\n",
    );
    emit(out)
}
