//! Figures 15–16: BTC (greedy TCP) throughput vs avail-bw, and the RTT
//! damage it does. 25 minutes in five phases A–E; a greedy connection runs
//! during B and D.
//!
//! The three headline effects to reproduce:
//! 1. during B/D the BTC connection saturates the path (MRTG avail < 0.5
//!    Mb/s) while its own 1-s throughput is highly variable;
//! 2. RTT inflates from its quiescent level by the tight link's buffer
//!    depth (~170 ms at 8.2 Mb/s) with large jitter;
//! 3. the BTC throughput *exceeds* the avail-bw of the surrounding phases
//!    by ~20–30% — it steals bandwidth from reactive TCP cross traffic.

use crate::figs::btc::{build_btc_world, TIGHT_CAPACITY_MBPS};
use crate::figs::common::emit;
use crate::report::{section, Table};
use crate::RunOpts;
use tcpsim::{TcpConnection, TcpSender, TcpSenderConfig};
use units::stats::{mean, percentile};
use units::TimeNs;

/// Run the experiment and return the report.
pub fn run(opts: &RunOpts) -> String {
    let phase = opts.phase;
    let total = phase * 5;
    let mut out = section(&format!(
        "Figures 15-16: BTC vs avail-bw on an {TIGHT_CAPACITY_MBPS} Mb/s tight link (5 x {phase} phases, BTC in B and D)"
    ));
    let mut world = build_btc_world(opts.seed, total, TimeNs::from_secs(1), phase);

    // Pre-create the two BTC connections, starting at phases B and D.
    let b_start = phase;
    let d_start = phase * 3;
    let btc_b = TcpConnection::start_at(
        &mut world.sim,
        &world.chain,
        TcpSenderConfig::greedy(1),
        b_start,
    );
    let btc_d = TcpConnection::start_at(
        &mut world.sim,
        &world.chain,
        TcpSenderConfig::greedy(2),
        d_start,
    );

    // Drive the 25 minutes, stopping each BTC at its phase end.
    world.sim.run_until(b_start + phase);
    world.sim.app_mut::<TcpSender>(btc_b.sender).stop();
    world.sim.run_until(d_start + phase);
    world.sim.app_mut::<TcpSender>(btc_d.sender).stop();
    world.sim.run_until(total);

    // --- Figure 15: per-phase avail-bw and BTC throughput ---
    let mut tab = Table::new(&[
        "phase",
        "MRTG avail (Mb/s)",
        "BTC 5-min avg (Mb/s)",
        "BTC 1-s p5/p50/p95",
    ]);
    let mut phase_avail = Vec::new();
    for (i, name) in ["A", "B", "C", "D", "E"].iter().enumerate() {
        let start = phase * i as u64;
        let avail = world.avail_in_window(start).mbps();
        phase_avail.push(avail);
        let btc = match *name {
            "B" => Some(&btc_b),
            "D" => Some(&btc_d),
            _ => None,
        };
        let (avg, spread) = match btc {
            Some(c) => {
                let avg = c.throughput(&world.sim, start, start + phase).mbps();
                let series: Vec<f64> = c
                    .throughput_series(&world.sim, start, start + phase)
                    .iter()
                    .map(|r| r.mbps())
                    .collect();
                (
                    format!("{avg:.2}"),
                    format!(
                        "{:.2}/{:.2}/{:.2}",
                        percentile(&series, 5.0),
                        percentile(&series, 50.0),
                        percentile(&series, 95.0)
                    ),
                )
            }
            None => ("-".into(), "-".into()),
        };
        tab.row(&[name.to_string(), format!("{avail:.2}"), avg, spread]);
    }
    out.push_str(&tab.render());

    // --- Figure 16: RTT per phase ---
    let mut rtt_tab = Table::new(&[
        "phase",
        "RTT p5 (ms)",
        "RTT p50",
        "RTT p95",
        "RTT max",
        "lost",
    ]);
    let pinger = world.sim.app::<netsim::Pinger>(world.pinger);
    let mut quiescent = Vec::new();
    let mut loaded = Vec::new();
    for (i, name) in ["A", "B", "C", "D", "E"].iter().enumerate() {
        let start = phase * i as u64;
        let stats = pinger.stats_between(start, start + phase);
        rtt_tab.row(&[
            name.to_string(),
            format!("{:.1}", percentile_of(pinger, start, start + phase, 5.0)),
            format!("{:.1}", stats.rtt_ms.p50),
            format!("{:.1}", stats.rtt_ms.p95),
            format!("{:.1}", stats.rtt_ms.max),
            format!("{}", stats.lost),
        ]);
        if matches!(*name, "B" | "D") {
            loaded.push(stats.rtt_ms.p50);
        } else {
            quiescent.push(stats.rtt_ms.p50);
        }
    }
    out.push_str("\nRTT during the experiment (1-s pings):\n");
    out.push_str(&rtt_tab.render());

    let btc_avg = (btc_b
        .throughput(&world.sim, b_start, b_start + phase)
        .mbps()
        + btc_d
            .throughput(&world.sim, d_start, d_start + phase)
            .mbps())
        / 2.0;
    let surrounding = (phase_avail[0] + phase_avail[2] + phase_avail[4]) / 3.0;
    let rtt_quiet = mean(&quiescent);
    let rtt_loaded = mean(&loaded);
    out.push_str(&format!(
        "\nBTC average {:.2} Mb/s vs surrounding avail-bw {:.2} Mb/s: ratio {:.2}\n\
         quiescent median RTT {:.0} ms vs loaded {:.0} ms (+{:.0} ms)\n\
         paper shape: avail < 0.5 Mb/s during B/D; BTC 20-30% above the\n\
         surrounding avail-bw; RTT inflated by the tight-link buffer with\n\
         high jitter (paper: 200 -> 200-370 ms).\n",
        btc_avg,
        surrounding,
        btc_avg / surrounding.max(1e-9),
        rtt_quiet,
        rtt_loaded,
        rtt_loaded - rtt_quiet,
    ));
    emit(out)
}

fn percentile_of(pinger: &netsim::Pinger, from: TimeNs, to: TimeNs, p: f64) -> f64 {
    let rtts: Vec<f64> = pinger
        .samples
        .iter()
        .filter(|s| s.sent_at >= from && s.sent_at < to)
        .filter_map(|s| s.rtt.map(|r| r.millis_f64()))
        .collect();
    percentile(&rtts, p)
}
