//! Ablations beyond the paper (DESIGN.md §5): which design choices of
//! pathload actually matter?
//!
//! 1. **Trend detection mode** — PCT-only vs PDT-only vs the combined rule.
//! 2. **Median-of-groups robustness** — classify on raw OWDs (Γ = K) vs
//!    the √K group medians, with and without an outlier burst.
//! 3. **Fleet pacing** — the `idle ≥ 9·V` rule: how much does the probing
//!    footprint on the tight link change if the tool skips pacing?

use crate::figs::common::{emit, repeated_runs};
use crate::report::{section, Table};
use crate::RunOpts;
use simprobe::scenarios::{PaperPath, PaperPathConfig};
use slops::owd::group_medians;
use slops::{classify_medians, Session, SlopsConfig, StreamClass, TrendMode};

/// Run all ablations and return the report.
pub fn run(opts: &RunOpts) -> String {
    let mut out = section("Ablations: trend mode, median-of-groups, fleet pacing");
    out.push_str(&trend_mode_ablation(opts));
    out.push_str(&median_robustness_ablation());
    out.push_str(&pacing_ablation(opts));
    emit(out)
}

fn trend_mode_ablation(opts: &RunOpts) -> String {
    let mut tab = Table::new(&[
        "trend mode",
        "avg R_lo",
        "avg R_hi",
        "center",
        "|center-A|/A",
    ]);
    for (i, (label, mode)) in [
        ("both (tool)", TrendMode::Both),
        ("PCT only", TrendMode::PctOnly),
        ("PDT only", TrendMode::PdtOnly),
    ]
    .into_iter()
    .enumerate()
    {
        let path_cfg = PaperPathConfig::default(); // A = 4
        let mut scfg = SlopsConfig::default();
        scfg.trend_mode = mode;
        let res = repeated_runs(&path_cfg, &scfg, opts, 2000 + i);
        tab.row(&[
            label.to_string(),
            format!("{:.2}", res.avg_low()),
            format!("{:.2}", res.avg_high()),
            format!("{:.2}", res.center()),
            format!("{:.2}", (res.center() - 4.0).abs() / 4.0),
        ]);
    }
    format!(
        "\n-- trend detection mode (A = 4 Mb/s) --\n{}",
        tab.render()
    )
}

fn median_robustness_ablation() -> String {
    // A clean upward ramp with a burst of outliers in the middle
    // (receiver context switch): group medians must absorb it; raw-OWD
    // pairwise statistics must not.
    let cfg = SlopsConfig::default();
    let mut owds: Vec<i64> = (0..100).map(|i| i * 2_000).collect();
    for o in owds.iter_mut().skip(47).take(6) {
        *o += 3_000_000; // 3 ms spike burst
    }
    let medians = group_medians(&owds);
    let with_groups = classify_medians(&medians, &cfg);
    let raw: Vec<f64> = owds.iter().map(|&x| x as f64).collect();
    let without_groups = classify_medians(&raw, &cfg);
    let mut tab = Table::new(&["preprocessing", "verdict on ramp + 3ms outlier burst"]);
    tab.row(&["sqrt(K) group medians".into(), format!("{with_groups:?}")]);
    tab.row(&[
        "raw OWDs (no grouping)".into(),
        format!("{without_groups:?}"),
    ]);
    let note = if with_groups == StreamClass::Increasing
        && without_groups != StreamClass::Increasing
    {
        "group medians preserve the trend through the outlier burst; raw pairwise stats lose it\n"
    } else {
        "see verdicts above\n"
    };
    format!(
        "\n-- median-of-groups robustness --\n{}{}",
        tab.render(),
        note
    )
}

fn pacing_ablation(opts: &RunOpts) -> String {
    // Measure the probing footprint on the tight link with the paper's
    // pacing (avg load <= 10% of R) vs an unpaced tool (idle = RTT only).
    let mut tab = Table::new(&[
        "pacing",
        "avg probe load",
        "measurement time",
        "range (Mb/s)",
    ]);
    let mut footprints = Vec::new();
    for (i, (label, factor)) in [
        ("idle >= 9V (paper)", 0.1f64),
        ("no pacing (idle = RTT)", 0.999),
    ]
    .into_iter()
    .enumerate()
    {
        let path_cfg = PaperPathConfig::default();
        let mut scfg = SlopsConfig::default();
        scfg.avg_load_factor = factor;
        let mut t = PaperPath::build(&path_cfg, opts.run_seed(2100, i)).into_transport();
        let tight = t.chain().forward[2];
        let bytes_before = t.sim().link(tight).stats.tx_bytes;
        let elapsed_before = t.sim().now();
        let est = Session::new(scfg).run(&mut t).expect("session");
        let dur = t.sim().now() - elapsed_before;
        // Total bytes include cross traffic; subtract the cross-traffic
        // expectation (6 Mb/s) to approximate the probe footprint.
        let total = (t.sim().link(tight).stats.tx_bytes - bytes_before) as f64;
        let cross = 6e6 / 8.0 * dur.secs_f64();
        footprints.push(((total - cross).max(0.0), dur, est));
        let (fp, dur, est) = footprints.last().unwrap();
        let load = units::Rate::from_transfer(*fp as u64, *dur);
        tab.row(&[
            label.to_string(),
            format!("{load}"),
            format!("{dur}"),
            format!("[{:.2}, {:.2}]", est.low.mbps(), est.high.mbps()),
        ]);
    }
    format!(
        "\n-- fleet pacing (probe footprint on the tight link) --\n{}",
        tab.render()
    )
}
