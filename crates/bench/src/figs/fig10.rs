//! Figure 10: verification against MRTG. Twelve independent runs on the
//! 155 Mb/s-tight / 100 Mb/s-narrow path; in each run pathload is executed
//! consecutively for one monitor window and its duration-weighted average
//! (eq. 11) is compared against the MRTG reading of the tight link
//! (quantized to 6 Mb/s bands, like reading the paper's graphs).

use crate::figs::common::emit;
use crate::report::{section, Table};
use crate::RunOpts;
use simprobe::scenarios::verification_path_with_window;
use slops::{weighted_average, ProbeTransport, Session, SlopsConfig};
use units::{Rate, TimeNs};

/// Run the experiment and return the report.
pub fn run(opts: &RunOpts) -> String {
    let window = opts.phase; // 5 min full, shorter in quick mode
    let mut out = section(&format!(
        "Figure 10: pathload vs MRTG, 12 runs ({}-windows, 6 Mb/s reading bands)",
        window
    ));
    let mut tab = Table::new(&[
        "run",
        "u_t",
        "MRTG band (Mb/s)",
        "pathload wavg",
        "inside band?",
        "probe-corrected band",
        "inside?",
    ]);
    let mut inside = 0;
    let mut inside_corrected = 0;
    let runs = 12;
    for run in 0..runs {
        // Different load per run, sweeping the utilization range the paper
        // observed on this path.
        let u = 0.35 + 0.40 * (run as f64 / (runs - 1) as f64);
        let seed = opts.run_seed(500, run);
        let (mut t, tight) = verification_path_with_window(u, seed, window);
        // Consume warm-up so the MRTG window we compare against is the one
        // the measurement runs in.
        let window_start = t.elapsed();
        let widx = (window_start.as_nanos() / window.as_nanos() + 1) as usize;
        let wstart = TimeNs::from_nanos(widx as u64 * window.as_nanos());
        t.idle(wstart - window_start);

        // Run pathload consecutively until the window ends. The MRTG
        // counter sees pathload's own probe bytes too; at the default 10%
        // duty cycle that is a ~6 Mb/s footprint when probing near
        // 70 Mb/s — larger than the 6 Mb/s reading band itself. Cap the
        // average probing load at 2% for this experiment so the footprint
        // stays within the band (see EXPERIMENTS.md, Fig. 10 notes).
        let mut scfg = SlopsConfig::default();
        scfg.avg_load_factor = 0.02;
        let session = Session::new(scfg);
        let mut runs_in_window: Vec<(TimeNs, Rate, Rate)> = Vec::new();
        let wend = wstart + window;
        while t.elapsed() < wend {
            let before = t.elapsed();
            match session.run(&mut t) {
                Ok(est) => {
                    let dur = t.elapsed() - before;
                    runs_in_window.push((dur, est.low, est.high));
                }
                Err(e) => {
                    eprintln!("run {run}: {e}");
                    break;
                }
            }
        }
        // Let the monitor finish the window, then read it.
        if t.elapsed() < wend {
            t.idle(wend - t.elapsed());
        }
        t.idle(TimeNs::from_millis(1));
        let wavg = weighted_average(&runs_in_window);
        // At light backbone load the narrow 100 Mb/s egress, not the OC-3,
        // is the tight link (the paper's own point about this path): read
        // the MRTG graph of whichever link actually has less avail-bw.
        let narrow = t.chain().forward[2];
        let reading_of = |id| {
            let l = t.sim().link(id);
            l.monitor()
                .mrtg_reading(widx, l.capacity(), Rate::from_mbps(6.0))
        };
        let (tlo, thi) = reading_of(tight);
        let (nlo, nhi) = reading_of(narrow);
        let (lo, hi) = if tlo.bps() + thi.bps() <= nlo.bps() + nhi.bps() {
            (tlo, thi)
        } else {
            (nlo, nhi)
        };
        let ok = lo.bps() <= wavg.bps() && wavg.bps() <= hi.bps();
        inside += usize::from(ok);
        // MRTG counts pathload's own probe bytes as utilization; the
        // corrected band discounts that known footprint. The transport is
        // fresh per run and only probes inside this window, so the total
        // is exactly the window's footprint.
        let footprint = Rate::from_transfer(t.probe_bytes_sent, window);
        let (clo, chi) = (footprint + lo, footprint + hi);
        let cok = clo.bps() <= wavg.bps() && wavg.bps() <= chi.bps();
        inside_corrected += usize::from(cok);
        tab.row(&[
            format!("{}", run + 1),
            format!("{:.0}%", u * 100.0),
            format!("[{:.0}, {:.0}]", lo.mbps(), hi.mbps()),
            format!("{:.1}", wavg.mbps()),
            if ok { "yes" } else { "no" }.to_string(),
            format!("[{:.0}, {:.0}]", clo.mbps(), chi.mbps()),
            if cok { "yes" } else { "no" }.to_string(),
        ]);
    }
    out.push_str(&tab.render());
    out.push_str(&format!(
        "\n{inside}/{runs} runs inside the raw MRTG band; {inside_corrected}/{runs} inside the\n\
         probe-corrected band (MRTG counts pathload's own bytes as load).\n\
         paper shape: 10/12 inside, the misses marginal. (Note: the tight link\n\
         is NOT the narrow link on this path — 155 vs 100 Mb/s.)\n"
    ));
    emit(out)
}
