//! Figure 14: effect of the fleet length N. A longer fleet watches the
//! avail-bw for longer, so it is more likely to see grey (fluctuation)
//! around any candidate rate: the reported range widens with N, while the
//! run-to-run spread of the width shrinks (steeper CDF).

use crate::figs::common::{emit, repeated_runs};
use crate::report::{render_cdfs, section};
use crate::RunOpts;
use simprobe::scenarios::PaperPathConfig;
use slops::SlopsConfig;
use units::stats::{percentile, Summary};

const FLEET_LENGTHS: [u32; 3] = [12, 24, 48];

/// Run the experiment and return the report.
pub fn run(opts: &RunOpts) -> String {
    let mut out = section("Figure 14: effect of the fleet length N (A = 4 Mb/s)");
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for (ni, n) in FLEET_LENGTHS.iter().enumerate() {
        let path_cfg = PaperPathConfig::default();
        let mut scfg = SlopsConfig::default();
        scfg.fleet_len = *n;
        let res = repeated_runs(&path_cfg, &scfg, opts, 900 + ni);
        let s = Summary::of(&res.rhos);
        notes.push(format!(
            "N={n}: rho p75 {:.2}, std-dev across runs {:.2}",
            percentile(&res.rhos, 75.0),
            s.std_dev
        ));
        series.push((format!("N={n}"), res.rho_cdf()));
    }
    out.push_str(&render_cdfs("rho", &series));
    for n in notes {
        out.push_str(&format!("{n}\n"));
    }
    out.push_str(
        "\npaper shape: rho grows with the fleet duration, while the CDF gets\n\
         steeper (less run-to-run variation of the measured range).\n",
    );
    emit(out)
}
