//! Figure 12: avail-bw variability vs degree of statistical multiplexing.
//! Three bottlenecks at the same ~65% utilization but very different
//! capacities / flow counts: path A (155 Mb/s, many flows), path B
//! (12.4 Mb/s), path C (6.1 Mb/s, few flows). More multiplexing smooths
//! the aggregate, so ρ falls as capacity/flow count grows.

use crate::figs::common::emit;
use crate::report::{render_cdfs, section};
use crate::RunOpts;
use simprobe::scenarios::multiplexing_path;
use slops::{Session, SlopsConfig};
use units::stats::{cdf_points, percentile};
use units::Rate;

/// (label, capacity Mb/s, ON/OFF sources) — sources scale with capacity,
/// mirroring the backbone/university/department tight links of the paper.
const PATHS: [(&str, f64, usize); 3] = [
    ("A-155Mbps", 155.0, 200),
    ("B-12.4Mbps", 12.4, 16),
    ("C-6.1Mbps", 6.1, 8),
];

/// Run the experiment and return the report.
pub fn run(opts: &RunOpts) -> String {
    let mut out =
        section("Figure 12: CDF of rho vs statistical multiplexing (all tight links at ~65%)");
    let mut series = Vec::new();
    let mut p75s = Vec::new();
    for (pi, (label, cap, sources)) in PATHS.iter().enumerate() {
        let mut rhos = Vec::with_capacity(opts.runs);
        for run in 0..opts.runs {
            let seed = opts.run_seed(700 + pi, run);
            let mut t = multiplexing_path(Rate::from_mbps(*cap), 0.65, *sources, seed);
            match Session::new(SlopsConfig::default()).run(&mut t) {
                Ok(est) => rhos.push(est.relative_variation()),
                Err(e) => eprintln!("{label} run {run}: {e}"),
            }
        }
        p75s.push(percentile(&rhos, 75.0));
        series.push((label.to_string(), cdf_points(&rhos)));
    }
    out.push_str(&render_cdfs("rho", &series));
    out.push_str(&format!(
        "\n75th-percentile rho: A {:.2}, B {:.2}, C {:.2}\n\
         paper shape: rho(A) < rho(B) < rho(C) — higher multiplexing gives a\n\
         smoother, more predictable avail-bw (paper: roughly 1x/2x/3x).\n",
        p75s[0], p75s[1], p75s[2]
    ));
    emit(out)
}
