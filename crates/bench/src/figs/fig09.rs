//! Figure 9: effect of the PDT threshold, with PDT-only trend detection.
//! Too low a threshold calls everything increasing (underestimation);
//! too high calls nothing increasing (overestimation).

use crate::figs::common::emit;
use crate::report::{section, Table};
use crate::RunOpts;
use simprobe::scenarios::{PaperPath, PaperPathConfig};
use slops::runner::{run_sessions, SessionJob};
use slops::{SlopsConfig, TrendMode};

const THRESHOLDS: [f64; 7] = [0.05, 0.15, 0.30, 0.45, 0.60, 0.80, 0.95];

/// Run the experiment and return the report.
pub fn run(opts: &RunOpts) -> String {
    let mut out = section("Figure 9: effect of the PDT threshold (PDT-only detection, A=4 Mb/s)");
    let mut tab = Table::new(&["PDT threshold", "R_lo", "R_hi", "center", "center/A"]);
    // One session per threshold; the whole sweep runs as one batch on the
    // runner (each worker builds its own simulator).
    let jobs: Vec<SessionJob> = THRESHOLDS
        .iter()
        .enumerate()
        .map(|(i, thr)| {
            let mut scfg = SlopsConfig::default();
            scfg.trend_mode = TrendMode::PdtOnly;
            // Single-threshold semantics as in the paper's sweep: no
            // ambiguous band, > thr is increasing, otherwise non-increasing.
            scfg.pdt_inc = *thr;
            scfg.pdt_dec = *thr;
            let seed = opts.run_seed(400, i);
            SessionJob::new(format!("thr{thr:.2}"), scfg, move || {
                PaperPath::build(&PaperPathConfig::default(), seed).into_transport()
            })
        })
        .collect();
    for (thr, res) in THRESHOLDS.iter().zip(run_sessions(jobs, 0)) {
        match res.estimate() {
            Some(est) => {
                let center = est.midpoint().mbps();
                tab.row(&[
                    format!("{thr:.2}"),
                    format!("{:.2}", est.low.mbps()),
                    format!("{:.2}", est.high.mbps()),
                    format!("{center:.2}"),
                    format!("{:.2}", center / 4.0),
                ]);
            }
            None => eprintln!(
                "thr={thr}: {}",
                res.error().expect("no estimate implies an error")
            ),
        }
    }
    out.push_str(&tab.render());
    out.push_str(
        "\npaper shape: underestimation for thresholds near 0, overestimation\n\
         near 1, accurate in the middle (the default PDT threshold region).\n",
    );
    emit(out)
}
