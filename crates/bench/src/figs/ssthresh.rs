//! Extension: the §I application of avail-bw estimation — tuning TCP's
//! initial ssthresh (Allman & Paxson 1999, discussed in §II). A pathload
//! estimate sets ssthresh to the estimated bandwidth-delay product; the
//! connection then exits slow start at the right size instead of
//! overshooting the bottleneck queue, avoiding the early multiplicative
//! loss cut on short transfers.

use crate::figs::common::emit;
use crate::report::{section, Table};
use crate::RunOpts;
use netsim::app::CountingSink;
use netsim::{Chain, ChainConfig, LinkConfig, Simulator};
use simprobe::{ProbeReceiver, SimTransport};
use slops::{Session, SlopsConfig};
use tcpsim::{TcpConnection, TcpSenderConfig};
use traffic::{attach_sources, SourceConfig};
use units::stats::mean;
use units::{Rate, TimeNs};

/// Transfer sizes for the comparison (short transfers feel slow start the
/// most).
const SIZES: [u64; 3] = [100_000, 500_000, 2_000_000];

fn build_path(seed: u64) -> (Simulator, Chain) {
    let mut sim = Simulator::new(seed);
    // 20 Mb/s tight link, 40 ms prop (BDP ~ 200 kB), small-ish buffer so
    // slow-start overshoot actually hurts.
    let chain = Chain::build(
        &mut sim,
        &ChainConfig::symmetric(vec![
            LinkConfig::new(Rate::from_mbps(100.0), TimeNs::from_millis(5)),
            LinkConfig::new(Rate::from_mbps(20.0), TimeNs::from_millis(40))
                .with_queue_limit(100 * 1024),
            LinkConfig::new(Rate::from_mbps(100.0), TimeNs::from_millis(5)),
        ]),
    );
    let sink = sim.add_app(Box::new(CountingSink::default()));
    let route = chain.hop_route(&sim, 1, sink);
    attach_sources(
        &mut sim,
        route,
        Rate::from_mbps(8.0),
        10,
        &SourceConfig::paper_pareto(),
    );
    sim.run_until(TimeNs::from_secs(2));
    (sim, chain)
}

/// Completion time of one transfer with the given initial ssthresh.
fn transfer_time(seed: u64, size: u64, ssthresh: Option<u64>) -> f64 {
    let (mut sim, chain) = build_path(seed);
    let mut cfg = TcpSenderConfig::greedy(1);
    cfg.limit = Some(size);
    cfg.initial_ssthresh = ssthresh;
    let start = sim.now();
    let conn = TcpConnection::start_at(&mut sim, &chain, cfg, start);
    // Step until delivered.
    let deadline = start + TimeNs::from_secs(120);
    while conn.delivered(&sim) < size && sim.now() < deadline {
        let t = sim.now() + TimeNs::from_millis(50);
        sim.run_until(t);
    }
    (sim.now() - start).secs_f64()
}

/// Run the experiment and return the report.
pub fn run(opts: &RunOpts) -> String {
    let mut out =
        section("Extension: ssthresh from an avail-bw estimate (Allman & Paxson, paper SSI/SSII)");
    // First, measure the path once with pathload.
    let (mut sim, chain) = build_path(opts.seed ^ 0x55);
    let rx = sim.add_app(Box::new(ProbeReceiver::default()));
    let mut transport = SimTransport::new(sim, chain, rx);
    let est = Session::new(SlopsConfig::default())
        .run(&mut transport)
        .expect("measurement");
    let a = est.midpoint();
    // BDP at the measured avail-bw and the path's base RTT (~100 ms).
    let rtt = 0.1;
    let bdp = (a.bps() * rtt / 8.0) as u64;
    out.push_str(&format!(
        "pathload estimate: [{:.2}, {:.2}] Mb/s; ssthresh := midpoint * RTT = {} kB\n\n",
        est.low.mbps(),
        est.high.mbps(),
        bdp / 1024
    ));

    let mut tab = Table::new(&[
        "transfer",
        "default ssthresh (s)",
        "tuned ssthresh (s)",
        "speedup",
    ]);
    let runs = opts.runs.clamp(3, 8);
    for (si, size) in SIZES.iter().enumerate() {
        let mut default_times = Vec::new();
        let mut tuned_times = Vec::new();
        for run in 0..runs {
            let seed = opts.run_seed(4000 + si, run);
            default_times.push(transfer_time(seed, *size, None));
            tuned_times.push(transfer_time(seed, *size, Some(bdp)));
        }
        let (d, t) = (mean(&default_times), mean(&tuned_times));
        tab.row(&[
            format!("{} kB", size / 1000),
            format!("{d:.2}"),
            format!("{t:.2}"),
            format!("{:.2}x", d / t.max(1e-9)),
        ]);
    }
    out.push_str(&tab.render());
    out.push_str(
        "\nexpected shape: short transfers complete faster (or no slower) with\n\
         ssthresh set from the avail-bw estimate, because slow start hands\n\
         off before overflowing the bottleneck queue.\n",
    );
    emit(out)
}
