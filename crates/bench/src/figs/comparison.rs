//! Extension beyond the paper: a head-to-head of the three estimator
//! families on identical paths across the load sweep — pathload (SLoPS),
//! TOPP (packet pairs), and cprobe (train dispersion / ADR). §II of the
//! paper calls the SLoPS-vs-TOPP comparison "an important task for further
//! research"; here it is, at least in simulation.

use crate::figs::common::emit;
use crate::report::{section, Table};
use crate::RunOpts;
use baselines::{cprobe, topp, CprobeConfig, ToppConfig};
use simprobe::scenarios::{PaperPath, PaperPathConfig};
use slops::{Session, SlopsConfig};
use units::stats::mean;
use units::Rate;

const UTILS: [f64; 4] = [0.20, 0.40, 0.60, 0.80];

/// Run the comparison and return the report.
pub fn run(opts: &RunOpts) -> String {
    let mut out =
        section("Extension: pathload vs TOPP vs cprobe on the same paths (Ct=10 Mb/s, Pareto)");
    let mut tab = Table::new(&[
        "u_t",
        "true A",
        "pathload mid",
        "TOPP A",
        "TOPP C",
        "cprobe (=ADR)",
    ]);
    let runs = opts.runs.clamp(3, 10);
    for (ui, util) in UTILS.iter().enumerate() {
        let mut cfg = PaperPathConfig::default();
        cfg.tight_util = *util;
        let a = cfg.avail_bw().mbps();
        let (mut pl, mut tp_a, mut tp_c, mut cp) = (vec![], vec![], vec![], vec![]);
        for run in 0..runs {
            let seed = opts.run_seed(3000 + ui, run);
            let mut t = PaperPath::build(&cfg, seed).into_transport();
            if let Ok(est) = Session::new(SlopsConfig::default()).run(&mut t) {
                pl.push(est.midpoint().mbps());
            }
            let topp_cfg = ToppConfig {
                min_rate: Rate::from_mbps(0.5),
                max_rate: Rate::from_mbps(12.0),
                steps: 20,
                stream_len: 100,
                ..ToppConfig::default()
            };
            if let Ok(est) = topp(&mut t, &topp_cfg) {
                tp_a.push(est.avail_bw.mbps());
                tp_c.push(est.capacity.mbps());
            }
            if let Ok(est) = cprobe(&mut t, &CprobeConfig::default()) {
                cp.push(est.reported.mbps());
            }
        }
        tab.row(&[
            format!("{:.0}%", util * 100.0),
            format!("{a:.1}"),
            format!("{:.2}", mean(&pl)),
            format!("{:.2}", mean(&tp_a)),
            format!("{:.2}", mean(&tp_c)),
            format!("{:.2}", mean(&cp)),
        ]);
    }
    out.push_str(&tab.render());
    out.push_str(
        "\nexpected shape: pathload and TOPP track the avail-bw across loads;\n\
         cprobe tracks the ADR, which sits between A and the capacity and\n\
         overestimates A more as load grows (Dovrolis et al. 2001, cited in §II).\n",
    );
    emit(out)
}
