//! Figure 5: pathload accuracy vs tight-link utilization, for Poisson and
//! Pareto cross traffic. 50-run average ranges must bracket the true
//! avail-bw at every load.

use crate::figs::common::{emit, repeated_runs};
use crate::report::{section, Table};
use crate::RunOpts;
use simprobe::scenarios::PaperPathConfig;
use slops::SlopsConfig;
use traffic::SourceConfig;

/// Tight-link utilizations of the sweep (20% "light" to 90% "heavy").
const UTILS: [f64; 4] = [0.20, 0.40, 0.60, 0.90];

/// Run the experiment and return the report.
pub fn run(opts: &RunOpts) -> String {
    let mut out =
        section("Figure 5: accuracy vs tight-link load (H=5, Ct=10 Mb/s, 50-run averages)");
    let mut tab = Table::new(&[
        "traffic",
        "u_t",
        "true A (Mb/s)",
        "avg R_lo",
        "avg R_hi",
        "center",
        "CoV(R_hi)",
        "brackets A?",
    ]);
    for (m, (label, source_cfg)) in [
        ("poisson", SourceConfig::paper_poisson()),
        ("pareto", SourceConfig::paper_pareto()),
    ]
    .into_iter()
    .enumerate()
    {
        for (u, util) in UTILS.iter().enumerate() {
            let mut cfg = PaperPathConfig::default();
            cfg.tight_util = *util;
            cfg.source_cfg = source_cfg.clone();
            let a = cfg.avail_bw().mbps();
            let res = repeated_runs(&cfg, &SlopsConfig::default(), opts, m * 10 + u);
            let brackets = res.avg_low() <= a + 0.2 && a - 0.2 <= res.avg_high();
            tab.row(&[
                label.to_string(),
                format!("{:.0}%", util * 100.0),
                format!("{a:.1}"),
                format!("{:.2}", res.avg_low()),
                format!("{:.2}", res.avg_high()),
                format!("{:.2}", res.center()),
                format!("{:.2}", res.cov_high()),
                if brackets { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    out.push_str(&tab.render());
    out.push_str(
        "\npaper shape: every average range includes A for both traffic models;\n\
         the range center stays close to A (paper: center 1.5 when A=1 at u=90%,\n\
         range [2.4, 5.6] when A=4 with Pareto traffic).\n",
    );
    emit(out)
}
