//! Figure 13: effect of the stream length K. Longer streams average the
//! avail-bw over a longer timescale τ = K·T, so the measured variability
//! shrinks as K grows.

use crate::figs::common::{emit, repeated_runs};
use crate::report::{render_cdfs, section};
use crate::RunOpts;
use simprobe::scenarios::PaperPathConfig;
use slops::{stream_params, SlopsConfig};
use units::stats::percentile;
use units::Rate;

const STREAM_LENGTHS: [u32; 3] = [100, 200, 1000];

/// Run the experiment and return the report.
pub fn run(opts: &RunOpts) -> String {
    let mut out = section("Figure 13: effect of the stream length K (A ~ 4.5 Mb/s)");
    let mut series = Vec::new();
    let mut p75s = Vec::new();
    for (ki, k) in STREAM_LENGTHS.iter().enumerate() {
        let mut path_cfg = PaperPathConfig::default();
        path_cfg.tight_util = 0.55; // A = 4.5 Mb/s
        let mut scfg = SlopsConfig::default();
        scfg.stream_len = *k;
        let res = repeated_runs(&path_cfg, &scfg, opts, 800 + ki);
        // Report the realized stream duration at the avail-bw rate.
        let dur = stream_params(Rate::from_mbps(4.5), 0, &scfg).duration();
        p75s.push((units::mean(&res.rhos), percentile(&res.rhos, 25.0)));
        series.push((format!("K={k} (tau~{dur})"), res.rho_cdf()));
    }
    out.push_str(&render_cdfs("rho", &series));
    out.push_str(&format!(
        "\nmean rho (p25): K=100 {:.2} ({:.2}), K=200 {:.2} ({:.2}), K=1000 {:.2} ({:.2})\n\
         paper shape: variability decreases as the stream duration grows\n\
         (paper: range width 4.7 Mb/s at tau=18 ms vs 2.0 Mb/s at tau=180 ms).\n\
         note: the reported ranges end on dyadic fractions of the initial rate,\n\
         so rho clusters on a few values (the 0.5 plateau); read the lower\n\
         percentiles for the K effect.\n",
        p75s[0].0, p75s[0].1, p75s[1].0, p75s[1].1, p75s[2].0, p75s[2].1
    ));
    emit(out)
}
