//! One module per figure of the paper's evaluation section.

pub mod ablations;
pub mod btc;
pub mod common;
pub mod comparison;
pub mod fig01_03;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15_16;
pub mod fig17_18;
pub mod ssthresh;
