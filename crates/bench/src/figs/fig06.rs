//! Figure 6: accuracy vs nontight-link load. The nontight avail-bw is held
//! at 8 Mb/s (tightness β = 0.5) while the nontight utilization rises from
//! 20% to 80% (the nontight capacity shrinks accordingly); the end-to-end
//! avail-bw stays 4 Mb/s. Pathload must keep bracketing it at both path
//! lengths.

use crate::figs::common::{emit, repeated_runs_grid, GridPoint};
use crate::report::{section, Table};
use crate::RunOpts;
use simprobe::scenarios::PaperPathConfig;
use slops::SlopsConfig;

const NONTIGHT_UTILS: [f64; 4] = [0.20, 0.40, 0.60, 0.80];
const HOPS: [usize; 2] = [3, 5];

/// Run the experiment and return the report.
pub fn run(opts: &RunOpts) -> String {
    let mut out =
        section("Figure 6: accuracy vs nontight load (A=4 Mb/s, A_nt=8 Mb/s fixed, beta=0.5)");
    let mut tab = Table::new(&[
        "H",
        "u_nt",
        "C_nt (Mb/s)",
        "avg R_lo",
        "avg R_hi",
        "center",
        "brackets A=4?",
    ]);
    // The whole H × u_nt grid runs as one batch on the runner.
    let mut points = Vec::new();
    for (hi, hops) in HOPS.iter().enumerate() {
        for (ui, u_nt) in NONTIGHT_UTILS.iter().enumerate() {
            let mut cfg = PaperPathConfig::default();
            cfg.hops = *hops;
            cfg.tight_util = 0.60; // A = 4 Mb/s
            cfg.nontight_util = *u_nt;
            cfg.set_tightness(0.5); // holds A_nt at 8 Mb/s
            debug_assert!((cfg.nontight_avail().mbps() - 8.0).abs() < 1e-9);
            points.push(GridPoint {
                point: 100 + hi * 10 + ui,
                path_cfg: cfg,
                slops_cfg: SlopsConfig::default(),
            });
        }
    }
    let results = repeated_runs_grid(&points, opts);
    for (p, res) in points.iter().zip(&results) {
        let cfg = &p.path_cfg;
        let brackets = res.avg_low() <= 4.2 && 3.8 <= res.avg_high();
        tab.row(&[
            format!("{}", cfg.hops),
            format!("{:.0}%", cfg.nontight_util * 100.0),
            format!("{:.1}", cfg.nontight_capacity.mbps()),
            format!("{:.2}", res.avg_low()),
            format!("{:.2}", res.avg_high()),
            format!("{:.2}", res.center()),
            if brackets { "yes" } else { "NO" }.to_string(),
        ]);
    }
    out.push_str(&tab.render());
    out.push_str(
        "\npaper shape: the range includes A = 4 Mb/s regardless of the number\n\
         or load of nontight links; the center stays within ~10% of A.\n",
    );
    emit(out)
}
