//! pathload vs TOPP vs cprobe comparison (see availbw-bench::figs::comparison).

fn main() {
    let opts = availbw_bench::RunOpts::from_env();
    availbw_bench::figs::comparison::run(&opts);
}
