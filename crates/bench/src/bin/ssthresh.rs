//! ssthresh-tuning experiment (see availbw-bench::figs::ssthresh).

fn main() {
    let opts = availbw_bench::RunOpts::from_env();
    availbw_bench::figs::ssthresh::run(&opts);
}
