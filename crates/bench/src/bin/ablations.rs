//! Ablation study of pathload's design choices (see availbw-bench::figs::ablations).

fn main() {
    let opts = availbw_bench::RunOpts::from_env();
    availbw_bench::figs::ablations::run(&opts);
}
