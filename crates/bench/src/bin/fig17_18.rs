//! Reproduces the paper's Figure 17_18 (see availbw-bench::figs).

fn main() {
    let opts = availbw_bench::RunOpts::from_env();
    availbw_bench::figs::fig17_18::run(&opts);
}
