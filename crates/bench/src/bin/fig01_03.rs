//! Reproduces the paper's Figure 01_03 (see availbw-bench::figs).

fn main() {
    let opts = availbw_bench::RunOpts::from_env();
    availbw_bench::figs::fig01_03::run(&opts);
}
