//! Reproduces the paper's Figure 11 (see availbw-bench::figs).

fn main() {
    let opts = availbw_bench::RunOpts::from_env();
    availbw_bench::figs::fig11::run(&opts);
}
