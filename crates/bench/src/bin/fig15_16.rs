//! Reproduces the paper's Figure 15_16 (see availbw-bench::figs).

fn main() {
    let opts = availbw_bench::RunOpts::from_env();
    availbw_bench::figs::fig15_16::run(&opts);
}
