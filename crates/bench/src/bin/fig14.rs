//! Reproduces the paper's Figure 14 (see availbw-bench::figs).

fn main() {
    let opts = availbw_bench::RunOpts::from_env();
    availbw_bench::figs::fig14::run(&opts);
}
