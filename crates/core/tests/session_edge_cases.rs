//! Edge-case and failure-injection tests for the measurement session,
//! using the controllable oracle transport.

use slops::testutil::OracleTransport;
use slops::{
    InitialRate, ProbeTransport, Session, SlopsConfig, StreamRecord, StreamRequest, Termination,
    TrainRecord, TransportError,
};
use units::{Rate, TimeNs};

#[test]
fn fixed_initialization_works_without_trains() {
    let mut t = OracleTransport::new(Rate::from_mbps(30.0), 1);
    let mut cfg = SlopsConfig::default();
    cfg.initial = InitialRate::FixedMax(Rate::from_mbps(100.0));
    let est = Session::new(cfg).run(&mut t).unwrap();
    assert!(est.low.mbps() <= 31.0 && 29.0 <= est.high.mbps());
}

#[test]
fn very_low_avail_bw_uses_stretched_periods() {
    // A = 0.8 Mb/s: probing rates below 1 Mb/s require L_min packets at
    // multi-millisecond periods.
    let mut t = OracleTransport::new(Rate::from_mbps(0.8), 2);
    let mut cfg = SlopsConfig::default();
    cfg.resolution = Rate::from_kbps(200.0);
    cfg.grey_resolution = Rate::from_kbps(400.0);
    let est = Session::new(cfg).run(&mut t).unwrap();
    assert!(
        est.low.mbps() <= 0.9 && 0.7 <= est.high.mbps(),
        "[{}, {}]",
        est.low,
        est.high
    );
}

#[test]
fn avail_bw_above_tool_maximum_reports_ceiling() {
    let mut t = OracleTransport::new(Rate::from_mbps(500.0), 3);
    t.tight_capacity = Rate::from_mbps(1000.0);
    // Tool max = MTU*8/T_min = 120 Mb/s < 500.
    let est = Session::new(SlopsConfig::default()).run(&mut t).unwrap();
    assert_eq!(est.termination, Termination::TransportCeiling);
    assert!(est.high.mbps() <= 120.0 + 1e-6);
    assert!(est.low.mbps() >= 100.0, "low = {}", est.low);
}

#[test]
fn total_loss_aborts_to_a_low_estimate_not_a_hang() {
    let mut t = OracleTransport::new(Rate::from_mbps(50.0), 4);
    t.loss_prob = 1.0; // every packet lost
    let est = Session::new(SlopsConfig::default()).run(&mut t).unwrap();
    // Every fleet aborts lossy => rmax collapses toward zero.
    assert!(est.high.mbps() < 2.0, "high = {}", est.high);
}

#[test]
fn grey_everywhere_still_terminates() {
    // Avail-bw varies so wildly that every fleet is grey.
    let mut t = OracleTransport::new(Rate::from_mbps(50.0), 5);
    t.avail_halfwidth = Rate::from_mbps(45.0);
    let est = Session::new(SlopsConfig::default()).run(&mut t).unwrap();
    assert!(est.fleets.len() <= 64);
    assert!(est.low.bps() <= est.high.bps());
}

#[test]
fn elapsed_time_is_dominated_by_pacing() {
    let mut t = OracleTransport::new(Rate::from_mbps(40.0), 6);
    let est = Session::new(SlopsConfig::default()).run(&mut t).unwrap();
    // With idle = max(RTT, 9V) per stream and N=12 streams per fleet, the
    // elapsed transport time must be far larger than the pure stream time.
    let stream_time: f64 = est.fleets.len() as f64 * 12.0 * 0.01; // V ~ 10 ms
    assert!(
        est.elapsed.secs_f64() > 5.0 * stream_time,
        "elapsed {} vs stream time {stream_time}s — pacing missing?",
        est.elapsed
    );
}

/// A transport whose send_stream fails after a few calls: the session must
/// propagate the error, not panic or loop.
struct FlakyTransport {
    inner: OracleTransport,
    calls_left: u32,
}

impl ProbeTransport for FlakyTransport {
    fn send_stream(&mut self, req: &StreamRequest) -> Result<StreamRecord, TransportError> {
        if self.calls_left == 0 {
            return Err(TransportError::Io("link down".into()));
        }
        self.calls_left -= 1;
        self.inner.send_stream(req)
    }
    fn send_train(&mut self, len: u32, size: u32) -> Result<TrainRecord, TransportError> {
        self.inner.send_train(len, size)
    }
    fn rtt(&mut self) -> TimeNs {
        self.inner.rtt()
    }
    fn idle(&mut self, dur: TimeNs) {
        self.inner.idle(dur)
    }
}

#[test]
fn transport_failure_mid_fleet_surfaces_as_error() {
    let mut t = FlakyTransport {
        inner: OracleTransport::new(Rate::from_mbps(30.0), 7),
        calls_left: 7,
    };
    let err = Session::new(SlopsConfig::default())
        .run(&mut t)
        .unwrap_err();
    assert!(err.to_string().contains("link down"));
}

#[test]
fn small_fleet_and_stream_configs_still_work() {
    let mut t = OracleTransport::new(Rate::from_mbps(25.0), 8);
    let mut cfg = SlopsConfig::default();
    cfg.fleet_len = 3;
    cfg.stream_len = 25;
    let est = Session::new(cfg).run(&mut t).unwrap();
    assert!(
        est.low.mbps() <= 26.5 && 23.5 <= est.high.mbps(),
        "[{}, {}]",
        est.low,
        est.high
    );
}

#[test]
fn trace_rates_match_quantized_stream_parameters() {
    let mut t = OracleTransport::new(Rate::from_mbps(40.0), 9);
    let est = Session::new(SlopsConfig::default()).run(&mut t).unwrap();
    for f in &est.fleets {
        // Every fleet rate must be realizable: L in [L_min, MTU], T >= T_min.
        let req = slops::stream_params(f.rate, 0, &SlopsConfig::default());
        let realized = req.actual_rate();
        assert!(
            (realized.bps() - f.rate.bps()).abs() / f.rate.bps() < 0.01,
            "fleet rate {} not realizable (got {})",
            f.rate,
            realized
        );
    }
}
