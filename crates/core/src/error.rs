//! Error types.

use core::fmt;

/// Errors raised by a [`crate::transport::ProbeTransport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The underlying channel failed (socket error, peer went away...).
    Io(String),
    /// The transport refused the request (rate above its maximum, ...).
    Unsupported(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(msg) => write!(f, "transport I/O error: {msg}"),
            TransportError::Unsupported(msg) => write!(f, "unsupported request: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Errors raised by a measurement session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlopsError {
    /// The transport failed.
    Transport(TransportError),
    /// Every stream of a fleet was unusable (all packets lost, or the
    /// sender could not keep the requested spacing).
    NoUsableStreams,
    /// Configuration rejected (e.g. thresholds outside their ranges).
    BadConfig(String),
}

impl fmt::Display for SlopsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlopsError::Transport(e) => write!(f, "{e}"),
            SlopsError::NoUsableStreams => write!(f, "no usable streams in fleet"),
            SlopsError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for SlopsError {}

impl From<TransportError> for SlopsError {
    fn from(e: TransportError) -> Self {
        SlopsError::Transport(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TransportError::Io("boom".into());
        assert_eq!(e.to_string(), "transport I/O error: boom");
        let s: SlopsError = e.into();
        assert_eq!(s.to_string(), "transport I/O error: boom");
        assert_eq!(
            SlopsError::NoUsableStreams.to_string(),
            "no usable streams in fleet"
        );
    }
}
