//! The full pathload measurement session (§IV).
//!
//! One [`Session::run`] call:
//!
//! 1. estimates the path RTT;
//! 2. initializes the rate search — by default from the dispersion (ADR) of
//!    a back-to-back packet train, which upper-bounds the avail-bw;
//! 3. sends fleets of N periodic streams, classifying each stream's OWD
//!    trend and each fleet as above / below / grey;
//! 4. bisects until the ω / χ termination rules fire (or a fleet budget or
//!    the transport's maximum rate is exhausted);
//! 5. reports the final `[R_min, R_max]` range plus a full per-fleet trace.
//!
//! Pacing: between the streams of a fleet the session idles
//! `max(RTT, (1/x − 1)·V)` where `V = K·T` is the stream duration and `x`
//! the configured average-load cap (0.1 ⇒ idle ≥ 9 V ⇒ average probing
//! load < 10 % of the fleet rate, §IV "Fleets of Streams").

use crate::config::SlopsConfig;
use crate::error::SlopsError;
use crate::fleet::FleetTrace;
use crate::machine::{Command, Event, SessionMachine};
use crate::transport::ProbeTransport;
use std::sync::Arc;
use telemetry::TraceSink;
use units::{Rate, TimeNs};

/// Why the session stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Termination {
    /// `R_max − R_min ≤ ω` with no grey region.
    Resolution,
    /// Both avail-bw bounds within χ of the grey-region bounds.
    GreyResolution,
    /// The transport cannot probe faster; avail-bw ≥ the reported low bound.
    TransportCeiling,
    /// The fleet budget ran out before the resolutions were met.
    FleetBudget,
}

impl Termination {
    /// Every termination cause, for pre-sizing label vocabularies.
    pub const ALL: [Termination; 4] = [
        Termination::Resolution,
        Termination::GreyResolution,
        Termination::TransportCeiling,
        Termination::FleetBudget,
    ];

    /// Stable snake_case name (trace events, JSONL, metric labels).
    pub fn name(self) -> &'static str {
        match self {
            Termination::Resolution => "resolution",
            Termination::GreyResolution => "grey_resolution",
            Termination::TransportCeiling => "transport_ceiling",
            Termination::FleetBudget => "fleet_budget",
        }
    }
}

/// The result of a measurement session.
#[derive(Clone, Debug, PartialEq)]
pub struct Estimate {
    /// Lower end of the avail-bw variation range.
    pub low: Rate,
    /// Upper end of the avail-bw variation range.
    pub high: Rate,
    /// Grey-region bounds, when one was detected.
    pub grey: Option<(Rate, Rate)>,
    /// Why the session stopped.
    pub termination: Termination,
    /// Per-fleet trace, in probing order.
    pub fleets: Vec<FleetTrace>,
    /// Transport time consumed by the whole session.
    pub elapsed: TimeNs,
}

impl Estimate {
    /// Midpoint of the reported range.
    pub fn midpoint(&self) -> Rate {
        self.low.midpoint(self.high)
    }

    /// Relative variation ρ of the reported range (eq. 12).
    pub fn relative_variation(&self) -> f64 {
        crate::metrics::relative_variation(self.low, self.high)
    }
}

/// A configured measurement session; cheap to clone and reuse.
#[derive(Clone)]
pub struct Session {
    cfg: SlopsConfig,
    sink: Option<Arc<dyn TraceSink>>,
}

impl core::fmt::Debug for Session {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Session")
            .field("cfg", &self.cfg)
            .field("sink", &self.sink.as_ref().map(|_| "TraceSink"))
            .finish()
    }
}

impl Session {
    /// Create a session with the given configuration.
    pub fn new(cfg: SlopsConfig) -> Session {
        Session { cfg, sink: None }
    }

    /// Forward the machine's trace events to `sink` during
    /// [`Session::run`]. The driver only relays: every event is minted by
    /// the [`SessionMachine`] itself.
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Session {
        self.sink = Some(sink);
        self
    }

    /// The session's configuration.
    pub fn config(&self) -> &SlopsConfig {
        &self.cfg
    }

    /// Drain and forward (or drop, when no sink is attached) the trace
    /// the machine minted since the last call.
    fn forward_trace(&self, machine: &mut SessionMachine) {
        let events = machine.take_trace();
        if let Some(sink) = &self.sink {
            for e in &events {
                sink.record(e);
            }
        }
    }

    /// Run one measurement over `transport`.
    ///
    /// This is the blocking reference driver over the sans-IO
    /// [`SessionMachine`]: it executes each [`Command`] synchronously on
    /// the transport and feeds the resulting [`Event`] back, in strict
    /// alternation. Event-driven drivers (e.g. `simprobe::SessionApp`)
    /// run the very same machine from timer and packet callbacks.
    pub fn run<T: ProbeTransport + ?Sized>(
        &self,
        transport: &mut T,
    ) -> Result<Estimate, SlopsError> {
        // Validate before touching the transport (a socket transport's
        // rtt() may do real I/O).
        self.cfg.validate().map_err(SlopsError::BadConfig)?;
        let start = transport.elapsed();
        let rtt = transport.rtt();
        let mut machine = SessionMachine::new(self.cfg.clone(), rtt, transport.max_rate())?;
        loop {
            let cmd = machine
                .poll()
                .expect("blocking driver always answers each command before polling again");
            self.forward_trace(&mut machine);
            let event = match cmd {
                Command::SendTrain { len, size } => {
                    Event::TrainDone(transport.send_train(len, size)?)
                }
                Command::SendStream(req) => Event::StreamDone(transport.send_stream(&req)?),
                Command::Idle(dur) => {
                    transport.idle(dur);
                    Event::Tick(transport.elapsed())
                }
                Command::Finish(est) => {
                    let mut est = *est;
                    est.elapsed = transport.elapsed().saturating_sub(start);
                    return Ok(est);
                }
            };
            machine
                .on_event(event)
                .expect("the machine accepts the event answering its own command");
            self.forward_trace(&mut machine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::OracleTransport;

    fn run_with_avail(a_mbps: f64, seed: u64) -> Estimate {
        let mut t = OracleTransport::new(Rate::from_mbps(a_mbps), seed);
        Session::new(SlopsConfig::default()).run(&mut t).unwrap()
    }

    #[test]
    fn brackets_fixed_avail_bw() {
        for (a, seed) in [(5.0, 1), (20.0, 2), (47.0, 3), (74.0, 4)] {
            let est = run_with_avail(a, seed);
            assert!(
                est.low.mbps() <= a + 1.0 && a - 1.0 <= est.high.mbps(),
                "A={a}: reported [{}, {}]",
                est.low,
                est.high
            );
            assert!(est.fleets.len() >= 3, "suspiciously few fleets");
        }
    }

    #[test]
    fn terminates_at_resolution_without_noise() {
        let est = run_with_avail(40.0, 7);
        assert_eq!(est.termination, Termination::Resolution);
        assert!((est.high - est.low).mbps() <= 1.0 + 1e-9);
    }

    #[test]
    fn grey_region_produces_wider_report() {
        let mut t = OracleTransport::new(Rate::from_mbps(40.0), 11);
        t.avail_halfwidth = Rate::from_mbps(4.0); // avail-bw varies 36..44
        let est = Session::new(SlopsConfig::default()).run(&mut t).unwrap();
        assert_eq!(est.termination, Termination::GreyResolution);
        assert!(est.grey.is_some());
        // The report brackets the mean avail-bw, is wider than the
        // noise-free ω resolution, and stays within the true variation
        // range padded by the grey resolution χ (§VI).
        assert!(
            est.low.mbps() <= 40.0 && 40.0 <= est.high.mbps(),
            "mean not bracketed: [{}, {}]",
            est.low,
            est.high
        );
        assert!(
            (est.high - est.low).mbps() >= 1.5,
            "range suspiciously tight"
        );
        assert!(est.low.mbps() >= 36.0 - 2.0 - 1e-6, "low = {}", est.low);
        assert!(est.high.mbps() <= 44.0 + 2.0 + 1e-6, "high = {}", est.high);
    }

    #[test]
    fn lossy_path_still_terminates() {
        let mut t = OracleTransport::new(Rate::from_mbps(30.0), 13);
        t.loss_prob = 0.02; // below the moderate threshold per stream, mostly
        let est = Session::new(SlopsConfig::default()).run(&mut t).unwrap();
        assert!(est.low.mbps() <= 31.0 && est.high.mbps() >= 28.0);
    }

    #[test]
    fn heavy_loss_aborts_fleets_downward() {
        let mut t = OracleTransport::new(Rate::from_mbps(50.0), 17);
        t.loss_above_rate = Some(Rate::from_mbps(20.0));
        t.loss_prob_above = 0.5;
        // Any probing above 20 Mb/s sees 50% loss => fleets abort => the
        // estimate collapses below 20 Mb/s even though trend-A is 50.
        let est = Session::new(SlopsConfig::default()).run(&mut t).unwrap();
        assert!(
            est.high.mbps() <= 21.0,
            "losses should cap the estimate, got {}",
            est.high
        );
    }

    #[test]
    fn bad_config_is_rejected() {
        let mut cfg = SlopsConfig::default();
        cfg.fleet_fraction = 0.1;
        let mut t = OracleTransport::new(Rate::from_mbps(10.0), 1);
        let err = Session::new(cfg).run(&mut t).unwrap_err();
        assert!(matches!(err, SlopsError::BadConfig(_)));
    }

    #[test]
    fn transport_ceiling_is_reported() {
        let mut t = OracleTransport::new(Rate::from_mbps(500.0), 19);
        t.max_rate = Some(Rate::from_mbps(100.0));
        let est = Session::new(SlopsConfig::default()).run(&mut t).unwrap();
        assert_eq!(est.termination, Termination::TransportCeiling);
        assert!(est.high.mbps() <= 100.0 + 1e-6);
    }

    #[test]
    fn session_is_reusable() {
        let s = Session::new(SlopsConfig::default());
        let mut t1 = OracleTransport::new(Rate::from_mbps(25.0), 23);
        let mut t2 = OracleTransport::new(Rate::from_mbps(60.0), 29);
        let e1 = s.run(&mut t1).unwrap();
        let e2 = s.run(&mut t2).unwrap();
        assert!(e1.low.mbps() <= 25.0 + 1.0 && 25.0 - 1.0 <= e1.high.mbps());
        assert!(e2.low.mbps() <= 60.0 + 1.0 && 60.0 - 1.0 <= e2.high.mbps());
    }
}
