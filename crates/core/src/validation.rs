//! Sender-spacing validation (§IV "Stream Parameters", last sentence):
//! the receiver checks the spacing with which packets *actually left* the
//! sender, using the sender timestamps, to detect context switches and
//! other rate deviations. A stream whose realized spacing deviates too
//! much did not probe at its nominal rate and must not be classified.
//!
//! The simulator's injected streams are perfectly periodic; this exists
//! for the real-socket transport, where the OS can preempt the sender
//! mid-stream, and for any future transport with imperfect pacing.

use crate::stream::StreamRequest;
use crate::transport::StreamRecord;

/// Result of validating a stream's realized send spacing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpacingReport {
    /// Packets whose gap to their predecessor deviated from the nominal
    /// period by more than the tolerance.
    pub violations: u32,
    /// Gaps inspected (received packets with a received predecessor).
    pub inspected: u32,
    /// Largest relative deviation observed, `|gap − T| / T`.
    pub worst_deviation: f64,
}

impl SpacingReport {
    /// Fraction of inspected gaps that violated the tolerance.
    pub fn violation_fraction(&self) -> f64 {
        if self.inspected == 0 {
            0.0
        } else {
            self.violations as f64 / self.inspected as f64
        }
    }
}

/// Check the realized send offsets of `rec` against the nominal period of
/// `req`. `tolerance` is the allowed relative deviation per gap (the real
/// tool used a few tens of percent; context switches produce multi-period
/// gaps that exceed any sane tolerance).
pub fn check_spacing(rec: &StreamRecord, req: &StreamRequest, tolerance: f64) -> SpacingReport {
    assert!(tolerance > 0.0);
    let nominal = req.period.as_nanos() as f64;
    let mut violations = 0;
    let mut inspected = 0;
    let mut worst: f64 = 0.0;
    for pair in rec.samples.windows(2) {
        // Only adjacent indices give a single-period gap.
        if pair[1].idx != pair[0].idx + 1 {
            continue;
        }
        let gap = pair[1].send_offset.as_nanos() as f64 - pair[0].send_offset.as_nanos() as f64;
        let dev = (gap - nominal).abs() / nominal;
        worst = worst.max(dev);
        inspected += 1;
        if dev > tolerance {
            violations += 1;
        }
    }
    SpacingReport {
        violations,
        inspected,
        worst_deviation: worst,
    }
}

/// Is the stream usable for trend classification? The tool discards
/// streams where more than `max_fraction` of the gaps were off.
pub fn spacing_acceptable(report: &SpacingReport, max_fraction: f64) -> bool {
    report.violation_fraction() <= max_fraction
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlopsConfig;
    use crate::stream::stream_params;
    use crate::transport::PacketSample;
    use units::{Rate, TimeNs};

    fn record_with_offsets(offsets_us: &[u64]) -> StreamRecord {
        StreamRecord {
            sent: offsets_us.len() as u32,
            samples: offsets_us
                .iter()
                .enumerate()
                .map(|(i, us)| PacketSample {
                    idx: i as u32,
                    send_offset: TimeNs::from_micros(*us),
                    owd_ns: 0,
                })
                .collect(),
        }
    }

    fn req_100us() -> StreamRequest {
        // 40 Mb/s => T = 100 µs exactly.
        stream_params(Rate::from_mbps(40.0), 0, &SlopsConfig::default())
    }

    #[test]
    fn perfect_spacing_passes() {
        let offsets: Vec<u64> = (0..50).map(|i| i * 100).collect();
        let rep = check_spacing(&record_with_offsets(&offsets), &req_100us(), 0.2);
        assert_eq!(rep.violations, 0);
        assert_eq!(rep.inspected, 49);
        assert!(spacing_acceptable(&rep, 0.1));
    }

    #[test]
    fn context_switch_gap_is_flagged() {
        // One 2 ms stall in the middle: a classic scheduler preemption.
        let mut offsets: Vec<u64> = (0..50).map(|i| i * 100).collect();
        for o in offsets.iter_mut().skip(25) {
            *o += 2_000;
        }
        let rep = check_spacing(&record_with_offsets(&offsets), &req_100us(), 0.2);
        assert_eq!(rep.violations, 1);
        assert!(rep.worst_deviation > 10.0);
        assert!(spacing_acceptable(&rep, 0.1)); // one bad gap of 49 is fine
    }

    #[test]
    fn persistent_jitter_fails_the_stream() {
        // Alternating 40/160 µs gaps: every gap is 60% off.
        let mut offsets = vec![0u64];
        for i in 0..49 {
            let gap = if i % 2 == 0 { 40 } else { 160 };
            offsets.push(offsets.last().unwrap() + gap);
        }
        let rep = check_spacing(&record_with_offsets(&offsets), &req_100us(), 0.2);
        assert!(rep.violation_fraction() > 0.9);
        assert!(!spacing_acceptable(&rep, 0.5));
    }

    #[test]
    fn lost_packets_skip_their_gaps() {
        // Packets 0, 1, 5, 6: only gaps (0,1) and (5,6) are inspected.
        let rec = StreamRecord {
            sent: 10,
            samples: [0u32, 1, 5, 6]
                .iter()
                .map(|&i| PacketSample {
                    idx: i,
                    send_offset: TimeNs::from_micros(i as u64 * 100),
                    owd_ns: 0,
                })
                .collect(),
        };
        let rep = check_spacing(&rec, &req_100us(), 0.2);
        assert_eq!(rep.inspected, 2);
        assert_eq!(rep.violations, 0);
    }

    #[test]
    fn empty_stream_is_trivially_acceptable() {
        let rec = StreamRecord {
            sent: 10,
            samples: vec![],
        };
        let rep = check_spacing(&rec, &req_100us(), 0.2);
        assert_eq!(rep.inspected, 0);
        assert_eq!(rep.violation_fraction(), 0.0);
        assert!(spacing_acceptable(&rep, 0.0));
    }
}
