//! Reporting metrics from the paper.

use units::{Rate, TimeNs};

/// Relative variation ρ of a reported range (eq. 12):
/// `ρ = (R_max − R_min) / ((R_max + R_min)/2)`. Zero when the midpoint is 0.
pub fn relative_variation(low: Rate, high: Rate) -> f64 {
    let mid = (low.bps() + high.bps()) * 0.5;
    if mid <= 0.0 {
        0.0
    } else {
        (high.bps() - low.bps()).max(0.0) / mid
    }
}

/// Duration-weighted average of consecutive measurement midpoints (eq. 11):
/// used to compare a sequence of pathload runs against one 5-minute MRTG
/// reading. Each entry is `(run_duration, low, high)`.
pub fn weighted_average(runs: &[(TimeNs, Rate, Rate)]) -> Rate {
    let total: f64 = runs.iter().map(|(d, _, _)| d.secs_f64()).sum();
    if total <= 0.0 {
        return Rate::ZERO;
    }
    let sum: f64 = runs
        .iter()
        .map(|(d, lo, hi)| d.secs_f64() * (lo.bps() + hi.bps()) * 0.5)
        .sum();
    Rate::from_bps(sum / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_basic() {
        let rho = relative_variation(Rate::from_mbps(3.0), Rate::from_mbps(5.0));
        assert!((rho - 0.5).abs() < 1e-12); // 2 / 4
        assert_eq!(relative_variation(Rate::ZERO, Rate::ZERO), 0.0);
        // Degenerate range: rho = 0.
        assert_eq!(
            relative_variation(Rate::from_mbps(4.0), Rate::from_mbps(4.0)),
            0.0
        );
    }

    #[test]
    fn weighted_average_weights_by_duration() {
        let runs = [
            (
                TimeNs::from_secs(10),
                Rate::from_mbps(2.0),
                Rate::from_mbps(4.0),
            ), // mid 3
            (
                TimeNs::from_secs(30),
                Rate::from_mbps(6.0),
                Rate::from_mbps(8.0),
            ), // mid 7
        ];
        // (10*3 + 30*7)/40 = 6
        let avg = weighted_average(&runs);
        assert!((avg.mbps() - 6.0).abs() < 1e-9);
        assert!(weighted_average(&[]).is_zero());
    }
}
