//! The sans-IO measurement state machine.
//!
//! [`SessionMachine`] is the full pathload control loop of §IV — ADR
//! initialization, fleets of periodic streams, grey-region bisection, the
//! ω / χ termination rules — with **all I/O and clock access removed**. It
//! communicates with the outside world through two channels:
//!
//! * [`SessionMachine::poll`] emits the next [`Command`] the driver must
//!   execute (send a train, send a stream, idle, or finish);
//! * [`SessionMachine::on_event`] consumes the [`Event`] produced by that
//!   command (train record, stream record, stream loss, or a clock tick
//!   after an idle).
//!
//! The machine is fully deterministic: the same event sequence always
//! produces the same command sequence and the same [`Estimate`]. That makes
//! every intermediate state unit-testable without a transport, and lets one
//! control loop serve radically different drivers:
//!
//! * the blocking [`crate::Session::run`] driver over any
//!   [`crate::transport::ProbeTransport`];
//! * an event-driven in-simulator driver (`simprobe::SessionApp`) where the
//!   measurement runs as a native discrete-event application alongside
//!   cross traffic and TCP flows;
//! * future async/socket drivers, which only need to map commands onto
//!   their I/O substrate and feed the results back.
//!
//! Protocol (strict alternation):
//!
//! ```text
//! poll() -> SendTrain ──────► on_event(TrainDone)
//! poll() -> SendStream ─────► on_event(StreamDone | StreamLost)
//! poll() -> Idle ───────────► on_event(Tick)
//! poll() -> Finish(estimate)            (terminal; poll stays Finish)
//! ```
//!
//! `poll` returns `None` while the machine is waiting for the event of an
//! already-issued command; feeding an event the machine is not waiting for
//! returns [`MachineError::UnexpectedEvent`] and leaves the state intact.

use crate::config::{InitialRate, SlopsConfig};
use crate::error::SlopsError;
use crate::fleet::{classify_fleet, FleetTrace};
use crate::ratesearch::RateSearch;
use crate::session::{Estimate, Termination};
use crate::stream::{stream_params, StreamRequest};
use crate::transport::{StreamRecord, TrainRecord};
use crate::trend::StreamClass;
use telemetry::TraceEvent;
use units::{Rate, TimeNs};

/// What the driver must do next.
#[derive(Clone, Debug)]
pub enum Command {
    /// Send a back-to-back packet train of `len` packets of `size` bytes
    /// (ADR initialization), then feed [`Event::TrainDone`].
    SendTrain {
        /// Number of packets in the train.
        len: u32,
        /// Packet size in bytes.
        size: u32,
    },
    /// Send one periodic probe stream, then feed [`Event::StreamDone`] (or
    /// [`Event::StreamLost`] if the stream produced no record at all).
    SendStream(StreamRequest),
    /// Let the path drain for the given duration, then feed
    /// [`Event::Tick`] with the driver's current clock reading.
    Idle(TimeNs),
    /// The measurement is complete. Terminal: every subsequent poll
    /// returns this again. The estimate's `elapsed` field is
    /// [`TimeNs::ZERO`]; drivers stamp it from their own clock.
    Finish(Box<Estimate>),
}

/// What happened in the outside world.
#[derive(Clone, Debug)]
pub enum Event {
    /// The packet train of [`Command::SendTrain`] completed.
    TrainDone(TrainRecord),
    /// The stream of [`Command::SendStream`] completed (possibly with
    /// losses; a record with zero samples is a fully lost stream).
    StreamDone(StreamRecord),
    /// The stream of [`Command::SendStream`] was lost outright (no record;
    /// equivalent to a record with every packet missing).
    StreamLost,
    /// The idle of [`Command::Idle`] elapsed; carries the driver clock.
    Tick(TimeNs),
}

impl Event {
    /// Short name for diagnostics.
    fn name(&self) -> &'static str {
        match self {
            Event::TrainDone(_) => "TrainDone",
            Event::StreamDone(_) => "StreamDone",
            Event::StreamLost => "StreamLost",
            Event::Tick(_) => "Tick",
        }
    }
}

/// Protocol violation by the driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// An event arrived that the machine was not waiting for (e.g. a
    /// `StreamDone` while idling, or any event after `Finish`).
    UnexpectedEvent {
        /// Name of the offending event.
        event: &'static str,
        /// What the machine was doing at the time.
        state: &'static str,
    },
}

impl core::fmt::Display for MachineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MachineError::UnexpectedEvent { event, state } => {
                write!(f, "unexpected event {event} in state {state}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// Progress of the fleet currently being probed.
#[derive(Clone, Debug)]
struct FleetState {
    /// Prototype request (per-stream requests override `stream_id`).
    proto: StreamRequest,
    /// Actual fleet rate realized by the prototype parameters.
    rate: Rate,
    /// Inter-stream pacing idle `max(RTT, (1/x − 1)·V)`.
    idle: TimeNs,
    /// Stream classifications so far, in send order.
    classes: Vec<StreamClass>,
    /// Per-stream loss fractions so far.
    losses: Vec<f64>,
}

/// Every phase name a [`TraceEvent::Phase`] transition can carry, for
/// pre-sizing label vocabularies (same strings as `State::name`).
pub const PHASE_NAMES: [&str; 8] = [
    "Start",
    "AwaitTrain",
    "FleetHead",
    "NextStream",
    "AwaitStream",
    "NeedIdle",
    "AwaitTick",
    "Done",
];

/// Where the machine is in the session protocol.
#[derive(Clone, Debug)]
enum State {
    /// Nothing issued yet.
    Start,
    /// `SendTrain` issued; waiting for `TrainDone`.
    AwaitTrain,
    /// Between fleets: pick the next rate or finish.
    FleetHead,
    /// Mid-fleet, ready to issue the next stream.
    NextStream,
    /// `SendStream` issued; waiting for `StreamDone` / `StreamLost`.
    AwaitStream,
    /// Stream processed; the pacing idle must be issued.
    NeedIdle,
    /// `Idle` issued; waiting for `Tick`.
    AwaitTick,
    /// Terminal.
    Done(Box<Estimate>),
}

impl State {
    fn name(&self) -> &'static str {
        match self {
            State::Start => "Start",
            State::AwaitTrain => "AwaitTrain",
            State::FleetHead => "FleetHead",
            State::NextStream => "NextStream",
            State::AwaitStream => "AwaitStream",
            State::NeedIdle => "NeedIdle",
            State::AwaitTick => "AwaitTick",
            State::Done(_) => "Done",
        }
    }
}

/// The sans-IO pathload session state machine. See the module docs.
#[derive(Clone, Debug)]
pub struct SessionMachine {
    cfg: SlopsConfig,
    rtt: TimeNs,
    /// Initial search ceiling: transport maximum capped by the tool's
    /// `MTU·8/T_min` maximum measurable rate.
    ceiling: Rate,
    search: Option<RateSearch>,
    fleets: Vec<FleetTrace>,
    fleet: Option<FleetState>,
    stream_id: u32,
    budget_exhausted: bool,
    state: State,
    /// Trace events minted since the last [`SessionMachine::take_trace`].
    /// Plain data, no IO: drivers drain this after every `poll`/`on_event`
    /// and forward to their `TraceSink`. Bounded by the session itself
    /// (a handful of events per stream).
    trace: Vec<TraceEvent>,
}

impl SessionMachine {
    /// Create a machine for one measurement session.
    ///
    /// `rtt` is the driver's round-trip-time estimate (used for fleet
    /// pacing); `transport_max` is the highest stream rate the driver's
    /// transport can generate, if bounded. Validates the configuration.
    pub fn new(
        cfg: SlopsConfig,
        rtt: TimeNs,
        transport_max: Option<Rate>,
    ) -> Result<SessionMachine, SlopsError> {
        cfg.validate().map_err(SlopsError::BadConfig)?;
        let tool_max = cfg.max_rate();
        let ceiling = match transport_max {
            Some(m) => m.min(tool_max),
            None => tool_max,
        };
        Ok(SessionMachine {
            cfg,
            rtt,
            ceiling,
            search: None,
            fleets: Vec::new(),
            fleet: None,
            stream_id: 0,
            budget_exhausted: false,
            state: State::Start,
            trace: Vec::new(),
        })
    }

    /// Move to `to`, minting the [`TraceEvent::Phase`] transition.
    fn set_state(&mut self, to: State) {
        self.trace.push(TraceEvent::Phase {
            from: self.state.name(),
            to: to.name(),
        });
        self.state = to;
    }

    /// Drain the trace events accumulated since the last call.
    ///
    /// The machine only ever *appends* trace events; it is the driver's
    /// job to drain them (after each `poll` / `on_event`) and forward each
    /// one to its `telemetry::TraceSink`. Because the events are minted
    /// here — never in a driver — the trace is identical across drivers
    /// for the same event sequence.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }

    /// Trace events accumulated and not yet drained (tests, diagnostics).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// The machine's configuration.
    pub fn config(&self) -> &SlopsConfig {
        &self.cfg
    }

    /// True once the machine has produced its estimate.
    pub fn is_finished(&self) -> bool {
        matches!(self.state, State::Done(_))
    }

    /// The final estimate, if the session has finished.
    pub fn estimate(&self) -> Option<&Estimate> {
        match &self.state {
            State::Done(est) => Some(est),
            _ => None,
        }
    }

    /// Fleets probed so far (the trace grows as the session runs).
    pub fn fleets_so_far(&self) -> &[FleetTrace] {
        &self.fleets
    }

    /// Next command for the driver, or `None` while the machine waits for
    /// the event of the previously issued command.
    pub fn poll(&mut self) -> Option<Command> {
        loop {
            match &self.state {
                State::Start => match self.cfg.initial {
                    InitialRate::Train { len, size } => {
                        self.set_state(State::AwaitTrain);
                        return Some(Command::SendTrain { len, size });
                    }
                    InitialRate::FixedMax(r) => {
                        self.init_search(r.min(self.ceiling));
                        self.set_state(State::FleetHead);
                    }
                },
                State::FleetHead => {
                    let search = self.search.as_ref().expect("search initialized");
                    match search.next_rate() {
                        None => {
                            self.finish();
                        }
                        Some(rate) => {
                            if self.fleets.len() as u32 >= self.cfg.max_fleets {
                                self.budget_exhausted = true;
                                self.finish();
                                continue;
                            }
                            let proto = stream_params(rate, self.stream_id, &self.cfg);
                            let v = proto.duration();
                            let idle = self.rtt.max(TimeNs::from_secs_f64(
                                v.secs_f64() * (1.0 / self.cfg.avg_load_factor - 1.0),
                            ));
                            self.fleet = Some(FleetState {
                                proto,
                                rate: proto.actual_rate(),
                                idle,
                                classes: Vec::with_capacity(self.cfg.fleet_len as usize),
                                losses: Vec::with_capacity(self.cfg.fleet_len as usize),
                            });
                            self.set_state(State::NextStream);
                        }
                    }
                }
                State::NextStream => {
                    let fleet = self.fleet.as_ref().expect("fleet in progress");
                    let mut req = fleet.proto;
                    req.stream_id = self.stream_id;
                    self.stream_id += 1;
                    self.set_state(State::AwaitStream);
                    return Some(Command::SendStream(req));
                }
                State::NeedIdle => {
                    let idle = self.fleet.as_ref().expect("fleet in progress").idle;
                    self.set_state(State::AwaitTick);
                    return Some(Command::Idle(idle));
                }
                State::AwaitTrain | State::AwaitStream | State::AwaitTick => return None,
                State::Done(est) => return Some(Command::Finish(est.clone())),
            }
        }
    }

    /// Feed the outcome of the last issued command.
    pub fn on_event(&mut self, event: Event) -> Result<(), MachineError> {
        match (&self.state, event) {
            (State::AwaitTrain, Event::TrainDone(rec)) => {
                // ADR ≥ A; pad 25% for dispersion noise (§III footnote 3).
                let rmax0 = match rec.dispersion_rate() {
                    Some(adr) => (adr * 1.25).min(self.ceiling),
                    None => self.ceiling,
                };
                self.init_search(rmax0);
                self.set_state(State::FleetHead);
                Ok(())
            }
            (State::AwaitStream, Event::StreamDone(rec)) => {
                self.absorb_stream(&rec);
                self.set_state(State::NeedIdle);
                Ok(())
            }
            (State::AwaitStream, Event::StreamLost) => {
                // A stream that produced no record is a fully lost stream.
                let fleet = self.fleet.as_mut().expect("fleet in progress");
                fleet.losses.push(1.0);
                fleet.classes.push(StreamClass::Unusable);
                let sent = fleet.proto.count;
                self.trace.push(TraceEvent::Stream {
                    id: u64::from(self.stream_id - 1),
                    sent,
                    received: 0,
                    verdict: StreamClass::Unusable.name(),
                });
                self.set_state(State::NeedIdle);
                Ok(())
            }
            (State::AwaitTick, Event::Tick(_now)) => {
                let fleet = self.fleet.as_ref().expect("fleet in progress");
                // Early abort: one stream with excessive loss kills the
                // fleet without sending the rest (§IV).
                let aborted = fleet
                    .losses
                    .last()
                    .is_some_and(|&l| l > self.cfg.loss_abort_stream);
                if aborted || fleet.losses.len() as u32 >= self.cfg.fleet_len {
                    self.close_fleet();
                    self.set_state(State::FleetHead);
                } else {
                    self.set_state(State::NextStream);
                }
                Ok(())
            }
            (state, event) => Err(MachineError::UnexpectedEvent {
                event: event.name(),
                state: state.name(),
            }),
        }
    }

    fn init_search(&mut self, rmax0: Rate) {
        self.search = Some(RateSearch::new(
            rmax0,
            self.cfg.resolution,
            self.cfg.grey_resolution,
            Some(self.ceiling),
        ));
    }

    /// Record a completed stream into the current fleet: loss accounting,
    /// sender-spacing validation, and trend classification.
    fn absorb_stream(&mut self, rec: &StreamRecord) {
        let fleet = self.fleet.as_mut().expect("fleet in progress");
        fleet.losses.push(rec.loss_fraction());
        // Use the per-stream request the driver saw: only `stream_id`
        // differs from the prototype, and validation ignores it.
        let req = fleet.proto;
        let spacing = crate::validation::check_spacing(rec, &req, self.cfg.spacing_tolerance);
        let class =
            if !crate::validation::spacing_acceptable(&spacing, self.cfg.spacing_max_violations) {
                // A stream whose sender could not hold the nominal spacing did
                // not probe at its nominal rate: discard it (§IV).
                StreamClass::Unusable
            } else {
                crate::trend::classify_stream(rec, &self.cfg)
            };
        fleet.classes.push(class);
        self.trace.push(TraceEvent::Stream {
            id: u64::from(self.stream_id - 1),
            sent: rec.sent,
            received: rec.samples.len() as u32,
            verdict: class.name(),
        });
    }

    /// Classify the finished fleet and record its verdict in the search.
    fn close_fleet(&mut self) {
        let fleet = self.fleet.take().expect("fleet in progress");
        let outcome = classify_fleet(&fleet.classes, &fleet.losses, &self.cfg);
        self.trace.push(TraceEvent::FleetVerdict {
            rate_bps: fleet.rate.bps().round() as u64,
            streams: fleet.classes.len() as u32,
            verdict: outcome.name(),
        });
        self.fleets.push(FleetTrace {
            rate: fleet.rate,
            stream_classes: fleet.classes,
            losses: fleet.losses,
            outcome,
        });
        self.search
            .as_mut()
            .expect("search initialized")
            .record(fleet.rate, outcome);
    }

    /// Assemble the final estimate and become terminal.
    fn finish(&mut self) {
        let search = self.search.as_ref().expect("search initialized");
        let (low, high) = search.bounds();
        let termination = if self.budget_exhausted {
            Termination::FleetBudget
        } else if search.saturated_at_ceiling() {
            Termination::TransportCeiling
        } else if search.grey_bounds().is_some() {
            Termination::GreyResolution
        } else {
            Termination::Resolution
        };
        let grey = search.grey_bounds();
        let fleets = self.fleets.len() as u32;
        let est = Estimate {
            low,
            high,
            grey,
            termination,
            fleets: std::mem::take(&mut self.fleets),
            elapsed: TimeNs::ZERO,
        };
        self.set_state(State::Done(Box::new(est)));
        self.trace.push(TraceEvent::SessionDone {
            low_bps: low.bps().round() as u64,
            high_bps: high.bps().round() as u64,
            termination: termination.name(),
            fleets,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> SessionMachine {
        SessionMachine::new(SlopsConfig::default(), TimeNs::from_millis(10), None).unwrap()
    }

    fn flat_record(req: &StreamRequest) -> StreamRecord {
        StreamRecord {
            sent: req.count,
            samples: (0..req.count)
                .map(|i| crate::transport::PacketSample {
                    idx: i,
                    send_offset: req.period * i as u64,
                    owd_ns: 1_000,
                })
                .collect(),
        }
    }

    fn ramp_record(req: &StreamRequest) -> StreamRecord {
        StreamRecord {
            sent: req.count,
            samples: (0..req.count)
                .map(|i| crate::transport::PacketSample {
                    idx: i,
                    send_offset: req.period * i as u64,
                    owd_ns: 1_000 + 10_000 * i as i64,
                })
                .collect(),
        }
    }

    fn train_record() -> TrainRecord {
        TrainRecord {
            sent: 48,
            received: 48,
            size: 1500,
            first_recv: TimeNs::ZERO,
            // 47 * 1500 B * 8 / 9.4ms ≈ 60 Mb/s ADR
            last_recv: TimeNs::from_micros(9_400),
        }
    }

    /// Drive the machine by hand against a perfect 40 Mb/s path.
    #[test]
    fn hand_stepped_session_brackets_oracle() {
        let mut m = machine();
        let mut polls = 0;
        let est = loop {
            polls += 1;
            assert!(polls < 100_000, "machine does not terminate");
            match m.poll().expect("machine never pends in this loop") {
                Command::SendTrain { .. } => {
                    m.on_event(Event::TrainDone(train_record())).unwrap();
                }
                Command::SendStream(req) => {
                    let rec = if req.actual_rate().mbps() > 40.0 {
                        ramp_record(&req)
                    } else {
                        flat_record(&req)
                    };
                    m.on_event(Event::StreamDone(rec)).unwrap();
                }
                Command::Idle(d) => {
                    assert!(d >= TimeNs::from_millis(10), "pacing below RTT");
                    m.on_event(Event::Tick(TimeNs::ZERO)).unwrap();
                }
                Command::Finish(est) => break *est,
            }
        };
        assert!(est.low.mbps() <= 40.0 && 40.0 <= est.high.mbps() + 1.0);
        assert_eq!(est.termination, Termination::Resolution);
        assert!(m.is_finished());
        assert!(m.estimate().is_some());
    }

    /// `PHASE_NAMES` is the published vocabulary of `Phase` trace labels:
    /// every transition a full session mints must use a listed name, and
    /// a full session visits every listed name.
    #[test]
    fn phase_names_pin_the_trace_vocabulary() {
        let mut m = machine();
        let mut trace = Vec::new();
        loop {
            let cmd = m.poll().expect("machine never pends in this loop");
            trace.extend(m.take_trace());
            let done = matches!(cmd, Command::Finish(_));
            if !done {
                let ev = match cmd {
                    Command::SendTrain { .. } => Event::TrainDone(train_record()),
                    Command::SendStream(req) => {
                        Event::StreamDone(if req.actual_rate().mbps() > 40.0 {
                            ramp_record(&req)
                        } else {
                            flat_record(&req)
                        })
                    }
                    Command::Idle(_) => Event::Tick(TimeNs::ZERO),
                    Command::Finish(_) => unreachable!(),
                };
                m.on_event(ev).unwrap();
                trace.extend(m.take_trace());
            } else {
                break;
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for e in &trace {
            if let TraceEvent::Phase { from, to } = e {
                assert!(PHASE_NAMES.contains(from), "unlisted phase {from:?}");
                assert!(PHASE_NAMES.contains(to), "unlisted phase {to:?}");
                seen.insert(*to);
            }
        }
        seen.insert("Start"); // the initial state is transitioned from, not to
        for name in PHASE_NAMES {
            assert!(seen.contains(name), "phase {name:?} never visited");
        }
    }

    #[test]
    fn poll_is_none_while_awaiting_an_event() {
        let mut m = machine();
        assert!(matches!(m.poll(), Some(Command::SendTrain { .. })));
        assert!(m.poll().is_none(), "second poll must pend");
        assert!(m.poll().is_none());
        m.on_event(Event::TrainDone(train_record())).unwrap();
        assert!(matches!(m.poll(), Some(Command::SendStream(_))));
        assert!(m.poll().is_none());
    }

    #[test]
    fn finish_is_idempotent() {
        let mut cfg = SlopsConfig::default();
        cfg.max_fleets = 0; // finish immediately after initialization
        cfg.initial = InitialRate::FixedMax(Rate::from_mbps(100.0));
        let mut m = SessionMachine::new(cfg, TimeNs::from_millis(1), None).unwrap();
        let Some(Command::Finish(a)) = m.poll() else {
            panic!("expected immediate finish");
        };
        let Some(Command::Finish(b)) = m.poll() else {
            panic!("finish must repeat");
        };
        assert_eq!(a.termination, b.termination);
        assert_eq!(a.termination, Termination::FleetBudget);
    }

    #[test]
    fn stream_done_while_idle_is_rejected() {
        let mut m = machine();
        // Nothing issued yet: every event is illegal.
        let err = m.on_event(Event::StreamDone(StreamRecord {
            sent: 0,
            samples: vec![],
        }));
        assert_eq!(
            err,
            Err(MachineError::UnexpectedEvent {
                event: "StreamDone",
                state: "Start",
            })
        );
        // Issue the train; a Tick is still illegal.
        assert!(matches!(m.poll(), Some(Command::SendTrain { .. })));
        let err = m.on_event(Event::Tick(TimeNs::ZERO));
        assert_eq!(
            err,
            Err(MachineError::UnexpectedEvent {
                event: "Tick",
                state: "AwaitTrain",
            })
        );
        // The machine state survives illegal events.
        m.on_event(Event::TrainDone(train_record())).unwrap();
        assert!(matches!(m.poll(), Some(Command::SendStream(_))));
    }

    #[test]
    fn train_done_after_finish_is_rejected() {
        let mut cfg = SlopsConfig::default();
        cfg.max_fleets = 0;
        cfg.initial = InitialRate::FixedMax(Rate::from_mbps(100.0));
        let mut m = SessionMachine::new(cfg, TimeNs::from_millis(1), None).unwrap();
        assert!(matches!(m.poll(), Some(Command::Finish(_))));
        let err = m.on_event(Event::TrainDone(train_record()));
        assert_eq!(
            err,
            Err(MachineError::UnexpectedEvent {
                event: "TrainDone",
                state: "Done",
            })
        );
    }

    #[test]
    fn stream_lost_counts_as_total_loss_and_aborts_the_fleet() {
        let mut m = machine();
        assert!(matches!(m.poll(), Some(Command::SendTrain { .. })));
        m.on_event(Event::TrainDone(train_record())).unwrap();
        let Some(Command::SendStream(_)) = m.poll() else {
            panic!("expected first stream");
        };
        m.on_event(Event::StreamLost).unwrap();
        // The pacing idle still happens after a lost stream.
        let Some(Command::Idle(_)) = m.poll() else {
            panic!("expected pacing idle");
        };
        m.on_event(Event::Tick(TimeNs::ZERO)).unwrap();
        // The fleet aborted after one stream: its trace is recorded and the
        // next command belongs to a new (lower-rate) fleet.
        assert_eq!(m.fleets_so_far().len(), 1);
        assert_eq!(
            m.fleets_so_far()[0].outcome,
            crate::fleet::FleetOutcome::AbortedLossy
        );
        assert_eq!(m.fleets_so_far()[0].losses, vec![1.0]);
    }

    #[test]
    fn bad_config_is_rejected_at_construction() {
        let mut cfg = SlopsConfig::default();
        cfg.fleet_fraction = 0.1;
        let err = SessionMachine::new(cfg, TimeNs::from_millis(1), None).unwrap_err();
        assert!(matches!(err, SlopsError::BadConfig(_)));
    }

    #[test]
    fn fixed_max_skips_the_train() {
        let mut cfg = SlopsConfig::default();
        cfg.initial = InitialRate::FixedMax(Rate::from_mbps(80.0));
        let mut m = SessionMachine::new(cfg, TimeNs::from_millis(1), None).unwrap();
        // First command is already a stream, at half the fixed bound.
        let Some(Command::SendStream(req)) = m.poll() else {
            panic!("expected a stream command");
        };
        assert!((req.actual_rate().mbps() - 40.0).abs() < 0.5);
    }

    #[test]
    fn transport_ceiling_caps_the_search() {
        let mut m = SessionMachine::new(
            SlopsConfig::default(),
            TimeNs::from_millis(1),
            Some(Rate::from_mbps(50.0)),
        )
        .unwrap();
        assert!(matches!(m.poll(), Some(Command::SendTrain { .. })));
        // A huge ADR is clamped to the 50 Mb/s transport ceiling.
        let rec = TrainRecord {
            sent: 48,
            received: 48,
            size: 1500,
            first_recv: TimeNs::ZERO,
            last_recv: TimeNs::from_micros(1_000), // ≈ 564 Mb/s
        };
        m.on_event(Event::TrainDone(rec)).unwrap();
        let Some(Command::SendStream(req)) = m.poll() else {
            panic!("expected a stream command");
        };
        assert!(
            req.actual_rate().mbps() <= 25.5,
            "first probe above ceiling/2"
        );
    }
}
