//! Parallel batch execution of measurement sessions.
//!
//! The sans-IO split makes a session cheap to instantiate, so large
//! {scenario × seed × config} grids — the paper's 50-run-per-point figures,
//! accuracy sweeps, ablations — become embarrassingly parallel. This module
//! provides the batch layer:
//!
//! * [`run_parallel`] — the primitive: execute a vector of independent
//!   jobs on scoped worker threads. Workers self-schedule off a shared
//!   atomic cursor, so long jobs (a 90 %-utilization path) and short jobs
//!   (a light path that converges in six fleets) balance automatically,
//!   like a work-stealing pool with a single global deque.
//! * [`SessionJob`] / [`run_sessions`] — the measurement-shaped wrapper:
//!   each job owns a [`SlopsConfig`] and a transport factory; the runner
//!   builds the transport *on the worker thread* (topology construction
//!   and warm-up are a large share of a simulated run) and collects an
//!   [`Outcome`] with the estimate and per-session metrics.
//!
//! Results always come back in job order, whatever order the workers
//! finished in, so grids stay deterministic modulo wall-clock metrics.
//!
//! ```
//! use slops::runner::{run_sessions, SessionJob};
//! use slops::testutil::OracleTransport;
//! use slops::SlopsConfig;
//! use units::Rate;
//!
//! let jobs: Vec<SessionJob> = (0..8)
//!     .map(|seed| SessionJob {
//!         label: format!("oracle-seed{seed}"),
//!         cfg: SlopsConfig::default(),
//!         transport: Box::new(move || {
//!             Box::new(OracleTransport::new(Rate::from_mbps(40.0), seed))
//!         }),
//!     })
//!     .collect();
//! let outcomes = run_sessions(jobs, 0); // 0 = one worker per CPU
//! assert_eq!(outcomes.len(), 8);
//! for o in &outcomes {
//!     let est = o.estimate.as_ref().unwrap();
//!     assert!(est.low.mbps() <= 40.0 && 40.0 <= est.high.mbps() + 1.0);
//! }
//! ```

use crate::config::SlopsConfig;
use crate::error::SlopsError;
use crate::session::{Estimate, Session};
use crate::transport::ProbeTransport;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of workers to use: `threads`, or one per available CPU when
/// `threads == 0`.
fn effective_threads(threads: usize, jobs: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    t.clamp(1, jobs.max(1))
}

/// Execute `jobs` concurrently on scoped threads and return their results
/// **in job order**. Each job receives its own index. `threads == 0` uses
/// one worker per available CPU; the worker count never exceeds the job
/// count. A panicking job propagates after all workers have joined.
pub fn run_parallel<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce(usize) -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = effective_threads(threads, n);
    if threads == 1 {
        return jobs.into_iter().enumerate().map(|(i, f)| f(i)).collect();
    }
    // Self-scheduling: each worker claims the next unclaimed job. The
    // mutexes are uncontended (every slot is touched by exactly one
    // worker); they exist to hand owned jobs/results across threads
    // without unsafe code.
    let cursor = AtomicUsize::new(0);
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i]
                    .lock()
                    .expect("job mutex poisoned")
                    .take()
                    .expect("job claimed twice");
                let out = job(i);
                *results[i].lock().expect("result mutex poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result mutex poisoned")
                .expect("worker exited without storing its result")
        })
        .collect()
}

/// A transport factory: builds the probe transport on the worker thread.
pub type TransportFactory = Box<dyn FnOnce() -> Box<dyn ProbeTransport> + Send>;

/// One cell of a measurement grid.
pub struct SessionJob {
    /// Human-readable tag carried into the [`Outcome`] (e.g.
    /// `"fig05/u=0.6/run3"`).
    pub label: String,
    /// Session configuration for this cell.
    pub cfg: SlopsConfig,
    /// Builds the transport (topology, warm-up, seeding) on the worker.
    pub transport: TransportFactory,
}

impl SessionJob {
    /// Convenience constructor.
    pub fn new<T, F>(label: impl Into<String>, cfg: SlopsConfig, make: F) -> SessionJob
    where
        T: ProbeTransport + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        SessionJob {
            label: label.into(),
            cfg,
            transport: Box::new(move || Box::new(make())),
        }
    }
}

/// The result of one grid cell.
pub struct Outcome {
    /// The job's label.
    pub label: String,
    /// The measurement result.
    pub estimate: Result<Estimate, SlopsError>,
    /// Wall-clock time the cell took on its worker (setup + session).
    pub wall: Duration,
}

impl Outcome {
    /// The estimate, or `None` if the session failed. Prefer this over
    /// [`Outcome::expect_estimate`] in grid code that should survive (and
    /// report) a lost session instead of tearing the whole batch down.
    pub fn estimate(&self) -> Option<&Estimate> {
        self.estimate.as_ref().ok()
    }

    /// The failure, if the session was lost.
    pub fn error(&self) -> Option<&SlopsError> {
        self.estimate.as_ref().err()
    }

    /// The estimate, panicking with the label on failure (grid code that
    /// treats failures as fatal).
    pub fn expect_estimate(&self) -> &Estimate {
        match &self.estimate {
            Ok(e) => e,
            Err(e) => panic!("session {} failed: {e}", self.label),
        }
    }
}

/// Run a grid of measurement sessions concurrently; results in job order.
/// `threads == 0` uses one worker per available CPU.
pub fn run_sessions(jobs: Vec<SessionJob>, threads: usize) -> Vec<Outcome> {
    let closures: Vec<_> = jobs
        .into_iter()
        .map(|job| {
            move |_idx: usize| {
                let t0 = Instant::now();
                let mut transport = (job.transport)();
                let estimate = Session::new(job.cfg).run(transport.as_mut());
                Outcome {
                    label: job.label,
                    estimate,
                    wall: t0.elapsed(),
                }
            }
        })
        .collect();
    run_parallel(closures, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::OracleTransport;
    use units::Rate;

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<_> = (0..32)
            .map(|i| {
                move |idx: usize| {
                    assert_eq!(idx, i);
                    // Stagger so completion order differs from job order.
                    if i % 3 == 0 {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    i * 10
                }
            })
            .collect();
        let out = run_parallel(jobs, 8);
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_and_single_thread_work() {
        let out: Vec<u32> = run_parallel(Vec::<fn(usize) -> u32>::new(), 4);
        assert!(out.is_empty());
        let out = run_parallel(vec![|_i: usize| 7u32], 1);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn parallel_grid_matches_serial_grid() {
        let grid = |threads: usize| {
            let jobs: Vec<SessionJob> = (0..6)
                .map(|seed| {
                    SessionJob::new(format!("seed{seed}"), SlopsConfig::default(), move || {
                        OracleTransport::new(Rate::from_mbps(30.0 + seed as f64), seed)
                    })
                })
                .collect();
            run_sessions(jobs, threads)
                .into_iter()
                .map(|o| o.estimate.unwrap())
                .collect::<Vec<_>>()
        };
        let serial = grid(1);
        let parallel = grid(4);
        assert_eq!(serial, parallel, "parallelism changed the measurements");
        for (i, est) in serial.iter().enumerate() {
            let a = 30.0 + i as f64;
            assert!(est.low.mbps() <= a + 1.0 && a - 1.0 <= est.high.mbps());
        }
    }

    #[test]
    fn failures_are_reported_per_job() {
        let mut bad = SlopsConfig::default();
        bad.fleet_fraction = 0.2;
        let jobs = vec![
            SessionJob::new("good", SlopsConfig::default(), || {
                OracleTransport::new(Rate::from_mbps(20.0), 1)
            }),
            SessionJob::new("bad", bad, || {
                OracleTransport::new(Rate::from_mbps(20.0), 2)
            }),
        ];
        let out = run_sessions(jobs, 2);
        assert!(out[0].estimate.is_ok());
        assert!(out[1].estimate.is_err());
        assert_eq!(out[1].label, "bad");
        // The non-panicking accessors see the same outcome.
        assert!(out[0].estimate().is_some() && out[0].error().is_none());
        assert!(out[1].estimate().is_none() && out[1].error().is_some());
    }
}
