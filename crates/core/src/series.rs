//! Reusable avail-bw time-series aggregation (§VI dynamics).
//!
//! A monitoring deployment — [`crate::monitor::monitor_until`] on one path,
//! or the `monitord` fleet daemon on many — produces a sequence of
//! `[R_min, R_max]` ranges. This module holds the aggregation that every
//! consumer of such a sequence needs, independent of how the samples are
//! stored (a plain `Vec`, a bounded ring buffer, ...):
//!
//! * [`RangeSample`] — one measurement reduced to its range (the per-fleet
//!   trace dropped, so a long-running store stays small);
//! * [`window_average`] — the duration-weighted midpoint average of eq. 11,
//!   comparable to an MRTG reading;
//! * [`windowed_ranges`] — tumbling-window aggregation: per window the
//!   sample count, the range envelope, and the eq. 11 average;
//! * [`change_points`] — the §VI-motivated change flag: consecutive
//!   windowed ranges that stop overlapping signal an avail-bw shift larger
//!   than the measurement variation;
//! * [`SeriesStats`] — range-width and relative-variation (eq. 12)
//!   statistics over a whole series, the quantities behind Figs. 11–14.

use crate::metrics::relative_variation;
use crate::session::Estimate;
use units::stats::percentile;
use units::{Rate, TimeNs};

/// One avail-bw measurement reduced to its reported range.
///
/// This is the compact form a long-running monitor retains: the start
/// instant and duration (the weights of eq. 11) and the `[low, high]`
/// range, without the per-fleet trace an [`Estimate`] carries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RangeSample {
    /// Transport/simulation time when the measurement started.
    pub started: TimeNs,
    /// Measurement duration.
    pub duration: TimeNs,
    /// Lower end of the reported range.
    pub low: Rate,
    /// Upper end of the reported range.
    pub high: Rate,
}

impl RangeSample {
    /// Reduce a finished [`Estimate`] to its range, stamped with the
    /// instant the measurement started.
    pub fn from_estimate(started: TimeNs, est: &Estimate) -> RangeSample {
        RangeSample {
            started,
            duration: est.elapsed,
            low: est.low,
            high: est.high,
        }
    }

    /// Midpoint of the range.
    pub fn midpoint(&self) -> Rate {
        self.low.midpoint(self.high)
    }

    /// Relative variation ρ of the range (eq. 12).
    pub fn relative_variation(&self) -> f64 {
        relative_variation(self.low, self.high)
    }

    /// The instant the measurement finished.
    pub fn end(&self) -> TimeNs {
        self.started + self.duration
    }
}

/// Duration-weighted average of the range midpoints of the samples that
/// *started* in `[from, to)` (eq. 11) — the number comparable to an MRTG
/// window. [`Rate::ZERO`] when the window holds no (positive-duration)
/// samples.
pub fn window_average<'a, I>(samples: I, from: TimeNs, to: TimeNs) -> Rate
where
    I: IntoIterator<Item = &'a RangeSample>,
{
    let mut weight = 0.0;
    let mut sum = 0.0;
    for s in samples {
        if s.started >= from && s.started < to {
            let w = s.duration.secs_f64();
            weight += w;
            sum += w * s.midpoint().bps();
        }
    }
    if weight <= 0.0 {
        Rate::ZERO
    } else {
        Rate::from_bps(sum / weight)
    }
}

/// The widest range observed: `[min low, max high]` — the avail-bw
/// variation envelope of the series. `None` for an empty series.
pub fn envelope<'a, I>(samples: I) -> Option<(Rate, Rate)>
where
    I: IntoIterator<Item = &'a RangeSample>,
{
    let mut out: Option<(Rate, Rate)> = None;
    for s in samples {
        out = Some(match out {
            None => (s.low, s.high),
            Some((lo, hi)) => (lo.min(s.low), hi.max(s.high)),
        });
    }
    out
}

/// Do two avail-bw ranges overlap (shared closed-interval intersection)?
pub fn ranges_overlap(a: (Rate, Rate), b: (Rate, Rate)) -> bool {
    a.0.bps() <= b.1.bps() && b.0.bps() <= a.1.bps()
}

/// One tumbling window of an aggregated series.
#[derive(Clone, Copy, Debug)]
pub struct WindowedRange {
    /// Window start (inclusive).
    pub from: TimeNs,
    /// Window end (exclusive).
    pub to: TimeNs,
    /// Measurements that started inside the window.
    pub samples: usize,
    /// Envelope low over the window's samples.
    pub low: Rate,
    /// Envelope high over the window's samples.
    pub high: Rate,
    /// Duration-weighted midpoint average (eq. 11).
    pub average: Rate,
}

impl WindowedRange {
    /// The window's range as a pair.
    pub fn range(&self) -> (Rate, Rate) {
        (self.low, self.high)
    }
}

/// Aggregate `samples` (sorted by start time) into consecutive tumbling
/// windows of length `window`, the first window starting at `origin`.
/// Windows containing no samples are skipped; `window` must be non-zero.
pub fn windowed_ranges(
    samples: &[RangeSample],
    origin: TimeNs,
    window: TimeNs,
) -> Vec<WindowedRange> {
    assert!(!window.is_zero(), "aggregation window must be non-zero");
    let mut out = Vec::new();
    let mut i = 0;
    while i < samples.len() {
        let s = &samples[i];
        if s.started < origin {
            i += 1;
            continue;
        }
        // The window this sample falls into.
        let k = (s.started - origin).as_nanos() / window.as_nanos();
        let from = origin + window * k;
        let to = from + window;
        let mut j = i;
        while j < samples.len() && samples[j].started < to {
            j += 1;
        }
        let slice = &samples[i..j];
        let (low, high) = envelope(slice).expect("window slice is non-empty");
        out.push(WindowedRange {
            from,
            to,
            samples: slice.len(),
            low,
            high,
            average: window_average(slice, from, to),
        });
        i = j;
    }
    out
}

/// Indices `i > 0` of windows whose range does **not** overlap the
/// preceding window's range — the simple change-point flag: the avail-bw
/// moved by more than the measured variation between two windows.
pub fn change_points(windows: &[WindowedRange]) -> Vec<usize> {
    windows
        .windows(2)
        .enumerate()
        .filter(|(_, w)| !ranges_overlap(w[0].range(), w[1].range()))
        .map(|(i, _)| i + 1)
        .collect()
}

/// Range-width and relative-variation statistics of a series (§VI).
#[derive(Clone, Copy, Debug, Default)]
pub struct SeriesStats {
    /// Number of samples.
    pub count: usize,
    /// Mean range width `R_max − R_min`.
    pub mean_width: Rate,
    /// Mean range midpoint.
    pub mean_midpoint: Rate,
    /// Mean relative variation ρ (eq. 12).
    pub mean_rho: f64,
    /// 75th-percentile relative variation (the paper's Fig. 11 summary).
    pub p75_rho: f64,
}

impl SeriesStats {
    /// Compute the statistics; all-zero for an empty series.
    pub fn of<'a, I>(samples: I) -> SeriesStats
    where
        I: IntoIterator<Item = &'a RangeSample>,
    {
        let mut count = 0usize;
        let mut width = 0.0;
        let mut mid = 0.0;
        let mut rhos = Vec::new();
        for s in samples {
            count += 1;
            width += (s.high.bps() - s.low.bps()).max(0.0);
            mid += s.midpoint().bps();
            rhos.push(s.relative_variation());
        }
        if count == 0 {
            return SeriesStats::default();
        }
        let n = count as f64;
        SeriesStats {
            count,
            mean_width: Rate::from_bps(width / n),
            mean_midpoint: Rate::from_bps(mid / n),
            mean_rho: rhos.iter().sum::<f64>() / n,
            p75_rho: percentile(&rhos, 75.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(start_s: u64, dur_s: u64, lo: f64, hi: f64) -> RangeSample {
        RangeSample {
            started: TimeNs::from_secs(start_s),
            duration: TimeNs::from_secs(dur_s),
            low: Rate::from_mbps(lo),
            high: Rate::from_mbps(hi),
        }
    }

    #[test]
    fn window_average_weights_by_duration() {
        let s = [sample(0, 10, 2.0, 4.0), sample(10, 30, 6.0, 8.0)];
        // (10*3 + 30*7)/40 = 6
        let avg = window_average(&s, TimeNs::ZERO, TimeNs::from_secs(100));
        assert!((avg.mbps() - 6.0).abs() < 1e-9);
        // Empty window, empty series, zero-duration samples.
        assert!(window_average(&s, TimeNs::from_secs(50), TimeNs::from_secs(60)).is_zero());
        assert!(window_average([].iter(), TimeNs::ZERO, TimeNs::MAX).is_zero());
        let zero = [sample(0, 0, 2.0, 4.0)];
        assert!(window_average(&zero, TimeNs::ZERO, TimeNs::MAX).is_zero());
    }

    #[test]
    fn envelope_is_the_union() {
        let s = [sample(0, 1, 3.0, 5.0), sample(1, 1, 2.0, 4.0)];
        let (lo, hi) = envelope(&s).unwrap();
        assert_eq!(lo.mbps(), 2.0);
        assert_eq!(hi.mbps(), 5.0);
        assert!(envelope([].iter()).is_none());
    }

    #[test]
    fn overlap_is_closed_interval() {
        let r = |a: f64, b: f64| (Rate::from_mbps(a), Rate::from_mbps(b));
        assert!(ranges_overlap(r(2.0, 4.0), r(4.0, 6.0))); // touching counts
        assert!(ranges_overlap(r(2.0, 6.0), r(3.0, 4.0))); // containment
        assert!(!ranges_overlap(r(2.0, 3.0), r(5.0, 6.0)));
        assert!(!ranges_overlap(r(5.0, 6.0), r(2.0, 3.0)));
    }

    #[test]
    fn windowed_ranges_tumble_and_skip_empty() {
        let s = [
            sample(5, 2, 7.0, 9.0),
            sample(20, 2, 7.5, 8.5),
            // nothing in [30, 60)
            sample(65, 2, 3.0, 4.0),
            sample(80, 2, 3.5, 4.5),
        ];
        let w = windowed_ranges(&s, TimeNs::ZERO, TimeNs::from_secs(30));
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].from, TimeNs::ZERO);
        assert_eq!(w[0].samples, 2);
        assert_eq!(w[0].low.mbps(), 7.0);
        assert_eq!(w[0].high.mbps(), 9.0);
        assert_eq!(w[1].from, TimeNs::from_secs(60));
        assert_eq!(w[1].samples, 2);
        // The step from [7,9] to [3,4.5] is flagged.
        assert_eq!(change_points(&w), vec![1]);
    }

    #[test]
    fn stable_series_has_no_change_points() {
        let s: Vec<RangeSample> = (0..10).map(|i| sample(i * 10, 2, 3.8, 4.4)).collect();
        let w = windowed_ranges(&s, TimeNs::ZERO, TimeNs::from_secs(30));
        assert!(w.len() >= 3);
        assert!(change_points(&w).is_empty());
    }

    #[test]
    fn stats_summarize_widths_and_rho() {
        let s = [sample(0, 1, 3.0, 5.0), sample(1, 1, 3.0, 5.0)];
        let st = SeriesStats::of(&s);
        assert_eq!(st.count, 2);
        assert!((st.mean_width.mbps() - 2.0).abs() < 1e-9);
        assert!((st.mean_midpoint.mbps() - 4.0).abs() < 1e-9);
        assert!((st.mean_rho - 0.5).abs() < 1e-9);
        let empty = SeriesStats::of([].iter());
        assert_eq!(empty.count, 0);
        assert!(empty.mean_width.is_zero());
    }
}
