//! The probe transport abstraction.
//!
//! A [`ProbeTransport`] is anything that can emit a periodic UDP-like
//! packet stream toward a receiver and report back per-packet relative
//! one-way delays: the packet-level simulator (`simprobe` crate), real
//! sockets (`pathload-net` crate), or the synthetic oracle used in tests.
//!
//! Clock model: sender and receiver clocks need **not** be synchronized.
//! OWDs are *relative* (`recv_ts − send_ts`, different clocks) and may even
//! be negative; SLoPS only ever uses OWD differences (§IV "Clock and Timing
//! Issues"), and each stream lasts a few milliseconds, so skew within a
//! stream is negligible.

use crate::error::TransportError;
use crate::stream::StreamRequest;
use units::{Rate, TimeNs};

/// One received probe packet.
#[derive(Clone, Copy, Debug)]
pub struct PacketSample {
    /// Packet index within the stream, `0..K`.
    pub idx: u32,
    /// Actual send time relative to the first packet (sender clock). For a
    /// perfect sender this is `idx · T`; real senders may deviate (context
    /// switches), which the receiver uses for validation.
    pub send_offset: TimeNs,
    /// Relative one-way delay in nanoseconds (receiver clock minus sender
    /// clock; arbitrary constant offset allowed, hence signed).
    pub owd_ns: i64,
}

/// The receiver-side record of one periodic stream.
#[derive(Clone, Debug)]
pub struct StreamRecord {
    /// Number of packets sent (K).
    pub sent: u32,
    /// Received packets in increasing `idx` order (lost ones are absent).
    pub samples: Vec<PacketSample>,
}

impl StreamRecord {
    /// Fraction of the stream that was lost, in `[0, 1]`.
    pub fn loss_fraction(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        1.0 - self.samples.len() as f64 / self.sent as f64
    }

    /// The relative OWDs of the received packets, in arrival order.
    pub fn owds(&self) -> Vec<i64> {
        self.samples.iter().map(|s| s.owd_ns).collect()
    }
}

/// The receiver-side record of a back-to-back packet train.
#[derive(Clone, Copy, Debug)]
pub struct TrainRecord {
    /// Packets sent.
    pub sent: u32,
    /// Packets received.
    pub received: u32,
    /// Packet size in bytes.
    pub size: u32,
    /// Receiver timestamp of the first packet.
    pub first_recv: TimeNs,
    /// Receiver timestamp of the last packet.
    pub last_recv: TimeNs,
}

impl TrainRecord {
    /// Dispersion rate `(n−1)·L·8 / (t_last − t_first)` — the ADR estimate
    /// for long trains. `None` if fewer than 2 packets arrived.
    pub fn dispersion_rate(&self) -> Option<Rate> {
        if self.received < 2 || self.last_recv <= self.first_recv {
            return None;
        }
        let bits = (self.received as u64 - 1) * self.size as u64 * 8;
        Some(Rate::from_bps(
            bits as f64 / (self.last_recv - self.first_recv).secs_f64(),
        ))
    }
}

/// Anything that can carry SLoPS probes end to end.
pub trait ProbeTransport {
    /// Send one periodic stream and collect the receiver's record.
    ///
    /// The transport must pace packets at `req.period` as precisely as it
    /// can and report actual send offsets. Implementations block (or
    /// advance simulated time) until the stream outcome is known.
    fn send_stream(&mut self, req: &StreamRequest) -> Result<StreamRecord, TransportError>;

    /// Send a back-to-back packet train (for ADR initialization and the
    /// cprobe baseline).
    fn send_train(&mut self, len: u32, size: u32) -> Result<TrainRecord, TransportError>;

    /// Current round-trip-time estimate between the endpoints.
    fn rtt(&mut self) -> TimeNs;

    /// Let the path drain: wait (or advance simulated time) for `dur`.
    fn idle(&mut self, dur: TimeNs);

    /// Highest stream rate this transport can generate, if bounded.
    fn max_rate(&self) -> Option<Rate> {
        None
    }

    /// Time consumed on this transport so far (simulated clock for the
    /// simulator, wall clock for sockets). Used for latency reporting and
    /// the duration weights of eq. 11.
    fn elapsed(&self) -> TimeNs {
        TimeNs::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_fraction() {
        let rec = StreamRecord {
            sent: 10,
            samples: (0..8)
                .map(|i| PacketSample {
                    idx: i,
                    send_offset: TimeNs::ZERO,
                    owd_ns: 0,
                })
                .collect(),
        };
        assert!((rec.loss_fraction() - 0.2).abs() < 1e-12);
        let empty = StreamRecord {
            sent: 0,
            samples: vec![],
        };
        assert_eq!(empty.loss_fraction(), 0.0);
    }

    #[test]
    fn dispersion_rate_math() {
        let tr = TrainRecord {
            sent: 11,
            received: 11,
            size: 1500,
            first_recv: TimeNs::from_millis(0),
            last_recv: TimeNs::from_millis(12),
        };
        // 10 * 1500 * 8 bits / 12 ms = 10 Mb/s
        let r = tr.dispersion_rate().unwrap();
        assert!((r.mbps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn dispersion_rate_needs_two_packets() {
        let tr = TrainRecord {
            sent: 5,
            received: 1,
            size: 1500,
            first_recv: TimeNs::ZERO,
            last_recv: TimeNs::ZERO,
        };
        assert!(tr.dispersion_rate().is_none());
    }
}
