//! Rate-adjustment algorithm (§III-B eq. 7, refined in §IV "Rate
//! Adjustment Algorithm"): a binary search over rates that additionally
//! tracks a grey region.
//!
//! State: avail-bw bounds `R_min ≤ A ≤ R_max` and, once a grey verdict has
//! been seen, grey bounds `G_min ≤ G_max` with
//! `R_min ≤ G_min ≤ G_max ≤ R_max`. The next fleet rate is chosen halfway
//! into the widest unresolved band; the search terminates when
//!
//! * `R_max − R_min ≤ ω` (no grey region), or
//! * `R_max − G_max ≤ χ` **and** `G_min − R_min ≤ χ` (both avail-bw bounds
//!   within the grey resolution of the grey-region bounds).
//!
//! The reported range is `[R_min, R_max]`: at most ω wide without a grey
//! region, otherwise overestimating the grey-region width by at most 2χ
//! (§VI).

use crate::fleet::FleetOutcome;
use units::Rate;

/// The grey-region-aware bisection state machine.
#[derive(Clone, Debug)]
pub struct RateSearch {
    rmin: Rate,
    rmax: Rate,
    grey: Option<(Rate, Rate)>,
    omega: Rate,
    chi: Rate,
    /// Hard ceiling (transport's maximum generatable rate), if any.
    ceiling: Option<Rate>,
    /// Set when the search hit the ceiling while the path still looked
    /// under-loaded — the avail-bw is then only known to be ≥ the ceiling.
    saturated_at_ceiling: bool,
    /// True once any fleet voted "above": from then on `rmax` is a genuine
    /// upper bound and must never be widened.
    saw_above: bool,
}

impl RateSearch {
    /// Start a search over `[0, rmax0]` with resolutions ω and χ.
    pub fn new(rmax0: Rate, omega: Rate, chi: Rate, ceiling: Option<Rate>) -> RateSearch {
        assert!(rmax0.bps() > 0.0, "initial upper bound must be positive");
        assert!(omega.bps() > 0.0 && chi.bps() >= omega.bps());
        let rmax = match ceiling {
            Some(c) => rmax0.min(c),
            None => rmax0,
        };
        RateSearch {
            rmin: Rate::ZERO,
            rmax,
            grey: None,
            omega,
            chi,
            ceiling,
            saturated_at_ceiling: false,
            saw_above: false,
        }
    }

    /// Current avail-bw bounds `[R_min, R_max]`.
    pub fn bounds(&self) -> (Rate, Rate) {
        (self.rmin, self.rmax)
    }

    /// Current grey-region bounds, if a grey verdict has been recorded.
    pub fn grey_bounds(&self) -> Option<(Rate, Rate)> {
        self.grey
    }

    /// True if the search stopped because the transport could not probe
    /// faster, not because it bracketed the avail-bw.
    pub fn saturated_at_ceiling(&self) -> bool {
        self.saturated_at_ceiling
    }

    /// Record a fleet verdict at `rate` (the *actual* fleet rate).
    pub fn record(&mut self, rate: Rate, outcome: FleetOutcome) {
        match outcome {
            FleetOutcome::AboveAvailBw | FleetOutcome::AbortedLossy => {
                self.rmax = self.rmax.min(rate);
                self.saw_above = true;
            }
            FleetOutcome::BelowAvailBw => {
                self.rmin = self.rmin.max(rate);
                // If no fleet has ever voted "above", rmax is still just the
                // initial guess; a below-verdict near it means the true
                // avail-bw may exceed rmax. Widen (doubling) unless capped
                // by the transport ceiling.
                if !self.saw_above && rate.bps() >= self.rmax.bps() * 0.95 {
                    let widened = self.rmax * 2.0;
                    self.rmax = match self.ceiling {
                        Some(c) => {
                            if self.rmax.bps() >= c.bps() * 0.999 {
                                self.saturated_at_ceiling = true;
                                self.rmax
                            } else {
                                widened.min(c)
                            }
                        }
                        None => widened,
                    };
                }
            }
            FleetOutcome::Grey => {
                let (gmin, gmax) = match self.grey {
                    Some((lo, hi)) => (lo.min(rate), hi.max(rate)),
                    None => (rate, rate),
                };
                self.grey = Some((gmin, gmax));
            }
        }
        self.normalize();
    }

    /// Keep `rmin ≤ gmin ≤ gmax ≤ rmax` under noisy verdicts.
    fn normalize(&mut self) {
        if let Some((gmin, gmax)) = self.grey {
            let gmin = gmin.max(self.rmin);
            let gmax = gmax.min(self.rmax);
            self.grey = if gmin.bps() <= gmax.bps() {
                Some((gmin, gmax))
            } else {
                None // verdicts invalidated the grey region; drop it
            };
        }
        // A noisy Below above an Above can invert the bounds; restore a
        // consistent (degenerate) bracket at the midpoint.
        if self.rmin.bps() > self.rmax.bps() {
            let mid = self.rmin.midpoint(self.rmax);
            self.rmin = mid;
            self.rmax = mid;
        }
    }

    /// The rate the next fleet should probe, or `None` when the search has
    /// terminated.
    pub fn next_rate(&self) -> Option<Rate> {
        if self.saturated_at_ceiling {
            return None;
        }
        match self.grey {
            None => {
                if (self.rmax - self.rmin).bps() <= self.omega.bps() {
                    None
                } else {
                    Some(self.rmin.midpoint(self.rmax))
                }
            }
            Some((gmin, gmax)) => {
                if (self.rmax - gmax).bps() > self.chi.bps() {
                    Some(gmax.midpoint(self.rmax))
                } else if (gmin - self.rmin).bps() > self.chi.bps() {
                    Some(self.rmin.midpoint(gmin))
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(x: f64) -> Rate {
        Rate::from_mbps(x)
    }

    /// Drive the search against a perfect oracle with fixed avail-bw.
    fn run_oracle(a_mbps: f64, rmax0: f64) -> (RateSearch, usize) {
        let mut s = RateSearch::new(mbps(rmax0), mbps(1.0), mbps(1.5), Some(mbps(1000.0)));
        let mut fleets = 0;
        while let Some(r) = s.next_rate() {
            fleets += 1;
            assert!(fleets < 64, "search did not terminate");
            let outcome = if r.mbps() > a_mbps {
                FleetOutcome::AboveAvailBw
            } else {
                FleetOutcome::BelowAvailBw
            };
            s.record(r, outcome);
        }
        (s, fleets)
    }

    #[test]
    fn converges_to_fixed_avail_bw() {
        for a in [3.3, 10.0, 47.9, 74.0] {
            let (s, fleets) = run_oracle(a, 120.0);
            let (lo, hi) = s.bounds();
            assert!(
                lo.mbps() <= a && a <= hi.mbps(),
                "A={a} not in [{lo}, {hi}]"
            );
            assert!((hi - lo).mbps() <= 1.0 + 1e-9, "range too wide for A={a}");
            // Binary search over 120 Mb/s to 1 Mb/s resolution: ≈ log2(120) fleets.
            assert!(fleets <= 9, "too many fleets: {fleets}");
        }
    }

    #[test]
    fn expands_upper_bound_when_avail_bw_exceeds_initial_guess() {
        let (s, _) = run_oracle(90.0, 20.0); // rmax0 far below A
        let (lo, hi) = s.bounds();
        assert!(lo.mbps() <= 90.0 && 90.0 <= hi.mbps(), "[{lo}, {hi}]");
        assert!(!s.saturated_at_ceiling());
    }

    #[test]
    fn reports_saturation_at_transport_ceiling() {
        let mut s = RateSearch::new(mbps(100.0), mbps(1.0), mbps(1.5), Some(mbps(100.0)));
        let mut guard = 0;
        while let Some(r) = s.next_rate() {
            s.record(r, FleetOutcome::BelowAvailBw); // path never saturates
            guard += 1;
            assert!(guard < 50);
        }
        assert!(s.saturated_at_ceiling());
        assert!(s.bounds().1.mbps() <= 100.0 + 1e-9);
    }

    #[test]
    fn grey_region_narrows_from_both_sides() {
        // Oracle: avail-bw varies in [38, 42] — grey verdicts inside,
        // crisp verdicts outside.
        let mut s = RateSearch::new(mbps(120.0), mbps(1.0), mbps(1.5), None);
        let mut fleets = 0;
        while let Some(r) = s.next_rate() {
            fleets += 1;
            assert!(fleets < 64, "no termination");
            let v = r.mbps();
            let outcome = if v > 42.0 {
                FleetOutcome::AboveAvailBw
            } else if v < 38.0 {
                FleetOutcome::BelowAvailBw
            } else {
                FleetOutcome::Grey
            };
            s.record(r, outcome);
        }
        let (lo, hi) = s.bounds();
        let (gmin, gmax) = s.grey_bounds().expect("grey region detected");
        assert!(gmin.mbps() >= 38.0 - 1e-9 && gmax.mbps() <= 42.0 + 1e-9);
        // Both bounds within χ of the grey bounds.
        assert!((gmin - lo).mbps() <= 1.5 + 1e-9);
        assert!((hi - gmax).mbps() <= 1.5 + 1e-9);
        // Report width ≤ grey width + 2χ.
        assert!((hi - lo).mbps() <= (gmax - gmin).mbps() + 3.0 + 1e-9);
        // And the true variation range is inside the report.
        assert!(lo.mbps() <= 38.0 && hi.mbps() >= 42.0);
    }

    #[test]
    fn aborted_fleet_lowers_rmax() {
        let mut s = RateSearch::new(mbps(100.0), mbps(1.0), mbps(1.5), None);
        let r = s.next_rate().unwrap();
        assert!((r.mbps() - 50.0).abs() < 1e-9);
        s.record(r, FleetOutcome::AbortedLossy);
        assert!((s.bounds().1.mbps() - 50.0).abs() < 1e-9);
        let r2 = s.next_rate().unwrap();
        assert!(r2.bps() < r.bps());
    }

    #[test]
    fn contradicted_grey_region_is_dropped_or_clamped() {
        let mut s = RateSearch::new(mbps(100.0), mbps(1.0), mbps(1.5), None);
        s.record(mbps(50.0), FleetOutcome::Grey);
        // The Above verdict at 40 contradicts the degenerate grey region
        // at 50: it lies entirely above the new rmax = 40 and must be
        // dropped (or, if partially overlapping in other scenarios,
        // clamped inside the bounds).
        s.record(mbps(40.0), FleetOutcome::AboveAvailBw);
        match s.grey_bounds() {
            None => {}
            Some((gmin, gmax)) => {
                assert!(gmax.mbps() <= 40.0 + 1e-9);
                assert!(gmin.mbps() <= gmax.mbps());
            }
        }
        // And the search still makes progress.
        assert!(s.next_rate().is_some());
    }

    #[test]
    fn inverted_bounds_recover() {
        let mut s = RateSearch::new(mbps(100.0), mbps(1.0), mbps(1.5), None);
        s.record(mbps(30.0), FleetOutcome::AboveAvailBw); // rmax = 30
        s.record(mbps(60.0), FleetOutcome::BelowAvailBw); // contradicts: rmin = 60
        let (lo, hi) = s.bounds();
        assert!(lo.bps() <= hi.bps());
    }
}
