//! Fleet-level classification (§IV "Fleets of Streams" and "Grey Region").
//!
//! Pathload never decides `R ≷ A` from one stream: it sends a fleet of N
//! streams at the same rate and votes. If at least `f·N` streams are type I
//! the fleet rate is above the avail-bw; if at least `f·N` are type N it is
//! below; otherwise the avail-bw fluctuated around the rate during the
//! fleet — the **grey region**. Loss rules (§IV): one stream with excessive
//! loss (>10 %), or moderate loss (>3 %) on too many streams, aborts the
//! fleet, which is then treated as "rate too high".

use crate::config::SlopsConfig;
use crate::trend::StreamClass;
use units::Rate;

/// Verdict of one fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetOutcome {
    /// ≥ f·N streams increasing: the fleet rate exceeds the avail-bw.
    AboveAvailBw,
    /// ≥ f·N streams non-increasing: the fleet rate is below the avail-bw.
    BelowAvailBw,
    /// Neither: the avail-bw varied around the fleet rate (grey region).
    Grey,
    /// Aborted due to losses; treated as rate-too-high with backoff.
    AbortedLossy,
}

impl FleetOutcome {
    /// Every verdict, for pre-sizing label vocabularies.
    pub const ALL: [FleetOutcome; 4] = [
        FleetOutcome::AboveAvailBw,
        FleetOutcome::BelowAvailBw,
        FleetOutcome::Grey,
        FleetOutcome::AbortedLossy,
    ];

    /// Stable snake_case name (trace events, JSONL, metric labels).
    pub fn name(self) -> &'static str {
        match self {
            FleetOutcome::AboveAvailBw => "above_avail_bw",
            FleetOutcome::BelowAvailBw => "below_avail_bw",
            FleetOutcome::Grey => "grey",
            FleetOutcome::AbortedLossy => "aborted_lossy",
        }
    }
}

/// Per-fleet record kept in the session trace (one per fleet).
#[derive(Clone, Debug, PartialEq)]
pub struct FleetTrace {
    /// The actual fleet rate (from the realized stream parameters).
    pub rate: Rate,
    /// Stream classifications, in send order.
    pub stream_classes: Vec<StreamClass>,
    /// Per-stream loss fractions.
    pub losses: Vec<f64>,
    /// The verdict.
    pub outcome: FleetOutcome,
}

/// Vote on a fleet given its per-stream classes and loss fractions.
pub fn classify_fleet(classes: &[StreamClass], losses: &[f64], cfg: &SlopsConfig) -> FleetOutcome {
    debug_assert_eq!(classes.len(), losses.len());
    // Loss rules first.
    if losses.iter().any(|&l| l > cfg.loss_abort_stream) {
        return FleetOutcome::AbortedLossy;
    }
    let moderate = losses.iter().filter(|&&l| l > cfg.loss_moderate).count();
    if (moderate as f64) > cfg.moderate_fraction * classes.len() as f64 {
        return FleetOutcome::AbortedLossy;
    }
    let inc = classes
        .iter()
        .filter(|c| matches!(c, StreamClass::Increasing))
        .count() as f64;
    let non = classes
        .iter()
        .filter(|c| matches!(c, StreamClass::NonIncreasing))
        .count() as f64;
    let unusable = classes
        .iter()
        .filter(|c| matches!(c, StreamClass::Unusable))
        .count() as f64;
    if unusable > 0.5 * classes.len() as f64 || inc + non == 0.0 {
        // Most streams unusable: no meaningful vote is possible.
        return FleetOutcome::AbortedLossy;
    }
    // The fraction f is taken over the streams that rendered a verdict;
    // ambiguous streams abstain (they indicate avail-bw fluctuation around
    // the fleet rate and therefore pull the vote toward Grey by shrinking
    // both sides' counts relative to the threshold only when the decisive
    // votes themselves are split).
    let threshold = (cfg.fleet_fraction * (inc + non)).ceil().max(1.0);
    if inc >= threshold {
        FleetOutcome::AboveAvailBw
    } else if non >= threshold {
        FleetOutcome::BelowAvailBw
    } else {
        FleetOutcome::Grey
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SlopsConfig {
        SlopsConfig::default()
    }

    fn classes(inc: usize, non: usize, unusable: usize) -> Vec<StreamClass> {
        let mut v = Vec::new();
        v.extend(std::iter::repeat_n(StreamClass::Increasing, inc));
        v.extend(std::iter::repeat_n(StreamClass::NonIncreasing, non));
        v.extend(std::iter::repeat_n(StreamClass::Unusable, unusable));
        v
    }

    fn classes_with_ambiguous(inc: usize, non: usize, amb: usize) -> Vec<StreamClass> {
        let mut v = classes(inc, non, 0);
        v.extend(std::iter::repeat_n(StreamClass::Ambiguous, amb));
        v
    }

    #[test]
    fn unanimous_votes() {
        let c = cfg();
        let no_loss = vec![0.0; 12];
        assert_eq!(
            classify_fleet(&classes(12, 0, 0), &no_loss, &c),
            FleetOutcome::AboveAvailBw
        );
        assert_eq!(
            classify_fleet(&classes(0, 12, 0), &no_loss, &c),
            FleetOutcome::BelowAvailBw
        );
    }

    #[test]
    fn split_vote_is_grey() {
        let c = cfg();
        let no_loss = vec![0.0; 12];
        // f=0.7, 12 decisive votes => threshold ceil(8.4)=9. 6/6: grey.
        assert_eq!(
            classify_fleet(&classes(6, 6, 0), &no_loss, &c),
            FleetOutcome::Grey
        );
        // 8 increasing is still below the threshold of 9.
        assert_eq!(
            classify_fleet(&classes(8, 4, 0), &no_loss, &c),
            FleetOutcome::Grey
        );
        // 9 reaches it.
        assert_eq!(
            classify_fleet(&classes(9, 3, 0), &no_loss, &c),
            FleetOutcome::AboveAvailBw
        );
    }

    #[test]
    fn ambiguous_streams_abstain() {
        let c = cfg();
        let no_loss = vec![0.0; 12];
        // 6 I, 2 N, 4 ambiguous: threshold ceil(0.7*8)=6 => Above.
        assert_eq!(
            classify_fleet(&classes_with_ambiguous(6, 2, 4), &no_loss, &c),
            FleetOutcome::AboveAvailBw
        );
        // 4 I, 4 N, 4 ambiguous: split decisive votes => Grey.
        assert_eq!(
            classify_fleet(&classes_with_ambiguous(4, 4, 4), &no_loss, &c),
            FleetOutcome::Grey
        );
        // All ambiguous: no decisive votes at all => aborted.
        assert_eq!(
            classify_fleet(&classes_with_ambiguous(0, 0, 12), &no_loss, &c),
            FleetOutcome::AbortedLossy
        );
    }

    #[test]
    fn single_excessive_loss_aborts() {
        let c = cfg();
        let mut losses = vec![0.0; 12];
        losses[5] = 0.11;
        assert_eq!(
            classify_fleet(&classes(12, 0, 0), &losses, &c),
            FleetOutcome::AbortedLossy
        );
    }

    #[test]
    fn widespread_moderate_loss_aborts() {
        let c = cfg();
        // 7 of 12 streams above the 3% moderate threshold (> 50%).
        let losses: Vec<f64> = (0..12).map(|i| if i < 7 { 0.05 } else { 0.0 }).collect();
        assert_eq!(
            classify_fleet(&classes(0, 12, 0), &losses, &c),
            FleetOutcome::AbortedLossy
        );
        // 6 of 12 is exactly 50%: not aborted.
        let losses: Vec<f64> = (0..12).map(|i| if i < 6 { 0.05 } else { 0.0 }).collect();
        assert_eq!(
            classify_fleet(&classes(0, 12, 0), &losses, &c),
            FleetOutcome::BelowAvailBw
        );
    }

    #[test]
    fn mostly_unusable_fleet_aborts() {
        let c = cfg();
        let no_loss = vec![0.0; 12];
        assert_eq!(
            classify_fleet(&classes(2, 3, 7), &no_loss, &c),
            FleetOutcome::AbortedLossy
        );
    }

    #[test]
    fn higher_fraction_widens_grey() {
        // With f = 0.9 the same 9/3 vote is no longer decisive (Fig. 8).
        let mut c = cfg();
        c.fleet_fraction = 0.9;
        let no_loss = vec![0.0; 12];
        assert_eq!(
            classify_fleet(&classes(9, 3, 0), &no_loss, &c),
            FleetOutcome::Grey
        );
        assert_eq!(
            classify_fleet(&classes(11, 1, 0), &no_loss, &c),
            FleetOutcome::AboveAvailBw
        );
    }

    #[test]
    fn tiny_fleet_needs_at_least_one_vote() {
        let c = cfg();
        assert_eq!(
            classify_fleet(&classes(1, 0, 0), &[0.0], &c),
            FleetOutcome::AboveAvailBw
        );
        assert_eq!(
            classify_fleet(&classes(0, 1, 0), &[0.0], &c),
            FleetOutcome::BelowAvailBw
        );
    }
}
