//! # slops — Self-Loading Periodic Streams (the paper's core contribution)
//!
//! Implements the SLoPS end-to-end available-bandwidth measurement
//! methodology and the pathload estimation algorithm of Jain & Dovrolis
//! (SIGCOMM 2002 / ToN 2003), §III–§IV:
//!
//! * [`owd`] — relative one-way-delay processing: Γ ≈ √K group medians.
//! * [`trend`] — the PCT (eq. 8) and PDT (eq. 9) increasing-trend
//!   statistics and stream classification (type I / type N).
//! * [`stream`] — periodic-stream parameter selection: packet size `L`,
//!   period `T`, length `K`, respecting `L_min`, the MTU and `T_min`.
//! * [`fleet`] — fleets of N streams and the three-way verdict:
//!   `R > A`, `R < A`, or the **grey region** `R ≈ A`.
//! * [`ratesearch`] — the binary-search rate adjustment with grey-region
//!   bounds and the ω / χ termination rules.
//! * [`machine`] — the **sans-IO session state machine**: the full §IV
//!   control loop (train initialization, fleets, pacing idles of
//!   max(RTT, 9·V), loss handling, termination) with all I/O and clock
//!   access factored out. It emits [`machine::Command`]s and consumes
//!   [`machine::Event`]s, making every intermediate state deterministic
//!   and unit-testable.
//! * [`session`] — the blocking reference **driver**: [`Session::run`]
//!   executes the machine's commands over any
//!   [`transport::ProbeTransport`] and returns the final
//!   `[R_min, R_max]` report.
//! * [`runner`] — the parallel **batch layer**: scoped worker threads
//!   executing {scenario × seed × config} grids of sessions, one
//!   transport per worker, results in job order.
//! * [`metrics`] — the relative-variation metric ρ (eq. 12) and the
//!   weighted average used to compare against MRTG (eq. 11).
//! * [`series`] — reusable avail-bw time-series aggregation: compact
//!   [`RangeSample`]s, eq. 11 window averages, tumbling windowed ranges,
//!   and the §VI change-point flag. [`monitor`] builds single-path series
//!   on it; the `monitord` crate builds per-path ring-buffer stores on it.
//!
//! ## Machine / driver / runner split
//!
//! ```text
//!             commands (SendTrain | SendStream | Idle | Finish)
//!   ┌────────────────┐ ──────────────────────────────► ┌──────────────┐
//!   │ SessionMachine │                                 │    driver    │
//!   │   (sans-IO)    │ ◄────────────────────────────── │ (owns the IO)│
//!   └────────────────┘   events (TrainDone | StreamDone└──────────────┘
//!                         | StreamLost | Tick)            │
//!                                                         ▼
//!                        Session::run (blocking, any ProbeTransport)
//!                        simprobe::SessionApp (event-driven, in-sim)
//! ```
//!
//! The machine is the single source of truth for the estimation logic;
//! drivers only translate commands into their I/O substrate. The blocking
//! driver serves the oracle, the simulator shim, and real sockets; the
//! in-sim driver (`simprobe::SessionApp`) runs a measurement as a native
//! discrete-event application next to cross traffic and TCP flows; and
//! [`runner::run_sessions`] fans whole grids of sessions out over every
//! core. For algorithm testing without a network there is
//! [`testutil::OracleTransport`], a synthetic path with a known avail-bw.
//!
//! ```
//! use slops::testutil::OracleTransport;
//! use slops::{Session, SlopsConfig};
//! use units::Rate;
//!
//! let mut path = OracleTransport::new(Rate::from_mbps(40.0), 42);
//! let est = Session::new(SlopsConfig::default()).run(&mut path).unwrap();
//! assert!(est.low.mbps() <= 40.0 && 40.0 <= est.high.mbps() + 1.0);
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod error;
pub mod fleet;
pub mod machine;
pub mod metrics;
pub mod monitor;
pub mod owd;
pub mod ratesearch;
pub mod runner;
pub mod series;
pub mod session;
pub mod stream;
pub mod testutil;
pub mod transport;
pub mod trend;
pub mod validation;

pub use config::{InitialRate, SlopsConfig, TrendMode};
pub use error::{SlopsError, TransportError};
pub use fleet::{FleetOutcome, FleetTrace};
pub use machine::{Command, Event, MachineError, SessionMachine};
pub use metrics::{relative_variation, weighted_average};
pub use monitor::{monitor_until, sla_compliance, AvailBwSeries, MonitorSample};
pub use ratesearch::RateSearch;
pub use runner::{run_parallel, run_sessions, Outcome, SessionJob};
pub use series::{RangeSample, SeriesStats, WindowedRange};
pub use session::{Estimate, Session, Termination};
pub use stream::{stream_params, StreamRequest};
pub use transport::{PacketSample, ProbeTransport, StreamRecord, TrainRecord};
pub use trend::{classify_medians, classify_stream, pct_metric, pdt_metric, StreamClass};
pub use validation::{check_spacing, spacing_acceptable, SpacingReport};
