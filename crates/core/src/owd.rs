//! Relative-OWD preprocessing: partition the K per-packet delays into
//! Γ ≈ √K groups of consecutive measurements and keep each group's median
//! (§IV "Detecting an Increasing OWD Trend"). Medians-of-groups are robust
//! to outliers (a delayed packet, a receiver context switch) that would
//! otherwise dominate the pairwise statistics.

/// Group medians of a relative-OWD series.
///
/// Uses Γ = ⌊√n⌋ groups; the first `n mod Γ` groups take one extra element
/// so every measurement is used. Returns an empty vector when `n < 4`
/// (fewer than two groups of two — no trend can be established).
pub fn group_medians(owds: &[i64]) -> Vec<f64> {
    let n = owds.len();
    if n < 4 {
        return Vec::new();
    }
    let gamma = (n as f64).sqrt().floor() as usize;
    let base = n / gamma;
    let extra = n % gamma;
    let mut medians = Vec::with_capacity(gamma);
    let mut start = 0usize;
    for g in 0..gamma {
        let len = base + usize::from(g < extra);
        let group = &owds[start..start + len];
        medians.push(median_i64(group));
        start += len;
    }
    debug_assert_eq!(start, n);
    medians
}

/// Median of a non-empty i64 slice (mean of the central pair when even).
fn median_i64(xs: &[i64]) -> f64 {
    debug_assert!(!xs.is_empty());
    let mut v: Vec<i64> = xs.to_vec();
    v.sort_unstable();
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2] as f64
    } else {
        (v[n / 2 - 1] as f64 + v[n / 2] as f64) * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_samples_make_ten_groups_of_ten() {
        let owds: Vec<i64> = (0..100).collect();
        let m = group_medians(&owds);
        assert_eq!(m.len(), 10);
        // Group g covers [10g, 10g+10): median = 10g + 4.5
        for (g, v) in m.iter().enumerate() {
            assert_eq!(*v, 10.0 * g as f64 + 4.5);
        }
    }

    #[test]
    fn uneven_split_uses_every_sample() {
        // n = 10 -> Γ = 3, groups of sizes 4, 3, 3.
        let owds: Vec<i64> = (0..10).collect();
        let m = group_medians(&owds);
        assert_eq!(m.len(), 3);
        assert_eq!(m[0], 1.5); // median of 0,1,2,3
        assert_eq!(m[1], 5.0); // median of 4,5,6
        assert_eq!(m[2], 8.0); // median of 7,8,9
    }

    #[test]
    fn too_few_samples_yield_nothing() {
        assert!(group_medians(&[1, 2, 3]).is_empty());
        assert!(group_medians(&[]).is_empty());
    }

    #[test]
    fn medians_resist_outliers() {
        // An increasing ramp with one huge outlier in the middle group.
        let mut owds: Vec<i64> = (0..100).map(|i| i * 10).collect();
        owds[55] = 1_000_000;
        let m = group_medians(&owds);
        // The outlier group's median is barely affected.
        assert!(m[5] < 600.0, "median {} blew up", m[5]);
        // Trend preserved.
        assert!(m.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn negative_relative_owds_are_fine() {
        // Receiver clock behind the sender's: all OWDs negative.
        let owds: Vec<i64> = (0..100).map(|i| -1_000_000 + i * 7).collect();
        let m = group_medians(&owds);
        assert_eq!(m.len(), 10);
        assert!(m.windows(2).all(|w| w[1] > w[0]));
    }
}
