//! Continuous avail-bw monitoring: back-to-back measurement sessions
//! aggregated into a time series.
//!
//! This is the usage mode behind the paper's motivating applications
//! (§I, §IX): SLA verification, server selection, overlay routing, and
//! streaming rate adaptation all want a *series* of avail-bw ranges, plus
//! window averages comparable to router statistics (eq. 11) — exactly how
//! the paper's own Fig. 10 verification drives the tool.

use crate::error::SlopsError;
use crate::series::{self, RangeSample};
use crate::session::{Estimate, Session};
use crate::transport::ProbeTransport;
use units::{Rate, TimeNs};

/// One completed measurement in a monitoring series.
#[derive(Clone, Debug)]
pub struct MonitorSample {
    /// Transport time when the measurement started.
    pub started: TimeNs,
    /// Measurement duration.
    pub duration: TimeNs,
    /// The estimate.
    pub estimate: Estimate,
}

impl MonitorSample {
    /// The sample reduced to its range (the form [`crate::series`]
    /// aggregates and a long-running store retains).
    pub fn range(&self) -> RangeSample {
        RangeSample {
            started: self.started,
            duration: self.duration,
            low: self.estimate.low,
            high: self.estimate.high,
        }
    }
}

/// A time series of avail-bw measurements over one transport.
///
/// The samples keep their full per-fleet traces; the aggregation (eq. 11
/// window averages, envelopes, windowed ranges) is shared with the compact
/// ring-buffer stores through [`crate::series`].
#[derive(Debug, Default)]
pub struct AvailBwSeries {
    /// Samples in measurement order.
    pub samples: Vec<MonitorSample>,
}

impl AvailBwSeries {
    /// The samples reduced to their ranges, in measurement order.
    pub fn ranges(&self) -> Vec<RangeSample> {
        self.samples.iter().map(MonitorSample::range).collect()
    }

    /// Duration-weighted average of the range midpoints over `[from, to)`
    /// (eq. 11), suitable for comparison with an MRTG window.
    pub fn window_average(&self, from: TimeNs, to: TimeNs) -> Rate {
        series::window_average(&self.ranges(), from, to)
    }

    /// The widest range observed (the avail-bw variation envelope).
    pub fn envelope(&self) -> Option<(Rate, Rate)> {
        series::envelope(&self.ranges())
    }
}

/// Run measurements back to back until `deadline` on the transport clock,
/// idling `gap` between runs. Errors abort the series (the samples taken
/// so far are returned alongside the error).
pub fn monitor_until<T: ProbeTransport + ?Sized>(
    session: &Session,
    transport: &mut T,
    deadline: TimeNs,
    gap: TimeNs,
) -> (AvailBwSeries, Option<SlopsError>) {
    let mut series = AvailBwSeries::default();
    while transport.elapsed() < deadline {
        let started = transport.elapsed();
        match session.run(transport) {
            Ok(est) => {
                let duration = transport.elapsed().saturating_sub(started);
                series.samples.push(MonitorSample {
                    started,
                    duration,
                    estimate: est,
                });
            }
            Err(e) => return (series, Some(e)),
        }
        if !gap.is_zero() && transport.elapsed() < deadline {
            transport.idle(gap);
        }
    }
    (series, None)
}

/// Check a service-level objective against a monitoring series: the
/// fraction of samples whose range midpoint met `floor`.
pub fn sla_compliance(series: &AvailBwSeries, floor: Rate) -> f64 {
    if series.samples.is_empty() {
        return 0.0;
    }
    let met = series
        .samples
        .iter()
        .filter(|s| s.estimate.midpoint().bps() >= floor.bps())
        .count();
    met as f64 / series.samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlopsConfig;
    use crate::testutil::OracleTransport;

    #[test]
    fn series_accumulates_until_deadline() {
        let mut t = OracleTransport::new(Rate::from_mbps(40.0), 1);
        let session = Session::new(SlopsConfig::default());
        let (series, err) = monitor_until(
            &session,
            &mut t,
            TimeNs::from_secs(120),
            TimeNs::from_secs(1),
        );
        assert!(err.is_none());
        assert!(series.samples.len() >= 3, "got {}", series.samples.len());
        // Every sample brackets the true avail-bw.
        for s in &series.samples {
            assert!(s.estimate.low.mbps() <= 41.5 && 38.5 <= s.estimate.high.mbps());
            assert!(!s.duration.is_zero());
        }
        // Window average close to 40.
        let avg = series.window_average(TimeNs::ZERO, TimeNs::from_secs(120));
        assert!((avg.mbps() - 40.0).abs() < 4.0, "avg = {avg}");
        let (lo, hi) = series.envelope().unwrap();
        assert!(lo.mbps() <= 40.0 + 1.5 && 40.0 - 1.5 <= hi.mbps());
    }

    #[test]
    fn sla_compliance_fractions() {
        let mut t = OracleTransport::new(Rate::from_mbps(40.0), 2);
        let session = Session::new(SlopsConfig::default());
        let (series, _) = monitor_until(&session, &mut t, TimeNs::from_secs(60), TimeNs::ZERO);
        assert!(sla_compliance(&series, Rate::from_mbps(10.0)) > 0.99);
        assert!(sla_compliance(&series, Rate::from_mbps(100.0)) < 0.01);
        assert_eq!(sla_compliance(&AvailBwSeries::default(), Rate::ZERO), 0.0);
    }

    #[test]
    fn errors_surface_with_partial_series() {
        use crate::error::TransportError;
        use crate::stream::StreamRequest;
        use crate::transport::{StreamRecord, TrainRecord};

        /// Delegates to the oracle until the fuse burns, then fails.
        struct Fused {
            inner: OracleTransport,
            streams_left: u32,
        }
        impl ProbeTransport for Fused {
            fn send_stream(&mut self, req: &StreamRequest) -> Result<StreamRecord, TransportError> {
                if self.streams_left == 0 {
                    return Err(TransportError::Io("peer vanished".into()));
                }
                self.streams_left -= 1;
                self.inner.send_stream(req)
            }
            fn send_train(&mut self, len: u32, size: u32) -> Result<TrainRecord, TransportError> {
                self.inner.send_train(len, size)
            }
            fn rtt(&mut self) -> TimeNs {
                self.inner.rtt()
            }
            fn idle(&mut self, dur: TimeNs) {
                self.inner.idle(dur)
            }
            fn elapsed(&self) -> TimeNs {
                self.inner.elapsed()
            }
        }

        // Enough streams for roughly one full session, then failure.
        let mut t = Fused {
            inner: OracleTransport::new(Rate::from_mbps(40.0), 3),
            streams_left: 100,
        };
        let session = Session::new(SlopsConfig::default());
        let (series, err) = monitor_until(&session, &mut t, TimeNs::from_secs(600), TimeNs::ZERO);
        assert!(err.is_some(), "the fuse must eventually blow");
        // At least one measurement completed before the failure.
        assert!(!series.samples.is_empty());
    }

    #[test]
    fn zero_deadline_takes_no_samples() {
        let mut t = OracleTransport::new(Rate::from_mbps(40.0), 5);
        let session = Session::new(SlopsConfig::default());
        let (series, err) = monitor_until(&session, &mut t, TimeNs::ZERO, TimeNs::from_secs(1));
        assert!(err.is_none());
        assert!(series.samples.is_empty());
        // A series with no samples aggregates to nothing, not a panic.
        assert!(series.window_average(TimeNs::ZERO, TimeNs::MAX).is_zero());
        assert!(series.envelope().is_none());
    }

    #[test]
    fn first_run_failure_yields_empty_series_and_error() {
        let mut bad = SlopsConfig::default();
        bad.fleet_fraction = 0.2; // rejected by validation before any probe
        let mut t = OracleTransport::new(Rate::from_mbps(40.0), 6);
        let session = Session::new(bad);
        let (series, err) = monitor_until(&session, &mut t, TimeNs::from_secs(60), TimeNs::ZERO);
        assert!(matches!(err, Some(SlopsError::BadConfig(_))));
        assert!(series.samples.is_empty());
    }

    #[test]
    fn window_average_edge_cases() {
        use crate::session::Termination;
        let est = |lo: f64, hi: f64| Estimate {
            low: Rate::from_mbps(lo),
            high: Rate::from_mbps(hi),
            grey: None,
            termination: Termination::Resolution,
            fleets: Vec::new(),
            elapsed: TimeNs::ZERO,
        };
        let mut series = AvailBwSeries::default();
        // Empty series.
        assert!(series.window_average(TimeNs::ZERO, TimeNs::MAX).is_zero());
        // A zero-duration sample carries no weight.
        series.samples.push(MonitorSample {
            started: TimeNs::from_secs(1),
            duration: TimeNs::ZERO,
            estimate: est(2.0, 4.0),
        });
        assert!(series.window_average(TimeNs::ZERO, TimeNs::MAX).is_zero());
        // One weighted sample: the window average is its midpoint, even for
        // a window far longer than the series.
        series.samples.push(MonitorSample {
            started: TimeNs::from_secs(2),
            duration: TimeNs::from_secs(10),
            estimate: est(6.0, 8.0),
        });
        let avg = series.window_average(TimeNs::ZERO, TimeNs::from_secs(1_000_000));
        assert!((avg.mbps() - 7.0).abs() < 1e-9);
        // A window that covers no sample starts.
        assert!(series
            .window_average(TimeNs::from_secs(500), TimeNs::from_secs(600))
            .is_zero());
    }
}
