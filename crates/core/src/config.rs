//! Tool configuration: every knob of §IV with the paper's defaults.

use units::{Rate, TimeNs};

/// Which trend statistics decide a stream's type.
///
/// Each statistic classifies a stream as increasing (above its `*_inc`
/// threshold), non-increasing (below its `*_dec` threshold), or ambiguous
/// (between). `Both` combines them the way the released pathload does:
/// agreement wins, a lone verdict beats an ambiguous one, conflicts are
/// ambiguous. Fig. 9 studies PDT-only detection; the ablation benches use
/// all three modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrendMode {
    /// Combine PCT and PDT (tool default).
    Both,
    /// Use only the pairwise comparison test.
    PctOnly,
    /// Use only the pairwise difference test.
    PdtOnly,
}

/// How the session picks its initial rate bounds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InitialRate {
    /// Send a packet train first; its dispersion rate (ADR ≥ avail-bw) padded
    /// by 25 % becomes the initial upper bound — pathload's documented
    /// initialization ("a better way to initialize R", §III footnote 3).
    Train {
        /// Number of packets in the train.
        len: u32,
        /// Packet size in bytes.
        size: u32,
    },
    /// Start from a fixed upper bound `R_max^0`.
    FixedMax(Rate),
}

/// Configuration of a SLoPS/pathload measurement session.
///
/// Defaults are the paper's (§IV–§V); values the OCR of the paper text lost
/// are reconstructed from the companion PAM'02 pathload paper and flagged in
/// DESIGN.md §1.
#[derive(Clone, Debug)]
pub struct SlopsConfig {
    /// Stream length K in packets (default 100).
    pub stream_len: u32,
    /// Fleet length N in streams (default 12).
    pub fleet_len: u32,
    /// Minimum packet period T the sender can pace reliably (default 100 µs).
    pub min_period: TimeNs,
    /// Minimum probe packet size L_min in bytes (default 200, to bound the
    /// relative weight of layer-2 headers, §IV).
    pub min_packet: u32,
    /// Path MTU in bytes (default 1500). Max measurable rate = MTU·8/T_min.
    pub mtu: u32,
    /// PCT increasing threshold: S_PCT above this is an increasing verdict
    /// (tool default 0.66, i.e. more than six of nine group-median pairs
    /// increasing when Γ = 10).
    pub pct_inc: f64,
    /// PCT non-increasing threshold: S_PCT below this is a non-increasing
    /// verdict; between the two the PCT is ambiguous (tool default 0.54).
    ///
    /// The ToN paper's prose quotes a single 0.55 threshold; with Γ = 10
    /// that would classify ≈ half of all trendless streams as increasing
    /// (5 of 9 pairs increase with probability ~0.5 for symmetric noise),
    /// so we implement the released tool's dual-threshold rule
    /// (see DESIGN.md §5).
    pub pct_dec: f64,
    /// PDT increasing threshold (tool default 0.55).
    pub pdt_inc: f64,
    /// PDT non-increasing threshold (tool default 0.45).
    pub pdt_dec: f64,
    /// Which statistics decide stream type (default [`TrendMode::Both`]).
    pub trend_mode: TrendMode,
    /// Fleet fraction f: a fleet is "increasing" when ≥ f·N streams are
    /// type I, "non-increasing" when ≥ f·N are type N (default 0.7).
    pub fleet_fraction: f64,
    /// Avail-bw estimation resolution ω (default 1 Mb/s).
    pub resolution: Rate,
    /// Grey-region resolution χ (default 2 Mb/s; must be ≥ ω for the
    /// termination guarantees of §VI to hold).
    pub grey_resolution: Rate,
    /// Abort a fleet if one stream loses more than this fraction (default
    /// 0.10, "excessive losses").
    pub loss_abort_stream: f64,
    /// "Moderate loss" per-stream fraction (default 0.03).
    pub loss_moderate: f64,
    /// Abort the fleet if more than this fraction of its streams see
    /// moderate losses (default 0.5).
    pub moderate_fraction: f64,
    /// Cap on the session's average probing load as a fraction of the fleet
    /// rate: inter-stream idle ≥ (1/x − 1)·V (default 0.1 ⇒ idle ≥ 9 V).
    pub avg_load_factor: f64,
    /// Initial rate bounds (default: 48-packet, MTU-sized train).
    pub initial: InitialRate,
    /// Safety cap on the number of fleets per session (default 64).
    pub max_fleets: u32,
    /// Sender-spacing validation: allowed relative deviation of each
    /// realized inter-packet gap from the nominal period (default 0.3).
    /// Context switches at the sender produce multi-period gaps.
    pub spacing_tolerance: f64,
    /// A stream is unusable if more than this fraction of its gaps violate
    /// the tolerance (default 0.3).
    pub spacing_max_violations: f64,
}

impl Default for SlopsConfig {
    fn default() -> Self {
        SlopsConfig {
            stream_len: 100,
            fleet_len: 12,
            min_period: TimeNs::from_micros(100),
            min_packet: 200,
            mtu: units::MTU,
            pct_inc: 0.66,
            pct_dec: 0.54,
            pdt_inc: 0.55,
            pdt_dec: 0.45,
            trend_mode: TrendMode::Both,
            fleet_fraction: 0.7,
            resolution: Rate::from_mbps(1.0),
            grey_resolution: Rate::from_mbps(2.0),
            loss_abort_stream: 0.10,
            loss_moderate: 0.03,
            moderate_fraction: 0.5,
            avg_load_factor: 0.1,
            initial: InitialRate::Train {
                len: 48,
                size: units::MTU,
            },
            max_fleets: 64,
            spacing_tolerance: 0.3,
            spacing_max_violations: 0.3,
        }
    }
}

impl SlopsConfig {
    /// Maximum rate the tool can generate: MTU-sized packets at the minimum
    /// period (§IV: "the maximum avail-bw that it can measure").
    pub fn max_rate(&self) -> Rate {
        Rate::from_bps(self.mtu as f64 * 8.0 / self.min_period.secs_f64())
    }

    /// Validate the parameter ranges; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.stream_len < 9 {
            return Err("stream_len must be at least 9 (need Γ ≥ 3 groups)".into());
        }
        if self.fleet_len == 0 {
            return Err("fleet_len must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.pct_inc) || !(0.0..=1.0).contains(&self.pct_dec) {
            return Err("PCT thresholds must be in [0, 1]".into());
        }
        if self.pct_dec > self.pct_inc {
            return Err("pct_dec must not exceed pct_inc".into());
        }
        if !(-1.0..=1.0).contains(&self.pdt_inc) || !(-1.0..=1.0).contains(&self.pdt_dec) {
            return Err("PDT thresholds must be in [-1, 1]".into());
        }
        if self.pdt_dec > self.pdt_inc {
            return Err("pdt_dec must not exceed pdt_inc".into());
        }
        if !(0.5..=1.0).contains(&self.fleet_fraction) {
            return Err("fleet_fraction must be in [0.5, 1]".into());
        }
        if self.min_packet > self.mtu {
            return Err("min_packet exceeds the MTU".into());
        }
        if self.min_period.is_zero() {
            return Err("min_period must be positive".into());
        }
        if self.resolution.bps() <= 0.0 || self.grey_resolution.bps() < self.resolution.bps() {
            return Err("need 0 < resolution ω ≤ grey_resolution χ".into());
        }
        if !(0.01..=1.0).contains(&self.avg_load_factor) {
            return Err("avg_load_factor must be in [0.01, 1]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_match_paper() {
        let c = SlopsConfig::default();
        c.validate().unwrap();
        assert_eq!(c.stream_len, 100);
        assert_eq!(c.fleet_len, 12);
        assert_eq!(c.pct_inc, 0.66);
        assert_eq!(c.pct_dec, 0.54);
        assert_eq!(c.pdt_inc, 0.55);
        assert_eq!(c.pdt_dec, 0.45);
        assert_eq!(c.fleet_fraction, 0.7);
        // MTU/Tmin = 1500*8 / 100us = 120 Mb/s
        assert!((c.max_rate().mbps() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = SlopsConfig::default();
        c.stream_len = 4;
        assert!(c.validate().is_err());

        let mut c = SlopsConfig::default();
        c.fleet_fraction = 0.3;
        assert!(c.validate().is_err());

        let mut c = SlopsConfig::default();
        c.min_packet = 9000;
        assert!(c.validate().is_err());

        let mut c = SlopsConfig::default();
        c.grey_resolution = Rate::from_kbps(100.0); // < ω
        assert!(c.validate().is_err());

        let mut c = SlopsConfig::default();
        c.pdt_inc = 2.0;
        assert!(c.validate().is_err());

        let mut c = SlopsConfig::default();
        c.pct_dec = 0.9; // above pct_inc
        assert!(c.validate().is_err());
    }
}
