//! A synthetic [`ProbeTransport`] with a known avail-bw — the oracle used
//! by the unit and property tests of the estimation logic.
//!
//! The oracle models a single-tight-link fluid path: when the stream rate
//! exceeds the (per-stream sampled) avail-bw, OWDs ramp with the fluid
//! slope `L·8(1 − A/R)/C`; otherwise they are flat. Optional uniform
//! jitter, random loss (globally or above a rate threshold), an arbitrary
//! clock offset, and an avail-bw that varies uniformly per stream make it
//! a controllable stand-in for every path condition the session logic must
//! survive. It is deterministic given its seed.

use crate::error::TransportError;
use crate::stream::StreamRequest;
use crate::transport::{PacketSample, ProbeTransport, StreamRecord, TrainRecord};
use units::{Rate, TimeNs};

/// Deterministic synthetic path with a known available bandwidth.
#[derive(Clone, Debug)]
pub struct OracleTransport {
    /// Mean avail-bw of the emulated path.
    pub avail: Rate,
    /// Per-stream avail-bw varies uniformly in `avail ± avail_halfwidth`
    /// (models the grey region).
    pub avail_halfwidth: Rate,
    /// Capacity of the emulated tight link (sets the OWD ramp slope).
    pub tight_capacity: Rate,
    /// Probability that a packet coincides with a cross-traffic burst and
    /// picks up extra queueing delay. Queueing noise is one-sided: when the
    /// stream rate is below the avail-bw most packets sit exactly at the
    /// OWD floor (paper Fig. 2), which is what makes trendless streams
    /// classifiable at all.
    pub spike_prob: f64,
    /// Mean of the (exponential) queueing-spike delay, in nanoseconds.
    pub spike_mean_ns: f64,
    /// Constant receiver−sender clock offset added to every OWD.
    pub clock_offset_ns: i64,
    /// Per-packet loss probability applied to all probes.
    pub loss_prob: f64,
    /// If set, probing faster than this rate suffers `loss_prob_above`.
    pub loss_above_rate: Option<Rate>,
    /// Extra per-packet loss probability above `loss_above_rate`.
    pub loss_prob_above: f64,
    /// Emulated path RTT.
    pub rtt: TimeNs,
    /// Maximum rate the transport admits, if bounded.
    pub max_rate: Option<Rate>,
    /// Receiver clock granularity in nanoseconds (1 µs like gettimeofday).
    /// Quantization produces the timestamp ties real receivers see; without
    /// them, continuous-valued noise makes the PCT statistic of a trendless
    /// stream hover near 0.5 instead of well below it.
    pub clock_resolution_ns: i64,
    state: u64,
    now: TimeNs,
}

impl OracleTransport {
    /// An oracle path with the given mean avail-bw; the tight-link capacity
    /// defaults to twice the avail-bw, queueing spikes on 25 % of packets
    /// with a 20 µs mean, no loss, 10 ms RTT.
    pub fn new(avail: Rate, seed: u64) -> OracleTransport {
        OracleTransport {
            avail,
            avail_halfwidth: Rate::ZERO,
            tight_capacity: avail * 2.0,
            spike_prob: 0.25,
            spike_mean_ns: 20_000.0,
            clock_offset_ns: -123_456_789, // clocks are not synchronized
            loss_prob: 0.0,
            loss_above_rate: None,
            loss_prob_above: 0.0,
            rtt: TimeNs::from_millis(10),
            max_rate: None,
            clock_resolution_ns: 1_000,
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            now: TimeNs::ZERO,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64: compact and plenty for a test oracle.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn uniform_sym(&mut self, amp: f64) -> f64 {
        (self.f64() * 2.0 - 1.0) * amp
    }

    /// One-sided queueing noise: 0 with probability `1 − spike_prob`,
    /// else an exponential extra delay.
    fn queueing_noise(&mut self) -> f64 {
        if self.spike_prob <= 0.0 || self.f64() >= self.spike_prob {
            0.0
        } else {
            -self.spike_mean_ns * (1.0 - self.f64()).ln()
        }
    }
}

impl ProbeTransport for OracleTransport {
    fn send_stream(&mut self, req: &StreamRequest) -> Result<StreamRecord, TransportError> {
        let rate = req.actual_rate();
        if let Some(max) = self.max_rate {
            if rate.bps() > max.bps() * 1.0001 {
                return Err(TransportError::Unsupported(format!(
                    "rate {rate} above transport max {max}"
                )));
            }
        }
        // Sample this stream's avail-bw.
        let a = self.avail.bps() + self.uniform_sym(self.avail_halfwidth.bps());
        let slope_ns_per_pkt = if rate.bps() > a && a > 0.0 {
            let bits = req.packet_size as f64 * 8.0;
            bits * (1.0 - a / rate.bps()) / self.tight_capacity.bps() * 1e9
        } else {
            0.0
        };
        let loss = {
            let extra = match self.loss_above_rate {
                Some(thr) if rate.bps() > thr.bps() => self.loss_prob_above,
                _ => 0.0,
            };
            (self.loss_prob + extra).min(1.0)
        };
        let mut samples = Vec::with_capacity(req.count as usize);
        let mut ramp = 0.0f64;
        for i in 0..req.count {
            ramp += slope_ns_per_pkt;
            if loss > 0.0 && self.f64() < loss {
                continue;
            }
            let jitter = self.queueing_noise();
            let owd = self.clock_offset_ns + (ramp + jitter) as i64;
            let owd = if self.clock_resolution_ns > 1 {
                owd.div_euclid(self.clock_resolution_ns) * self.clock_resolution_ns
            } else {
                owd
            };
            samples.push(PacketSample {
                idx: i,
                send_offset: req.period * i as u64,
                owd_ns: owd,
            });
        }
        self.now += req.duration();
        Ok(StreamRecord {
            sent: req.count,
            samples,
        })
    }

    fn send_train(&mut self, len: u32, size: u32) -> Result<TrainRecord, TransportError> {
        // A long train's dispersion converges to the ADR, which for the
        // single-queue fluid model sits between A and C.
        let c = self.tight_capacity.bps();
        let a = self.avail.bps();
        let adr = c.min(a + (c - a) * 0.5).max(1.0);
        let bits = (len.max(2) as u64 - 1) * size as u64 * 8;
        let span = TimeNs::from_secs_f64(bits as f64 / adr);
        let rec = TrainRecord {
            sent: len,
            received: len,
            size,
            first_recv: self.now,
            last_recv: self.now + span,
        };
        self.now += span + self.rtt;
        Ok(rec)
    }

    fn rtt(&mut self) -> TimeNs {
        self.rtt
    }

    fn idle(&mut self, dur: TimeNs) {
        self.now += dur;
    }

    fn max_rate(&self) -> Option<Rate> {
        self.max_rate
    }

    fn elapsed(&self) -> TimeNs {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlopsConfig;
    use crate::stream::stream_params;
    use crate::trend::{classify_stream, StreamClass};

    #[test]
    fn stream_above_avail_ramps_and_below_is_flat() {
        let cfg = SlopsConfig::default();
        let mut t = OracleTransport::new(Rate::from_mbps(40.0), 5);
        let above = stream_params(Rate::from_mbps(60.0), 0, &cfg);
        let rec = t.send_stream(&above).unwrap();
        assert_eq!(classify_stream(&rec, &cfg), StreamClass::Increasing);
        let below = stream_params(Rate::from_mbps(20.0), 1, &cfg);
        let rec = t.send_stream(&below).unwrap();
        assert_eq!(classify_stream(&rec, &cfg), StreamClass::NonIncreasing);
    }

    #[test]
    fn train_dispersion_sits_between_avail_and_capacity() {
        let mut t = OracleTransport::new(Rate::from_mbps(40.0), 6);
        let rec = t.send_train(48, 1500).unwrap();
        let adr = rec.dispersion_rate().unwrap();
        assert!(adr.mbps() > 40.0 && adr.mbps() <= 80.0, "adr = {adr}");
    }

    #[test]
    fn losses_reduce_sample_count() {
        let cfg = SlopsConfig::default();
        let mut t = OracleTransport::new(Rate::from_mbps(40.0), 7);
        t.loss_prob = 0.3;
        let req = stream_params(Rate::from_mbps(30.0), 0, &cfg);
        let rec = t.send_stream(&req).unwrap();
        assert!(rec.loss_fraction() > 0.15 && rec.loss_fraction() < 0.45);
    }

    #[test]
    fn clock_offset_does_not_break_classification() {
        let cfg = SlopsConfig::default();
        for offset in [-5_000_000_000i64, 0, 7_000_000_000] {
            let mut t = OracleTransport::new(Rate::from_mbps(40.0), 8);
            t.clock_offset_ns = offset;
            let req = stream_params(Rate::from_mbps(60.0), 0, &cfg);
            let rec = t.send_stream(&req).unwrap();
            assert_eq!(classify_stream(&rec, &cfg), StreamClass::Increasing);
        }
    }

    #[test]
    fn idle_advances_elapsed() {
        let mut t = OracleTransport::new(Rate::from_mbps(10.0), 9);
        assert_eq!(t.elapsed(), TimeNs::ZERO);
        t.idle(TimeNs::from_millis(50));
        assert_eq!(t.elapsed(), TimeNs::from_millis(50));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SlopsConfig::default();
        let req = stream_params(Rate::from_mbps(45.0), 0, &cfg);
        let run = |seed| {
            let mut t = OracleTransport::new(Rate::from_mbps(40.0), seed);
            t.send_stream(&req).unwrap().owds()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
