//! The increasing-trend statistics (§IV, eqs. 8–9) and stream
//! classification.
//!
//! * **PCT** (pairwise comparison test): the fraction of consecutive group
//!   medians that strictly increase. Independent OWDs → ≈ 0.5; strong
//!   increasing trend → 1.
//! * **PDT** (pairwise difference test): the start-to-end change normalized
//!   by the total absolute variation. Independent → ≈ 0; strong trend → 1.
//!
//! Each statistic renders a three-way verdict — increasing above its upper
//! threshold, non-increasing below its lower threshold, **ambiguous**
//! between — and the released pathload combines them: agreement wins, a
//! lone verdict beats an ambiguous one, a conflict is ambiguous. Ambiguous
//! streams vote for neither side of the fleet decision; this is what keeps
//! a trendless-but-noisy stream from randomly flipping the binary search
//! (with Γ = 10 groups a *single* PCT threshold near 0.5 would misclassify
//! about half of all such streams).
//!
//! Streams whose sample count is too small to form group medians are
//! **unusable** (excessive loss) and handled by the fleet loss rules.

use crate::config::{SlopsConfig, TrendMode};
use crate::owd::group_medians;
use crate::transport::StreamRecord;

/// Classification of one stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamClass {
    /// Type I: OWDs show an increasing trend (stream rate > avail-bw).
    Increasing,
    /// Type N: no increasing trend (stream rate < avail-bw).
    NonIncreasing,
    /// The statistics disagree or sit between their thresholds.
    Ambiguous,
    /// Too few usable samples to decide (heavy loss or sender failure).
    Unusable,
}

impl StreamClass {
    /// Every classification, for pre-sizing label vocabularies.
    pub const ALL: [StreamClass; 4] = [
        StreamClass::Increasing,
        StreamClass::NonIncreasing,
        StreamClass::Ambiguous,
        StreamClass::Unusable,
    ];

    /// Stable snake_case name (trace events, JSONL, metric labels).
    pub fn name(self) -> &'static str {
        match self {
            StreamClass::Increasing => "increasing",
            StreamClass::NonIncreasing => "non_increasing",
            StreamClass::Ambiguous => "ambiguous",
            StreamClass::Unusable => "unusable",
        }
    }
}

/// Three-way verdict of a single statistic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Verdict {
    Inc,
    Non,
    Ambiguous,
}

/// PCT metric over group medians (eq. 8). `None` when fewer than 2 groups.
pub fn pct_metric(medians: &[f64]) -> Option<f64> {
    if medians.len() < 2 {
        return None;
    }
    let pairs = medians.len() - 1;
    let increasing = medians.windows(2).filter(|w| w[1] > w[0]).count();
    Some(increasing as f64 / pairs as f64)
}

/// PDT metric over group medians (eq. 9). `None` when fewer than 2 groups
/// or when the series is perfectly flat (no variation to normalize by).
pub fn pdt_metric(medians: &[f64]) -> Option<f64> {
    if medians.len() < 2 {
        return None;
    }
    let total_variation: f64 = medians.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
    if total_variation == 0.0 {
        return None;
    }
    let net = medians[medians.len() - 1] - medians[0];
    Some(net / total_variation)
}

fn verdict(value: Option<f64>, inc_thr: f64, dec_thr: f64) -> Option<Verdict> {
    value.map(|v| {
        if v > inc_thr {
            Verdict::Inc
        } else if v < dec_thr {
            Verdict::Non
        } else {
            Verdict::Ambiguous
        }
    })
}

/// Classify a stream from its receiver record (loss handling happens at the
/// fleet level; this only answers "does the OWD series trend upward?").
pub fn classify_stream(rec: &StreamRecord, cfg: &SlopsConfig) -> StreamClass {
    let owds = rec.owds();
    let medians = group_medians(&owds);
    classify_medians(&medians, cfg)
}

/// Classify from precomputed group medians.
pub fn classify_medians(medians: &[f64], cfg: &SlopsConfig) -> StreamClass {
    if medians.len() < 2 {
        return StreamClass::Unusable;
    }
    let pct = verdict(pct_metric(medians), cfg.pct_inc, cfg.pct_dec);
    // A perfectly flat series has no PDT but is trivially non-increasing.
    let pdt = verdict(pdt_metric(medians), cfg.pdt_inc, cfg.pdt_dec).or(Some(Verdict::Non));
    let combined = match cfg.trend_mode {
        TrendMode::PctOnly => pct.unwrap_or(Verdict::Non),
        TrendMode::PdtOnly => pdt.unwrap_or(Verdict::Non),
        TrendMode::Both => match (pct.unwrap_or(Verdict::Ambiguous), pdt.unwrap()) {
            (a, b) if a == b => a,
            (Verdict::Ambiguous, b) => b,
            (a, Verdict::Ambiguous) => a,
            _ => Verdict::Ambiguous, // direct conflict
        },
    };
    match combined {
        Verdict::Inc => StreamClass::Increasing,
        Verdict::Non => StreamClass::NonIncreasing,
        Verdict::Ambiguous => StreamClass::Ambiguous,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::PacketSample;
    use units::TimeNs;

    fn cfg() -> SlopsConfig {
        SlopsConfig::default()
    }

    #[test]
    fn pct_extremes() {
        let inc: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let dec: Vec<f64> = (0..10).map(|i| -(i as f64)).collect();
        assert_eq!(pct_metric(&inc), Some(1.0));
        assert_eq!(pct_metric(&dec), Some(0.0));
        assert_eq!(pct_metric(&[1.0]), None);
    }

    #[test]
    fn pct_alternating_is_half() {
        let alt: Vec<f64> = (0..11)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let v = pct_metric(&alt).unwrap();
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pdt_extremes() {
        let inc: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(pdt_metric(&inc), Some(1.0));
        let dec: Vec<f64> = (0..10).map(|i| -(i as f64)).collect();
        assert_eq!(pdt_metric(&dec), Some(-1.0));
        let flat = vec![5.0; 10];
        assert_eq!(pdt_metric(&flat), None);
        // Alternating: net 0 => PDT 0.
        let alt: Vec<f64> = (0..11)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        assert_eq!(pdt_metric(&alt), Some(0.0));
    }

    #[test]
    fn pdt_bounds() {
        // |PDT| <= 1 by the triangle inequality, for any series.
        let series = [3.0, -1.0, 4.0, 1.0, -5.0, 9.0, 2.0, -6.0];
        let v = pdt_metric(&series).unwrap();
        assert!((-1.0..=1.0).contains(&v));
    }

    fn record_from_owds(owds: &[i64]) -> StreamRecord {
        StreamRecord {
            sent: owds.len() as u32,
            samples: owds
                .iter()
                .enumerate()
                .map(|(i, &owd)| PacketSample {
                    idx: i as u32,
                    send_offset: TimeNs::from_micros(100 * i as u64),
                    owd_ns: owd,
                })
                .collect(),
        }
    }

    #[test]
    fn classify_clear_ramp_as_increasing() {
        let owds: Vec<i64> = (0..100).map(|i| 1000 + i * 500).collect();
        assert_eq!(
            classify_stream(&record_from_owds(&owds), &cfg()),
            StreamClass::Increasing
        );
    }

    #[test]
    fn classify_flat_noise_as_non_increasing() {
        // Trendless periodic jitter: PCT ~ 0.5 is ambiguous at best, PDT ~ 0
        // votes non-increasing; the combination must not say increasing.
        let pattern: [i64; 5] = [0, 2000, -1000, 1000, -2000];
        let owds: Vec<i64> = (0..100)
            .map(|i: i64| 50_000 + pattern[(i % 5) as usize])
            .collect();
        let got = classify_stream(&record_from_owds(&owds), &cfg());
        assert_ne!(got, StreamClass::Increasing);
    }

    #[test]
    fn classify_constant_series_as_non_increasing() {
        let owds = vec![42_000i64; 100];
        assert_eq!(
            classify_stream(&record_from_owds(&owds), &cfg()),
            StreamClass::NonIncreasing
        );
    }

    #[test]
    fn classify_decreasing_ramp_as_non_increasing() {
        let owds: Vec<i64> = (0..100).map(|i| 1_000_000 - i * 500).collect();
        assert_eq!(
            classify_stream(&record_from_owds(&owds), &cfg()),
            StreamClass::NonIncreasing
        );
    }

    #[test]
    fn classify_tiny_stream_as_unusable() {
        let owds = vec![1i64, 2, 3];
        assert_eq!(
            classify_stream(&record_from_owds(&owds), &cfg()),
            StreamClass::Unusable
        );
    }

    #[test]
    fn marginal_pct_with_no_net_change_is_not_increasing() {
        // The failure mode that motivates the dual thresholds: 5 of 9
        // median pairs increase (PCT = 0.556) but the series ends where it
        // started. A single 0.55 threshold would call this increasing.
        let medians = vec![0.0, 10.0, 5.0, 15.0, 8.0, 18.0, 9.0, 19.0, 2.0, 3.0];
        let pct = pct_metric(&medians).unwrap();
        assert!((pct - 5.0 / 9.0).abs() < 1e-12);
        let pdt = pdt_metric(&medians).unwrap();
        assert!(pdt.abs() < 0.1);
        let got = classify_medians(&medians, &cfg());
        assert_ne!(got, StreamClass::Increasing);
    }

    #[test]
    fn conflicting_statistics_are_ambiguous() {
        // Mostly small rises (PCT high) with one crash so the net change is
        // strongly negative (PDT < dec): direct conflict.
        let medians = vec![0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, -200.0];
        assert!(pct_metric(&medians).unwrap() > 0.66);
        assert!(pdt_metric(&medians).unwrap() < 0.45);
        assert_eq!(classify_medians(&medians, &cfg()), StreamClass::Ambiguous);
    }

    #[test]
    fn trend_modes_differ_on_crafted_series() {
        // Rises in many small steps but ends where it started: PCT sees
        // "mostly increasing", PDT sees no net change.
        let medians: Vec<f64> = vec![0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 0.0];
        let mut c = cfg();
        c.trend_mode = TrendMode::PctOnly;
        assert_eq!(classify_medians(&medians, &c), StreamClass::Increasing);
        c.trend_mode = TrendMode::PdtOnly;
        assert_eq!(classify_medians(&medians, &c), StreamClass::NonIncreasing);
        c.trend_mode = TrendMode::Both; // conflict
        assert_eq!(classify_medians(&medians, &c), StreamClass::Ambiguous);
    }

    #[test]
    fn single_mode_ambiguous_band() {
        let mut c = cfg();
        c.trend_mode = TrendMode::PctOnly;
        // 7 of 9 pairs increasing: decisively above the 0.66 threshold.
        let medians = vec![0.0, 1.0, 2.0, 3.0, 2.0, 4.0, 5.0, 6.0, 5.5, 7.0];
        let pct = pct_metric(&medians).unwrap();
        assert!(pct > 0.66);
        assert_eq!(classify_medians(&medians, &c), StreamClass::Increasing);
        // And a PCT in the ambiguous band (5/9 = 0.556) abstains.
        let medians = vec![0.0, 10.0, 5.0, 15.0, 8.0, 18.0, 9.0, 19.0, 2.0, 30.0];
        let pct = pct_metric(&medians).unwrap();
        assert!(pct > 0.54 && pct < 0.66, "pct = {pct}");
        assert_eq!(classify_medians(&medians, &c), StreamClass::Ambiguous);
    }
}
