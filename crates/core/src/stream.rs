//! Periodic-stream parameter selection (§IV "Stream Parameters").
//!
//! Given a target rate `R`, pick packet size `L` and period `T` so that
//! `L·8/T = R` subject to `L_min ≤ L ≤ MTU` and `T ≥ T_min`:
//!
//! * start from `T = T_min` and `L = R·T/8`;
//! * if `L < L_min`, fix `L = L_min` and stretch the period
//!   (`T = L·8/R`) — low rates use small, widely spaced packets;
//! * if `L > MTU`, clamp `L = MTU` — the achievable rate saturates at
//!   `MTU·8/T_min`, the tool's maximum measurable rate.
//!
//! Because `L` is an integer number of bytes, the *actual* rate `L·8/T`
//! can differ slightly from the requested one; the rate-adjustment logic
//! must use the actual rate ([`StreamRequest::actual_rate`]).

use crate::config::SlopsConfig;
use units::{Rate, TimeNs};

/// Fully determined parameters of one periodic stream.
#[derive(Clone, Copy, Debug)]
pub struct StreamRequest {
    /// Stream id (unique within a session; used to tag probe packets).
    pub stream_id: u32,
    /// Packet size L in bytes.
    pub packet_size: u32,
    /// Packet period T.
    pub period: TimeNs,
    /// Number of packets K.
    pub count: u32,
}

impl StreamRequest {
    /// The exact rate realized by these parameters: `L·8/T`.
    pub fn actual_rate(&self) -> Rate {
        Rate::from_bps(self.packet_size as f64 * 8.0 / self.period.secs_f64())
    }

    /// Stream duration `V = K·T`.
    pub fn duration(&self) -> TimeNs {
        self.period * self.count as u64
    }
}

/// Choose stream parameters realizing `rate` as closely as possible under
/// the configuration's constraints (see module docs).
pub fn stream_params(rate: Rate, stream_id: u32, cfg: &SlopsConfig) -> StreamRequest {
    assert!(rate.bps() > 0.0, "stream rate must be positive");
    let t_min = cfg.min_period;
    // L at the minimum period.
    let l_at_tmin = rate.bps() * t_min.secs_f64() / 8.0;
    let (packet_size, period) = if l_at_tmin < cfg.min_packet as f64 {
        // Low rate: fix L = L_min, stretch the period. The period is
        // quantized to whole microseconds like the real tool's
        // gettimeofday-based pacing.
        let l = cfg.min_packet;
        let t_us = (l as f64 * 8.0 / rate.bps() * 1e6).round().max(1.0);
        (l, TimeNs::from_micros(t_us as u64))
    } else if l_at_tmin > cfg.mtu as f64 {
        // Above the measurable maximum: saturate.
        (cfg.mtu, t_min)
    } else {
        (l_at_tmin.round() as u32, t_min)
    };
    StreamRequest {
        stream_id,
        packet_size,
        period,
        count: cfg.stream_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SlopsConfig {
        SlopsConfig::default()
    }

    #[test]
    fn mid_rate_uses_min_period() {
        // 40 Mb/s at T=100us => L = 500 B
        let req = stream_params(Rate::from_mbps(40.0), 0, &cfg());
        assert_eq!(req.period, TimeNs::from_micros(100));
        assert_eq!(req.packet_size, 500);
        assert!((req.actual_rate().mbps() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn low_rate_stretches_period() {
        // 1 Mb/s at T=100us would need L=12.5 B < 200 B: stretch T.
        let req = stream_params(Rate::from_mbps(1.0), 0, &cfg());
        assert_eq!(req.packet_size, 200);
        assert_eq!(req.period, TimeNs::from_micros(1600));
        assert!((req.actual_rate().mbps() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn high_rate_saturates_at_mtu() {
        // 200 Mb/s > max 120 Mb/s: clamp to MTU at T_min.
        let req = stream_params(Rate::from_mbps(200.0), 0, &cfg());
        assert_eq!(req.packet_size, 1500);
        assert_eq!(req.period, TimeNs::from_micros(100));
        assert!((req.actual_rate().mbps() - cfg().max_rate().mbps()).abs() < 1e-9);
    }

    #[test]
    fn rounding_is_reflected_in_actual_rate() {
        // 41.234 Mb/s => L = 515.4 B, rounds to 515 B => actual 41.2 Mb/s.
        let req = stream_params(Rate::from_mbps(41.234), 0, &cfg());
        assert_eq!(req.packet_size, 515);
        assert!((req.actual_rate().mbps() - 41.2).abs() < 1e-9);
    }

    #[test]
    fn duration_is_k_times_t() {
        let req = stream_params(Rate::from_mbps(40.0), 0, &cfg());
        assert_eq!(req.duration(), TimeNs::from_millis(10)); // 100 * 100us
    }

    #[test]
    fn boundary_rate_exactly_min_packet() {
        // Rate that yields exactly L_min at T_min: 200*8/100us = 16 Mb/s.
        let req = stream_params(Rate::from_mbps(16.0), 0, &cfg());
        assert_eq!(req.packet_size, 200);
        assert_eq!(req.period, TimeNs::from_micros(100));
    }
}
