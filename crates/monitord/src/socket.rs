//! The socket-backed fleet driver: monitoring real paths with real
//! UDP/TCP probes, under the same sans-IO [`Scheduler`].
//!
//! Each monitored path is one [`pathload_net::SocketTransport`] connected
//! to a `pathload_rcv` receiver near that path's far end. Receivers are
//! session-multiplexing, so paths whose far ends are co-located may all
//! name the **same** receiver address — each connection becomes its own
//! session, demuxed by the token in every probe packet. All transports
//! of a fleet share **one clock epoch** ([`pathload_net::clock::MonoClock::same_epoch`]):
//! the scheduler staggers starts across paths on a single timeline, so the
//! per-path `elapsed()` clocks must agree on what "now" means.
//!
//! This module adds no policy of its own — it connects transports and
//! hands them to the thread-backed driver ([`crate::thread::run_fleet_with`]),
//! which takes every scheduling decision from the shared [`Scheduler`] and
//! every estimate from the sans-IO `slops::SessionMachine`. Both repo
//! invariants hold by construction: estimation logic lives in the machine,
//! scheduling policy lives in the scheduler.
//!
//! On a wall clock the schedule is best effort: a start instant may
//! already be in the past when its worker picks the job up, in which case
//! the measurement starts immediately (the stagger and the concurrency cap
//! survive; the exact tick grid does not — see `crate::thread`).
//!
//! The `monitord` binary (`crates/monitord/src/bin/monitord.rs`) is a thin
//! shell around [`run_socket_fleet`] plus the JSONL export layer.
//!
//! [`Scheduler`]: crate::scheduler::Scheduler

use crate::metrics::FleetTelemetry;
use crate::scheduler::ScheduleConfig;
use crate::store::{PathSeries, SeriesConfig};
use crate::thread::{run_fleet_with_telemetry, FleetEvent, ShutdownFlag, ThreadPathSpec};
use pathload_net::clock::MonoClock;
use pathload_net::SocketTransport;
use slops::{SlopsConfig, SlopsError, TransportError};
use std::io;
use std::net::SocketAddr;
use units::{Rate, TimeNs};

/// One monitored path of a socket-backed fleet.
#[derive(Clone, Debug)]
pub struct SocketPathSpec {
    /// Label carried into the series and the export layer.
    pub label: String,
    /// Control address of the path's `pathload_rcv` receiver.
    pub ctrl_addr: SocketAddr,
    /// Measurement configuration for this path.
    pub cfg: SlopsConfig,
    /// Override of the transport's pacing rate cap (see
    /// [`SocketTransport::rate_cap`]); `None` keeps the default.
    pub rate_cap: Option<Rate>,
}

/// Connect one [`SocketTransport`] per path, all sharing a single clock
/// epoch. Returns the epoch clock (so an event loop can read the same
/// timeline) and the connected `(spec, transport)` pairs in path order.
/// Shared by the thread-backed ([`connect_fleet`]) and event-loop
/// ([`crate::evented::run_socket_fleet_async`]) drivers.
pub(crate) fn connect_transports(
    specs: Vec<SocketPathSpec>,
    telemetry: Option<&FleetTelemetry>,
) -> io::Result<(MonoClock, Vec<(SocketPathSpec, SocketTransport)>)> {
    let epoch = MonoClock::new();
    let mut out = Vec::with_capacity(specs.len());
    for spec in specs {
        let mut transport =
            SocketTransport::connect_with_clock(spec.ctrl_addr, epoch.same_epoch())?;
        if let Some(cap) = spec.rate_cap {
            transport.rate_cap = cap;
        }
        if let Some(t) = telemetry {
            transport.set_pacing_histogram(t.pacing_histogram(&spec.label));
        }
        out.push((spec, transport));
    }
    Ok((epoch, out))
}

/// Connect one [`SocketTransport`] per path, all sharing a single clock
/// epoch, and package them for the thread-backed fleet driver.
///
/// The control connections are long-lived: each receiver serves this
/// fleet's path for the whole monitoring run (every periodic measurement
/// reuses the same control channel and UDP socket).
pub fn connect_fleet(specs: Vec<SocketPathSpec>) -> io::Result<Vec<ThreadPathSpec>> {
    connect_fleet_with_telemetry(specs, None)
}

/// [`connect_fleet`] plus an optional [`FleetTelemetry`] hub: each
/// transport's per-packet pacing error is observed into the hub's
/// `pacing_error_ns{path="…"}` histogram.
pub fn connect_fleet_with_telemetry(
    specs: Vec<SocketPathSpec>,
    telemetry: Option<&FleetTelemetry>,
) -> io::Result<Vec<ThreadPathSpec>> {
    let (_epoch, connected) = connect_transports(specs, telemetry)?;
    Ok(connected
        .into_iter()
        .map(|(spec, transport)| ThreadPathSpec {
            label: spec.label,
            cfg: spec.cfg,
            transport: Box::new(transport),
        })
        .collect())
}

/// Run a socket-backed monitoring fleet to completion: connect every
/// path, then measure each periodically (staggered, jittered, capped —
/// see [`ScheduleConfig`]) until `horizon` of wall-clock time has passed
/// since the fleet connected, streaming a [`FleetEvent`] to `observer`
/// for every stored sample, failure, and flagged change.
///
/// Returns the per-path series in path order. Connection failures are
/// fatal (a fleet that cannot reach a receiver is misconfigured); failures
/// of individual *measurements* after that are counted on the path's
/// series and monitoring continues.
pub fn run_socket_fleet(
    specs: Vec<SocketPathSpec>,
    sched_cfg: &ScheduleConfig,
    series_cfg: &SeriesConfig,
    horizon: TimeNs,
    threads: usize,
    observer: impl FnMut(FleetEvent<'_>),
) -> Result<Vec<PathSeries>, SlopsError> {
    run_socket_fleet_with_shutdown(
        specs,
        sched_cfg,
        series_cfg,
        horizon,
        threads,
        &ShutdownFlag::new(),
        observer,
    )
}

/// [`run_socket_fleet`] plus a cooperative [`ShutdownFlag`] (see
/// [`crate::thread::run_fleet_with_shutdown`]): what the `monitord` binary runs so
/// SIGINT/SIGTERM can stop new starts, let in-flight measurements land,
/// and still flush per-path summaries for the data collected so far.
pub fn run_socket_fleet_with_shutdown(
    specs: Vec<SocketPathSpec>,
    sched_cfg: &ScheduleConfig,
    series_cfg: &SeriesConfig,
    horizon: TimeNs,
    threads: usize,
    stop: &ShutdownFlag,
    observer: impl FnMut(FleetEvent<'_>),
) -> Result<Vec<PathSeries>, SlopsError> {
    run_socket_fleet_with_telemetry(
        specs, sched_cfg, series_cfg, horizon, threads, stop, None, observer,
    )
}

/// [`run_socket_fleet_with_shutdown`] plus an optional [`FleetTelemetry`]
/// hub: pacing-error histograms on every transport, machine trace events
/// forwarded per path, scheduler gauges mirrored live — everything a
/// `monitord --metrics` scrape serves mid-run.
#[allow(clippy::too_many_arguments)]
pub fn run_socket_fleet_with_telemetry(
    specs: Vec<SocketPathSpec>,
    sched_cfg: &ScheduleConfig,
    series_cfg: &SeriesConfig,
    horizon: TimeNs,
    threads: usize,
    stop: &ShutdownFlag,
    telemetry: Option<&FleetTelemetry>,
    observer: impl FnMut(FleetEvent<'_>),
) -> Result<Vec<PathSeries>, SlopsError> {
    let paths = connect_fleet_with_telemetry(specs, telemetry)
        .map_err(|e| SlopsError::Transport(TransportError::Io(e.to_string())))?;
    run_fleet_with_telemetry(
        paths, sched_cfg, series_cfg, horizon, threads, stop, telemetry, observer,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathload_net::Receiver;
    use std::thread;

    fn gentle_cfg() -> SlopsConfig {
        let mut cfg = SlopsConfig::default();
        cfg.stream_len = 20;
        cfg.fleet_len = 3;
        cfg.min_period = TimeNs::from_millis(1);
        cfg.resolution = Rate::from_mbps(10.0);
        cfg.grey_resolution = Rate::from_mbps(20.0);
        cfg.max_fleets = 4;
        cfg
    }

    /// Two loopback paths sharing ONE receiver address (the multi-session
    /// receiver demuxes them), one short monitoring run: transports share
    /// an epoch, every path gets at least one sample, nothing errors.
    #[test]
    fn loopback_pair_shares_one_receiver() {
        let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = rx.ctrl_addr();
        let server = thread::spawn(move || rx.serve_n(2));
        let specs: Vec<SocketPathSpec> = (0..2)
            .map(|i| SocketPathSpec {
                label: format!("lo{i}"),
                ctrl_addr: addr,
                cfg: gentle_cfg(),
                rate_cap: Some(Rate::from_mbps(30.0)),
            })
            .collect();
        let sched = ScheduleConfig {
            period: TimeNs::from_secs(2),
            jitter: TimeNs::from_millis(100),
            max_concurrent: 1,
            seed: 1,
        };
        let mut samples = 0usize;
        let series = run_socket_fleet(
            specs,
            &sched,
            &SeriesConfig::default(),
            TimeNs::from_secs(4),
            2,
            |ev| {
                if matches!(ev, FleetEvent::Sample { .. }) {
                    samples += 1;
                }
            },
        )
        .unwrap();
        assert_eq!(series.len(), 2);
        for s in &series {
            assert!(!s.is_empty(), "{}: no samples", s.label());
            assert_eq!(s.errors(), 0, "{}: errored", s.label());
            for r in s.samples() {
                assert!(r.low.bps() <= r.high.bps());
            }
        }
        assert_eq!(samples, series.iter().map(|s| s.len()).sum::<usize>());
        server.join().unwrap().unwrap();
    }

    /// A shutdown request cancels a start whose worker is still idling
    /// toward a future start instant: with path 1 staggered 5 s out and
    /// the flag raised at ~1.5 s, the fleet returns promptly (path 1 is
    /// never measured) instead of sleeping out the stagger and probing
    /// after the signal.
    #[test]
    fn shutdown_cancels_a_dispatched_but_unstarted_measurement() {
        use crate::thread::ShutdownFlag;
        use std::time::{Duration, Instant};

        let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = rx.ctrl_addr();
        let server = thread::spawn(move || rx.serve_n(2));
        let specs: Vec<SocketPathSpec> = (0..2)
            .map(|i| SocketPathSpec {
                label: format!("lo{i}"),
                ctrl_addr: addr,
                cfg: gentle_cfg(),
                rate_cap: Some(Rate::from_mbps(30.0)),
            })
            .collect();
        let sched = ScheduleConfig {
            period: TimeNs::from_secs(10), // stagger puts path 1 at +5 s
            jitter: TimeNs::ZERO,
            max_concurrent: 2,
            seed: 2,
        };
        let stop = ShutdownFlag::new();
        let signal = {
            let stop = stop.clone();
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(1_500));
                stop.request();
            })
        };
        let begun = Instant::now();
        let series = crate::socket::run_socket_fleet_with_shutdown(
            specs,
            &sched,
            &SeriesConfig::default(),
            TimeNs::from_secs(60),
            2,
            &stop,
            |_| {},
        )
        .unwrap();
        let elapsed = begun.elapsed();
        signal.join().unwrap();
        server.join().unwrap().unwrap();

        // Path 0 measured once (it started immediately); path 1's start
        // was cancelled mid-idle — no sample, no error.
        assert_eq!(series[0].len(), 1, "path 0 measures before the signal");
        assert_eq!(series[1].len(), 0, "path 1 must be cancelled, not measured");
        assert_eq!(series[0].errors() + series[1].errors(), 0);
        assert!(
            elapsed < Duration::from_millis(4_500),
            "shutdown waited out the stagger: {elapsed:?}"
        );
    }

    /// A fleet with an unreachable receiver fails to connect, fatally.
    #[test]
    fn unreachable_receiver_is_a_connect_error() {
        // Bind-and-drop to get a port that is almost surely closed.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let specs = vec![SocketPathSpec {
            label: "dead".into(),
            ctrl_addr: dead,
            cfg: gentle_cfg(),
            rate_cap: None,
        }];
        let err = run_socket_fleet(
            specs,
            &ScheduleConfig::default(),
            &SeriesConfig::default(),
            TimeNs::from_secs(1),
            1,
            |_| {},
        );
        assert!(matches!(err, Err(SlopsError::Transport(_))));
    }
}
