//! Fleet-level telemetry: one shared [`Registry`] behind every driver,
//! the digest, and the scrape endpoint.
//!
//! [`FleetTelemetry`] is the daemon's single source of observability
//! truth: the per-path pacing-error histograms, the machine-minted trace
//! events mirrored into counters, the scheduler gauges, and the receiver
//! drop counters (loopback mode) all land in **one** registry. The
//! Prometheus scrape endpoint, the periodic JSONL `telemetry` record, and
//! the end-of-run stderr digest are all renderings of that registry, so
//! they cannot disagree.
//!
//! The layering contract extends to telemetry: **drivers forward trace
//! events, they never synthesize estimation telemetry**. Every
//! [`TraceEvent`] counted here was minted by the sans-IO
//! `slops::SessionMachine`; the driver's only role is relaying it to the
//! per-path [`TraceSink`] this module hands out. Scheduler gauges are
//! mirrored from the sans-IO [`Scheduler`]'s deterministic accessors
//! ([`Scheduler::running`] and friends), so the thread and async drivers
//! report identical values for identical schedules.

use crate::scheduler::Scheduler;
use std::sync::{Arc, Mutex};
use telemetry::{Counter, Histogram, Registry, TraceEvent, TraceSink};
use units::TimeNs;

/// The shared observability state of one monitoring fleet.
///
/// Create one per daemon run, pass it (by reference) to the
/// `*_with_telemetry` fleet drivers, and serve or print snapshots of
/// [`FleetTelemetry::registry`] wherever they are needed.
pub struct FleetTelemetry {
    registry: Registry,
    /// Pacing-error histograms handed out so far, in hand-out order, so
    /// the digest can walk them per path without a registry iterator.
    pacing: Mutex<Vec<(String, Histogram)>>,
}

impl Default for FleetTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl FleetTelemetry {
    /// A fresh telemetry hub with its own empty registry.
    pub fn new() -> FleetTelemetry {
        FleetTelemetry {
            registry: Registry::new(),
            pacing: Mutex::new(Vec::new()),
        }
    }

    /// The underlying registry (clone it into a
    /// [`telemetry::MetricsServer`], render it, attach receiver counters).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The per-packet pacing-error histogram of path `label`
    /// (`pacing_error_ns{path="…"}`): how late each probe packet left
    /// relative to its periodic deadline.
    pub fn pacing_histogram(&self, label: &str) -> Histogram {
        let h = self
            .registry
            .histogram("pacing_error_ns", &[("path", label)]);
        let mut pacing = self.pacing.lock().expect("pacing list poisoned");
        if !pacing.iter().any(|(l, _)| l == label) {
            pacing.push((label.to_string(), h.clone()));
        }
        h
    }

    /// A [`TraceSink`] that mirrors path `label`'s machine-minted trace
    /// events into the registry (phase transitions, stream and fleet
    /// verdicts, session terminations, timer lag).
    pub fn trace_sink(&self, label: &str) -> Arc<dyn TraceSink> {
        Arc::new(RegistrySink::new(self.registry.clone(), label.to_string()))
    }

    /// Mirror the scheduler's deterministic accessors into the fleet
    /// gauges. `now` is the driver's latest known fleet-clock instant
    /// (used for the backlog depth).
    pub(crate) fn observe_scheduler(&self, sched: &Scheduler, now: TimeNs) {
        self.registry
            .gauge("scheduler_running", &[])
            .set(sched.running() as i64);
        self.registry
            .gauge("scheduler_backlog", &[])
            .set(sched.backlog(now) as i64);
        self.registry
            .gauge("scheduler_started", &[])
            .set(sched.started() as i64);
        self.registry
            .gauge("scheduler_overruns", &[])
            .set(sched.overruns() as i64);
    }

    /// Scheduler snapshot `(running, backlog, started, overruns)` as last
    /// mirrored, for the JSONL `telemetry` record.
    pub fn scheduler_snapshot(&self) -> (i64, i64, i64, i64) {
        (
            self.registry.gauge("scheduler_running", &[]).get(),
            self.registry.gauge("scheduler_backlog", &[]).get(),
            self.registry.gauge("scheduler_started", &[]).get(),
            self.registry.gauge("scheduler_overruns", &[]).get(),
        )
    }

    /// Per-path pacing quantiles `(label, p50_ns, p99_ns, packets)`, in
    /// the order the paths were instrumented. Paths that sent nothing yet
    /// are included with zero packets.
    pub fn pacing_quantiles(&self) -> Vec<(String, u64, u64, u64)> {
        self.pacing
            .lock()
            .expect("pacing list poisoned")
            .iter()
            .map(|(label, h)| {
                (
                    label.clone(),
                    h.quantile(0.5).unwrap_or(0),
                    h.quantile(0.99).unwrap_or(0),
                    h.count(),
                )
            })
            .collect()
    }

    /// The end-of-run stderr digest: per-path p50/p99 pacing error, read
    /// from the same registry handles the scrape endpoint serves.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for (label, p50, p99, packets) in self.pacing_quantiles() {
            out.push_str(&format!(
                "{label:<10} pacing error p50 <= {:>9} ns  p99 <= {:>9} ns  ({packets} packets)\n",
                p50, p99
            ));
        }
        let (running, backlog, started, overruns) = self.scheduler_snapshot();
        out.push_str(&format!(
            "scheduler  started {started}  overruns {overruns}  \
             running {running}  backlog {backlog}\n"
        ));
        out
    }
}

/// Mirrors machine-minted trace events into registry series, labeled by
/// path. Counting happens here, at the sink — the machine stays pure data
/// and the drivers stay relays.
///
/// The sink is on the measurement hot path (a session mints a trace
/// event per phase transition and per stream), so every counter for the
/// machine's fixed label vocabularies ([`slops::StreamClass::ALL`], …)
/// is resolved ONCE at construction; recording is a short
/// pointer-equality scan of a pre-built table plus one atomic increment,
/// with no registry lock or allocation. Unknown label values (a newer
/// machine than this sink) fall back to a registry lookup.
///
/// [`TraceEvent::Phase`] transitions are deliberately NOT mirrored:
/// they fire on every machine step (~4 per probe stream), their value
/// is in ordered traces (the driver-equivalence tests consume them via
/// [`telemetry::VecSink`]), and counting them would put a registry
/// operation on the machine's hottest path for a cumulative number with
/// no operational meaning — `streams_total` and `fleet_verdicts_total`
/// already aggregate the same progress at a useful granularity. This is
/// what keeps the instrumented machine within the benched <5% overhead
/// budget (`BENCH_7.json`).
struct RegistrySink {
    registry: Registry,
    label: String,
    streams: Vec<(&'static str, Counter)>,
    fleets: Vec<(&'static str, Counter)>,
    done: Vec<(&'static str, Counter)>,
    timer_lag: Histogram,
}

impl RegistrySink {
    fn new(registry: Registry, label: String) -> RegistrySink {
        let family = |name: &str, key: &str, values: &[&'static str]| {
            values
                .iter()
                .map(|v| {
                    (
                        *v,
                        registry.counter(name, &[("path", label.as_str()), (key, v)]),
                    )
                })
                .collect::<Vec<_>>()
        };
        RegistrySink {
            streams: family(
                "streams_total",
                "verdict",
                &slops::StreamClass::ALL.map(|c| c.name()),
            ),
            fleets: family(
                "fleet_verdicts_total",
                "verdict",
                &slops::FleetOutcome::ALL.map(|o| o.name()),
            ),
            done: family(
                "sessions_done_total",
                "termination",
                &slops::Termination::ALL.map(|t| t.name()),
            ),
            timer_lag: registry.histogram("machine_timer_lag_ns", &[("path", label.as_str())]),
            registry,
            label,
        }
    }

    /// Bump the pre-resolved counter for `value`, or fall back to a
    /// registry lookup for a label value this sink does not know.
    fn bump(&self, table: &[(&'static str, Counter)], name: &str, key: &str, value: &str) {
        // The &'static str labels come from single per-variant constants,
        // so the pointer-equality pass hits in practice; the content pass
        // keeps the scan correct if a value was ever re-materialized.
        for (v, c) in table {
            if std::ptr::eq(*v, value) {
                c.inc();
                return;
            }
        }
        for (v, c) in table {
            if *v == value {
                c.inc();
                return;
            }
        }
        self.registry
            .counter(name, &[("path", &self.label), (key, value)])
            .inc();
    }
}

impl TraceSink for RegistrySink {
    fn record(&self, event: &TraceEvent) {
        match event {
            // Not mirrored (see the type docs): machine-step frequency,
            // trace-level value only.
            TraceEvent::Phase { .. } => {}
            TraceEvent::Stream { verdict, .. } => {
                self.bump(&self.streams, "streams_total", "verdict", verdict);
            }
            TraceEvent::FleetVerdict { verdict, .. } => {
                self.bump(&self.fleets, "fleet_verdicts_total", "verdict", verdict);
            }
            TraceEvent::SessionDone { termination, .. } => {
                self.bump(
                    &self.done,
                    "sessions_done_total",
                    "termination",
                    termination,
                );
            }
            TraceEvent::TimerLag { lag_ns } => self.timer_lag.observe(*lag_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ScheduleConfig;

    #[test]
    fn trace_sink_mirrors_events_into_labeled_series() {
        let t = FleetTelemetry::new();
        let sink = t.trace_sink("atl-gru");
        sink.record(&TraceEvent::Phase {
            from: "adr_probe",
            to: "fleet",
        });
        sink.record(&TraceEvent::Stream {
            id: 0,
            sent: 100,
            received: 98,
            verdict: "increasing",
        });
        sink.record(&TraceEvent::FleetVerdict {
            rate_bps: 10_000_000,
            streams: 12,
            verdict: "above_avail_bw",
        });
        sink.record(&TraceEvent::SessionDone {
            low_bps: 1,
            high_bps: 2,
            termination: "resolution",
            fleets: 3,
        });
        sink.record(&TraceEvent::TimerLag { lag_ns: 1500 });
        let text = t.registry().render_prometheus();
        for needle in [
            "streams_total{path=\"atl-gru\",verdict=\"increasing\"} 1",
            "fleet_verdicts_total{path=\"atl-gru\",verdict=\"above_avail_bw\"} 1",
            "sessions_done_total{path=\"atl-gru\",termination=\"resolution\"} 1",
            "machine_timer_lag_ns_count{path=\"atl-gru\"} 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Phase transitions stay trace-only (see RegistrySink docs).
        assert!(!text.contains("session_phase_transitions_total"), "{text}");
    }

    /// A verdict string that did not come from the pre-resolved
    /// vocabulary (e.g. a newer machine) still lands in the registry via
    /// the slow path — nothing is silently dropped.
    #[test]
    fn unknown_label_values_fall_back_to_the_registry() {
        let t = FleetTelemetry::new();
        let sink = t.trace_sink("p");
        sink.record(&TraceEvent::Stream {
            id: 0,
            sent: 1,
            received: 1,
            verdict: "from_the_future",
        });
        // The same value again exercises the content-equality pass with
        // a distinct allocation of the same label text.
        let owned = String::from("increasing");
        sink.record(&TraceEvent::Stream {
            id: 1,
            sent: 1,
            received: 1,
            verdict: Box::leak(owned.into_boxed_str()),
        });
        let text = t.registry().render_prometheus();
        assert!(
            text.contains("streams_total{path=\"p\",verdict=\"from_the_future\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("streams_total{path=\"p\",verdict=\"increasing\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn digest_and_scrape_read_the_same_state() {
        let t = FleetTelemetry::new();
        let h = t.pacing_histogram("lo0");
        h.observe(900);
        h.observe(1100);
        let mut sched = Scheduler::new(
            2,
            TimeNs::ZERO,
            TimeNs::from_secs(100),
            &ScheduleConfig::default(),
        );
        let _ = sched.poll();
        t.observe_scheduler(&sched, TimeNs::ZERO);
        let digest = t.digest();
        assert!(digest.contains("lo0"), "{digest}");
        assert!(digest.contains("(2 packets)"), "{digest}");
        assert!(digest.contains("started 1"), "{digest}");
        // The scrape endpoint serves the very same numbers.
        let text = t.registry().render_prometheus();
        assert!(
            text.contains("pacing_error_ns_count{path=\"lo0\"} 2"),
            "{text}"
        );
        assert!(text.contains("scheduler_started 1"), "{text}");
        // Re-requesting a path's histogram returns the same series.
        t.pacing_histogram("lo0").observe(1);
        assert_eq!(t.pacing_quantiles().len(), 1);
        assert_eq!(t.pacing_quantiles()[0].3, 3);
    }
}
