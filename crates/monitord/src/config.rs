//! The `monitord` daemon configuration: a tiny line-based format.
//!
//! One directive per line, `key value...`; `#` starts a comment. The
//! format is hand-rolled for the same reason the JSONL encoder is: the
//! workspace is offline, records are flat, and a config framework would
//! be its only external dependency.
//!
//! ```text
//! # paths to monitor: `path <label> <receiver host:port>`
//! # (labels must be unique; addresses need not be — one multi-session
//! # pathload_rcv serves any number of co-located paths on one port)
//! path atl-gru 192.0.2.7:9100
//! path atl-fra 198.51.100.3:9100
//! path atl-fra-alt 198.51.100.3:9100
//!
//! period_s 30          # start-to-start spacing per path
//! jitter_s 2           # random addition to each path's initial offset
//! max_concurrent 1     # probe streams in flight at once (0 = unlimited)
//! window_s 300         # tumbling window of the change detector
//! capacity 4096        # ring-buffer samples kept per path (0 = unbounded)
//! horizon_s 3600       # stop issuing measurements after this long
//! threads 0            # worker threads (0 = one per CPU)
//! out -                # JSONL sink: `-` for stdout, else a file path
//! rate_cap_mbps 80     # pacing ceiling of the sender transports
//!
//! # probing knobs (defaults are the paper's; override for gentle paths)
//! stream_len 100
//! fleet_len 12
//! min_period_us 100
//! resolution_mbps 1
//! grey_resolution_mbps 2
//! max_fleets 64
//! ```
//!
//! Unknown keys are errors (they are invariably typos), as are missing
//! `path` lines. Parsing does not resolve addresses — the binary resolves
//! each path's `host:port` when it connects, so a config referencing a
//! currently-unresolvable host still parses.

use crate::scheduler::ScheduleConfig;
use crate::store::SeriesConfig;
use core::fmt;
use slops::SlopsConfig;
use units::{Rate, TimeNs};

/// One `path` directive: a label and an unresolved `host:port`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathEntry {
    /// Label carried into the series and every JSONL record.
    pub label: String,
    /// The path's `pathload_rcv` control address (resolved at connect).
    pub addr: String,
}

/// A parsed `monitord` configuration.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// The monitored paths, in file order.
    pub paths: Vec<PathEntry>,
    /// Fleet scheduling knobs (period, jitter, concurrency cap, seed).
    pub schedule: ScheduleConfig,
    /// Per-path series knobs (ring capacity, change-detector window).
    pub series: SeriesConfig,
    /// Stop issuing new measurements this long after the fleet connects.
    pub horizon: TimeNs,
    /// Worker threads per measurement wave (0 = one per CPU).
    pub threads: usize,
    /// JSONL sink: `None` for stdout, `Some(path)` for a file.
    pub out: Option<String>,
    /// Probing configuration applied to every path.
    pub probe: SlopsConfig,
    /// Pacing ceiling of the sender transports, if overridden.
    pub rate_cap: Option<Rate>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            paths: Vec::new(),
            schedule: ScheduleConfig::default(),
            series: SeriesConfig::default(),
            horizon: TimeNs::from_secs(3600),
            threads: 0,
            out: None,
            probe: SlopsConfig::default(),
            rate_cap: None,
        }
    }
}

/// A rejected configuration line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number of the offending directive.
    pub line: usize,
    /// What was wrong with it.
    pub msg: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ConfigError {}

impl DaemonConfig {
    /// Parse a configuration from the line-based format above.
    pub fn parse(text: &str) -> Result<DaemonConfig, ConfigError> {
        let mut cfg = DaemonConfig::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let err = |msg: String| ConfigError { line: lineno, msg };
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let key = tokens.next().expect("non-empty line has a first token");
            let rest: Vec<&str> = tokens.collect();
            let one = || -> Result<&str, ConfigError> {
                match rest.as_slice() {
                    [v] => Ok(v),
                    _ => Err(err(format!("`{key}` wants exactly one value"))),
                }
            };
            match key {
                "path" => match rest.as_slice() {
                    [label, addr] => {
                        if cfg.paths.iter().any(|p| p.label == *label) {
                            return Err(err(format!("duplicate path label {label:?}")));
                        }
                        // Duplicate *addresses* are fine: the receiver is
                        // session-multiplexing, so co-located paths share
                        // one `pathload_rcv` control port by design.
                        cfg.paths.push(PathEntry {
                            label: (*label).to_string(),
                            addr: (*addr).to_string(),
                        });
                    }
                    _ => return Err(err("`path` wants `<label> <host:port>`".into())),
                },
                "period_s" => cfg.schedule.period = secs(key, one()?, lineno)?,
                "jitter_s" => cfg.schedule.jitter = secs(key, one()?, lineno)?,
                "max_concurrent" => cfg.schedule.max_concurrent = int(key, one()?, lineno)?,
                "seed" => cfg.schedule.seed = int(key, one()?, lineno)?,
                "window_s" => cfg.series.window = secs(key, one()?, lineno)?,
                "capacity" => cfg.series.capacity = int(key, one()?, lineno)?,
                "horizon_s" => cfg.horizon = secs(key, one()?, lineno)?,
                "threads" => cfg.threads = int(key, one()?, lineno)?,
                "out" => {
                    let v = one()?;
                    cfg.out = if v == "-" { None } else { Some(v.to_string()) };
                }
                "rate_cap_mbps" => {
                    cfg.rate_cap = Some(Rate::from_mbps(float(key, one()?, lineno)?))
                }
                "stream_len" => cfg.probe.stream_len = int(key, one()?, lineno)?,
                "fleet_len" => cfg.probe.fleet_len = int(key, one()?, lineno)?,
                "min_period_us" => {
                    cfg.probe.min_period = TimeNs::from_micros(int(key, one()?, lineno)?)
                }
                "resolution_mbps" => {
                    cfg.probe.resolution = Rate::from_mbps(float(key, one()?, lineno)?)
                }
                "grey_resolution_mbps" => {
                    cfg.probe.grey_resolution = Rate::from_mbps(float(key, one()?, lineno)?)
                }
                "max_fleets" => cfg.probe.max_fleets = int(key, one()?, lineno)?,
                other => return Err(err(format!("unknown directive `{other}`"))),
            }
        }
        if cfg.paths.is_empty() {
            return Err(ConfigError {
                line: 0,
                msg: "no `path` directives: nothing to monitor".into(),
            });
        }
        if cfg.horizon.is_zero() {
            return Err(ConfigError {
                line: 0,
                msg: "horizon_s must be positive".into(),
            });
        }
        cfg.probe.validate().map_err(|msg| ConfigError {
            line: 0,
            msg: format!("probing configuration rejected: {msg}"),
        })?;
        Ok(cfg)
    }
}

fn float(key: &str, v: &str, line: usize) -> Result<f64, ConfigError> {
    match v.parse::<f64>() {
        Ok(x) if x.is_finite() && x >= 0.0 => Ok(x),
        _ => Err(ConfigError {
            line,
            msg: format!("`{key}` wants a non-negative number, got {v:?}"),
        }),
    }
}

fn secs(key: &str, v: &str, line: usize) -> Result<TimeNs, ConfigError> {
    Ok(TimeNs::from_secs_f64(float(key, v, line)?))
}

fn int<T: TryFrom<u64>>(key: &str, v: &str, line: usize) -> Result<T, ConfigError> {
    v.parse::<u64>()
        .ok()
        .and_then(|x| T::try_from(x).ok())
        .ok_or_else(|| ConfigError {
            line,
            msg: format!("`{key}` wants a non-negative integer, got {v:?}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# a fleet of two
path a 127.0.0.1:9100   # trailing comment
path b 127.0.0.1:9101

period_s 12.5
jitter_s 0.5
max_concurrent 2
seed 99
window_s 60
capacity 128
horizon_s 120
threads 3
out /tmp/fleet.jsonl
rate_cap_mbps 40
stream_len 50
min_period_us 500
resolution_mbps 4
grey_resolution_mbps 8
max_fleets 16
";

    #[test]
    fn full_config_round_trips() {
        let cfg = DaemonConfig::parse(GOOD).unwrap();
        assert_eq!(cfg.paths.len(), 2);
        assert_eq!(cfg.paths[0].label, "a");
        assert_eq!(cfg.paths[1].addr, "127.0.0.1:9101");
        assert_eq!(cfg.schedule.period, TimeNs::from_secs_f64(12.5));
        assert_eq!(cfg.schedule.jitter, TimeNs::from_secs_f64(0.5));
        assert_eq!(cfg.schedule.max_concurrent, 2);
        assert_eq!(cfg.schedule.seed, 99);
        assert_eq!(cfg.series.window, TimeNs::from_secs(60));
        assert_eq!(cfg.series.capacity, 128);
        assert_eq!(cfg.horizon, TimeNs::from_secs(120));
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.out.as_deref(), Some("/tmp/fleet.jsonl"));
        assert_eq!(cfg.rate_cap.unwrap().mbps(), 40.0);
        assert_eq!(cfg.probe.stream_len, 50);
        assert_eq!(cfg.probe.min_period, TimeNs::from_micros(500));
        assert_eq!(cfg.probe.max_fleets, 16);
    }

    #[test]
    fn defaults_fill_the_gaps() {
        let cfg = DaemonConfig::parse("path p 10.0.0.1:9100\n").unwrap();
        assert_eq!(cfg.schedule.period, ScheduleConfig::default().period);
        assert_eq!(cfg.horizon, TimeNs::from_secs(3600));
        assert!(cfg.out.is_none());
        assert!(cfg.rate_cap.is_none());
    }

    #[test]
    fn out_dash_means_stdout() {
        let cfg = DaemonConfig::parse("path p 10.0.0.1:9100\nout -\n").unwrap();
        assert!(cfg.out.is_none());
    }

    #[test]
    fn bad_lines_are_rejected_with_position() {
        for (text, needle) in [
            ("path p 1.2.3.4:9100\nbogus 3\n", "unknown directive"),
            ("path p\n", "`path` wants"),
            (
                "path p 1.2.3.4:1\npath p 1.2.3.4:2\n",
                "duplicate path label",
            ),
            ("path p 1.2.3.4:1\nperiod_s fast\n", "non-negative number"),
            ("path p 1.2.3.4:1\nthreads -2\n", "non-negative integer"),
            ("path p 1.2.3.4:1\nperiod_s 1 2\n", "exactly one value"),
            ("", "no `path` directives"),
            (
                "path p 1.2.3.4:1\nhorizon_s 0\n",
                "horizon_s must be positive",
            ),
        ] {
            let err = DaemonConfig::parse(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{text:?} => {err} (wanted {needle:?})"
            );
        }
        // The error names the offending line.
        let err = DaemonConfig::parse("path p 1.2.3.4:9100\n\nbogus 3\n").unwrap_err();
        assert_eq!(err.line, 3);
    }

    /// The receiver is session-multiplexing, so paths sharing one
    /// `pathload_rcv` address is the intended co-located deployment and
    /// must parse (duplicate *labels* stay an error).
    #[test]
    fn shared_receiver_address_is_allowed() {
        let cfg = DaemonConfig::parse("path a 192.0.2.7:9100\npath b 192.0.2.7:9100\n").unwrap();
        assert_eq!(cfg.paths.len(), 2);
        assert_eq!(cfg.paths[0].addr, cfg.paths[1].addr);
    }

    #[test]
    fn invalid_probe_config_is_rejected() {
        let err = DaemonConfig::parse("path p 1.2.3.4:1\nstream_len 0\n").unwrap_err();
        assert!(err.to_string().contains("probing configuration rejected"));
    }
}
