//! The `monitord` daemon configuration: a tiny line-based format.
//!
//! One directive per line, `key value...`; `#` starts a comment. The
//! format is hand-rolled for the same reason the JSONL encoder is: the
//! workspace is offline, records are flat, and a config framework would
//! be its only external dependency.
//!
//! ```text
//! # paths to monitor: `path <label> <host:port> [key=value ...]`
//! # (labels must be unique; addresses need not be — one multi-session
//! # pathload_rcv serves any number of co-located paths on one port)
//! path atl-gru 192.0.2.7:9100
//! path atl-fra 198.51.100.3:9100
//! # per-path probe overrides: a gentle DSL path probed with shorter,
//! # slower streams than the fleet default
//! path atl-dsl 203.0.113.9:9100 stream_len=50 rate_cap_mbps=8 resolution_mbps=0.5
//!
//! period_s 30          # start-to-start spacing per path
//! jitter_s 2           # random addition to each path's initial offset
//! max_concurrent 1     # probe streams in flight at once (0 = unlimited)
//! window_s 300         # tumbling window of the change detector
//! capacity 4096        # ring-buffer samples kept per path (0 = unbounded)
//! horizon_s 3600       # stop issuing measurements after this long
//! threads 0            # worker threads (0 = one per CPU)
//! out -                # JSONL sink: `-` for stdout, else a file path
//! rate_cap_mbps 80     # pacing ceiling of the sender transports
//! metrics 127.0.0.1:9091  # serve a Prometheus-text snapshot here
//!
//! # probing knobs (defaults are the paper's; override for gentle paths)
//! stream_len 100
//! fleet_len 12
//! min_period_us 100
//! resolution_mbps 1
//! grey_resolution_mbps 2
//! max_fleets 64
//! ```
//!
//! The probing knobs (`stream_len`, `fleet_len`, `min_period_us`,
//! `resolution_mbps`, `grey_resolution_mbps`, `max_fleets`,
//! `rate_cap_mbps`) may also appear as `key=value` fields on an
//! individual `path` line; the override beats the global directive for
//! that path regardless of file order ([`DaemonConfig::probe_for`] /
//! [`DaemonConfig::rate_cap_for`] resolve the merge). Heterogeneous
//! fleets need this: a 100 Mb/s office path and an 8 Mb/s DSL tail can
//! share one config without probing the DSL line at office rates.
//!
//! Unknown keys are errors (they are invariably typos), both as
//! directives and as path overrides, as are missing `path` lines.
//! Parsing does not resolve addresses — the binary resolves each path's
//! `host:port` when it connects, so a config referencing a
//! currently-unresolvable host still parses.

use crate::scheduler::ScheduleConfig;
use crate::store::SeriesConfig;
use core::fmt;
use slops::SlopsConfig;
use units::{Rate, TimeNs};

/// One `path` directive: a label, an unresolved `host:port`, and any
/// per-path probe overrides given as `key=value` fields on the line.
#[derive(Clone, Debug, PartialEq)]
pub struct PathEntry {
    /// Label carried into the series and every JSONL record.
    pub label: String,
    /// The path's `pathload_rcv` control address (resolved at connect).
    pub addr: String,
    /// Per-path probe overrides (fields left `None` inherit the global
    /// probing configuration; see [`DaemonConfig::probe_for`]).
    pub overrides: ProbeOverrides,
}

/// Per-path overrides of the probing knobs, parsed from `key=value`
/// fields on a `path` line. Every field is optional; `None` means
/// "inherit the global directive".
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProbeOverrides {
    /// Overrides the global `stream_len`.
    pub stream_len: Option<u32>,
    /// Overrides the global `fleet_len`.
    pub fleet_len: Option<u32>,
    /// Overrides the global `min_period_us`.
    pub min_period: Option<TimeNs>,
    /// Overrides the global `resolution_mbps`.
    pub resolution: Option<Rate>,
    /// Overrides the global `grey_resolution_mbps`.
    pub grey_resolution: Option<Rate>,
    /// Overrides the global `max_fleets`.
    pub max_fleets: Option<u32>,
    /// Overrides the global `rate_cap_mbps`.
    pub rate_cap: Option<Rate>,
}

impl ProbeOverrides {
    /// True when no field overrides anything.
    pub fn is_empty(&self) -> bool {
        *self == ProbeOverrides::default()
    }

    /// Apply the overrides onto a base probing configuration.
    pub fn apply(&self, base: &SlopsConfig) -> SlopsConfig {
        let mut cfg = base.clone();
        if let Some(v) = self.stream_len {
            cfg.stream_len = v;
        }
        if let Some(v) = self.fleet_len {
            cfg.fleet_len = v;
        }
        if let Some(v) = self.min_period {
            cfg.min_period = v;
        }
        if let Some(v) = self.resolution {
            cfg.resolution = v;
        }
        if let Some(v) = self.grey_resolution {
            cfg.grey_resolution = v;
        }
        if let Some(v) = self.max_fleets {
            cfg.max_fleets = v;
        }
        cfg
    }
}

/// A parsed `monitord` configuration.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// The monitored paths, in file order.
    pub paths: Vec<PathEntry>,
    /// Fleet scheduling knobs (period, jitter, concurrency cap, seed).
    pub schedule: ScheduleConfig,
    /// Per-path series knobs (ring capacity, change-detector window).
    pub series: SeriesConfig,
    /// Stop issuing new measurements this long after the fleet connects.
    pub horizon: TimeNs,
    /// Worker threads per measurement wave (0 = one per CPU).
    pub threads: usize,
    /// JSONL sink: `None` for stdout, `Some(path)` for a file.
    pub out: Option<String>,
    /// Metrics scrape address (`metrics <host:port>`): serve a
    /// Prometheus-text registry snapshot here for the whole run.
    pub metrics: Option<String>,
    /// Probing configuration applied to every path.
    pub probe: SlopsConfig,
    /// Pacing ceiling of the sender transports, if overridden.
    pub rate_cap: Option<Rate>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            paths: Vec::new(),
            schedule: ScheduleConfig::default(),
            series: SeriesConfig::default(),
            horizon: TimeNs::from_secs(3600),
            threads: 0,
            out: None,
            metrics: None,
            probe: SlopsConfig::default(),
            rate_cap: None,
        }
    }
}

/// A rejected configuration line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number of the offending directive.
    pub line: usize,
    /// What was wrong with it.
    pub msg: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ConfigError {}

impl DaemonConfig {
    /// Parse a configuration from the line-based format above.
    pub fn parse(text: &str) -> Result<DaemonConfig, ConfigError> {
        let mut cfg = DaemonConfig::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let err = |msg: String| ConfigError { line: lineno, msg };
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let key = tokens.next().expect("non-empty line has a first token");
            let rest: Vec<&str> = tokens.collect();
            let one = || -> Result<&str, ConfigError> {
                match rest.as_slice() {
                    [v] => Ok(v),
                    _ => Err(err(format!("`{key}` wants exactly one value"))),
                }
            };
            match key {
                "path" => match rest.as_slice() {
                    [label, addr, kvs @ ..] => {
                        if cfg.paths.iter().any(|p| p.label == *label) {
                            return Err(err(format!("duplicate path label {label:?}")));
                        }
                        // Duplicate *addresses* are fine: the receiver is
                        // session-multiplexing, so co-located paths share
                        // one `pathload_rcv` control port by design.
                        let overrides = parse_overrides(kvs, lineno)?;
                        cfg.paths.push(PathEntry {
                            label: (*label).to_string(),
                            addr: (*addr).to_string(),
                            overrides,
                        });
                    }
                    _ => {
                        return Err(err(
                            "`path` wants `<label> <host:port> [key=value ...]`".into()
                        ))
                    }
                },
                "period_s" => cfg.schedule.period = secs(key, one()?, lineno)?,
                "jitter_s" => cfg.schedule.jitter = secs(key, one()?, lineno)?,
                "max_concurrent" => cfg.schedule.max_concurrent = int(key, one()?, lineno)?,
                "seed" => cfg.schedule.seed = int(key, one()?, lineno)?,
                "window_s" => cfg.series.window = secs(key, one()?, lineno)?,
                "capacity" => cfg.series.capacity = int(key, one()?, lineno)?,
                "horizon_s" => cfg.horizon = secs(key, one()?, lineno)?,
                "threads" => cfg.threads = int(key, one()?, lineno)?,
                "out" => {
                    let v = one()?;
                    cfg.out = if v == "-" { None } else { Some(v.to_string()) };
                }
                "rate_cap_mbps" => {
                    cfg.rate_cap = Some(Rate::from_mbps(float(key, one()?, lineno)?))
                }
                "metrics" => cfg.metrics = Some(one()?.to_string()),
                "stream_len" => cfg.probe.stream_len = int(key, one()?, lineno)?,
                "fleet_len" => cfg.probe.fleet_len = int(key, one()?, lineno)?,
                "min_period_us" => {
                    cfg.probe.min_period = TimeNs::from_micros(int(key, one()?, lineno)?)
                }
                "resolution_mbps" => {
                    cfg.probe.resolution = Rate::from_mbps(float(key, one()?, lineno)?)
                }
                "grey_resolution_mbps" => {
                    cfg.probe.grey_resolution = Rate::from_mbps(float(key, one()?, lineno)?)
                }
                "max_fleets" => cfg.probe.max_fleets = int(key, one()?, lineno)?,
                other => return Err(err(format!("unknown directive `{other}`"))),
            }
        }
        if cfg.paths.is_empty() {
            return Err(ConfigError {
                line: 0,
                msg: "no `path` directives: nothing to monitor".into(),
            });
        }
        if cfg.horizon.is_zero() {
            return Err(ConfigError {
                line: 0,
                msg: "horizon_s must be positive".into(),
            });
        }
        cfg.probe.validate().map_err(|msg| ConfigError {
            line: 0,
            msg: format!("probing configuration rejected: {msg}"),
        })?;
        // Each path's *merged* configuration must also validate — an
        // override can individually break an otherwise-sane global.
        for p in &cfg.paths {
            cfg.probe_for(p).validate().map_err(|msg| ConfigError {
                line: 0,
                msg: format!("path {}: probing configuration rejected: {msg}", p.label),
            })?;
        }
        Ok(cfg)
    }

    /// The effective probing configuration of one path: the global
    /// `probe` directives with the path's `key=value` overrides applied
    /// (overrides win regardless of file order).
    pub fn probe_for(&self, entry: &PathEntry) -> SlopsConfig {
        entry.overrides.apply(&self.probe)
    }

    /// The effective pacing cap of one path: the per-path
    /// `rate_cap_mbps=` override if present, else the global directive.
    pub fn rate_cap_for(&self, entry: &PathEntry) -> Option<Rate> {
        entry.overrides.rate_cap.or(self.rate_cap)
    }
}

/// Parse the `key=value` override fields of one `path` line. Unknown
/// keys and malformed values are line-numbered errors, like directives.
fn parse_overrides(kvs: &[&str], line: usize) -> Result<ProbeOverrides, ConfigError> {
    let mut o = ProbeOverrides::default();
    for kv in kvs {
        let err = |msg: String| ConfigError { line, msg };
        let Some((key, value)) = kv.split_once('=') else {
            return Err(err(format!("path override `{kv}` wants `key=value`")));
        };
        match key {
            "stream_len" => o.stream_len = Some(int(key, value, line)?),
            "fleet_len" => o.fleet_len = Some(int(key, value, line)?),
            "min_period_us" => o.min_period = Some(TimeNs::from_micros(int(key, value, line)?)),
            "resolution_mbps" => o.resolution = Some(Rate::from_mbps(float(key, value, line)?)),
            "grey_resolution_mbps" => {
                o.grey_resolution = Some(Rate::from_mbps(float(key, value, line)?))
            }
            "max_fleets" => o.max_fleets = Some(int(key, value, line)?),
            "rate_cap_mbps" => o.rate_cap = Some(Rate::from_mbps(float(key, value, line)?)),
            other => return Err(err(format!("unknown path override `{other}`"))),
        }
    }
    Ok(o)
}

fn float(key: &str, v: &str, line: usize) -> Result<f64, ConfigError> {
    match v.parse::<f64>() {
        Ok(x) if x.is_finite() && x >= 0.0 => Ok(x),
        _ => Err(ConfigError {
            line,
            msg: format!("`{key}` wants a non-negative number, got {v:?}"),
        }),
    }
}

fn secs(key: &str, v: &str, line: usize) -> Result<TimeNs, ConfigError> {
    Ok(TimeNs::from_secs_f64(float(key, v, line)?))
}

fn int<T: TryFrom<u64>>(key: &str, v: &str, line: usize) -> Result<T, ConfigError> {
    v.parse::<u64>()
        .ok()
        .and_then(|x| T::try_from(x).ok())
        .ok_or_else(|| ConfigError {
            line,
            msg: format!("`{key}` wants a non-negative integer, got {v:?}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# a fleet of two
path a 127.0.0.1:9100   # trailing comment
path b 127.0.0.1:9101

period_s 12.5
jitter_s 0.5
max_concurrent 2
seed 99
window_s 60
capacity 128
horizon_s 120
threads 3
out /tmp/fleet.jsonl
rate_cap_mbps 40
stream_len 50
min_period_us 500
resolution_mbps 4
grey_resolution_mbps 8
max_fleets 16
";

    #[test]
    fn full_config_round_trips() {
        let cfg = DaemonConfig::parse(GOOD).unwrap();
        assert_eq!(cfg.paths.len(), 2);
        assert_eq!(cfg.paths[0].label, "a");
        assert_eq!(cfg.paths[1].addr, "127.0.0.1:9101");
        assert_eq!(cfg.schedule.period, TimeNs::from_secs_f64(12.5));
        assert_eq!(cfg.schedule.jitter, TimeNs::from_secs_f64(0.5));
        assert_eq!(cfg.schedule.max_concurrent, 2);
        assert_eq!(cfg.schedule.seed, 99);
        assert_eq!(cfg.series.window, TimeNs::from_secs(60));
        assert_eq!(cfg.series.capacity, 128);
        assert_eq!(cfg.horizon, TimeNs::from_secs(120));
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.out.as_deref(), Some("/tmp/fleet.jsonl"));
        assert_eq!(cfg.rate_cap.unwrap().mbps(), 40.0);
        assert_eq!(cfg.probe.stream_len, 50);
        assert_eq!(cfg.probe.min_period, TimeNs::from_micros(500));
        assert_eq!(cfg.probe.max_fleets, 16);
    }

    #[test]
    fn defaults_fill_the_gaps() {
        let cfg = DaemonConfig::parse("path p 10.0.0.1:9100\n").unwrap();
        assert_eq!(cfg.schedule.period, ScheduleConfig::default().period);
        assert_eq!(cfg.horizon, TimeNs::from_secs(3600));
        assert!(cfg.out.is_none());
        assert!(cfg.rate_cap.is_none());
    }

    #[test]
    fn out_dash_means_stdout() {
        let cfg = DaemonConfig::parse("path p 10.0.0.1:9100\nout -\n").unwrap();
        assert!(cfg.out.is_none());
    }

    #[test]
    fn metrics_directive_sets_the_scrape_address() {
        let cfg = DaemonConfig::parse("path p 10.0.0.1:9100\nmetrics 127.0.0.1:9091\n").unwrap();
        assert_eq!(cfg.metrics.as_deref(), Some("127.0.0.1:9091"));
        let cfg = DaemonConfig::parse("path p 10.0.0.1:9100\n").unwrap();
        assert!(cfg.metrics.is_none());
    }

    #[test]
    fn bad_lines_are_rejected_with_position() {
        for (text, needle) in [
            ("path p 1.2.3.4:9100\nbogus 3\n", "unknown directive"),
            ("path p\n", "`path` wants"),
            (
                "path p 1.2.3.4:1\npath p 1.2.3.4:2\n",
                "duplicate path label",
            ),
            ("path p 1.2.3.4:1\nperiod_s fast\n", "non-negative number"),
            ("path p 1.2.3.4:1\nthreads -2\n", "non-negative integer"),
            ("path p 1.2.3.4:1\nperiod_s 1 2\n", "exactly one value"),
            ("", "no `path` directives"),
            (
                "path p 1.2.3.4:1\nhorizon_s 0\n",
                "horizon_s must be positive",
            ),
        ] {
            let err = DaemonConfig::parse(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{text:?} => {err} (wanted {needle:?})"
            );
        }
        // The error names the offending line.
        let err = DaemonConfig::parse("path p 1.2.3.4:9100\n\nbogus 3\n").unwrap_err();
        assert_eq!(err.line, 3);
    }

    /// The receiver is session-multiplexing, so paths sharing one
    /// `pathload_rcv` address is the intended co-located deployment and
    /// must parse (duplicate *labels* stay an error).
    #[test]
    fn shared_receiver_address_is_allowed() {
        let cfg = DaemonConfig::parse("path a 192.0.2.7:9100\npath b 192.0.2.7:9100\n").unwrap();
        assert_eq!(cfg.paths.len(), 2);
        assert_eq!(cfg.paths[0].addr, cfg.paths[1].addr);
    }

    #[test]
    fn invalid_probe_config_is_rejected() {
        let err = DaemonConfig::parse("path p 1.2.3.4:1\nstream_len 0\n").unwrap_err();
        assert!(err.to_string().contains("probing configuration rejected"));
    }

    /// `key=value` fields on a `path` line override the global probing
    /// knobs for that path only — regardless of where in the file the
    /// global directive appears.
    #[test]
    fn per_path_overrides_beat_globals_regardless_of_order() {
        let cfg = DaemonConfig::parse(
            "path fat 10.0.0.1:9100\n\
             path dsl 10.0.0.2:9100 stream_len=40 rate_cap_mbps=8 min_period_us=900 resolution_mbps=0.5\n\
             stream_len 100\n\
             rate_cap_mbps 80\n",
        )
        .unwrap();
        assert!(cfg.paths[0].overrides.is_empty());
        // The untouched path inherits every global.
        let fat = cfg.probe_for(&cfg.paths[0]);
        assert_eq!(fat.stream_len, 100);
        assert_eq!(cfg.rate_cap_for(&cfg.paths[0]).unwrap().mbps(), 80.0);
        // The overridden path wins over the later global directives.
        let dsl = cfg.probe_for(&cfg.paths[1]);
        assert_eq!(dsl.stream_len, 40);
        assert_eq!(dsl.min_period, TimeNs::from_micros(900));
        assert_eq!(dsl.resolution.mbps(), 0.5);
        assert_eq!(cfg.rate_cap_for(&cfg.paths[1]).unwrap().mbps(), 8.0);
        // Knobs not overridden still inherit.
        assert_eq!(dsl.fleet_len, fat.fleet_len);
    }

    #[test]
    fn bad_path_overrides_are_line_numbered_errors() {
        for (text, needle) in [
            (
                "path a 1.2.3.4:1\npath b 1.2.3.4:2 warp_speed=9\n",
                "unknown path override `warp_speed`",
            ),
            (
                "path a 1.2.3.4:1\npath b 1.2.3.4:2 stream_len\n",
                "wants `key=value`",
            ),
            (
                "path a 1.2.3.4:1\npath b 1.2.3.4:2 stream_len=lots\n",
                "non-negative integer",
            ),
            (
                "path a 1.2.3.4:1\npath b 1.2.3.4:2 rate_cap_mbps=-4\n",
                "non-negative number",
            ),
        ] {
            let err = DaemonConfig::parse(text).unwrap_err();
            assert_eq!(err.line, 2, "{text:?} => {err}");
            assert!(
                err.to_string().contains(needle),
                "{text:?} => {err} (wanted {needle:?})"
            );
        }
    }

    /// A merged (global + override) configuration that fails validation
    /// is rejected at parse time, naming the path.
    #[test]
    fn invalid_merged_override_config_is_rejected() {
        let err = DaemonConfig::parse("path p 1.2.3.4:1 stream_len=0\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("path p"), "{msg}");
        assert!(msg.contains("probing configuration rejected"), "{msg}");
    }
}
