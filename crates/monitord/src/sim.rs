//! The in-sim fleet driver: N monitored paths inside **one** simulation.
//!
//! Each scheduled measurement is installed as a fresh
//! [`simprobe::SessionApp`] (the event-driven driver over the sans-IO
//! machine), so all sessions, cross traffic, TCP flows — anything living
//! in the simulator — share one ordinary event loop. Paths may be disjoint
//! or share links (e.g. [`simprobe::scenarios::shared_tight_link`]), which
//! is what enables the §VI cross-traffic-dynamics scenarios: step the load
//! mid-run through [`SimFleetMonitor::sim_mut`] and watch the change
//! detector flag it.
//!
//! The driver advances the simulation on the scheduler's [`TICK`] grid and
//! harvests completions after every tick, so every scheduling decision is
//! made with exact completion times — byte-identical to the thread-backed
//! driver on independent paths (pinned by `tests/fleet_monitoring.rs`).

use crate::metrics::FleetTelemetry;
use crate::scheduler::{PathId, Poll, ScheduleConfig, Scheduler, TICK};
use crate::store::{PathSeries, SeriesConfig};
use netsim::{AppId, Chain, EngineStats, LinkId, ShardRefusal, Simulator};
use simprobe::{install_session_at, SessionApp};
use slops::series::RangeSample;
use slops::{SlopsConfig, SlopsError};
use std::sync::Arc;
use telemetry::{Counter, Gauge, TraceSink};
use units::TimeNs;

/// One monitored path of an in-sim fleet.
pub struct SimPathSpec {
    /// Label carried into the series and the export layer.
    pub label: String,
    /// The path through the shared simulator.
    pub chain: Chain,
    /// Measurement configuration for this path.
    pub cfg: SlopsConfig,
}

struct PathRuntime {
    chain: Chain,
    cfg: SlopsConfig,
    /// The running measurement, if any: `(app, start instant)`.
    running: Option<(AppId, TimeNs)>,
}

/// Which event engine the in-sim fleet runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimEngine {
    /// Try to shard the event queue per connected component; fall back to
    /// the single queue if the topology refuses (shared links). This is
    /// what [`SimFleetMonitor::new`] uses — sharding is bit-identical on
    /// per-path observables, so it is safe to be the default.
    Auto,
    /// Force the single global event queue (the A/B baseline for the
    /// fleet benchmark and the equivalence tests).
    SingleQueue,
}

/// Resolved telemetry handles for the engine counters, plus the last
/// published snapshot so the monotonic counters can be fed deltas.
struct EngineTelemetry {
    events: Counter,
    heap_ops: Counter,
    front_hits: Counter,
    shards: Gauge,
    heap_max_depth: Gauge,
    last: EngineStats,
    /// Per-path trace sinks (machine-minted events → registry), applied
    /// to each session at install time.
    sinks: Vec<Arc<dyn TraceSink>>,
}

/// A multi-path monitoring daemon over one simulator. Build with
/// [`SimFleetMonitor::new`], drive with [`SimFleetMonitor::run_until`] /
/// [`SimFleetMonitor::run_to_completion`], read the per-path series with
/// [`SimFleetMonitor::series`].
pub struct SimFleetMonitor {
    sim: Simulator,
    sched: Scheduler,
    paths: Vec<PathRuntime>,
    series: Vec<PathSeries>,
    t0: TimeNs,
    /// Why the topology could not shard (None when sharded or forced
    /// single-queue).
    shard_refusal: Option<ShardRefusal>,
    tele: Option<EngineTelemetry>,
}

impl SimFleetMonitor {
    /// Create the monitor on the [`SimEngine::Auto`] engine. Scheduling
    /// starts at the simulator's current instant (warm the topology up
    /// first) and no measurement starts at or after `horizon`. Every
    /// path's config is validated up front.
    pub fn new(
        sim: Simulator,
        paths: Vec<SimPathSpec>,
        sched_cfg: &ScheduleConfig,
        series_cfg: &SeriesConfig,
        horizon: TimeNs,
    ) -> Result<SimFleetMonitor, SlopsError> {
        Self::with_engine(sim, paths, sched_cfg, series_cfg, horizon, SimEngine::Auto)
    }

    /// [`SimFleetMonitor::new`] with an explicit engine choice. Every
    /// path's chain (both directions) is bound as one component with the
    /// shard planner, so a fleet of disjoint chains shards 1:1 with its
    /// paths; fleets sharing links refuse and stay on the single queue.
    pub fn with_engine(
        mut sim: Simulator,
        paths: Vec<SimPathSpec>,
        sched_cfg: &ScheduleConfig,
        series_cfg: &SeriesConfig,
        horizon: TimeNs,
        engine: SimEngine,
    ) -> Result<SimFleetMonitor, SlopsError> {
        assert!(!paths.is_empty(), "a fleet needs at least one path");
        for p in &paths {
            p.cfg.validate().map_err(SlopsError::BadConfig)?;
        }
        for p in &paths {
            let links: Vec<LinkId> = p
                .chain
                .forward
                .iter()
                .chain(p.chain.reverse.iter())
                .copied()
                .collect();
            sim.bind_links(&links);
        }
        let shard_refusal = match engine {
            SimEngine::SingleQueue => None,
            SimEngine::Auto => sim.try_shard().err(),
        };
        let t0 = sim.now();
        let sched = Scheduler::new(paths.len(), t0, horizon, sched_cfg);
        let series = paths
            .iter()
            .map(|p| PathSeries::new(p.label.clone(), series_cfg, t0))
            .collect();
        let paths = paths
            .into_iter()
            .map(|p| PathRuntime {
                chain: p.chain,
                cfg: p.cfg,
                running: None,
            })
            .collect();
        Ok(SimFleetMonitor {
            sim,
            sched,
            paths,
            series,
            t0,
            shard_refusal,
            tele: None,
        })
    }

    /// Wire the engine counters and per-path trace sinks into a fleet
    /// telemetry hub: `sim_events_processed_total`, `sim_heap_ops_total`,
    /// `sim_front_hits_total`, `sim_shards`, `sim_heap_max_depth`. The
    /// sans-IO simulator only exposes plain [`EngineStats`]; this driver
    /// drains them into the registry after every run slice (the
    /// `take_trace()` idiom).
    pub fn attach_telemetry(&mut self, tele: &FleetTelemetry) {
        let reg = tele.registry();
        let sinks = self
            .series
            .iter()
            .map(|s| tele.trace_sink(s.label()))
            .collect();
        let mut t = EngineTelemetry {
            events: reg.counter("sim_events_processed_total", &[]),
            heap_ops: reg.counter("sim_heap_ops_total", &[]),
            front_hits: reg.counter("sim_front_hits_total", &[]),
            shards: reg.gauge("sim_shards", &[]),
            heap_max_depth: reg.gauge("sim_heap_max_depth", &[]),
            last: EngineStats::default(),
            sinks,
        };
        // Everything the engine did before attachment counts too.
        let stats = self.sim.engine_stats();
        t.events.add(stats.events_processed);
        t.heap_ops.add(stats.heap_ops());
        t.front_hits.add(stats.front_hits);
        t.shards.set(stats.shards as i64);
        t.heap_max_depth.set(stats.heap_max_depth as i64);
        t.last = stats;
        self.tele = Some(t);
    }

    /// Push engine-counter deltas since the last publication into the
    /// attached registry (no-op when telemetry is not attached).
    fn publish_engine_stats(&mut self) {
        let Some(t) = &mut self.tele else {
            return;
        };
        let stats = self.sim.engine_stats();
        t.events
            .add(stats.events_processed - t.last.events_processed);
        t.heap_ops.add(stats.heap_ops() - t.last.heap_ops());
        t.front_hits.add(stats.front_hits - t.last.front_hits);
        t.shards.set(stats.shards as i64);
        t.heap_max_depth.set(stats.heap_max_depth as i64);
        t.last = stats;
    }

    /// Install every start the scheduler can issue right now.
    fn install_ready(&mut self) {
        while let Poll::Start { path, at } = self.sched.poll() {
            let p = path.0 as usize;
            debug_assert!(self.paths[p].running.is_none());
            debug_assert!(at >= self.sim.now(), "start instant in the simulated past");
            let id = install_session_at(
                &mut self.sim,
                &self.paths[p].chain,
                self.paths[p].cfg.clone(),
                at,
            )
            .expect("config validated at construction");
            if let Some(t) = &self.tele {
                self.sim
                    .app_mut::<SessionApp>(id)
                    .set_trace_sink(t.sinks[p].clone());
            }
            self.paths[p].running = Some((id, at));
        }
    }

    /// Harvest finished sessions: store the sample, retire the app, free
    /// the scheduler slot.
    fn harvest(&mut self) {
        for (p, path) in self.paths.iter_mut().enumerate() {
            let Some((id, at)) = path.running else {
                continue;
            };
            let Some(est) = self.sim.app_mut::<SessionApp>(id).take_estimate() else {
                continue;
            };
            self.series[p].push(RangeSample::from_estimate(at, &est));
            self.sim.remove_app(id);
            path.running = None;
            self.sched.on_complete(PathId(p as u32), at + est.elapsed);
        }
    }

    /// Advance the simulation (and the schedule) to instant `t`, ticking
    /// on the scheduler grid so completions are harvested — and new starts
    /// issued — within one [`TICK`] of happening.
    ///
    /// Cross-driver series equivalence is guaranteed for targets on the
    /// tick grid relative to the fleet epoch ([`run_to_completion`]
    /// always is); an off-grid target inserts one off-grid harvest, which
    /// can reveal a completion slightly earlier than the thread-backed
    /// driver's tick-granular replay would.
    ///
    /// [`run_to_completion`]: SimFleetMonitor::run_to_completion
    pub fn run_until(&mut self, t: TimeNs) {
        loop {
            self.install_ready();
            let now = self.sim.now();
            if now >= t {
                self.publish_engine_stats();
                return;
            }
            // The next grid instant strictly after `now`, clamped to `t`.
            let elapsed = (now - self.t0).as_nanos();
            let next_tick =
                self.t0 + TimeNs::from_nanos((elapsed / TICK.as_nanos() + 1) * TICK.as_nanos());
            self.sim.run_until(next_tick.min(t));
            self.harvest();
        }
    }

    /// Run until every path has reached the horizon and its last
    /// measurement finished (the clock may pass the horizon: a measurement
    /// started just before it is allowed to complete).
    pub fn run_to_completion(&mut self) {
        while !self.sched.is_done() {
            let t = self.sim.now() + TICK;
            self.run_until(t);
        }
    }

    /// The per-path series, in path order.
    pub fn series(&self) -> &[PathSeries] {
        &self.series
    }

    /// Consume the monitor, returning the per-path series.
    pub fn into_series(self) -> Vec<PathSeries> {
        self.series
    }

    /// Measurements started so far across the fleet.
    pub fn measurements_started(&self) -> u64 {
        self.sched.started()
    }

    /// Number of event-queue shards the engine is running (1 = single
    /// queue).
    pub fn shards(&self) -> usize {
        self.sim.shards()
    }

    /// Why [`SimEngine::Auto`] could not shard this fleet's topology
    /// (`None` when sharded, or when single-queue was forced).
    pub fn shard_refusal(&self) -> Option<&ShardRefusal> {
        self.shard_refusal.as_ref()
    }

    /// The engine's aggregate counters (events, heap ops, front-slot
    /// hits, pool peak) — plain data straight from the simulator.
    pub fn engine_stats(&self) -> EngineStats {
        self.sim.engine_stats()
    }

    /// Borrow the simulator (link stats, utilization monitors, ...).
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// Mutably borrow the simulator — e.g. to step cross traffic mid-run
    /// ([`simprobe::scenarios::step_link_load`]) between
    /// [`SimFleetMonitor::run_until`] calls.
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Chain, ChainConfig, LinkConfig};
    use units::Rate;

    fn empty_chain(sim: &mut Simulator, mbps: f64) -> Chain {
        Chain::build(
            sim,
            &ChainConfig::symmetric(vec![
                LinkConfig::new(Rate::from_mbps(mbps + 2.0), TimeNs::from_millis(5)),
                LinkConfig::new(Rate::from_mbps(mbps), TimeNs::from_millis(5)),
            ]),
        )
    }

    #[test]
    fn two_unloaded_paths_measure_their_capacities() {
        let mut sim = Simulator::new(9);
        let chains = [empty_chain(&mut sim, 8.0), empty_chain(&mut sim, 16.0)];
        let paths = chains
            .into_iter()
            .enumerate()
            .map(|(i, chain)| SimPathSpec {
                label: format!("p{i}"),
                chain,
                cfg: SlopsConfig::default(),
            })
            .collect();
        let sched = ScheduleConfig {
            period: TimeNs::from_secs(10),
            jitter: TimeNs::from_secs(1),
            max_concurrent: 0,
            seed: 1,
        };
        let mut mon = SimFleetMonitor::new(
            sim,
            paths,
            &sched,
            &SeriesConfig::default(),
            TimeNs::from_secs(40),
        )
        .unwrap();
        mon.run_to_completion();
        for (i, want) in [(0usize, 8.0), (1, 16.0)] {
            let s = &mon.series()[i];
            assert!(s.len() >= 3, "path {i}: only {} samples", s.len());
            for r in s.samples() {
                assert!(
                    r.low.mbps() <= want && want <= r.high.mbps() + 0.5,
                    "path {i}: [{}, {}] should bracket {want}",
                    r.low,
                    r.high
                );
            }
        }
        assert!(mon.measurements_started() >= 6);
    }

    #[test]
    fn bad_config_rejected_up_front() {
        let mut sim = Simulator::new(9);
        let chain = empty_chain(&mut sim, 8.0);
        let mut cfg = SlopsConfig::default();
        cfg.fleet_fraction = 0.1;
        let err = SimFleetMonitor::new(
            sim,
            vec![SimPathSpec {
                label: "p0".into(),
                chain,
                cfg,
            }],
            &ScheduleConfig::default(),
            &SeriesConfig::default(),
            TimeNs::from_secs(10),
        );
        assert!(err.is_err());
    }
}
