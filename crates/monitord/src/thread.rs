//! The thread-backed fleet driver: one blocking transport per path.
//!
//! For transports that block — real sockets (`pathload-net`), the
//! simulator shim, the test oracle — the fleet runs as batches of blocking
//! [`slops::Session::run`] calls on the [`slops::runner`] worker pool: the
//! scheduler issues every start it can, the batch executes concurrently
//! (one transport per worker, transports never shared), and completions
//! feed back **one at a time in virtual finish order**, with the scheduler
//! re-polled between feeds. That ordering matters: it is exactly how the
//! in-sim driver observes completions, so a fast path can be rescheduled
//! while a slow path's measurement is still outstanding instead of
//! waiting for the whole batch. Both drivers take decisions from the same
//! sans-IO [`Scheduler`], so on independent paths they produce
//! **identical per-path series** for the same seeds — asserted by
//! `tests/fleet_monitoring.rs`.
//!
//! On transports with a virtual clock the schedule is exact. On
//! wall-clock transports (real sockets) time also passes while a worker
//! waits for its batch, so a start instant may already lie in the past
//! when its job runs; the driver then starts immediately (best effort) —
//! the stagger and cap remain, the precise grid does not.

use crate::metrics::FleetTelemetry;
use crate::scheduler::{PathId, Poll, ScheduleConfig, Scheduler};
use crate::store::{ChangeCursor, ChangeEvent, PathSeries, SeriesConfig};
use slops::runner::run_parallel;
use slops::series::RangeSample;
use slops::{Estimate, ProbeTransport, Session, SlopsConfig, SlopsError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use telemetry::TraceSink;
use units::TimeNs;

/// A cooperative stop signal for a running fleet (graceful shutdown).
///
/// Clone it freely: all clones share one flag. Once requested, the fleet
/// driver stops issuing new scheduler starts ([`Scheduler::shutdown`]),
/// lets in-flight measurements complete and be recorded, and returns the
/// per-path series collected so far — which is what a daemon flushes as
/// summaries on SIGINT/SIGTERM. Requesting shutdown is idempotent and
/// cannot be undone.
#[derive(Clone, Debug, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// A fresh, un-requested flag.
    pub fn new() -> ShutdownFlag {
        ShutdownFlag::default()
    }

    /// Request shutdown (idempotent; callable from any thread, e.g. a
    /// signal watcher).
    pub fn request(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Has shutdown been requested?
    pub fn is_requested(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// One monitored path of a thread-backed fleet.
pub struct ThreadPathSpec {
    /// Label carried into the series and the export layer.
    pub label: String,
    /// Measurement configuration for this path.
    pub cfg: SlopsConfig,
    /// The path's transport. All transports of a fleet must share a time
    /// epoch (`elapsed()` measured from the same origin), since the
    /// scheduler staggers starts on one common timeline.
    pub transport: Box<dyn ProbeTransport + Send>,
}

/// A live notification from a running fleet, streamed to the observer of
/// [`run_fleet_with`] as completions are fed to the scheduler (in the same
/// tick-granular order the series are built in).
#[derive(Debug)]
pub enum FleetEvent<'a> {
    /// A measurement finished; `sample` was just appended to the path's
    /// series.
    Sample {
        /// Index of the path within the fleet.
        path: usize,
        /// The path's label.
        label: &'a str,
        /// The stored range sample.
        sample: RangeSample,
    },
    /// A measurement failed; the error was counted on the path's series
    /// and monitoring continues.
    Failed {
        /// Index of the path within the fleet.
        path: usize,
        /// The path's label.
        label: &'a str,
        /// What went wrong.
        error: &'a SlopsError,
    },
    /// The change detector flagged a new windowed-range shift on a path.
    ///
    /// Best-effort live signal: a change is emitted when it first becomes
    /// visible, but later samples landing in the same window can still
    /// widen its envelope. The authoritative list is
    /// [`PathSeries::changes`] once the run is over.
    Change {
        /// Index of the path within the fleet.
        path: usize,
        /// The path's label.
        label: &'a str,
        /// The flagged change.
        change: ChangeEvent,
    },
}

/// Run a thread-backed monitoring fleet to completion: measure every path
/// periodically (staggered, jittered, capped — see [`ScheduleConfig`])
/// until `horizon` on the transports' clock, using `threads` workers per
/// wave (`0` = one per CPU). Failed measurements are counted on the
/// path's series ([`PathSeries::errors`]) and monitoring continues.
///
/// Returns the per-path series in path order.
pub fn run_fleet(
    paths: Vec<ThreadPathSpec>,
    sched_cfg: &ScheduleConfig,
    series_cfg: &SeriesConfig,
    horizon: TimeNs,
    threads: usize,
) -> Result<Vec<PathSeries>, SlopsError> {
    run_fleet_with(paths, sched_cfg, series_cfg, horizon, threads, |_| {})
}

/// [`run_fleet`] with a live observer: every stored sample, failed
/// measurement, and newly flagged change is reported as a [`FleetEvent`]
/// the moment the driver learns of it — what a daemon needs to stream
/// JSONL records while the fleet is still running (the `monitord` binary
/// is built on this).
pub fn run_fleet_with(
    paths: Vec<ThreadPathSpec>,
    sched_cfg: &ScheduleConfig,
    series_cfg: &SeriesConfig,
    horizon: TimeNs,
    threads: usize,
    observer: impl FnMut(FleetEvent<'_>),
) -> Result<Vec<PathSeries>, SlopsError> {
    run_fleet_with_shutdown(
        paths,
        sched_cfg,
        series_cfg,
        horizon,
        threads,
        &ShutdownFlag::new(),
        observer,
    )
}

/// [`run_fleet_with`] plus a cooperative [`ShutdownFlag`]: when the flag
/// is requested (from a signal handler, another thread, or the observer
/// itself), the scheduler stops issuing new starts, measurements already
/// *probing* complete and are recorded normally, and the function
/// returns the series collected so far. A start that was already handed
/// to a worker but is still idling toward its start instant is cancelled
/// without being measured (neither a sample nor an error), so shutdown
/// latency is bounded by the longest measurement in flight, not by the
/// schedule period.
pub fn run_fleet_with_shutdown(
    paths: Vec<ThreadPathSpec>,
    sched_cfg: &ScheduleConfig,
    series_cfg: &SeriesConfig,
    horizon: TimeNs,
    threads: usize,
    stop: &ShutdownFlag,
    observer: impl FnMut(FleetEvent<'_>),
) -> Result<Vec<PathSeries>, SlopsError> {
    run_fleet_with_telemetry(
        paths, sched_cfg, series_cfg, horizon, threads, stop, None, observer,
    )
}

/// [`run_fleet_with_shutdown`] plus an optional [`FleetTelemetry`] hub:
/// per-path machine trace events are forwarded to the hub's sinks (the
/// driver only relays — every event is minted by the sans-IO machine) and
/// the scheduler's deterministic accessors are mirrored into its gauges
/// after every feed, so a scrape mid-run sees live values.
#[allow(clippy::too_many_arguments)]
pub fn run_fleet_with_telemetry(
    paths: Vec<ThreadPathSpec>,
    sched_cfg: &ScheduleConfig,
    series_cfg: &SeriesConfig,
    horizon: TimeNs,
    threads: usize,
    stop: &ShutdownFlag,
    telemetry: Option<&FleetTelemetry>,
    mut observer: impl FnMut(FleetEvent<'_>),
) -> Result<Vec<PathSeries>, SlopsError> {
    assert!(!paths.is_empty(), "a fleet needs at least one path");
    for p in &paths {
        p.cfg.validate().map_err(SlopsError::BadConfig)?;
    }
    // The fleet epoch: the latest transport clock (all at 0 for fresh
    // transports; equal by construction for warmed simulator shims).
    let t0 = paths
        .iter()
        .map(|p| p.transport.elapsed())
        .max()
        .expect("non-empty fleet");
    let mut sched = Scheduler::new(paths.len(), t0, horizon, sched_cfg);
    let mut series: Vec<PathSeries> = paths
        .iter()
        .map(|p| PathSeries::new(p.label.clone(), series_cfg, t0))
        .collect();
    // One machine-trace sink per path; the sink travels to the worker
    // inside the (cheaply cloned) Session.
    let sinks: Option<Vec<Arc<dyn TraceSink>>> =
        telemetry.map(|t| paths.iter().map(|p| t.trace_sink(&p.label)).collect());
    let mut cfgs: Vec<SlopsConfig> = Vec::with_capacity(paths.len());
    let mut transports: Vec<Option<Box<dyn ProbeTransport + Send>>> = Vec::new();
    for p in paths {
        cfgs.push(p.cfg);
        transports.push(Some(p.transport));
    }

    // Changes already reported per path, so the observer only sees each
    // flagged change once (instant-keyed: eviction may shrink the list).
    let mut change_cursors = vec![ChangeCursor::new(); series.len()];

    // Completions executed but not yet fed to the scheduler, keyed by the
    // tick boundary at which a tick-granular driver would learn of them
    // (ties broken by path id), carrying `(start, exact finish, outcome)`.
    // `None` = the start was cancelled by shutdown before probing began:
    // the scheduler still learns the completion, the series record
    // nothing.
    type Outcome = Option<Result<Estimate, SlopsError>>;
    let mut unfed: BTreeMap<(TimeNs, usize), (TimeNs, TimeNs, Outcome)> = BTreeMap::new();
    // Latest fleet-clock instant the driver has learned of (via fed
    // completion ticks); what the backlog gauge is evaluated at.
    let mut fleet_now = t0;
    loop {
        // Graceful shutdown: the stop decision itself belongs to the
        // scheduler (it finishes idle paths, waits out running ones).
        if stop.is_requested() {
            sched.shutdown();
        }
        // Issue every start the scheduler can decide with what it knows.
        let mut batch: Vec<(usize, TimeNs)> = Vec::new();
        while let Poll::Start { path, at } = sched.poll() {
            batch.push((path.0 as usize, at));
        }
        if batch.is_empty() && unfed.is_empty() {
            debug_assert!(sched.is_done(), "blocked with nothing running");
            break;
        }
        // Execute the new starts concurrently: one path per job, the
        // transport travels to the worker and back. (A wall-clock
        // transport may already be past `at`; it then starts at once.)
        let jobs: Vec<_> = batch
            .into_iter()
            .map(|(p, at)| {
                let mut transport = transports[p].take().expect("path measured twice at once");
                let mut session = Session::new(cfgs[p].clone());
                if let Some(sinks) = &sinks {
                    session = session.with_trace_sink(Arc::clone(&sinks[p]));
                }
                let stop = stop.clone();
                move |_idx: usize| {
                    // Idle toward `at` in short chunks so a shutdown
                    // request cancels a start that has not begun probing
                    // yet (a worker sleeping toward a start minutes away
                    // must not outlive the signal by those minutes). The
                    // chunks sum to exactly the single idle they replace,
                    // so virtual-clock transports stay bit-identical.
                    const IDLE_CHUNK: TimeNs = TimeNs::from_millis(50);
                    let cancelled = loop {
                        let now = transport.elapsed();
                        if now >= at {
                            break false;
                        }
                        if stop.is_requested() {
                            break true;
                        }
                        transport.idle(IDLE_CHUNK.min(at - now));
                    };
                    let outcome = if cancelled {
                        None
                    } else {
                        Some(session.run(transport.as_mut()))
                    };
                    let finished = transport.elapsed();
                    (p, at, outcome, finished, transport)
                }
            })
            .collect();
        for (p, at, outcome, finished, transport) in run_parallel(jobs, threads) {
            transports[p] = Some(transport);
            unfed.insert((sched.tick_boundary(finished), p), (at, finished, outcome));
        }
        // Feed ONLY the earliest tick's completions, then re-poll: the
        // scheduler must learn completions in the same tick-granular
        // groups — with the same paths still marked running in between —
        // as the in-sim driver harvests them, or the two schedules
        // diverge (e.g. when a measurement overruns its period, the fast
        // path must be rescheduled while the slow one is still running).
        if let Some(&(tick, _)) = unfed.keys().next() {
            fleet_now = fleet_now.max(tick);
            while let Some(entry) = unfed.first_entry() {
                if entry.key().0 != tick {
                    break;
                }
                let (_, p) = *entry.key();
                let (at, finished, outcome) = entry.remove();
                match outcome {
                    Some(Ok(est)) => {
                        let sample = RangeSample::from_estimate(at, &est);
                        series[p].push(sample);
                        observer(FleetEvent::Sample {
                            path: p,
                            label: series[p].label(),
                            sample,
                        });
                        let changes = series[p].changes();
                        for change in change_cursors[p].fresh(&changes) {
                            observer(FleetEvent::Change {
                                path: p,
                                label: series[p].label(),
                                change: *change,
                            });
                        }
                    }
                    Some(Err(error)) => {
                        series[p].record_error();
                        observer(FleetEvent::Failed {
                            path: p,
                            label: series[p].label(),
                            error: &error,
                        });
                    }
                    // Cancelled by shutdown before probing began: not a
                    // sample, not an error — the path simply was not
                    // measured.
                    None => {}
                }
                sched.on_complete(PathId(p as u32), finished);
            }
        }
        if let Some(t) = telemetry {
            t.observe_scheduler(&sched, fleet_now);
        }
    }
    if let Some(t) = telemetry {
        t.observe_scheduler(&sched, fleet_now);
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slops::testutil::OracleTransport;
    use units::Rate;

    fn oracle_fleet(n: usize) -> Vec<ThreadPathSpec> {
        (0..n)
            .map(|i| ThreadPathSpec {
                label: format!("p{i}"),
                cfg: SlopsConfig::default(),
                transport: Box::new(OracleTransport::new(
                    Rate::from_mbps(20.0 + 10.0 * i as f64),
                    i as u64,
                )),
            })
            .collect()
    }

    #[test]
    fn oracle_fleet_converges_per_path() {
        let sched = ScheduleConfig {
            period: TimeNs::from_secs(30),
            jitter: TimeNs::from_secs(2),
            max_concurrent: 2,
            seed: 7,
        };
        let series = run_fleet(
            oracle_fleet(3),
            &sched,
            &SeriesConfig::default(),
            TimeNs::from_secs(120),
            2,
        )
        .unwrap();
        assert_eq!(series.len(), 3);
        for (i, s) in series.iter().enumerate() {
            let want = 20.0 + 10.0 * i as f64;
            assert!(s.len() >= 2, "path {i}: {} samples", s.len());
            assert_eq!(s.errors(), 0);
            for r in s.samples() {
                assert!(
                    r.low.mbps() <= want + 1.5 && want - 1.5 <= r.high.mbps(),
                    "path {i}: [{}, {}] vs {want}",
                    r.low,
                    r.high
                );
            }
        }
    }

    #[test]
    fn wave_execution_is_deterministic() {
        let run = |threads: usize| {
            let sched = ScheduleConfig {
                period: TimeNs::from_secs(20),
                jitter: TimeNs::from_secs(1),
                max_concurrent: 0,
                seed: 3,
            };
            run_fleet(
                oracle_fleet(4),
                &sched,
                &SeriesConfig::default(),
                TimeNs::from_secs(90),
                threads,
            )
            .unwrap()
            .into_iter()
            .map(|s| s.samples().copied().collect::<Vec<_>>())
            .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4), "worker count changed the series");
    }

    #[test]
    fn observer_sees_every_stored_sample_in_feed_order() {
        let sched = ScheduleConfig {
            period: TimeNs::from_secs(25),
            jitter: TimeNs::from_secs(1),
            max_concurrent: 2,
            seed: 11,
        };
        let mut streamed: Vec<(usize, RangeSample)> = Vec::new();
        let series = run_fleet_with(
            oracle_fleet(3),
            &sched,
            &SeriesConfig::default(),
            TimeNs::from_secs(100),
            2,
            |ev| {
                if let FleetEvent::Sample { path, sample, .. } = ev {
                    streamed.push((path, sample));
                }
            },
        )
        .unwrap();
        let stored: usize = series.iter().map(|s| s.len()).sum();
        assert_eq!(streamed.len(), stored, "observer missed samples");
        // Per path, the streamed samples are exactly the stored series.
        for (p, s) in series.iter().enumerate() {
            let mine: Vec<RangeSample> = streamed
                .iter()
                .filter(|(q, _)| *q == p)
                .map(|&(_, r)| r)
                .collect();
            let kept: Vec<RangeSample> = s.samples().copied().collect();
            assert_eq!(mine, kept, "path {p} diverged");
        }
    }

    #[test]
    fn preset_shutdown_flag_stops_before_any_measurement() {
        let stop = ShutdownFlag::new();
        stop.request();
        assert!(stop.is_requested());
        let series = run_fleet_with_shutdown(
            oracle_fleet(2),
            &ScheduleConfig::default(),
            &SeriesConfig::default(),
            TimeNs::from_secs(600),
            1,
            &stop,
            |_| panic!("no event may fire after shutdown was requested"),
        )
        .unwrap();
        assert_eq!(series.len(), 2, "series are still returned per path");
        assert!(series.iter().all(|s| s.is_empty()), "no starts issued");
    }

    #[test]
    fn shutdown_mid_run_flushes_what_was_collected() {
        let sched = ScheduleConfig {
            period: TimeNs::from_secs(10),
            jitter: TimeNs::ZERO,
            max_concurrent: 1,
            seed: 5,
        };
        // A long horizon that would yield dozens of samples; the flag is
        // raised by the observer at the first sample, so the run ends
        // after at most the already-started wave.
        let stop = ShutdownFlag::new();
        let handle = stop.clone();
        let mut streamed = 0usize;
        let series = run_fleet_with_shutdown(
            oracle_fleet(2),
            &sched,
            &SeriesConfig::default(),
            TimeNs::from_secs(10_000),
            1,
            &stop,
            |ev| {
                if matches!(ev, FleetEvent::Sample { .. }) {
                    streamed += 1;
                    handle.request();
                }
            },
        )
        .unwrap();
        let stored: usize = series.iter().map(|s| s.len()).sum();
        assert_eq!(stored, streamed, "flushed series match streamed events");
        assert!(stored >= 1, "the in-flight measurement was recorded");
        assert!(
            stored <= 2,
            "only the wave in flight at shutdown may land, got {stored}"
        );
    }

    #[test]
    fn bad_config_rejected_up_front() {
        let mut paths = oracle_fleet(1);
        paths[0].cfg.fleet_fraction = 0.1;
        let err = run_fleet(
            paths,
            &ScheduleConfig::default(),
            &SeriesConfig::default(),
            TimeNs::from_secs(10),
            1,
        );
        assert!(matches!(err, Err(SlopsError::BadConfig(_))));
    }
}
