//! # monitord — a multi-path avail-bw monitoring daemon
//!
//! The paper's motivating applications (§I, §IX: SLA verification, server
//! selection, overlay routing) and its dynamics study (§VI) all consume a
//! *continuous series* of avail-bw ranges across *many* paths. This crate
//! is that deployment mode: a long-running monitoring scheduler
//! multiplexing N independent measurement sessions, one per path, with all
//! estimation staying in the sans-IO `slops::SessionMachine`.
//!
//! The pieces:
//!
//! * [`scheduler`] — the sans-IO fleet [`Scheduler`]: staggered starts
//!   (configurable period + jitter) and a concurrency cap so concurrent
//!   probe streams don't self-interfere on shared links, on a
//!   deterministic [`scheduler::TICK`] grid.
//! * [`store`] — per-path bounded [`PathSeries`] ring buffers with eq. 11
//!   window averages, §VI variation statistics, and a change-point flag
//!   (consecutive windowed ranges that stop overlapping), built on
//!   [`slops::series`].
//! * [`sim`] — the in-sim driver: N paths (disjoint or sharing a tight
//!   link) inside **one** `netsim::Simulator`, each measurement a native
//!   `simprobe::SessionApp`.
//! * [`thread`] — the thread-backed driver: blocking transports (sockets,
//!   simulator shims, the test oracle) measured in concurrent waves on the
//!   `slops::runner` pool, with a live [`FleetEvent`] observer hook.
//! * [`socket`] — the socket-backed driver: real paths probed over
//!   `pathload-net` UDP/TCP transports (one long-lived connection per
//!   path, all sharing a clock epoch), through the same scheduler.
//! * [`evented`] — the event-loop socket driver: the same real paths, but
//!   multiplexed as non-blocking `pathload_net::EventedSession`s on ONE
//!   epoll thread (`monitord --driver async`) instead of one blocking
//!   worker per in-flight measurement — the fleet-scale deployment mode.
//! * [`config`] — the `monitord` binary's line-based configuration.
//! * [`export`] — JSON-lines daemon output and a human fleet summary.
//!
//! All drivers take decisions from the same scheduler, so on independent
//! paths the deterministic ones produce identical per-path series for the
//! same seeds — the fleet-level extension of the repo's driver-equivalence
//! invariant.
//!
//! The runnable daemon is the `monitord` binary
//! (`crates/monitord/src/bin/monitord.rs`): point it at a config file
//! listing `pathload_rcv` receivers and it streams the JSONL records of
//! [`export`] to stdout or a file; `monitord --loopback N` demonstrates
//! the whole stack against in-process receivers.
//!
//! ```
//! use monitord::{run_fleet, ScheduleConfig, SeriesConfig, ThreadPathSpec};
//! use slops::testutil::OracleTransport;
//! use slops::SlopsConfig;
//! use units::{Rate, TimeNs};
//!
//! // Monitor three synthetic paths for two simulated minutes.
//! let paths = (0..3)
//!     .map(|i| ThreadPathSpec {
//!         label: format!("path{i}"),
//!         cfg: SlopsConfig::default(),
//!         transport: Box::new(OracleTransport::new(Rate::from_mbps(30.0 + 10.0 * i as f64), i as u64)),
//!     })
//!     .collect();
//! let series = run_fleet(
//!     paths,
//!     &ScheduleConfig::default(),
//!     &SeriesConfig::default(),
//!     TimeNs::from_secs(120),
//!     0,
//! )
//! .unwrap();
//! for (i, s) in series.iter().enumerate() {
//!     let a = 30.0 + 10.0 * i as f64;
//!     let (lo, hi) = s.envelope().expect("non-empty series");
//!     assert!(lo.mbps() <= a + 1.5 && a - 1.5 <= hi.mbps());
//! }
//! println!("{}", monitord::export::fleet_summary(&series));
//! ```

#![forbid(unsafe_code)]

pub mod config;
// The event-loop driver is Unix-only (raw-fd registration); everything
// else, including the thread-backed socket driver, stays portable.
#[cfg(unix)]
pub mod evented;
pub mod export;
pub mod metrics;
pub mod scheduler;
pub mod sim;
pub mod socket;
pub mod store;
pub mod thread;

pub use config::{ConfigError, DaemonConfig, PathEntry, ProbeOverrides};
#[cfg(unix)]
pub use evented::{
    run_socket_fleet_async, run_socket_fleet_async_with_shutdown,
    run_socket_fleet_async_with_telemetry,
};
pub use export::{fleet_summary, telemetry_line, write_fleet_jsonl};
pub use metrics::FleetTelemetry;
pub use scheduler::{PathId, Poll, ScheduleConfig, Scheduler};
pub use sim::{SimEngine, SimFleetMonitor, SimPathSpec};
pub use socket::{
    connect_fleet, connect_fleet_with_telemetry, run_socket_fleet, run_socket_fleet_with_shutdown,
    run_socket_fleet_with_telemetry, SocketPathSpec,
};
pub use store::{ChangeCursor, ChangeDirection, ChangeEvent, PathSeries, SeriesConfig};
pub use thread::{
    run_fleet, run_fleet_with, run_fleet_with_shutdown, run_fleet_with_telemetry, FleetEvent,
    ShutdownFlag, ThreadPathSpec,
};
