//! `monitord` — the multi-path avail-bw monitoring daemon over real
//! sockets.
//!
//! ```text
//! monitord [--driver thread|async] [--metrics <addr>] <config-file>
//!                                 monitor the fleet described by the file
//! monitord --loopback <n> [horizon_s] [--driver thread|async]
//!          [--metrics <addr>]
//!                                 self-test: monitor n in-process loopback
//!                                 receivers for horizon_s (default 8) s
//! ```
//!
//! `--driver` selects the fleet substrate: `thread` (the default) runs one
//! blocking worker per in-flight measurement; `async` multiplexes every
//! path on **one** event-loop thread (epoll + timer queue — the
//! fleet-scale mode: hundreds of paths without hundreds of workers). Both
//! take every scheduling decision from the same sans-IO scheduler and
//! emit the same records.
//!
//! The config format is documented in `monitord::config` (and in the
//! README's "Running monitord" section): `path <label> <host:port>` lines
//! naming `pathload_rcv` receivers — with optional per-path `key=value`
//! probe overrides — plus scheduling, series, probing, and output knobs.
//!
//! Output is JSON lines: one `sample` record per finished measurement and
//! one `change` record per flagged avail-bw shift, streamed as they
//! happen; one `summary` record per path when the horizon is reached.
//! Failed measurements are logged to stderr and counted in the summary. A
//! human-readable fleet digest also goes to stderr at the end, so piping
//! stdout to a file or `jq` stays clean.
//!
//! Receivers are multi-session, so any number of `path` directives may
//! name the same `pathload_rcv` address; `--loopback` exercises exactly
//! that, running all n paths against **one** shared in-process receiver.
//!
//! `--metrics <host:port>` (or the config's `metrics` directive; the flag
//! wins) serves a live Prometheus-text snapshot of the fleet's telemetry
//! registry for the whole run — pacing-error histograms, machine trace
//! counters, scheduler gauges, and (in loopback mode) the receiver's
//! demux counters. The same registry feeds periodic JSONL `telemetry`
//! records and the end-of-run stderr digest, so the three surfaces cannot
//! disagree.
//!
//! On SIGINT/SIGTERM the daemon shuts down gracefully: no new
//! measurements start, the one in flight completes and is recorded, the
//! per-path summaries for everything collected so far are flushed, and
//! the process exits 0.

// The one unsafe block (signal(2) FFI in `install_signal_handlers`) is
// explicitly allowed where it appears; see docs/LINTS.md (AL003).
#![deny(unsafe_code)]

use monitord::export::{change_line, fleet_summary, sample_line, summary_line, telemetry_line};
#[cfg(unix)]
use monitord::run_socket_fleet_async_with_telemetry;
use monitord::{
    run_socket_fleet_with_telemetry, DaemonConfig, FleetEvent, FleetTelemetry, ShutdownFlag,
    SocketPathSpec,
};
#[cfg(unix)]
use pathload_net::EventedReceiver;
#[cfg(not(unix))]
use pathload_net::Receiver;
use std::fs;
use std::io::{self, Write};
use std::net::ToSocketAddrs;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::{Duration, Instant};
use units::{Rate, TimeNs};

/// Set by the (async-signal-safe) handler; bridged to the fleet's
/// [`ShutdownFlag`] by a watcher thread.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Install SIGINT/SIGTERM handlers that request a graceful fleet
/// shutdown. Uses libc's `signal` directly (std links libc on unix and
/// exposes no signal API; an external crate would be this workspace's
/// only dependency). The handler merely sets an atomic; a watcher thread
/// forwards it to the cooperative flag.
#[cfg(unix)]
#[allow(unsafe_code)] // FFI onto signal(2) of the libc std links.
fn install_signal_handlers(stop: ShutdownFlag) {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_signal` is an async-signal-safe extern "C" fn (it only
    // stores to an atomic), installed once at startup before any fleet
    // thread exists; signal(2) itself takes no pointers.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
    thread::spawn(move || loop {
        if SIGNALLED.load(Ordering::SeqCst) {
            eprintln!("monitord: shutdown requested, letting in-flight measurements land");
            stop.request();
            return;
        }
        thread::sleep(Duration::from_millis(100));
    });
}

#[cfg(not(unix))]
fn install_signal_handlers(_stop: ShutdownFlag) {}

const USAGE: &str = "\
usage: monitord [--driver thread|async] [--metrics <addr>] <config-file>
       monitord --loopback <n-paths> [horizon-s] [--driver thread|async]
                [--metrics <addr>]

Monitors N network paths by periodic pathload measurements against
pathload_rcv receivers, emitting JSONL sample/change/summary records to
stdout (or the file named by the config's `out`). --loopback runs a
seconds-bounded self-test against in-process receivers.

--driver thread   one blocking worker per in-flight measurement (default)
--driver async    every path multiplexed on ONE event-loop thread
                  (epoll; the fleet-scale mode)
--metrics <addr>  serve a live Prometheus-text snapshot of the fleet's
                  telemetry registry at http://<addr>/metrics (overrides
                  the config's `metrics` directive)";

/// Which fleet driver executes the schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Driver {
    Thread,
    Async,
}

/// Extract a `--driver <thread|async>` flag (anywhere on the line) from
/// the argument list; the remaining arguments keep their order.
fn take_driver_flag(args: &mut Vec<String>) -> Result<Driver, String> {
    let Some(pos) = args.iter().position(|a| a == "--driver") else {
        return Ok(Driver::Thread);
    };
    if pos + 1 >= args.len() {
        return Err("--driver wants a value: thread | async".into());
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    match value.as_str() {
        "thread" => Ok(Driver::Thread),
        "async" => Ok(Driver::Async),
        other => Err(format!("unknown driver {other:?}: want thread | async")),
    }
}

/// Extract a `--metrics <host:port>` flag (anywhere on the line) from the
/// argument list; the remaining arguments keep their order.
fn take_metrics_flag(args: &mut Vec<String>) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == "--metrics") else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err("--metrics wants a listen address, e.g. 127.0.0.1:9091".into());
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let stop = ShutdownFlag::new();
    install_signal_handlers(stop.clone());
    let driver = match take_driver_flag(&mut args) {
        Ok(d) => d,
        Err(msg) => {
            eprintln!("monitord: {msg}\n{USAGE}");
            exit(2);
        }
    };
    let metrics_flag = match take_metrics_flag(&mut args) {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("monitord: {msg}\n{USAGE}");
            exit(2);
        }
    };
    let result = match args.first().map(String::as_str) {
        None | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            return;
        }
        Some("--loopback") => run_loopback(&args[1..], driver, metrics_flag, &stop),
        Some(path) if args.len() == 1 => run_from_file(path, driver, metrics_flag, &stop),
        _ => {
            eprintln!("{USAGE}");
            exit(2);
        }
    };
    if let Err(msg) = result {
        eprintln!("monitord: {msg}");
        exit(1);
    }
}

fn run_from_file(
    path: &str,
    driver: Driver,
    metrics_flag: Option<String>,
    stop: &ShutdownFlag,
) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let cfg = DaemonConfig::parse(&text).map_err(|e| e.to_string())?;
    let mut specs = Vec::with_capacity(cfg.paths.len());
    for p in &cfg.paths {
        let addr = p
            .addr
            .to_socket_addrs()
            .map_err(|e| format!("path {}: cannot resolve {}: {e}", p.label, p.addr))?
            .next()
            .ok_or_else(|| format!("path {}: {} resolves to nothing", p.label, p.addr))?;
        specs.push(SocketPathSpec {
            label: p.label.clone(),
            ctrl_addr: addr,
            cfg: cfg.probe_for(p),
            rate_cap: cfg.rate_cap_for(p),
        });
    }
    let metrics_addr = metrics_flag.or_else(|| cfg.metrics.clone());
    let telemetry = FleetTelemetry::new();
    monitor(
        &cfg,
        specs,
        driver,
        &telemetry,
        metrics_addr.as_deref(),
        stop,
    )
}

/// Self-test mode: spawn **one** in-process loopback receiver and monitor
/// `n` paths against it concurrently — the multi-session receiver demuxes
/// the sessions on one control port and one UDP socket — with gentle,
/// seconds-scale settings. The "avail-bw" of loopback is meaningless (no
/// FIFO bottleneck) — the point is the whole daemon stack running end to
/// end on a real network stack, bounded in time.
fn run_loopback(
    args: &[String],
    driver: Driver,
    metrics_flag: Option<String>,
    stop: &ShutdownFlag,
) -> Result<(), String> {
    // The async driver multiplexes on one thread, so it can sensibly
    // drive far larger loopback fleets than thread-per-measurement.
    let max_paths = match driver {
        Driver::Thread => 64,
        Driver::Async => 512,
    };
    let n: usize = args
        .first()
        .ok_or_else(|| format!("--loopback wants a path count\n{USAGE}"))?
        .parse()
        .ok()
        .filter(|&n| (1..=max_paths).contains(&n))
        .ok_or_else(|| format!("path count must be an integer in 1..={max_paths}"))?;
    let horizon_s: f64 = match args.get(1) {
        None => 8.0,
        Some(v) => v
            .parse()
            .ok()
            .filter(|&s| s > 0.0 && s <= 3600.0)
            .ok_or("horizon must be seconds in (0, 3600]")?,
    };

    let mut cfg = DaemonConfig::default();
    cfg.horizon = TimeNs::from_secs_f64(horizon_s);
    cfg.schedule.period = TimeNs::from_secs(2);
    cfg.schedule.jitter = TimeNs::from_millis(200);
    // Loopback paths share the host, so concurrency is capped. The
    // event-loop driver exists to run big fleets, so it gets enough
    // concurrency for every path to land a sample within the horizon.
    cfg.schedule.max_concurrent = match driver {
        Driver::Thread => 1,
        Driver::Async => (n / 4).clamp(2, 8),
    };
    cfg.series.window = TimeNs::from_secs(4);
    cfg.rate_cap = Some(Rate::from_mbps(40.0));
    // Gentle probing so one measurement lasts ~a second on a shared box.
    cfg.probe.stream_len = 30;
    cfg.probe.fleet_len = 4;
    cfg.probe.min_period = TimeNs::from_millis(1);
    cfg.probe.resolution = Rate::from_mbps(8.0);
    cfg.probe.grey_resolution = Rate::from_mbps(16.0);
    cfg.probe.max_fleets = 6;

    // ONE shared receiver for the whole fleet: every path connects to the
    // same control address and becomes its own session. On Unix the far
    // end is the evented receiver — the whole fleet's sessions on one
    // event-loop thread with the `recvmmsg`-batched datapath — stopped
    // once the fleet is done; elsewhere the threaded receiver serves one
    // session per sender (serve_n returns when the fleet drops its
    // transports). Either way the receiver shares the fleet's registry,
    // so a `--metrics` scrape of the loopback run also exposes the
    // demux/drop counters (and, evented, the `receiver_sessions` gauge).
    let telemetry = FleetTelemetry::new();
    #[cfg(unix)]
    let (ctrl_addr, server) = {
        let rx = EventedReceiver::bind("127.0.0.1:0".parse().unwrap())
            .map_err(|e| format!("cannot bind the loopback receiver: {e}"))?;
        rx.register_metrics(telemetry.registry());
        let handle = rx.spawn();
        (handle.ctrl_addr(), handle)
    };
    #[cfg(not(unix))]
    let (ctrl_addr, server) = {
        let rx = Receiver::bind("127.0.0.1:0".parse().unwrap())
            .map_err(|e| format!("cannot bind the loopback receiver: {e}"))?;
        let ctrl_addr = rx.ctrl_addr();
        rx.register_metrics(telemetry.registry());
        (ctrl_addr, thread::spawn(move || rx.serve_n(n)))
    };
    let specs: Vec<SocketPathSpec> = (0..n)
        .map(|i| SocketPathSpec {
            label: format!("lo{i}"),
            ctrl_addr,
            cfg: cfg.probe.clone(),
            rate_cap: cfg.rate_cap,
        })
        .collect();
    eprintln!(
        "monitord: loopback self-test, {n} path(s) sharing one receiver \
         ({ctrl_addr}), {horizon_s} s horizon, {} driver",
        match driver {
            Driver::Thread => "thread",
            Driver::Async => "async",
        }
    );
    monitor(
        &cfg,
        specs,
        driver,
        &telemetry,
        metrics_flag.as_deref(),
        stop,
    )?;
    #[cfg(unix)]
    server.stop().map_err(|e| format!("receiver failed: {e}"))?;
    #[cfg(not(unix))]
    server
        .join()
        .map_err(|_| "receiver thread panicked".to_string())?
        .map_err(|e| format!("receiver failed: {e}"))?;
    Ok(())
}

/// How often the observer interleaves a JSONL `telemetry` record with
/// the sample/change stream.
const TELEMETRY_EVERY: Duration = Duration::from_secs(2);

/// Run the fleet, streaming JSONL records to the configured sink. When
/// `stop` is requested (SIGINT/SIGTERM), new starts cease, the in-flight
/// measurements land, and the per-path summaries below still run — the
/// data collected so far is flushed before the clean exit.
fn monitor(
    cfg: &DaemonConfig,
    specs: Vec<SocketPathSpec>,
    driver: Driver,
    telemetry: &FleetTelemetry,
    metrics_addr: Option<&str>,
    stop: &ShutdownFlag,
) -> Result<(), String> {
    // The scrape endpoint serves live snapshots of the same registry the
    // drivers write; the handle keeps it serving until the run ends.
    let _metrics_server = match metrics_addr {
        Some(addr) => {
            let srv = telemetry::MetricsServer::bind(addr, telemetry.registry().clone())
                .map_err(|e| format!("cannot bind metrics endpoint {addr}: {e}"))?;
            eprintln!("monitord: metrics at http://{}/metrics", srv.local_addr());
            Some(srv)
        }
        None => None,
    };
    let mut sink: Box<dyn Write> = match &cfg.out {
        None => Box::new(io::stdout()),
        Some(path) => Box::new(io::BufWriter::new(
            fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        )),
    };
    // A daemon whose sink is gone (closed pipe, full disk) cannot usefully
    // continue; bail out of the whole process from inside the observer.
    let mut emit = move |line: String| {
        if writeln!(sink, "{line}")
            .and_then(|()| sink.flush())
            .is_err()
        {
            eprintln!("monitord: output sink failed, stopping");
            exit(1);
        }
    };

    let mut last_telemetry = Instant::now();
    let observer = |ev: FleetEvent<'_>| {
        match ev {
            FleetEvent::Sample {
                path,
                label,
                sample,
            } => emit(sample_line(path, label, &sample)),
            FleetEvent::Change {
                path,
                label,
                change,
            } => emit(change_line(path, label, &change)),
            FleetEvent::Failed { path, label, error } => {
                eprintln!("monitord: measurement {path} ({label}) failed: {error}");
            }
        }
        if last_telemetry.elapsed() >= TELEMETRY_EVERY {
            last_telemetry = Instant::now();
            emit(telemetry_line(telemetry));
        }
    };
    let series = match driver {
        Driver::Thread => run_socket_fleet_with_telemetry(
            specs,
            &cfg.schedule,
            &cfg.series,
            cfg.horizon,
            cfg.threads,
            stop,
            Some(telemetry),
            observer,
        ),
        #[cfg(unix)]
        Driver::Async => run_socket_fleet_async_with_telemetry(
            specs,
            &cfg.schedule,
            &cfg.series,
            cfg.horizon,
            stop,
            Some(telemetry),
            observer,
        ),
        #[cfg(not(unix))]
        Driver::Async => return Err("--driver async requires a Unix host".into()),
    }
    .map_err(|e| e.to_string())?;

    if stop.is_requested() {
        eprintln!("monitord: stopped early; summaries cover the data collected so far");
    }
    for (p, s) in series.iter().enumerate() {
        emit(summary_line(p, s));
    }
    // One final telemetry record so the stream's last snapshot matches
    // the digest below — both read the same registry.
    emit(telemetry_line(telemetry));
    eprint!("{}", fleet_summary(&series));
    eprint!("{}", telemetry.digest());
    Ok(())
}
