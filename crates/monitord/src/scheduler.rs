//! The fleet scheduler: staggered, capped measurement starts on a
//! deterministic tick grid.
//!
//! The scheduler is **sans-IO**, like the session machine underneath it:
//! it never reads a clock and never touches a transport. Drivers ask it
//! what to do ([`Scheduler::poll`]) and tell it what happened
//! ([`Scheduler::on_complete`]); every decision is a pure function of the
//! configuration and the completion times fed back. Because start instants
//! are quantized to the [`TICK`] grid, the event-driven in-sim driver and
//! the thread-backed blocking driver — which observe completions at
//! different granularities — still issue byte-identical schedules, which is
//! what the driver-equivalence test in `tests/fleet_monitoring.rs` pins.
//!
//! Policy:
//!
//! * path `i`'s first measurement is due at
//!   `t0 + i·period/N + U[0, jitter)` — staggered so a fleet of N paths
//!   spreads its probing instead of phase-locking;
//! * each later measurement is due `period` after the previous one
//!   *started* (an overrunning measurement pushes the schedule back rather
//!   than bursting to catch up);
//! * at most `max_concurrent` measurements run at once — concurrent probe
//!   streams self-interfere on shared links (§IV: pathload's own load is
//!   capped per path; a fleet must cap across paths too);
//! * a start is issued at `max(due, own previous completion, earliest free
//!   slot)`, rounded **up** to the tick grid;
//! * no measurement starts at or after the horizon.

use netsim::Prng;
use units::TimeNs;

/// Scheduling decisions are quantized to this grid (anchored at the
/// scheduler's `t0`). Coarse enough that any driver can observe a
/// completion within one tick; fine enough to be irrelevant against
/// measurement periods of seconds.
pub const TICK: TimeNs = TimeNs::from_millis(50);

/// Index of a monitored path within a fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId(pub u32);

/// Fleet scheduling knobs.
#[derive(Clone, Debug)]
pub struct ScheduleConfig {
    /// Target start-to-start spacing of consecutive measurements on one
    /// path. Zero means back-to-back.
    pub period: TimeNs,
    /// Uniform random addition in `[0, jitter)` to each path's initial
    /// offset (drawn once per path from `seed`), so restarts of the same
    /// fleet don't phase-align with other periodic load.
    pub jitter: TimeNs,
    /// Maximum measurements in flight at once; `0` means unlimited.
    pub max_concurrent: usize,
    /// Seed of the jitter draw.
    pub seed: u64,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            period: TimeNs::from_secs(30),
            jitter: TimeNs::from_secs(2),
            max_concurrent: 0,
            seed: 0x6D6F_6E64, // "mond"
        }
    }
}

/// What a driver should do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Poll {
    /// Start a measurement on `path` at instant `at` (on the tick grid,
    /// never before the knowledge that produced it).
    Start {
        /// The path to measure.
        path: PathId,
        /// The start instant.
        at: TimeNs,
    },
    /// Nothing can start until a running measurement completes; drive the
    /// substrate forward and report completions.
    Blocked,
    /// Every path has reached the horizon and nothing is running.
    Done,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PathState {
    Idle,
    Running,
    Finished,
}

/// The sans-IO fleet scheduler. See the module docs for the policy.
#[derive(Debug)]
pub struct Scheduler {
    t0: TimeNs,
    horizon: TimeNs,
    period: TimeNs,
    /// Next due start per path.
    due: Vec<TimeNs>,
    state: Vec<PathState>,
    /// Completion time of each path's latest measurement (`t0` initially).
    own_free: Vec<TimeNs>,
    /// Instant each concurrency slot frees up; `None` while occupied.
    slots: Vec<Option<TimeNs>>,
    /// Which slot each running path occupies.
    slot_of: Vec<usize>,
    /// Measurements started so far (for reporting).
    started: u64,
    /// Measurements that completed past their successor's due instant
    /// (the run was longer than the period and pushed its own schedule).
    overruns: u64,
}

impl Scheduler {
    /// Create a scheduler for `n_paths` paths. Measurements are scheduled
    /// from `t0` and no start is issued at or after `horizon`.
    pub fn new(n_paths: usize, t0: TimeNs, horizon: TimeNs, cfg: &ScheduleConfig) -> Scheduler {
        assert!(n_paths > 0, "a fleet needs at least one path");
        let mut rng = Prng::new(cfg.seed);
        let due = (0..n_paths)
            .map(|i| {
                let stagger = TimeNs::from_nanos(cfg.period.as_nanos() * i as u64 / n_paths as u64);
                let jitter = if cfg.jitter.is_zero() {
                    TimeNs::ZERO
                } else {
                    TimeNs::from_nanos(rng.below(cfg.jitter.as_nanos()))
                };
                t0 + stagger + jitter
            })
            .collect();
        let slots = if cfg.max_concurrent == 0 {
            n_paths
        } else {
            cfg.max_concurrent.min(n_paths)
        };
        Scheduler {
            t0,
            horizon,
            period: cfg.period,
            due,
            state: vec![PathState::Idle; n_paths],
            own_free: vec![t0; n_paths],
            slots: vec![Some(t0); slots],
            slot_of: vec![usize::MAX; n_paths],
            started: 0,
            overruns: 0,
        }
    }

    /// Round `t` **up** to the tick grid anchored at `t0`: the instant at
    /// which a driver ticking on the grid learns of an event at `t`.
    /// Drivers that batch completions must group them by this boundary
    /// (feed one group, re-poll, feed the next) to stay byte-identical
    /// with a driver that observes completions tick by tick.
    pub fn tick_boundary(&self, t: TimeNs) -> TimeNs {
        if t <= self.t0 {
            return self.t0;
        }
        let d = (t - self.t0).as_nanos();
        let tick = TICK.as_nanos();
        self.t0 + TimeNs::from_nanos(d.div_ceil(tick) * tick)
    }

    /// Ask for the next action. Returns each pending [`Poll::Start`]
    /// exactly once; drivers call this in a loop until it yields
    /// [`Poll::Blocked`] (drive the substrate, feed completions, retry) or
    /// [`Poll::Done`].
    pub fn poll(&mut self) -> Poll {
        loop {
            // The idle path with the earliest due start (ties: lowest id).
            let Some(path) = (0..self.due.len())
                .filter(|&p| self.state[p] == PathState::Idle)
                .min_by_key(|&p| (self.due[p], p))
            else {
                let any_running = self.state.contains(&PathState::Running);
                return if any_running {
                    Poll::Blocked
                } else {
                    Poll::Done
                };
            };
            if self.due[path] >= self.horizon {
                self.state[path] = PathState::Finished;
                continue;
            }
            // The earliest-freeing free slot.
            let Some(slot) = (0..self.slots.len())
                .filter(|&s| self.slots[s].is_some())
                .min_by_key(|&s| self.slots[s])
            else {
                return Poll::Blocked; // all slots occupied
            };
            let slot_free = self.slots[slot].expect("slot is free");
            let at = self.tick_boundary(self.due[path].max(self.own_free[path]).max(slot_free));
            if at >= self.horizon {
                self.state[path] = PathState::Finished;
                continue;
            }
            self.slots[slot] = None;
            self.slot_of[path] = slot;
            self.state[path] = PathState::Running;
            self.due[path] = at + self.period;
            self.started += 1;
            return Poll::Start {
                path: PathId(path as u32),
                at,
            };
        }
    }

    /// Report that `path`'s running measurement finished at `finished_at`.
    pub fn on_complete(&mut self, path: PathId, finished_at: TimeNs) {
        let p = path.0 as usize;
        assert_eq!(
            self.state[p],
            PathState::Running,
            "completion for a path that is not running"
        );
        let slot = self.slot_of[p];
        self.slots[slot] = Some(finished_at);
        self.slot_of[p] = usize::MAX;
        self.own_free[p] = finished_at;
        self.state[p] = PathState::Idle;
        // `due[p]` was advanced to start + period at issue time; finishing
        // past it means this run alone delayed the path's next start.
        if finished_at > self.due[p] {
            self.overruns += 1;
        }
    }

    /// Stop issuing new starts (graceful shutdown): the horizon collapses
    /// to `t0`, so every idle path is finished immediately and a path that
    /// completes later finishes on its next `poll`. Measurements already
    /// running are **not** interrupted — drivers let them complete and
    /// still report them via [`Scheduler::on_complete`], so the data
    /// collected so far stays intact.
    pub fn shutdown(&mut self) {
        self.horizon = self.t0;
        for s in &mut self.state {
            if *s == PathState::Idle {
                *s = PathState::Finished;
            }
        }
    }

    /// True once every path has reached the horizon and nothing runs.
    pub fn is_done(&self) -> bool {
        self.state.iter().all(|s| *s == PathState::Finished)
    }

    /// Measurements started so far.
    pub fn started(&self) -> u64 {
        self.started
    }

    /// Measurements currently running (the fleet's active-session count).
    /// Deterministic — a pure function of the completions fed back — so
    /// every driver mirrors the very same value into its gauges.
    pub fn running(&self) -> usize {
        self.state
            .iter()
            .filter(|s| **s == PathState::Running)
            .count()
    }

    /// Idle paths whose next start is due at or before `now` — the depth
    /// of the wait queue a driver would see if it polled at `now` (paths
    /// held back by the concurrency cap or their own previous run).
    pub fn backlog(&self, now: TimeNs) -> usize {
        (0..self.due.len())
            .filter(|&p| self.state[p] == PathState::Idle && self.due[p] <= now)
            .count()
    }

    /// Completions observed so far that landed past the path's next due
    /// start (the measurement ran longer than the period).
    pub fn overruns(&self) -> u64 {
        self.overruns
    }

    /// The scheduling epoch `t0`.
    pub fn t0(&self) -> TimeNs {
        self.t0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(period_s: u64, jitter_s: u64, cap: usize) -> ScheduleConfig {
        ScheduleConfig {
            period: TimeNs::from_secs(period_s),
            jitter: TimeNs::from_secs(jitter_s),
            max_concurrent: cap,
            seed: 42,
        }
    }

    /// Run the schedule to completion assuming every measurement takes
    /// `dur`; returns (path, at) in issue order.
    fn drain(mut s: Scheduler, dur: TimeNs) -> Vec<(u32, TimeNs)> {
        let mut out = Vec::new();
        loop {
            match s.poll() {
                Poll::Start { path, at } => {
                    out.push((path.0, at));
                    s.on_complete(path, at + dur);
                }
                Poll::Blocked => unreachable!("completions are fed synchronously"),
                Poll::Done => break,
            }
        }
        out
    }

    #[test]
    fn staggers_initial_offsets() {
        let s = Scheduler::new(4, TimeNs::ZERO, TimeNs::from_secs(100), &cfg(40, 0, 0));
        // Without jitter, offsets are i * period / N.
        assert_eq!(
            s.due,
            vec![
                TimeNs::ZERO,
                TimeNs::from_secs(10),
                TimeNs::from_secs(20),
                TimeNs::from_secs(30),
            ]
        );
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mk = || Scheduler::new(8, TimeNs::ZERO, TimeNs::from_secs(1000), &cfg(40, 5, 0));
        let (a, b) = (mk(), mk());
        assert_eq!(a.due, b.due, "same seed, same offsets");
        for (i, d) in a.due.iter().enumerate() {
            let base = TimeNs::from_secs(5 * i as u64);
            assert!(*d >= base && *d < base + TimeNs::from_secs(5));
        }
    }

    #[test]
    fn periodic_starts_on_the_tick_grid() {
        let s = Scheduler::new(2, TimeNs::ZERO, TimeNs::from_secs(100), &cfg(20, 3, 0));
        let starts = drain(s, TimeNs::from_secs(4));
        assert!(starts.len() >= 8, "got {} starts", starts.len());
        for (_, at) in &starts {
            assert_eq!(at.as_nanos() % TICK.as_nanos(), 0, "{at} off-grid");
            assert!(*at < TimeNs::from_secs(100));
        }
        // Per path, consecutive starts are >= period apart (quantized up).
        for p in 0..2u32 {
            let mine: Vec<TimeNs> = starts
                .iter()
                .filter(|(q, _)| *q == p)
                .map(|&(_, a)| a)
                .collect();
            for w in mine.windows(2) {
                assert!(w[1] - w[0] >= TimeNs::from_secs(20));
            }
        }
    }

    #[test]
    fn concurrency_cap_serializes_overlapping_runs() {
        // 3 paths due at once, cap 1, runs of 10 s: strictly sequential.
        let s = Scheduler::new(3, TimeNs::ZERO, TimeNs::from_secs(25), &cfg(0, 0, 1));
        let mut s = s;
        let mut intervals: Vec<(TimeNs, TimeNs)> = Vec::new();
        loop {
            match s.poll() {
                Poll::Start { path, at } => {
                    let end = at + TimeNs::from_secs(10);
                    intervals.push((at, end));
                    s.on_complete(path, end);
                }
                Poll::Blocked => unreachable!(),
                Poll::Done => break,
            }
        }
        for w in intervals.windows(2) {
            assert!(w[1].0 >= w[0].1, "overlap: {w:?}");
        }
    }

    #[test]
    fn overrunning_path_never_overlaps_itself() {
        // Period 5 s but runs take 12 s: starts are 12+ s apart, no burst.
        let s = Scheduler::new(1, TimeNs::ZERO, TimeNs::from_secs(60), &cfg(5, 0, 0));
        let starts = drain(s, TimeNs::from_secs(12));
        assert!(starts.len() >= 4);
        for w in starts.windows(2) {
            assert!(w[1].1 - w[0].1 >= TimeNs::from_secs(12));
        }
    }

    #[test]
    fn horizon_stops_the_fleet() {
        let s = Scheduler::new(2, TimeNs::ZERO, TimeNs::from_secs(30), &cfg(10, 0, 0));
        let starts = drain(s, TimeNs::from_secs(1));
        assert!(starts.iter().all(|(_, at)| *at < TimeNs::from_secs(30)));
        // 2 paths * 3 periods within [0, 30).
        assert_eq!(starts.len(), 6);
    }

    #[test]
    fn shutdown_before_any_start_is_done_immediately() {
        let mut s = Scheduler::new(
            3,
            TimeNs::from_secs(5),
            TimeNs::from_secs(100),
            &cfg(10, 1, 0),
        );
        s.shutdown();
        assert_eq!(s.poll(), Poll::Done);
        assert!(s.is_done());
        assert_eq!(s.started(), 0);
    }

    #[test]
    fn shutdown_lets_running_measurements_complete() {
        let mut s = Scheduler::new(2, TimeNs::ZERO, TimeNs::from_secs(100), &cfg(10, 0, 1));
        let Poll::Start { path, at } = s.poll() else {
            panic!("expected a start")
        };
        s.shutdown();
        // The running measurement is not interrupted: the scheduler waits
        // for its completion, then finishes without issuing new starts.
        assert_eq!(s.poll(), Poll::Blocked);
        assert!(!s.is_done());
        s.on_complete(path, at + TimeNs::from_secs(3));
        assert_eq!(s.poll(), Poll::Done);
        assert!(s.is_done());
        assert_eq!(s.started(), 1, "no start may be issued after shutdown");
    }

    /// The telemetry accessors (`running`, `backlog`, `overruns`) are pure
    /// functions of the fed-back completions, so thread and async drivers
    /// mirror identical gauge values.
    #[test]
    fn telemetry_accessors_track_the_schedule() {
        let mut s = Scheduler::new(3, TimeNs::ZERO, TimeNs::from_secs(100), &cfg(10, 0, 1));
        assert_eq!(s.running(), 0);
        assert_eq!(s.backlog(TimeNs::ZERO), 1, "path 0 is due at t0");
        assert_eq!(s.backlog(TimeNs::from_secs(7)), 3, "all staggers passed");
        let Poll::Start { path, at } = s.poll() else {
            panic!("expected a start")
        };
        assert_eq!(s.running(), 1);
        assert_eq!(s.poll(), Poll::Blocked, "cap 1 holds the rest back");
        // Finish after the path's next due instant (period 10 s, run 12 s):
        // one overrun.
        assert_eq!(s.overruns(), 0);
        s.on_complete(path, at + TimeNs::from_secs(12));
        assert_eq!(s.running(), 0);
        assert_eq!(s.overruns(), 1);
        // A short run is not an overrun.
        let Poll::Start { path, at } = s.poll() else {
            panic!("expected a start")
        };
        s.on_complete(path, at + TimeNs::from_secs(2));
        assert_eq!(s.overruns(), 1);
    }

    #[test]
    fn blocked_when_capped_done_when_finished() {
        let mut s = Scheduler::new(2, TimeNs::ZERO, TimeNs::from_secs(10), &cfg(8, 0, 1));
        let Poll::Start { path, at } = s.poll() else {
            panic!("expected a start")
        };
        assert_eq!(s.poll(), Poll::Blocked, "cap 1: second path must wait");
        s.on_complete(path, at + TimeNs::from_secs(2));
        assert!(matches!(s.poll(), Poll::Start { .. }));
        assert!(!s.is_done());
    }
}
