//! Per-path bounded time-series stores.
//!
//! A daemon that measures many paths for days cannot keep every estimate's
//! per-fleet trace: each path gets a **ring buffer** of compact
//! [`RangeSample`]s (generalizing `slops::monitor::AvailBwSeries`, whose
//! unbounded `Vec` of full estimates is fine for a single run but not for
//! a daemon). Aggregation — eq. 11 window averages, tumbling windowed
//! ranges, §VI variation statistics, the change-point flag — is shared
//! with the single-path series through [`slops::series`].

use slops::series::{
    self, change_points, ranges_overlap, windowed_ranges, RangeSample, SeriesStats, WindowedRange,
};
use std::collections::VecDeque;
use units::{Rate, TimeNs};

/// Store knobs shared by every path of a fleet.
#[derive(Clone, Debug)]
pub struct SeriesConfig {
    /// Samples retained per path; older ones are evicted (0 = unbounded).
    pub capacity: usize,
    /// Tumbling-window length for [`PathSeries::windows`] and the change
    /// detector (the paper compares against 5-minute MRTG windows; short
    /// experiments use shorter windows).
    pub window: TimeNs,
}

impl Default for SeriesConfig {
    fn default() -> Self {
        SeriesConfig {
            capacity: 4096,
            window: TimeNs::from_secs(300),
        }
    }
}

/// Direction of a detected avail-bw change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChangeDirection {
    /// The avail-bw range moved up.
    Up,
    /// The avail-bw range moved down (e.g. a cross-traffic step; the SLA
    /// alarm case).
    Down,
}

/// A flagged change: two consecutive windowed ranges stopped overlapping.
#[derive(Clone, Copy, Debug)]
pub struct ChangeEvent {
    /// Start of the window in which the change surfaced.
    pub at: TimeNs,
    /// The window before the change.
    pub before: WindowedRange,
    /// The window after the change.
    pub after: WindowedRange,
    /// Which way the range moved.
    pub direction: ChangeDirection,
}

/// Tracks which flagged changes of a path have already been streamed, so
/// a live consumer sees each change exactly once.
///
/// [`PathSeries::changes`] is recomputed from the retained samples, and
/// ring-buffer eviction can *shrink* it (dropped leading windows take
/// their changes with them) — so "how many have I seen" is not a usable
/// cursor. Change instants are, because they are monotonic per path:
/// windows fill in sample-start order, so every newly visible change is
/// at a strictly later window boundary than all previously visible ones.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChangeCursor {
    /// Instant of the latest change handed out.
    last_at: TimeNs,
}

impl ChangeCursor {
    /// A cursor that has seen nothing.
    pub fn new() -> ChangeCursor {
        ChangeCursor::default()
    }

    /// The not-yet-seen suffix of `changes` (which [`PathSeries::changes`]
    /// returns sorted by instant), advancing the cursor past it.
    pub fn fresh<'a>(&mut self, changes: &'a [ChangeEvent]) -> &'a [ChangeEvent] {
        let start = changes.partition_point(|c| c.at <= self.last_at);
        let fresh = &changes[start..];
        if let Some(last) = fresh.last() {
            self.last_at = last.at;
        }
        fresh
    }
}

/// A bounded avail-bw time series for one monitored path.
#[derive(Clone, Debug)]
pub struct PathSeries {
    label: String,
    window: TimeNs,
    origin: TimeNs,
    capacity: usize,
    samples: VecDeque<RangeSample>,
    evicted: u64,
    errors: u64,
}

impl PathSeries {
    /// Create an empty series; `origin` anchors the window grid (use the
    /// fleet's `t0` so all paths' windows align).
    pub fn new(label: impl Into<String>, cfg: &SeriesConfig, origin: TimeNs) -> PathSeries {
        PathSeries {
            label: label.into(),
            window: cfg.window,
            origin,
            capacity: cfg.capacity,
            samples: VecDeque::new(),
            evicted: 0,
            errors: 0,
        }
    }

    /// The path's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Append a sample (measurements arrive in start order per path);
    /// evicts the oldest sample when the ring is full.
    pub fn push(&mut self, s: RangeSample) {
        if let Some(last) = self.samples.back() {
            debug_assert!(s.started >= last.started, "samples must arrive in order");
        }
        if self.capacity > 0 && self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.evicted += 1;
        }
        self.samples.push_back(s);
    }

    /// Count a failed measurement (the sample is lost, the series goes on).
    pub fn record_error(&mut self) {
        self.errors += 1;
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &RangeSample> {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted by the ring bound so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Failed measurements so far.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<&RangeSample> {
        self.samples.back()
    }

    /// Duration-weighted midpoint average over `[from, to)` (eq. 11).
    pub fn window_average(&self, from: TimeNs, to: TimeNs) -> Rate {
        series::window_average(self.samples.iter(), from, to)
    }

    /// The retained variation envelope `[min low, max high]`.
    pub fn envelope(&self) -> Option<(Rate, Rate)> {
        series::envelope(self.samples.iter())
    }

    /// §VI width/variation statistics over the retained samples.
    pub fn stats(&self) -> SeriesStats {
        SeriesStats::of(self.samples.iter())
    }

    /// Tumbling windowed ranges (length from [`SeriesConfig::window`],
    /// grid anchored at the series origin). Empty windows are skipped.
    ///
    /// Only **complete** windows are returned: once the ring bound has
    /// evicted samples, the window containing the oldest retained sample
    /// may be missing evicted ones — its envelope would narrow
    /// retroactively and the change detector would flag shifts that never
    /// happened — so that window is dropped too.
    pub fn windows(&self) -> Vec<WindowedRange> {
        let contiguous: Vec<RangeSample> = self.samples.iter().copied().collect();
        let mut windows = windowed_ranges(&contiguous, self.origin, self.window);
        if self.evicted > 0 {
            if let Some(first) = contiguous.first() {
                windows.retain(|w| w.from > first.started);
            }
        }
        windows
    }

    /// Flagged changes: consecutive windowed ranges that stopped
    /// overlapping, with the direction the range moved.
    pub fn changes(&self) -> Vec<ChangeEvent> {
        let windows = self.windows();
        change_points(&windows)
            .into_iter()
            .map(|i| {
                let (before, after) = (windows[i - 1], windows[i]);
                debug_assert!(!ranges_overlap(before.range(), after.range()));
                let direction = if after.low.bps() > before.high.bps() {
                    ChangeDirection::Up
                } else {
                    ChangeDirection::Down
                };
                ChangeEvent {
                    at: after.from,
                    before,
                    after,
                    direction,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(start_s: u64, lo: f64, hi: f64) -> RangeSample {
        RangeSample {
            started: TimeNs::from_secs(start_s),
            duration: TimeNs::from_secs(2),
            low: Rate::from_mbps(lo),
            high: Rate::from_mbps(hi),
        }
    }

    fn series(capacity: usize, window_s: u64) -> PathSeries {
        PathSeries::new(
            "p0",
            &SeriesConfig {
                capacity,
                window: TimeNs::from_secs(window_s),
            },
            TimeNs::ZERO,
        )
    }

    #[test]
    fn ring_bound_evicts_oldest() {
        let mut s = series(3, 60);
        for i in 0..5 {
            s.push(sample(i * 10, 4.0, 5.0));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted(), 2);
        let first = s.samples().next().unwrap();
        assert_eq!(first.started, TimeNs::from_secs(20));
        assert_eq!(s.latest().unwrap().started, TimeNs::from_secs(40));
    }

    #[test]
    fn zero_capacity_is_unbounded() {
        let mut s = series(0, 60);
        for i in 0..100 {
            s.push(sample(i, 4.0, 5.0));
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.evicted(), 0);
    }

    #[test]
    fn change_detector_flags_a_step_down() {
        let mut s = series(0, 30);
        // Two stable windows at [7, 9], then two at [3, 4].
        for i in 0..6 {
            s.push(sample(i * 10, 7.0, 9.0));
        }
        for i in 6..12 {
            s.push(sample(i * 10, 3.0, 4.0));
        }
        let changes = s.changes();
        assert_eq!(changes.len(), 1, "one step, one flag: {changes:?}");
        assert_eq!(changes[0].direction, ChangeDirection::Down);
        assert_eq!(changes[0].at, TimeNs::from_secs(60));
        // A stable series flags nothing.
        let mut stable = series(0, 30);
        for i in 0..12 {
            stable.push(sample(i * 10, 3.8, 4.4));
        }
        assert!(stable.changes().is_empty());
    }

    #[test]
    fn eviction_never_fabricates_changes() {
        // Window [0, 30) holds ranges [3, 5] and [7, 9] (envelope [3, 9]);
        // window [30, 60) holds [3, 4] — overlapping, so no change.
        let mut s = series(3, 30);
        s.push(sample(0, 3.0, 5.0));
        s.push(sample(10, 7.0, 9.0));
        s.push(sample(30, 3.0, 4.0));
        assert!(s.changes().is_empty());
        // The ring evicts the [3, 5] sample. The first window's *retained*
        // envelope narrows to [7, 9], which would fake a Down change —
        // instead the now-incomplete window is dropped entirely.
        s.push(sample(40, 3.0, 4.0));
        assert_eq!(s.evicted(), 1);
        let windows = s.windows();
        assert_eq!(windows.len(), 1, "incomplete window must be dropped");
        assert_eq!(windows[0].from, TimeNs::from_secs(30));
        assert!(s.changes().is_empty());
    }

    /// Regression: a count-based "changes already streamed" cursor goes
    /// permanently silent once eviction shrinks `changes()`; the
    /// instant-based [`ChangeCursor`] must keep emitting.
    #[test]
    fn change_cursor_survives_eviction_shrinking_the_list() {
        let mut s = series(5, 30);
        let mut cursor = ChangeCursor::new();
        // Window [0, 30) at [7, 9], window [30, 60) at [3, 4]: change A.
        s.push(sample(0, 7.0, 9.0));
        s.push(sample(10, 7.0, 9.0));
        s.push(sample(30, 3.0, 4.0));
        s.push(sample(40, 3.0, 4.0));
        let fresh: Vec<ChangeEvent> = cursor.fresh(&s.changes()).to_vec();
        assert_eq!(fresh.len(), 1, "change A must stream");
        assert_eq!(fresh[0].at, TimeNs::from_secs(30));
        // Nothing new on re-poll.
        assert!(cursor.fresh(&s.changes()).is_empty());
        // More [3, 4] samples evict the first window: changes() shrinks
        // to empty (A's windows are gone).
        s.push(sample(60, 3.0, 4.0));
        s.push(sample(70, 3.0, 4.0));
        assert!(s.changes().is_empty(), "A must vanish with its windows");
        assert!(cursor.fresh(&s.changes()).is_empty());
        // A step back up creates change B — at index 0 of the (rebuilt)
        // list, i.e. *below* where a count cursor would resume.
        s.push(sample(90, 8.0, 10.0));
        let changes = s.changes();
        let fresh = cursor.fresh(&changes);
        assert_eq!(fresh.len(), 1, "change B must still stream: {changes:?}");
        assert_eq!(fresh[0].at, TimeNs::from_secs(90));
        assert_eq!(fresh[0].direction, ChangeDirection::Up);
    }

    #[test]
    fn stats_and_averages_delegate_to_core() {
        let mut s = series(0, 60);
        s.push(sample(0, 3.0, 5.0));
        s.push(sample(10, 3.0, 5.0));
        let st = s.stats();
        assert_eq!(st.count, 2);
        assert!((st.mean_midpoint.mbps() - 4.0).abs() < 1e-9);
        let avg = s.window_average(TimeNs::ZERO, TimeNs::from_secs(60));
        assert!((avg.mbps() - 4.0).abs() < 1e-9);
        assert_eq!(s.envelope().unwrap().0.mbps(), 3.0);
        s.record_error();
        assert_eq!(s.errors(), 1);
    }
}
