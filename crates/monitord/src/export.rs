//! Daemon output: JSON-lines records and a human summary.
//!
//! One self-describing JSON object per line — the standard daemon export
//! shape (tail it, pipe it to `jq`, ship it to a collector). The encoder
//! is hand-rolled: records are flat, the workspace is offline, and a
//! serialization framework would be the only external dependency in it.

use crate::metrics::FleetTelemetry;
use crate::store::{ChangeDirection, ChangeEvent, PathSeries};
use slops::series::RangeSample;
use std::io::{self, Write};

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `sample` record for one finished measurement.
pub fn sample_line(path: usize, label: &str, s: &RangeSample) -> String {
    format!(
        "{{\"type\":\"sample\",\"path\":{path},\"label\":\"{}\",\"t_start_ns\":{},\
         \"duration_ns\":{},\"low_bps\":{:.0},\"high_bps\":{:.0},\"rho\":{:.4}}}",
        escape(label),
        s.started.as_nanos(),
        s.duration.as_nanos(),
        s.low.bps(),
        s.high.bps(),
        s.relative_variation(),
    )
}

/// The `change` record for one flagged avail-bw shift.
pub fn change_line(path: usize, label: &str, c: &ChangeEvent) -> String {
    let dir = match c.direction {
        ChangeDirection::Up => "up",
        ChangeDirection::Down => "down",
    };
    format!(
        "{{\"type\":\"change\",\"path\":{path},\"label\":\"{}\",\"t_ns\":{},\
         \"direction\":\"{dir}\",\"before_low_bps\":{:.0},\"before_high_bps\":{:.0},\
         \"after_low_bps\":{:.0},\"after_high_bps\":{:.0}}}",
        escape(label),
        c.at.as_nanos(),
        c.before.low.bps(),
        c.before.high.bps(),
        c.after.low.bps(),
        c.after.high.bps(),
    )
}

/// The `summary` record for one path's whole series.
pub fn summary_line(path: usize, series: &PathSeries) -> String {
    let st = series.stats();
    format!(
        "{{\"type\":\"summary\",\"path\":{path},\"label\":\"{}\",\"samples\":{},\
         \"evicted\":{},\"errors\":{},\"mean_mid_bps\":{:.0},\"mean_width_bps\":{:.0},\
         \"mean_rho\":{:.4},\"p75_rho\":{:.4},\"changes\":{}}}",
        escape(series.label()),
        st.count,
        series.evicted(),
        series.errors(),
        st.mean_midpoint.bps(),
        st.mean_width.bps(),
        st.mean_rho,
        st.p75_rho,
        series.changes().len(),
    )
}

/// The `telemetry` record: a point-in-time snapshot of the fleet's
/// observability state — scheduler gauges plus per-path pacing-error
/// quantiles — read from the same [`FleetTelemetry`] registry the scrape
/// endpoint serves, so the JSONL stream and the endpoint cannot disagree.
pub fn telemetry_line(t: &FleetTelemetry) -> String {
    let (running, backlog, started, overruns) = t.scheduler_snapshot();
    let pacing = t
        .pacing_quantiles()
        .iter()
        .map(|(label, p50, p99, packets)| {
            format!(
                "{{\"label\":\"{}\",\"p50_ns\":{p50},\"p99_ns\":{p99},\"packets\":{packets}}}",
                escape(label)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"type\":\"telemetry\",\"scheduler\":{{\"running\":{running},\
         \"backlog\":{backlog},\"started\":{started},\"overruns\":{overruns}}},\
         \"pacing\":[{pacing}]}}"
    )
}

/// Write a whole fleet as JSON lines: every sample, every flagged change,
/// then one summary per path.
pub fn write_fleet_jsonl<W: Write>(w: &mut W, fleet: &[PathSeries]) -> io::Result<()> {
    for (p, series) in fleet.iter().enumerate() {
        for s in series.samples() {
            writeln!(w, "{}", sample_line(p, series.label(), s))?;
        }
        for c in series.changes() {
            writeln!(w, "{}", change_line(p, series.label(), &c))?;
        }
    }
    for (p, series) in fleet.iter().enumerate() {
        writeln!(w, "{}", summary_line(p, series))?;
    }
    Ok(())
}

/// A human-readable fleet summary (one line per path), for examples and
/// operator consoles.
pub fn fleet_summary(fleet: &[PathSeries]) -> String {
    let mut out = String::new();
    for s in fleet {
        let st = s.stats();
        let changes = s.changes();
        out.push_str(&format!(
            "{:<10} {:>3} samples  mid {:>7.2} Mb/s  width {:>5.2} Mb/s  rho {:>4.2}  {}\n",
            s.label(),
            st.count,
            st.mean_midpoint.mbps(),
            st.mean_width.mbps(),
            st.mean_rho,
            if changes.is_empty() {
                "steady".to_string()
            } else {
                changes
                    .iter()
                    .map(|c| {
                        format!(
                            "{} at {:.0}s to [{:.1}, {:.1}] Mb/s",
                            match c.direction {
                                ChangeDirection::Up => "UP",
                                ChangeDirection::Down => "DOWN",
                            },
                            c.at.secs_f64(),
                            c.after.low.mbps(),
                            c.after.high.mbps(),
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("; ")
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SeriesConfig;
    use units::{Rate, TimeNs};

    fn demo_fleet() -> Vec<PathSeries> {
        let cfg = SeriesConfig {
            capacity: 16,
            window: TimeNs::from_secs(30),
        };
        let mut a = PathSeries::new("atl\"gru", &cfg, TimeNs::ZERO);
        for i in 0..4u64 {
            a.push(RangeSample {
                started: TimeNs::from_secs(i * 20),
                duration: TimeNs::from_secs(3),
                low: Rate::from_mbps(if i < 2 { 7.0 } else { 3.0 }),
                high: Rate::from_mbps(if i < 2 { 9.0 } else { 4.0 }),
            });
        }
        a.record_error();
        vec![a]
    }

    #[test]
    fn jsonl_lines_are_wellformed() {
        let fleet = demo_fleet();
        let mut buf = Vec::new();
        write_fleet_jsonl(&mut buf, &fleet).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // 4 samples + 1 change + 1 summary.
        assert_eq!(lines.len(), 6);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            // The label's quote is escaped, so the line has an even count
            // of unescaped quotes.
            let unescaped = line.replace("\\\"", "");
            assert_eq!(unescaped.matches('"').count() % 2, 0, "{line}");
        }
        assert!(lines[4].contains("\"type\":\"change\""));
        assert!(lines[4].contains("\"direction\":\"down\""));
        assert!(lines[5].contains("\"errors\":1"));
        assert!(lines[5].contains("atl\\\"gru"));
    }

    #[test]
    fn telemetry_line_snapshots_the_registry() {
        let t = FleetTelemetry::new();
        let h = t.pacing_histogram("lo\"0");
        h.observe(700);
        h.observe(1300);
        let line = telemetry_line(&t);
        assert!(line.starts_with("{\"type\":\"telemetry\""), "{line}");
        assert!(line.contains("\"label\":\"lo\\\"0\""), "{line}");
        assert!(line.contains("\"packets\":2"), "{line}");
        assert!(line.contains("\"scheduler\":{\"running\":0"), "{line}");
    }

    #[test]
    fn summary_renders_changes() {
        let fleet = demo_fleet();
        let text = fleet_summary(&fleet);
        assert!(text.contains("DOWN at"));
        assert!(text.contains("samples"));
    }
}
