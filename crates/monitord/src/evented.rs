//! The event-loop fleet driver: hundreds of socket paths on **one
//! thread**.
//!
//! [`run_socket_fleet_async`] hosts N non-blocking
//! [`pathload_net::EventedSession`]s plus the unchanged sans-IO
//! [`Scheduler`] on a single [`pathload_net::mux::EventLoop`]. Where the
//! thread-backed driver ([`crate::thread`]) burns one blocking worker per
//! in-flight measurement — capping a daemon at tens of paths — this driver
//! registers every session's control TCP and probe UDP sockets with one
//! epoll instance and turns every deadline the blocking stack *sleeps* on
//! (scheduler start instants, packet pacing, inter-stream idles) into a
//! timer entry on the loop's queue.
//!
//! Both repo invariants hold by construction:
//!
//! * **estimation logic lives in the machine** — `EventedSession` is a
//!   pure command/event pump of `slops::SessionMachine` (see
//!   `docs/DRIVERS.md`);
//! * **scheduling policy lives in the scheduler** — every start is taken
//!   from [`Scheduler::poll`] (the start instant becomes a timer entry)
//!   and every completion is fed back through [`Scheduler::on_complete`]
//!   the moment the loop observes it. Completions arrive one at a time on
//!   an event loop, so the tick-grouped replay the batching thread driver
//!   needs (`docs/DRIVERS.md` gotchas) is satisfied trivially.
//!
//! The observer surface ([`FleetEvent`]), shutdown handling
//! ([`ShutdownFlag`]: pending starts are cancelled, in-flight measurements
//! land), series stores and JSONL export are all shared with the other
//! drivers unchanged — `monitord --driver async` is the same daemon on a
//! different substrate.
//!
//! Like every wall-clock driver, the schedule is best effort: a start
//! instant may already be in the past when its timer pops (the measurement
//! then starts immediately), and the exact tick grid is not asserted.
//!
//! **Reconnect policy** (driver/scheduler plumbing, not estimation): when
//! a measurement fails with a *transport* error — the receiver died,
//! restarted, or the control channel broke — the path's transport is
//! dropped and the slot parks as disconnected. The scheduler
//! keeps issuing the path's periodic starts as if nothing happened; each
//! start on a disconnected path re-dials the receiver's address first
//! (fresh `Hello`, fresh session token — a restarted receiver speaks to
//! it like any new sender) and measures on success. A failed re-dial
//! counts as that start's failure and the next scheduled start retries.
//! Paths whose receivers stay up never notice; nothing is fatal after
//! the initial fleet connect.

// Datapath module: a panicking branch here takes the whole fleet down,
// so `unwrap`/`expect` are denied outright (errors must travel as values).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::metrics::FleetTelemetry;
use crate::scheduler::{PathId, Poll, ScheduleConfig, Scheduler};
use crate::socket::{connect_transports, SocketPathSpec};
use crate::store::{ChangeCursor, PathSeries, SeriesConfig};
use crate::thread::{FleetEvent, ShutdownFlag};
use pathload_net::mux::{EventLoop, MuxEvent};
use pathload_net::{EventedSession, SessionTokens, SocketTransport};
use slops::series::RangeSample;
use slops::{ProbeTransport, SlopsConfig, SlopsError, TransportError};
use std::sync::Arc;
use std::time::Duration;
use telemetry::{Histogram, TraceSink};
use units::TimeNs;

/// Upper bound on one `EventLoop::wait`, so the loop re-checks the
/// shutdown flag and scheduler state even when nothing is happening.
const WAIT_SLICE: Duration = Duration::from_millis(50);

/// Token layout: kind in the top byte, a per-path generation in the
/// middle (timers cannot be cancelled, so a stale entry must never be
/// mistaken for a live session's), the path index at the bottom.
const TOK_CTRL: u64 = 1;
const TOK_PROBE: u64 = 2;
const TOK_TIMER: u64 = 3;
const TOK_START: u64 = 4;

fn tok(kind: u64, generation: u64, path: usize) -> u64 {
    (kind << 56) | ((generation & 0xFF_FFFF) << 32) | path as u64
}

fn untok(token: u64) -> (u64, u64, usize) {
    (
        token >> 56,
        (token >> 32) & 0xFF_FFFF,
        (token & 0xFFFF_FFFF) as usize,
    )
}

/// Where one path of the fleet currently is.
enum Slot {
    /// Connected, no measurement scheduled.
    Idle(SocketTransport),
    /// The scheduler issued a start at `at`; a timer entry is armed.
    Pending {
        transport: SocketTransport,
        at: TimeNs,
    },
    /// A measurement is in flight on the event loop.
    Active {
        session: Box<EventedSession>,
        at: TimeNs,
    },
    /// The path's transport died (receiver gone/restarted). The next
    /// scheduled start re-dials.
    Disconnected,
    /// The scheduler issued a start at `at` on a disconnected path; the
    /// armed timer re-dials before measuring.
    PendingRedial { at: TimeNs },
    /// Transient placeholder during transitions (never observed).
    Moving,
}

impl Slot {
    fn take(&mut self) -> Slot {
        std::mem::replace(self, Slot::Moving)
    }
}

fn io_err(e: std::io::Error) -> SlopsError {
    SlopsError::Transport(TransportError::Io(e.to_string()))
}

/// Run a socket-backed monitoring fleet on one event-loop thread:
/// connect every path, then measure each periodically (staggered,
/// jittered, capped — the same [`ScheduleConfig`] semantics as the
/// thread driver) until `horizon` of wall-clock time has passed since the
/// fleet connected, streaming a [`FleetEvent`] per stored sample,
/// failure, and flagged change.
///
/// Returns the per-path series in path order. Connection failures are
/// fatal; failures of individual measurements after that are counted on
/// the path's series and monitoring continues.
pub fn run_socket_fleet_async(
    specs: Vec<SocketPathSpec>,
    sched_cfg: &ScheduleConfig,
    series_cfg: &SeriesConfig,
    horizon: TimeNs,
    observer: impl FnMut(FleetEvent<'_>),
) -> Result<Vec<PathSeries>, SlopsError> {
    run_socket_fleet_async_with_shutdown(
        specs,
        sched_cfg,
        series_cfg,
        horizon,
        &ShutdownFlag::new(),
        observer,
    )
}

/// [`run_socket_fleet_async`] plus a cooperative [`ShutdownFlag`]: when
/// requested, the scheduler stops issuing starts, pending (not yet begun)
/// starts are cancelled without being measured, in-flight measurements
/// land and are recorded, and the series collected so far are returned —
/// the same contract as [`crate::thread::run_fleet_with_shutdown`].
pub fn run_socket_fleet_async_with_shutdown(
    specs: Vec<SocketPathSpec>,
    sched_cfg: &ScheduleConfig,
    series_cfg: &SeriesConfig,
    horizon: TimeNs,
    stop: &ShutdownFlag,
    observer: impl FnMut(FleetEvent<'_>),
) -> Result<Vec<PathSeries>, SlopsError> {
    run_socket_fleet_async_with_telemetry(
        specs, sched_cfg, series_cfg, horizon, stop, None, observer,
    )
}

/// [`run_socket_fleet_async_with_shutdown`] plus an optional
/// [`FleetTelemetry`] hub: every session's machine trace is forwarded to
/// the hub's per-path sinks, per-packet pacing error goes to the same
/// `pacing_error_ns{path="…"}` histograms the thread driver fills, and the
/// event loop reports its wakeup count and timer lag
/// (`eventloop_wakeups_total`, `eventloop_timer_lag_ns`).
pub fn run_socket_fleet_async_with_telemetry(
    specs: Vec<SocketPathSpec>,
    sched_cfg: &ScheduleConfig,
    series_cfg: &SeriesConfig,
    horizon: TimeNs,
    stop: &ShutdownFlag,
    telemetry: Option<&FleetTelemetry>,
    mut observer: impl FnMut(FleetEvent<'_>),
) -> Result<Vec<PathSeries>, SlopsError> {
    assert!(!specs.is_empty(), "a fleet needs at least one path");
    for s in &specs {
        s.cfg.validate().map_err(SlopsError::BadConfig)?;
    }
    // Per-path instruments, built before the specs are consumed. The
    // pacing histograms live on the EventedSession (which paces probes
    // itself); the transport-level ones the thread driver uses would
    // never fire here.
    let instruments: Option<Vec<(Arc<dyn TraceSink>, Histogram)>> = telemetry.map(|t| {
        specs
            .iter()
            .map(|s| (t.trace_sink(&s.label), t.pacing_histogram(&s.label)))
            .collect()
    });
    let (epoch, connected) = connect_transports(specs, None).map_err(io_err)?;
    let mut lp = EventLoop::new(epoch.same_epoch()).map_err(io_err)?;
    if let Some(t) = telemetry {
        lp.set_metrics(
            t.registry().counter("eventloop_wakeups_total", &[]),
            t.registry().histogram("eventloop_timer_lag_ns", &[]),
        );
    }

    // The fleet epoch: the latest transport clock (all share one epoch).
    // The fleet is non-empty (asserted above), so `max` always yields;
    // ZERO is a dead fallback keeping the datapath panic-free.
    let t0 = connected
        .iter()
        .map(|(_, t)| t.elapsed())
        .max()
        .unwrap_or(TimeNs::ZERO);
    let n = connected.len();
    let mut sched = Scheduler::new(n, t0, horizon, sched_cfg);
    let mut series: Vec<PathSeries> = connected
        .iter()
        .map(|(spec, _)| PathSeries::new(spec.label.clone(), series_cfg, t0))
        .collect();
    let mut cfgs: Vec<SlopsConfig> = Vec::with_capacity(n);
    let mut slots: Vec<Slot> = Vec::with_capacity(n);
    // Retained for re-dialing after a receiver restart.
    let mut addrs = Vec::with_capacity(n);
    let mut caps = Vec::with_capacity(n);
    for (spec, transport) in connected {
        addrs.push(spec.ctrl_addr);
        caps.push(spec.rate_cap);
        cfgs.push(spec.cfg);
        slots.push(Slot::Idle(transport));
    }
    // Bumped whenever a path's session or pending start retires, so the
    // lazily-cancelled timer entries of earlier lives are ignored.
    let mut generation: Vec<u64> = vec![0; n];
    let mut change_cursors = vec![ChangeCursor::new(); n];
    let mut shutdown_applied = false;

    // One path's completed measurement: record it, notify, feed the
    // scheduler — identical bookkeeping to the thread driver's feed loop.
    macro_rules! complete {
        ($p:expr, $at:expr, $outcome:expr, $finished:expr) => {{
            let p = $p;
            match $outcome {
                Ok(est) => {
                    let sample = RangeSample::from_estimate($at, &est);
                    series[p].push(sample);
                    observer(FleetEvent::Sample {
                        path: p,
                        label: series[p].label(),
                        sample,
                    });
                    let changes = series[p].changes();
                    for change in change_cursors[p].fresh(&changes) {
                        observer(FleetEvent::Change {
                            path: p,
                            label: series[p].label(),
                            change: *change,
                        });
                    }
                }
                Err(error) => {
                    series[p].record_error();
                    observer(FleetEvent::Failed {
                        path: p,
                        label: series[p].label(),
                        error: &error,
                    });
                }
            }
            generation[p] += 1;
            sched.on_complete(PathId(p as u32), $finished);
        }};
    }

    let mut events: Vec<MuxEvent> = Vec::new();
    loop {
        // Graceful shutdown: the stop decision itself is scheduler
        // policy; pending (unstarted) timers are cancelled lazily by the
        // generation bump, active sessions run to completion.
        if stop.is_requested() && !shutdown_applied {
            shutdown_applied = true;
            sched.shutdown();
            for p in 0..n {
                match slots[p].take() {
                    Slot::Pending { transport, .. } => {
                        let now = transport.elapsed();
                        slots[p] = Slot::Idle(transport);
                        generation[p] += 1;
                        sched.on_complete(PathId(p as u32), now);
                    }
                    Slot::PendingRedial { .. } => {
                        slots[p] = Slot::Disconnected;
                        generation[p] += 1;
                        sched.on_complete(PathId(p as u32), TimeNs::from_nanos(epoch.now_ns()));
                    }
                    other => slots[p] = other,
                }
            }
        }

        // Issue every start the scheduler can decide: each becomes a
        // timer entry at its start instant (possibly already past — the
        // timer then pops on the next wait, i.e. start immediately).
        while let Poll::Start { path, at } = sched.poll() {
            let p = path.0 as usize;
            match slots[p].take() {
                Slot::Idle(transport) => slots[p] = Slot::Pending { transport, at },
                // Receiver gone: the start stands, prefixed by a re-dial.
                Slot::Disconnected => slots[p] = Slot::PendingRedial { at },
                // The scheduler never starts a busy path; tolerate the
                // impossible (slot back, start skipped) rather than
                // panic mid-fleet.
                other => {
                    slots[p] = other;
                    continue;
                }
            }
            lp.arm_timer(at.as_nanos(), tok(TOK_START, generation[p], p));
        }

        if let Some(t) = telemetry {
            t.observe_scheduler(&sched, TimeNs::from_nanos(epoch.now_ns()));
        }

        if sched.is_done()
            && slots
                .iter()
                .all(|s| matches!(s, Slot::Idle(_) | Slot::Disconnected))
        {
            break;
        }

        events.clear();
        lp.wait(&mut events, WAIT_SLICE).map_err(io_err)?;
        for &ev in &events {
            let token = match ev {
                MuxEvent::Io(r) => r.token,
                MuxEvent::Timer { token } => token,
            };
            let (kind, generation_tag, p) = untok(token);
            if p >= n || generation_tag != (generation[p] & 0xFF_FFFF) {
                continue; // stale timer or retired session
            }
            // A transport-level failure means the far end is gone or
            // restarted: the old control channel and session token are
            // useless, so the slot parks Disconnected and the next
            // scheduled start re-dials. Any other failure keeps the
            // connection.
            macro_rules! park {
                ($p:expr, $transport:expr, $error:expr) => {{
                    if matches!($error, SlopsError::Transport(_)) {
                        drop($transport);
                        slots[$p] = Slot::Disconnected;
                    } else {
                        slots[$p] = Slot::Idle($transport);
                    }
                }};
            }
            match kind {
                TOK_START => {
                    // Resolve the start's transport: either the held idle
                    // one, or a fresh re-dial of the path's receiver.
                    let (transport, at) = match slots[p].take() {
                        Slot::Pending { transport, at } => (transport, at),
                        Slot::PendingRedial { at } => {
                            match SocketTransport::connect_with_clock(addrs[p], epoch.same_epoch())
                            {
                                Ok(mut t) => {
                                    if let Some(cap) = caps[p] {
                                        t.rate_cap = cap;
                                    }
                                    (t, at)
                                }
                                Err(e) => {
                                    // Receiver still down: this start
                                    // fails, the next one retries.
                                    slots[p] = Slot::Disconnected;
                                    complete!(
                                        p,
                                        at,
                                        Err::<slops::Estimate, _>(io_err(e)),
                                        TimeNs::from_nanos(epoch.now_ns())
                                    );
                                    continue;
                                }
                            }
                        }
                        other => {
                            slots[p] = other; // cancelled or already begun
                            continue;
                        }
                    };
                    // Begin the measurement scheduled for this path.
                    let tokens = SessionTokens {
                        ctrl: tok(TOK_CTRL, generation[p], p),
                        probe: tok(TOK_PROBE, generation[p], p),
                        timer: tok(TOK_TIMER, generation[p], p),
                    };
                    match EventedSession::new(transport, cfgs[p].clone(), tokens) {
                        Ok(mut session) => {
                            if let Some(instruments) = &instruments {
                                let (sink, hist) = &instruments[p];
                                session.set_trace_sink(Arc::clone(sink));
                                session.set_pacing_histogram(hist.clone());
                            }
                            match session.register(&lp) {
                                Ok(()) => {
                                    slots[p] = Slot::Active {
                                        session: Box::new(session),
                                        at,
                                    };
                                }
                                Err(e) => {
                                    let transport = session.abort(&lp);
                                    let finished = transport.elapsed();
                                    let error = io_err(e);
                                    park!(p, transport, error);
                                    complete!(p, at, Err::<slops::Estimate, _>(error), finished);
                                }
                            }
                        }
                        Err((transport, error)) => {
                            let finished = transport.elapsed();
                            park!(p, transport, error);
                            complete!(p, at, Err::<slops::Estimate, _>(error), finished);
                        }
                    }
                }
                TOK_CTRL | TOK_PROBE | TOK_TIMER => match slots[p].take() {
                    Slot::Active { mut session, at } => {
                        session.on_event(&mut lp, &ev);
                        if session.is_finished() {
                            let (transport, outcome) = session.finish(&lp);
                            let finished = transport.elapsed();
                            match &outcome {
                                Err(error) => park!(p, transport, *error),
                                Ok(_) => slots[p] = Slot::Idle(transport),
                            }
                            complete!(p, at, outcome, finished);
                        } else {
                            slots[p] = Slot::Active { session, at };
                        }
                    }
                    other => slots[p] = other,
                },
                _ => {}
            }
        }
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use pathload_net::Receiver;
    use std::thread;
    use units::Rate;

    fn gentle_cfg() -> SlopsConfig {
        let mut cfg = SlopsConfig::default();
        cfg.stream_len = 20;
        cfg.fleet_len = 3;
        cfg.min_period = TimeNs::from_millis(1);
        cfg.resolution = Rate::from_mbps(10.0);
        cfg.grey_resolution = Rate::from_mbps(20.0);
        cfg.max_fleets = 4;
        cfg
    }

    /// Two loopback paths sharing ONE receiver address, multiplexed on a
    /// single event-loop thread: every path gets at least one sample,
    /// nothing errors, and streamed events match the stored series.
    #[test]
    fn loopback_pair_on_one_event_loop_thread() {
        let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = rx.ctrl_addr();
        let server = thread::spawn(move || rx.serve_n(2));
        let specs: Vec<SocketPathSpec> = (0..2)
            .map(|i| SocketPathSpec {
                label: format!("lo{i}"),
                ctrl_addr: addr,
                cfg: gentle_cfg(),
                rate_cap: Some(Rate::from_mbps(30.0)),
            })
            .collect();
        let sched = ScheduleConfig {
            period: TimeNs::from_secs(2),
            jitter: TimeNs::from_millis(100),
            max_concurrent: 1,
            seed: 1,
        };
        let mut samples = 0usize;
        let series = run_socket_fleet_async(
            specs,
            &sched,
            &SeriesConfig::default(),
            TimeNs::from_secs(4),
            |ev| {
                if matches!(ev, FleetEvent::Sample { .. }) {
                    samples += 1;
                }
            },
        )
        .unwrap();
        assert_eq!(series.len(), 2);
        for s in &series {
            assert!(!s.is_empty(), "{}: no samples", s.label());
            assert_eq!(s.errors(), 0, "{}: errored", s.label());
            for r in s.samples() {
                assert!(r.low.bps() <= r.high.bps());
            }
        }
        assert_eq!(samples, series.iter().map(|s| s.len()).sum::<usize>());
        server.join().unwrap().unwrap();
    }

    /// A preset shutdown flag stops the fleet before any measurement.
    #[test]
    fn preset_shutdown_flag_stops_before_any_measurement() {
        let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = rx.ctrl_addr();
        let server = thread::spawn(move || rx.serve_n(1));
        let stop = ShutdownFlag::new();
        stop.request();
        let specs = vec![SocketPathSpec {
            label: "lo".into(),
            ctrl_addr: addr,
            cfg: gentle_cfg(),
            rate_cap: None,
        }];
        let series = run_socket_fleet_async_with_shutdown(
            specs,
            &ScheduleConfig::default(),
            &SeriesConfig::default(),
            TimeNs::from_secs(600),
            &stop,
            |_| panic!("no event may fire after shutdown was requested"),
        )
        .unwrap();
        assert_eq!(series.len(), 1);
        assert!(series[0].is_empty(), "no starts issued");
        server.join().unwrap().unwrap();
    }

    /// An unreachable receiver is a fatal connect error, as in the
    /// thread driver.
    #[test]
    fn unreachable_receiver_is_a_connect_error() {
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let specs = vec![SocketPathSpec {
            label: "dead".into(),
            ctrl_addr: dead,
            cfg: gentle_cfg(),
            rate_cap: None,
        }];
        let err = run_socket_fleet_async(
            specs,
            &ScheduleConfig::default(),
            &SeriesConfig::default(),
            TimeNs::from_secs(1),
            |_| {},
        );
        assert!(matches!(err, Err(SlopsError::Transport(_))));
    }
}
