//! Packet interarrival-time models.

use netsim::Prng;

/// Renewal interarrival-time models used in the paper's simulations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Interarrival {
    /// Exponential interarrivals (Poisson arrivals) — the "smooth" model.
    Exponential,
    /// Pareto interarrivals with the given shape α. The paper uses α = 1.9:
    /// finite mean, infinite variance.
    Pareto {
        /// Shape parameter.
        alpha: f64,
    },
    /// Deterministic (CBR) interarrivals — fluid-like traffic, used to
    /// validate the simulator against the analytic fluid model.
    Constant,
}

impl Interarrival {
    /// The paper's heavy-tailed default: Pareto with α = 1.9.
    pub const PARETO_PAPER: Interarrival = Interarrival::Pareto { alpha: 1.9 };

    /// Draw one interarrival time with the given mean (seconds).
    #[inline]
    pub fn sample(&self, rng: &mut Prng, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        match *self {
            Interarrival::Exponential => rng.exponential(mean),
            Interarrival::Pareto { alpha } => rng.pareto_mean(alpha, mean),
            Interarrival::Constant => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(model: Interarrival, mean: f64, n: usize) -> f64 {
        let mut rng = Prng::new(99);
        (0..n).map(|_| model.sample(&mut rng, mean)).sum::<f64>() / n as f64
    }

    #[test]
    fn all_models_hit_requested_mean() {
        assert!((sample_mean(Interarrival::Exponential, 0.01, 200_000) - 0.01).abs() < 2e-4);
        assert!((sample_mean(Interarrival::PARETO_PAPER, 0.01, 400_000) - 0.01).abs() / 0.01 < 0.1);
        assert!((sample_mean(Interarrival::Constant, 0.01, 10) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn pareto_is_burstier_than_exponential() {
        let mut rng = Prng::new(7);
        let n = 100_000;
        let var = |model: Interarrival, rng: &mut Prng| {
            let xs: Vec<f64> = (0..n).map(|_| model.sample(rng, 1.0)).collect();
            let m = xs.iter().sum::<f64>() / n as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64
        };
        let v_exp = var(Interarrival::Exponential, &mut rng);
        let v_par = var(Interarrival::PARETO_PAPER, &mut rng);
        assert!(
            v_par > 2.0 * v_exp,
            "pareto variance {v_par} not >> exponential {v_exp}"
        );
    }
}
