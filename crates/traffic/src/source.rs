//! Renewal cross-traffic sources.

use crate::interarrival::Interarrival;
use crate::sizes::SizeDist;
use netsim::{App, Ctx, FlowId, Packet, Prng, RouteSpec, Simulator};
use std::sync::Arc;
use units::{Rate, TimeNs};

/// Configuration shared by a group of renewal sources.
#[derive(Clone, Debug)]
pub struct SourceConfig {
    /// Interarrival model.
    pub interarrival: Interarrival,
    /// Packet-size distribution.
    pub sizes: SizeDist,
    /// Sources start at a random offset in `[0, start_jitter)` to avoid
    /// phase synchronization between sources.
    pub start_jitter: TimeNs,
}

impl SourceConfig {
    /// Paper default: Pareto α = 1.9 interarrivals, paper size mix.
    pub fn paper_pareto() -> SourceConfig {
        SourceConfig {
            interarrival: Interarrival::PARETO_PAPER,
            sizes: SizeDist::paper_mix(),
            start_jitter: TimeNs::from_millis(100),
        }
    }

    /// Poisson arrivals with the paper size mix.
    pub fn paper_poisson() -> SourceConfig {
        SourceConfig {
            interarrival: Interarrival::Exponential,
            sizes: SizeDist::paper_mix(),
            start_jitter: TimeNs::from_millis(100),
        }
    }

    /// Constant-spacing, fixed-size traffic (fluid-like).
    pub fn cbr(packet_size: u32) -> SourceConfig {
        SourceConfig {
            interarrival: Interarrival::Constant,
            sizes: SizeDist::Fixed(packet_size),
            start_jitter: TimeNs::from_millis(100),
        }
    }
}

/// A renewal packet source: draws a packet size and an interarrival time
/// per packet so its long-run average rate equals `rate`.
pub struct CrossTrafficSource {
    cfg: SourceConfig,
    rate: Rate,
    route: Arc<RouteSpec>,
    flow: FlowId,
    rng: Prng,
    mean_gap_secs: f64,
    next_seq: u64,
    /// Total bytes emitted (for rate verification in tests).
    pub bytes_sent: u64,
}

impl CrossTrafficSource {
    /// Create a source; drive it by scheduling its timer once (or use
    /// [`attach_sources`], which does this for you).
    pub fn new(
        cfg: SourceConfig,
        rate: Rate,
        route: Arc<RouteSpec>,
        flow: FlowId,
        rng: Prng,
    ) -> CrossTrafficSource {
        assert!(rate.bps() > 0.0, "source rate must be positive");
        let mean_gap_secs = cfg.sizes.mean() * 8.0 / rate.bps();
        CrossTrafficSource {
            cfg,
            rate,
            route,
            flow,
            rng,
            mean_gap_secs,
            next_seq: 0,
            bytes_sent: 0,
        }
    }

    /// The configured average rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }
}

impl App for CrossTrafficSource {
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let size = self.cfg.sizes.sample(&mut self.rng);
        let pkt = Packet::new(size, self.flow, self.next_seq, self.route.clone());
        self.next_seq += 1;
        self.bytes_sent += size as u64;
        ctx.send(pkt);
        let gap = self
            .cfg
            .interarrival
            .sample(&mut self.rng, self.mean_gap_secs);
        ctx.timer_in(TimeNs::from_secs_f64(gap), 0);
    }
}

/// Attach `n` sources with aggregate average rate `aggregate` to `route`,
/// splitting the rate evenly. Each source gets its own RNG stream and a
/// random start offset. Returns the source app ids.
pub fn attach_sources(
    sim: &mut Simulator,
    route: Arc<RouteSpec>,
    aggregate: Rate,
    n: usize,
    cfg: &SourceConfig,
) -> Vec<netsim::AppId> {
    assert!(n > 0, "need at least one source");
    let per_source = aggregate / n as f64;
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let mut rng = sim.rng();
        let start = if cfg.start_jitter.is_zero() {
            TimeNs::ZERO
        } else {
            TimeNs::from_nanos(rng.below(cfg.start_jitter.as_nanos()))
        };
        let src = CrossTrafficSource::new(
            cfg.clone(),
            per_source,
            route.clone(),
            FlowId(0x4352_0000 + i as u32), // 'CR' prefix for cross traffic
            rng,
        );
        let id = sim.add_app(Box::new(src));
        // Sources are pure senders (never a route destination), so anchor
        // them to their route's component for the shard planner.
        sim.bind_app(id, &route);
        let now = sim.now();
        sim.schedule_timer(id, now + start, 0);
        ids.push(id);
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::app::CountingSink;
    use netsim::LinkConfig;

    fn run_sources(cfg: SourceConfig, aggregate_mbps: f64, n: usize, secs: u64) -> (f64, u64) {
        let mut sim = Simulator::new(1234);
        let link = sim.add_link(LinkConfig::new(
            Rate::from_mbps(100.0),
            TimeNs::from_millis(1),
        ));
        let sink = sim.add_app(Box::new(CountingSink::default()));
        let route = sim.route(&[link], sink);
        attach_sources(&mut sim, route, Rate::from_mbps(aggregate_mbps), n, &cfg);
        sim.run_until(TimeNs::from_secs(secs));
        let elapsed = TimeNs::from_secs(secs);
        let util = sim.link(link).stats.utilization(elapsed);
        (util * 100.0, sim.app::<CountingSink>(sink).packets)
    }

    #[test]
    fn poisson_sources_hit_target_rate() {
        let (util_mbps, pkts) = run_sources(SourceConfig::paper_poisson(), 6.0, 10, 30);
        assert!((util_mbps - 6.0).abs() < 0.3, "got {util_mbps} Mb/s");
        assert!(pkts > 10_000);
    }

    #[test]
    fn pareto_sources_hit_target_rate() {
        let (util_mbps, _) = run_sources(SourceConfig::paper_pareto(), 6.0, 10, 60);
        assert!((util_mbps - 6.0).abs() < 0.6, "got {util_mbps} Mb/s");
    }

    #[test]
    fn cbr_source_is_exact() {
        let mut cfg = SourceConfig::cbr(1000);
        cfg.start_jitter = TimeNs::ZERO; // no ramp-in bias
        let (util_mbps, _) = run_sources(cfg, 8.0, 1, 10);
        assert!((util_mbps - 8.0).abs() < 0.05, "got {util_mbps} Mb/s");
    }

    #[test]
    fn sources_are_reproducible() {
        let a = run_sources(SourceConfig::paper_pareto(), 4.0, 5, 10);
        let b = run_sources(SourceConfig::paper_pareto(), 4.0, 5, 10);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let mut sim = Simulator::new(1);
        let sink = sim.add_app(Box::new(CountingSink::default()));
        let route = sim.route(&[], sink);
        let rng = sim.rng();
        let _ = CrossTrafficSource::new(
            SourceConfig::paper_poisson(),
            Rate::ZERO,
            route,
            FlowId(1),
            rng,
        );
    }
}
