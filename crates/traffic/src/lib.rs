//! # traffic — stochastic cross-traffic generators for netsim
//!
//! Implements the cross-traffic models used in the paper's evaluation
//! (§V-A): renewal packet sources with exponential or Pareto (α = 1.9,
//! infinite variance) interarrivals, the 40/550/1500-byte packet-size mix,
//! constant-bit-rate sources, and Pareto ON/OFF sources whose aggregate
//! models different degrees of statistical multiplexing (§VI-B).
//!
//! Every source is a [`netsim::App`] driven by its own seeded PRNG, so
//! experiments are exactly reproducible.
//!
//! ```
//! use netsim::{LinkConfig, Simulator};
//! use traffic::{attach_sources, Interarrival, SizeDist, SourceConfig};
//! use units::{Rate, TimeNs};
//!
//! let mut sim = Simulator::new(42);
//! let link = sim.add_link(LinkConfig::new(Rate::from_mbps(10.0), TimeNs::from_millis(1)));
//! let sink = sim.add_app(Box::new(netsim::app::CountingSink::default()));
//! let route = sim.route(&[link], sink);
//! // 10 Pareto sources carrying 6 Mb/s aggregate (60% utilization).
//! attach_sources(&mut sim, route, Rate::from_mbps(6.0), 10, &SourceConfig::paper_pareto());
//! sim.run_until(TimeNs::from_secs(30));
//! let util = sim.link(link).stats.utilization(TimeNs::from_secs(30));
//! assert!((util - 0.6).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]

pub mod interarrival;
pub mod onoff;
pub mod sizes;
pub mod source;

pub use interarrival::Interarrival;
pub use onoff::{attach_onoff_sources, OnOffConfig, OnOffSource};
pub use sizes::SizeDist;
pub use source::{attach_sources, CrossTrafficSource, SourceConfig};
