//! Packet-size distributions.

use netsim::Prng;

/// A discrete packet-size distribution.
#[derive(Clone, Debug, PartialEq)]
pub enum SizeDist {
    /// All packets have the same size.
    Fixed(u32),
    /// Sizes drawn from `(size, weight)` pairs.
    Discrete(Vec<(u32, f64)>),
}

impl SizeDist {
    /// The paper's cross-traffic mix (§V-A): 40% 40 B, 50% 550 B, 10% 1500 B.
    pub fn paper_mix() -> SizeDist {
        SizeDist::Discrete(vec![(40, 0.4), (550, 0.5), (1500, 0.1)])
    }

    /// Draw one packet size.
    #[inline]
    pub fn sample(&self, rng: &mut Prng) -> u32 {
        match self {
            SizeDist::Fixed(s) => *s,
            SizeDist::Discrete(items) => {
                // Small vectors; weighted_choice over a stack copy would be
                // nicer but the allocation-free loop below is just as clear.
                let total: f64 = items.iter().map(|(_, w)| *w).sum();
                let mut x = rng.f64() * total;
                for (s, w) in items {
                    if x < *w {
                        return *s;
                    }
                    x -= *w;
                }
                items.last().expect("empty size distribution").0
            }
        }
    }

    /// Expected packet size in bytes.
    pub fn mean(&self) -> f64 {
        match self {
            SizeDist::Fixed(s) => *s as f64,
            SizeDist::Discrete(items) => {
                let total: f64 = items.iter().map(|(_, w)| *w).sum();
                items.iter().map(|(s, w)| *s as f64 * *w).sum::<f64>() / total
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_mean() {
        // 0.4*40 + 0.5*550 + 0.1*1500 = 16 + 275 + 150 = 441
        assert!((SizeDist::paper_mix().mean() - 441.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_always_returns_same() {
        let mut rng = Prng::new(1);
        let d = SizeDist::Fixed(777);
        assert_eq!(d.mean(), 777.0);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 777);
        }
    }

    #[test]
    fn discrete_frequencies_match_weights() {
        let mut rng = Prng::new(2);
        let d = SizeDist::paper_mix();
        let n = 200_000;
        let mut c40 = 0;
        let mut c550 = 0;
        let mut c1500 = 0;
        for _ in 0..n {
            match d.sample(&mut rng) {
                40 => c40 += 1,
                550 => c550 += 1,
                1500 => c1500 += 1,
                other => panic!("unexpected size {other}"),
            }
        }
        assert!((c40 as f64 / n as f64 - 0.4).abs() < 0.01);
        assert!((c550 as f64 / n as f64 - 0.5).abs() < 0.01);
        assert!((c1500 as f64 / n as f64 - 0.1).abs() < 0.01);
    }

    #[test]
    fn unnormalized_weights_are_fine() {
        let d = SizeDist::Discrete(vec![(100, 2.0), (200, 2.0)]);
        assert_eq!(d.mean(), 150.0);
    }
}
