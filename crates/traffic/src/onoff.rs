//! Pareto ON/OFF sources.
//!
//! Aggregating many Pareto ON/OFF sources yields long-range-dependent
//! (self-similar-like) traffic (Willinger et al.). The statistical-
//! multiplexing experiment (§VI-B, Fig. 12) models paths whose tight links
//! carry different numbers of simultaneous flows: more sources at the same
//! total utilization produce a smoother aggregate, hence less variable
//! avail-bw.

use netsim::{App, Ctx, FlowId, Packet, Prng, RouteSpec, Simulator};
use std::sync::Arc;
use units::{Rate, TimeNs};

/// Configuration of one Pareto ON/OFF source.
#[derive(Clone, Debug)]
pub struct OnOffConfig {
    /// Mean ON-period duration (seconds).
    pub mean_on_secs: f64,
    /// Mean OFF-period duration (seconds).
    pub mean_off_secs: f64,
    /// Pareto shape for both period distributions (1 < α < 2 for LRD).
    pub alpha: f64,
    /// Transmission rate while ON (packets evenly spaced).
    pub peak_rate: Rate,
    /// Packet size while ON.
    pub packet_size: u32,
}

impl OnOffConfig {
    /// Long-run average rate: `peak * on / (on + off)`.
    pub fn avg_rate(&self) -> Rate {
        self.peak_rate * (self.mean_on_secs / (self.mean_on_secs + self.mean_off_secs))
    }

    /// A source with the given average rate using a 1:3 ON:OFF duty cycle,
    /// 500 ms mean ON period, α = 1.5, 1000-byte packets — a burst profile
    /// that produces visibly bursty aggregates at low multiplexing.
    pub fn with_avg_rate(avg: Rate) -> OnOffConfig {
        let mean_on_secs = 0.5;
        let mean_off_secs = 1.5;
        let duty = mean_on_secs / (mean_on_secs + mean_off_secs);
        OnOffConfig {
            mean_on_secs,
            mean_off_secs,
            alpha: 1.5,
            peak_rate: avg / duty,
            packet_size: 1000,
        }
    }
}

const TOKEN_PACKET: u64 = 0;
const TOKEN_START_ON: u64 = 1;

/// A Pareto ON/OFF source. Kick off with one timer (token 1).
pub struct OnOffSource {
    cfg: OnOffConfig,
    route: Arc<RouteSpec>,
    flow: FlowId,
    rng: Prng,
    on_until: TimeNs,
    next_seq: u64,
    /// Total bytes emitted.
    pub bytes_sent: u64,
}

impl OnOffSource {
    /// Create a source; schedule timer token 1 to start it.
    pub fn new(cfg: OnOffConfig, route: Arc<RouteSpec>, flow: FlowId, rng: Prng) -> OnOffSource {
        assert!(cfg.peak_rate.bps() > 0.0 && cfg.alpha > 1.0);
        OnOffSource {
            cfg,
            route,
            flow,
            rng,
            on_until: TimeNs::ZERO,
            next_seq: 0,
            bytes_sent: 0,
        }
    }

    fn packet_gap(&self) -> TimeNs {
        self.cfg.peak_rate.tx_time(self.cfg.packet_size)
    }
}

impl App for OnOffSource {
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_START_ON => {
                let on = self.rng.pareto_mean(self.cfg.alpha, self.cfg.mean_on_secs);
                self.on_until = ctx.now() + TimeNs::from_secs_f64(on);
                ctx.timer_in(TimeNs::ZERO, TOKEN_PACKET);
            }
            TOKEN_PACKET => {
                if ctx.now() < self.on_until {
                    let pkt = Packet::new(
                        self.cfg.packet_size,
                        self.flow,
                        self.next_seq,
                        self.route.clone(),
                    );
                    self.next_seq += 1;
                    self.bytes_sent += self.cfg.packet_size as u64;
                    ctx.send(pkt);
                    ctx.timer_in(self.packet_gap(), TOKEN_PACKET);
                } else {
                    let off = self.rng.pareto_mean(self.cfg.alpha, self.cfg.mean_off_secs);
                    ctx.timer_in(TimeNs::from_secs_f64(off), TOKEN_START_ON);
                }
            }
            _ => unreachable!("unknown timer token"),
        }
    }
}

/// Attach `n` ON/OFF sources with the given aggregate average rate.
/// Start times are staggered uniformly over one mean ON+OFF cycle.
pub fn attach_onoff_sources(
    sim: &mut Simulator,
    route: Arc<RouteSpec>,
    aggregate: Rate,
    n: usize,
) -> Vec<netsim::AppId> {
    assert!(n > 0);
    let per_source = aggregate / n as f64;
    let cfg = OnOffConfig::with_avg_rate(per_source);
    let cycle = TimeNs::from_secs_f64(cfg.mean_on_secs + cfg.mean_off_secs);
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let mut rng = sim.rng();
        let start = TimeNs::from_nanos(rng.below(cycle.as_nanos().max(1)));
        let src = OnOffSource::new(
            cfg.clone(),
            route.clone(),
            FlowId(0x4F4E_0000 + i as u32),
            rng,
        );
        let id = sim.add_app(Box::new(src));
        // Pure senders need an explicit anchor for the shard planner.
        sim.bind_app(id, &route);
        let now = sim.now();
        sim.schedule_timer(id, now + start, TOKEN_START_ON);
        ids.push(id);
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::app::CountingSink;
    use netsim::LinkConfig;

    #[test]
    fn avg_rate_formula() {
        let cfg = OnOffConfig::with_avg_rate(Rate::from_mbps(2.0));
        assert!((cfg.avg_rate().mbps() - 2.0).abs() < 1e-9);
        assert!((cfg.peak_rate.mbps() - 8.0).abs() < 1e-9); // 25% duty cycle
    }

    fn run_onoff(n: usize, secs: u64, seed: u64) -> f64 {
        let mut sim = Simulator::new(seed);
        let link = sim.add_link(LinkConfig::new(
            Rate::from_mbps(100.0),
            TimeNs::from_millis(1),
        ));
        let sink = sim.add_app(Box::new(CountingSink::default()));
        let route = sim.route(&[link], sink);
        attach_onoff_sources(&mut sim, route, Rate::from_mbps(6.0), n);
        sim.run_until(TimeNs::from_secs(secs));
        sim.link(link).stats.utilization(TimeNs::from_secs(secs)) * 100.0
    }

    #[test]
    fn aggregate_hits_target_rate() {
        let got = run_onoff(20, 120, 5);
        assert!((got - 6.0).abs() < 0.9, "got {got} Mb/s, want ~6");
    }

    #[test]
    fn fewer_sources_make_burstier_aggregate() {
        // Compare the variance of per-100ms delivered bytes for 2 vs 50
        // sources at the same aggregate rate.
        let variance = |n: usize| {
            let mut sim = Simulator::new(77);
            let link = sim.add_link(
                LinkConfig::new(Rate::from_mbps(100.0), TimeNs::from_millis(1))
                    .with_monitor_window(TimeNs::from_millis(100)),
            );
            let sink = sim.add_app(Box::new(CountingSink::default()));
            let route = sim.route(&[link], sink);
            attach_onoff_sources(&mut sim, route, Rate::from_mbps(6.0), n);
            sim.run_until(TimeNs::from_secs(60));
            let mon = sim.link(link).monitor();
            let xs: Vec<f64> = (0..mon.num_windows())
                .map(|i| mon.bytes_in_window(i) as f64)
                .collect();
            let m = units::mean(&xs);
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
        };
        let v_few = variance(2);
        let v_many = variance(50);
        assert!(
            v_few > 3.0 * v_many,
            "expected burstier with 2 sources: {v_few} vs {v_many}"
        );
    }
}
