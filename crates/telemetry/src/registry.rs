//! Counters, gauges, log-scale histograms, and the [`Registry`] that
//! renders them in the Prometheus text exposition format.
//!
//! Handles are `Arc`-backed clones: instrument once at setup, then hand
//! the clone to the hot path. Increments and observations are single
//! relaxed atomic operations — no locks, no allocation. The registry's
//! mutex guards only registration and snapshot rendering (cold paths).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64` counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero (not yet attached to any registry).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a value that goes up and down (queue depths, active
/// session counts).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero (not yet attached to any registry).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` counts observations `v` with
/// `v <= 2^i` (cumulative style is applied at render time; storage is
/// per-bucket). Bucket 64 is the overflow / `+Inf` bucket.
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    /// `buckets[i]` counts observations that landed in bucket `i`
    /// (non-cumulative; upper bound `2^i`).
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket log-scale histogram of `u64` samples (typically
/// nanoseconds). Bucket upper bounds are the powers of two `1, 2, 4, …,
/// 2^63`, plus an overflow bucket — fine enough for latency work (buckets
/// are a factor of 2 apart) and cheap enough for per-packet paths: one
/// `leading_zeros` and three relaxed atomic adds per observation.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh empty histogram (not yet attached to any registry).
    pub fn new() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// The bucket index for value `v`: the smallest `i` with `v <= 2^i`.
    fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            64 - (v - 1).leading_zeros() as usize
        }
    }

    /// The inclusive upper bound of bucket `i` (`u64::MAX` for the
    /// overflow bucket).
    fn bucket_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Record one sample.
    pub fn observe(&self, v: u64) {
        self.0.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps only after ~1.8e19 total nanoseconds).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// An upper bound on the `q`-quantile (0 ≤ q ≤ 1): the bound of the
    /// first bucket whose cumulative count reaches `q · count`. Returns
    /// `None` while the histogram is empty. The estimate is conservative
    /// by at most a factor of 2 (the bucket width).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.0.buckets[i].load(Ordering::Relaxed);
            if seen >= rank {
                return Some(Self::bucket_bound(i));
            }
        }
        Some(u64::MAX)
    }

    /// Per-bucket counts (non-cumulative), for tests and custom rollups.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// A registered metric of any kind.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

type MetricKey = (String, Vec<(String, String)>);

#[derive(Default)]
struct Inner {
    metrics: BTreeMap<MetricKey, Metric>,
}

/// A clonable, thread-safe collection of named metrics.
///
/// `counter` / `gauge` / `histogram` are get-or-create: calling twice with
/// the same name and labels returns handles to the same underlying atomic,
/// so independent subsystems can share a series without coordination. The
/// `register_*` variants attach a handle that already exists (e.g. a
/// counter a `Receiver` created at bind time, before any registry was in
/// sight).
#[derive(Clone, Default)]
pub struct Registry(Arc<Mutex<Inner>>);

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut l: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        l.sort();
        (name.to_string(), l)
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut inner = self.0.lock().expect("registry poisoned");
        let m = inner
            .metrics
            .entry(Self::key(name, labels))
            .or_insert_with(|| Metric::Counter(Counter::new()));
        match m {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut inner = self.0.lock().expect("registry poisoned");
        let m = inner
            .metrics
            .entry(Self::key(name, labels))
            .or_insert_with(|| Metric::Gauge(Gauge::new()));
        match m {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Get or create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let mut inner = self.0.lock().expect("registry poisoned");
        let m = inner
            .metrics
            .entry(Self::key(name, labels))
            .or_insert_with(|| Metric::Histogram(Histogram::new()));
        match m {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Attach an existing counter under `name{labels}` (replacing any
    /// previous metric at that key).
    pub fn register_counter(&self, name: &str, labels: &[(&str, &str)], c: Counter) {
        let mut inner = self.0.lock().expect("registry poisoned");
        inner
            .metrics
            .insert(Self::key(name, labels), Metric::Counter(c));
    }

    /// Attach an existing gauge under `name{labels}`.
    pub fn register_gauge(&self, name: &str, labels: &[(&str, &str)], g: Gauge) {
        let mut inner = self.0.lock().expect("registry poisoned");
        inner
            .metrics
            .insert(Self::key(name, labels), Metric::Gauge(g));
    }

    /// Attach an existing histogram under `name{labels}`.
    pub fn register_histogram(&self, name: &str, labels: &[(&str, &str)], h: Histogram) {
        let mut inner = self.0.lock().expect("registry poisoned");
        inner
            .metrics
            .insert(Self::key(name, labels), Metric::Histogram(h));
    }

    /// Render every metric in the Prometheus text exposition format.
    ///
    /// Histograms render cumulative `_bucket{le="…"}` series up to the
    /// highest occupied bucket plus `+Inf`, the `_sum`/`_count` pair, and
    /// summary-style `{quantile="0.5"}` / `{quantile="0.99"}` lines so a
    /// human (or a CI grep) can read the tail without doing bucket math.
    pub fn render_prometheus(&self) -> String {
        let inner = self.0.lock().expect("registry poisoned");
        let mut out = String::new();
        let mut last_family = String::new();
        for ((name, labels), metric) in &inner.metrics {
            if *name != last_family {
                let kind = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_family = name.clone();
            }
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!(
                        "{name}{} {}\n",
                        render_labels(labels, &[]),
                        c.get()
                    ));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{name}{} {}\n",
                        render_labels(labels, &[]),
                        g.get()
                    ));
                }
                Metric::Histogram(h) => {
                    render_histogram(&mut out, name, labels, h);
                }
            }
        }
        out
    }
}

/// Render a label set (plus extras) as `{k="v",…}`, or nothing when empty.
fn render_labels(labels: &[(String, String)], extra: &[(&str, String)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.extend(
        extra
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))),
    );
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &Histogram) {
    let counts = h.bucket_counts();
    let top = counts
        .iter()
        .rposition(|&c| c > 0)
        .map_or(0, |i| (i + 1).min(64));
    let mut cum = 0u64;
    for (i, c) in counts.iter().enumerate().take(top) {
        cum += c;
        let le = Histogram::bucket_bound(i).to_string();
        out.push_str(&format!(
            "{name}_bucket{} {cum}\n",
            render_labels(labels, &[("le", le)])
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{} {}\n",
        render_labels(labels, &[("le", "+Inf".to_string())]),
        h.count()
    ));
    out.push_str(&format!(
        "{name}_sum{} {}\n",
        render_labels(labels, &[]),
        h.sum()
    ));
    out.push_str(&format!(
        "{name}_count{} {}\n",
        render_labels(labels, &[]),
        h.count()
    ));
    for q in ["0.5", "0.99"] {
        if let Some(v) = h.quantile(q.parse().expect("static quantile")) {
            out.push_str(&format!(
                "{name}{} {v}\n",
                render_labels(labels, &[("quantile", q.to_string())])
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("sent_total", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Get-or-create returns a handle to the same atomic.
        assert_eq!(reg.counter("sent_total", &[]).get(), 5);

        let g = reg.gauge("active", &[("driver", "async")]);
        g.set(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket i holds v with v <= 2^i and v > 2^(i-1): the boundary
        // value 2^i lands in bucket i, 2^i + 1 in bucket i + 1.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        for i in 1..64usize {
            let bound = 1u64 << i;
            assert_eq!(Histogram::bucket_index(bound), i, "2^{i} in bucket {i}");
            assert_eq!(
                Histogram::bucket_index(bound + 1),
                i + 1,
                "2^{i}+1 spills to bucket {}",
                i + 1
            );
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounds() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        for v in 1..=100u64 {
            h.observe(v);
        }
        // p50 of 1..=100 is 50, whose bucket bound is 64.
        assert_eq!(h.quantile(0.5), Some(64));
        // p99 is 99 → bucket bound 128.
        assert_eq!(h.quantile(0.99), Some(128));
        assert_eq!(h.quantile(1.0), Some(128));
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
    }

    #[test]
    fn histogram_concurrent_increments_lose_nothing() {
        let h = Histogram::new();
        let threads = 8;
        let per = 10_000u64;
        let mut joins = Vec::new();
        for t in 0..threads {
            let h = h.clone();
            joins.push(thread::spawn(move || {
                for i in 0..per {
                    h.observe(t * per + i);
                }
            }));
        }
        for j in joins {
            j.join().expect("worker panicked");
        }
        assert_eq!(h.count(), threads * per);
        let total: u64 = h.bucket_counts().iter().sum();
        assert_eq!(total, threads * per);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = Registry::new();
        reg.counter("drops_total", &[("reason", "dedup")]).add(2);
        reg.gauge("active_sessions", &[]).set(7);
        let h = reg.histogram("pacing_error_ns", &[("path", "a")]);
        h.observe(3);
        h.observe(1000);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE drops_total counter"), "{text}");
        assert!(text.contains("drops_total{reason=\"dedup\"} 2"), "{text}");
        assert!(text.contains("active_sessions 7"), "{text}");
        assert!(
            text.contains("pacing_error_ns_bucket{path=\"a\",le=\"4\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pacing_error_ns_bucket{path=\"a\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("pacing_error_ns_sum{path=\"a\"} 1003"),
            "{text}"
        );
        assert!(
            text.contains("pacing_error_ns_count{path=\"a\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("pacing_error_ns{path=\"a\",quantile=\"0.99\"} 1024"),
            "{text}"
        );
    }

    #[test]
    fn registered_handles_share_state() {
        let reg = Registry::new();
        let c = Counter::new();
        c.add(9);
        reg.register_counter("pre_existing_total", &[], c.clone());
        c.inc();
        assert!(reg.render_prometheus().contains("pre_existing_total 10"));
    }
}
