//! A tiny read-only metrics endpoint.
//!
//! [`MetricsServer::bind`] spawns one background thread that answers
//! every TCP connection with an `HTTP/1.0` response carrying the current
//! [`Registry`] snapshot in Prometheus text format. It
//! ignores the request beyond draining the header block — there is
//! nothing to route: every path returns the same snapshot. That keeps the
//! attack surface of a long-running daemon's diagnostic port as close to
//! zero as an HTTP-ish endpoint can be: no parsing of untrusted input, no
//! state mutation, bounded reads, short write timeout.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use std::{io, thread};

use crate::Registry;

/// How long the accept loop sleeps between polls of the (non-blocking)
/// listener. Scrapes are rare; 25 ms of accept latency is invisible to a
/// scraper and keeps the idle thread cheap.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Per-connection IO timeout: a stalled scraper cannot wedge the thread.
const CONN_TIMEOUT: Duration = Duration::from_millis(500);

/// A background thread serving registry snapshots over TCP.
///
/// Dropping the server stops the thread and closes the listener.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9091"`; port 0 picks a free port)
    /// and start serving snapshots of `registry`.
    pub fn bind(addr: &str, registry: Registry) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = thread::Builder::new()
            .name("metrics-server".into())
            .spawn(move || serve_loop(listener, registry, flag))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_loop(listener: TcpListener, registry: Registry, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Best effort: a scrape that fails mid-write is the
                // scraper's problem, not the daemon's.
                let _ = answer(stream, &registry);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn answer(mut stream: std::net::TcpStream, registry: &Registry) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(CONN_TIMEOUT))?;
    stream.set_write_timeout(Some(CONN_TIMEOUT))?;
    // Drain the request header block (bounded) so well-behaved HTTP
    // clients don't see a reset before they finish writing.
    let mut buf = [0u8; 1024];
    let mut seen = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                seen.extend_from_slice(&buf[..n]);
                if seen.windows(4).any(|w| w == b"\r\n\r\n") || seen.len() >= 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = registry.render_prometheus();
    let head = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    #[test]
    fn serves_registry_snapshot() {
        let reg = Registry::new();
        reg.counter("scrapes_expected_total", &[]).add(3);
        let server = MetricsServer::bind("127.0.0.1:0", reg.clone()).expect("bind");
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(response.contains("scrapes_expected_total 3"), "{response}");

        // The registry is live: a second scrape sees new values.
        reg.counter("scrapes_expected_total", &[]).inc();
        let mut stream = TcpStream::connect(addr).expect("connect 2");
        stream
            .write_all(b"GET / HTTP/1.0\r\n\r\n")
            .expect("request 2");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response 2");
        assert!(response.contains("scrapes_expected_total 4"), "{response}");
    }
}
