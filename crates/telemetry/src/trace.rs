//! Structured trace events and the sink drivers forward them to.
//!
//! The `slops::SessionMachine` appends [`TraceEvent`]s to an internal
//! buffer as it steps — plain data, no IO, fully deterministic. Drivers
//! drain that buffer after every `poll`/`on_event` and hand each event to
//! their [`TraceSink`]. Because the events are minted *inside* the
//! machine, a trace-equality test across two drivers checks exactly the
//! forwarding fidelity the layering contract demands: drivers relay
//! machine telemetry, they never synthesize it.
//!
//! Fields are primitive (`u64` bits per second, `&'static str` names) so
//! the events are `Eq`/`Hash`-friendly and this crate stays
//! dependency-free.

use std::sync::Mutex;

/// One structured trace event.
///
/// The first four variants are machine-level: minted by
/// `slops::SessionMachine`, byte-identical across drivers for the same
/// transport behavior. [`TraceEvent::TimerLag`] is driver-level: only
/// drivers that own timers (the evented event loop) emit it.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// The session state machine moved between phases.
    Phase {
        /// State name the machine left.
        from: &'static str,
        /// State name the machine entered.
        to: &'static str,
    },
    /// A probe stream was absorbed (sent/received accounting plus the
    /// per-stream SLoPS verdict).
    Stream {
        /// Stream id within the session.
        id: u64,
        /// Packets the sender reported sending.
        sent: u32,
        /// Packets that survived to the receiver-side record.
        received: u32,
        /// Per-stream classification (`"increasing"`, `"grey"`, …).
        verdict: &'static str,
    },
    /// A fleet of streams at one rate closed with a verdict.
    FleetVerdict {
        /// The fleet's probe rate in bits per second (rounded).
        rate_bps: u64,
        /// Streams that contributed (lost streams excluded).
        streams: u32,
        /// Fleet classification (`"increasing"`, `"non_increasing"`,
        /// `"grey"`).
        verdict: &'static str,
    },
    /// The session produced its final estimate.
    SessionDone {
        /// Low end of the avail-bw range, bits per second (rounded).
        low_bps: u64,
        /// High end of the avail-bw range, bits per second (rounded).
        high_bps: u64,
        /// Why the session stopped (`Termination` variant name).
        termination: &'static str,
        /// Fleets the rate search consumed.
        fleets: u32,
    },
    /// Driver-level: a timer fired `lag_ns` after its deadline.
    TimerLag {
        /// Observed lag between deadline and wakeup, nanoseconds.
        lag_ns: u64,
    },
}

impl TraceEvent {
    /// A short stable name for the event kind (JSONL `event` field,
    /// metric labels).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Phase { .. } => "phase",
            TraceEvent::Stream { .. } => "stream",
            TraceEvent::FleetVerdict { .. } => "fleet_verdict",
            TraceEvent::SessionDone { .. } => "session_done",
            TraceEvent::TimerLag { .. } => "timer_lag",
        }
    }
}

/// Where drivers deliver trace events.
///
/// Implementations must be cheap and non-blocking-ish: sinks are called
/// from driver loops between socket operations. `&self` because sinks are
/// shared across threads (e.g. one sink per fleet).
pub trait TraceSink: Send + Sync {
    /// Deliver one event.
    fn record(&self, event: &TraceEvent);
}

/// A sink that discards everything (the default when tracing is off).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: &TraceEvent) {}
}

/// A sink that collects events into a vector, for tests and equivalence
/// checks.
#[derive(Debug, Default)]
pub struct VecSink(Mutex<Vec<TraceEvent>>);

impl VecSink {
    /// An empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// Take every event recorded so far, leaving the sink empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.0.lock().expect("sink poisoned"))
    }

    /// Copy of the events recorded so far.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.0.lock().expect("sink poisoned").clone()
    }
}

impl TraceSink for VecSink {
    fn record(&self, event: &TraceEvent) {
        self.0.lock().expect("sink poisoned").push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_records_in_order() {
        let sink = VecSink::new();
        sink.record(&TraceEvent::Phase {
            from: "Start",
            to: "AwaitTrain",
        });
        sink.record(&TraceEvent::TimerLag { lag_ns: 42 });
        let got = sink.take();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].kind(), "phase");
        assert_eq!(got[1].kind(), "timer_lag");
        assert!(sink.take().is_empty());
    }
}
