//! # telemetry — metrics registry and sans-IO trace events
//!
//! The measurement methodology lives or dies on timing fidelity: SLoPS
//! verdicts depend on pacing accuracy, one-way-delay trends, and per-fleet
//! convergence that are invisible without instrumentation. This crate is
//! the workspace's dependency-free observability layer:
//!
//! * [`registry`] — a process-wide metrics [`Registry`] of [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket log-scale [`Histogram`]s. All handles are
//!   cheap clones around atomics: the hot path (increment, observe) is
//!   lock-free; only registration (cold) takes a mutex. The registry
//!   renders snapshots in the Prometheus text exposition format.
//! * [`trace`] — the structured [`TraceEvent`] stream emitted by the
//!   sans-IO `slops::SessionMachine` (phase transitions, stream summaries,
//!   fleet verdicts, session results) plus driver-level timing samples.
//!   The machine emits events as plain data; drivers forward them to a
//!   [`TraceSink`]. Drivers never synthesize estimation telemetry — they
//!   only relay what the machine said, so the trace is identical across
//!   drivers (the observability extension of the repo's driver-equivalence
//!   invariant).
//! * [`serve`] — a tiny read-only TCP listener ([`MetricsServer`]) that
//!   answers any HTTP request with the current registry snapshot, for
//!   `monitord --metrics <addr>`.
//!
//! ```
//! use telemetry::Registry;
//!
//! let reg = Registry::new();
//! let hist = reg.histogram("pacing_error_ns", &[("path", "lo0")]);
//! hist.observe(1_200);
//! hist.observe(90_000);
//! assert_eq!(hist.count(), 2);
//! let text = reg.render_prometheus();
//! assert!(text.contains("pacing_error_ns_count{path=\"lo0\"} 2"));
//! ```

#![forbid(unsafe_code)]

pub mod registry;
pub mod serve;
pub mod trace;

pub use registry::{Counter, Gauge, Histogram, Registry};
pub use serve::MetricsServer;
pub use trace::{NullSink, TraceEvent, TraceSink, VecSink};
