//! Engine-level invariant tests: conservation, determinism, and stress
//! behavior of the simulator under adversarial conditions.

use netsim::app::{CountingSink, RecordingSink};
use netsim::{Chain, ChainConfig, FlowId, LinkConfig, Packet, Prng, Simulator};
use units::{Rate, TimeNs};

/// Every injected byte is either delivered or accounted as a drop.
#[test]
fn byte_conservation_under_overload() {
    let mut sim = Simulator::new(5);
    let l = sim.add_link(
        LinkConfig::new(Rate::from_mbps(1.0), TimeNs::from_millis(1)).with_queue_limit(10_000),
    );
    let sink = sim.add_app(Box::new(CountingSink::default()));
    let route = sim.route(&[l], sink);
    let mut rng = Prng::new(9);
    let mut injected = 0u64;
    let mut t = TimeNs::ZERO;
    for i in 0..5_000 {
        t += TimeNs::from_micros(rng.below(200));
        let size = 40 + rng.below(1460) as u32;
        injected += size as u64;
        sim.inject(Packet::new(size, FlowId(1), i, route.clone()), t);
    }
    assert!(sim.run_until_idle(TimeNs::from_secs(600)));
    let delivered = sim.app::<CountingSink>(sink).bytes;
    let stats = &sim.link(l).stats;
    assert!(stats.drops_overflow > 0, "overload must drop");
    assert_eq!(stats.tx_bytes, delivered);
    // Conservation: what went in equals what came out plus queue drops.
    // Dropped bytes are not tracked per byte, so reconstruct from counts:
    // injected == delivered + dropped bytes; we only know dropped packets,
    // so check the weaker but still binding inequality both ways.
    assert!(delivered < injected);
    assert!(
        delivered + stats.drops_overflow * 1500 >= injected,
        "drop accounting inconsistent"
    );
}

/// Two identical simulations produce byte-identical delivery traces.
#[test]
fn determinism_across_runs() {
    let trace = |seed: u64| {
        let mut sim = Simulator::new(seed);
        let chain = Chain::build(
            &mut sim,
            &ChainConfig::symmetric(vec![
                LinkConfig::new(Rate::from_mbps(5.0), TimeNs::from_millis(2)),
                LinkConfig::new(Rate::from_mbps(3.0), TimeNs::from_millis(3)),
            ]),
        );
        let sink = sim.add_app(Box::new(RecordingSink::default()));
        let route = chain.forward_route(&sim, sink);
        let mut rng = sim.rng();
        let mut t = TimeNs::ZERO;
        for i in 0..500 {
            t += TimeNs::from_micros(rng.below(3000));
            let size = 40 + rng.below(1460) as u32;
            sim.inject(Packet::new(size, FlowId(2), i, route.clone()), t);
        }
        sim.run_until_idle(TimeNs::from_secs(100));
        sim.app::<RecordingSink>(sink)
            .records
            .iter()
            .map(|r| (r.seq, r.recv_at))
            .collect::<Vec<_>>()
    };
    assert_eq!(trace(77), trace(77));
    assert_ne!(trace(77), trace(78));
}

/// A packet larger than the queue limit on a busy link is dropped, not
/// wedged.
#[test]
fn oversized_packet_cannot_wedge_the_queue() {
    let mut sim = Simulator::new(1);
    let l =
        sim.add_link(LinkConfig::new(Rate::from_mbps(1.0), TimeNs::ZERO).with_queue_limit(1000));
    let sink = sim.add_app(Box::new(CountingSink::default()));
    let route = sim.route(&[l], sink);
    sim.inject(Packet::new(500, FlowId(1), 0, route.clone()), TimeNs::ZERO);
    // Arrives while busy, exceeds the whole queue limit: dropped.
    sim.inject(Packet::new(1500, FlowId(1), 1, route.clone()), TimeNs::ZERO);
    sim.inject(
        Packet::new(500, FlowId(1), 2, route),
        TimeNs::from_micros(10),
    );
    assert!(sim.run_until_idle(TimeNs::from_secs(1)));
    assert_eq!(sim.app::<CountingSink>(sink).packets, 2);
    assert_eq!(sim.link(l).stats.drops_overflow, 1);
}

/// run_until never executes events beyond the horizon, and time never
/// goes backwards even with many interleaved timers.
#[test]
fn run_until_horizon_is_respected() {
    use netsim::{App, Ctx};
    struct Ticker {
        pub fired: Vec<TimeNs>,
    }
    impl App for Ticker {
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            self.fired.push(ctx.now());
            ctx.timer_in(TimeNs::from_millis(10), 0);
        }
    }
    let mut sim = Simulator::new(1);
    let app = sim.add_app(Box::new(Ticker { fired: vec![] }));
    sim.schedule_timer(app, TimeNs::ZERO, 0);
    sim.run_until(TimeNs::from_millis(95));
    let fired = &sim.app::<Ticker>(app).fired;
    assert_eq!(fired.len(), 10); // t = 0, 10, ..., 90
    assert!(fired.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(sim.now(), TimeNs::from_millis(95));
    sim.run_until(TimeNs::from_millis(105));
    assert_eq!(sim.app::<Ticker>(app).fired.len(), 11);
}

/// The engine sustains millions of events without issue (smoke/perf).
#[test]
fn engine_throughput_smoke() {
    let mut sim = Simulator::new(3);
    let l = sim.add_link(LinkConfig::new(
        Rate::from_mbps(1000.0),
        TimeNs::from_micros(1),
    ));
    let sink = sim.add_app(Box::new(CountingSink::default()));
    let route = sim.route(&[l], sink);
    for i in 0..200_000u64 {
        sim.inject(
            Packet::new(100, FlowId(1), i, route.clone()),
            TimeNs::from_nanos(i * 900),
        );
    }
    assert!(sim.run_until_idle(TimeNs::from_secs(10)));
    assert_eq!(sim.app::<CountingSink>(sink).packets, 200_000);
    assert!(sim.events_processed() >= 600_000);
}
