//! A `ping`-like round-trip-time prober.
//!
//! The paper uses 1-second (Fig. 16) and 100-millisecond (Fig. 18) ping
//! series to show that a greedy TCP connection inflates path RTT while
//! pathload does not. [`Pinger`] sends periodic echo requests along a
//! forward route to an [`EchoReflector`], which bounces them back along a
//! reverse route; RTT samples and losses are recorded.

use crate::app::{App, Ctx};
use crate::packet::{FlowId, Packet, Payload, RouteSpec};
use std::sync::Arc;
use units::{Summary, TimeNs};

/// Reflects echo requests back along a configured reverse route.
pub struct EchoReflector {
    reply_route: Arc<RouteSpec>,
    reply_size: u32,
    flow: FlowId,
}

impl EchoReflector {
    /// Create a reflector replying along `reply_route` with `reply_size`
    /// byte packets of flow `flow`.
    pub fn new(reply_route: Arc<RouteSpec>, reply_size: u32, flow: FlowId) -> EchoReflector {
        EchoReflector {
            reply_route,
            reply_size,
            flow,
        }
    }
}

impl App for EchoReflector {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if let Payload::Ping {
            reply: false,
            seq,
            sent_at,
        } = pkt.payload
        {
            let reply = Packet::with_payload(
                self.reply_size,
                self.flow,
                seq,
                self.reply_route.clone(),
                Payload::Ping {
                    reply: true,
                    seq,
                    sent_at,
                },
            );
            ctx.send(reply);
        }
    }
}

/// Configuration of a [`Pinger`].
#[derive(Clone, Debug)]
pub struct PingerConfig {
    /// Probe period (1 s in Fig. 16, 100 ms in Fig. 18).
    pub period: TimeNs,
    /// Echo-request size in bytes (64 B like classic ping).
    pub size: u32,
    /// Stop sending at this absolute time.
    pub stop_at: TimeNs,
    /// Flow id for the request direction.
    pub flow: FlowId,
}

impl Default for PingerConfig {
    fn default() -> Self {
        PingerConfig {
            period: TimeNs::from_secs(1),
            size: 64,
            stop_at: TimeNs::MAX,
            flow: FlowId(u32::MAX),
        }
    }
}

/// One RTT sample.
#[derive(Clone, Copy, Debug)]
pub struct PingSample {
    /// When the echo request was sent.
    pub sent_at: TimeNs,
    /// Round-trip time, or `None` if no reply arrived (loss).
    pub rtt: Option<TimeNs>,
}

/// Periodic RTT prober.
pub struct Pinger {
    cfg: PingerConfig,
    route: Arc<RouteSpec>,
    /// One entry per request sent, indexed by sequence number.
    pub samples: Vec<PingSample>,
}

impl Pinger {
    /// Create a pinger probing along `route` (must end at an
    /// [`EchoReflector`]). Kick it off with
    /// `sim.schedule_timer(pinger_id, start, 0)`.
    pub fn new(cfg: PingerConfig, route: Arc<RouteSpec>) -> Pinger {
        Pinger {
            cfg,
            route,
            samples: Vec::new(),
        }
    }

    /// Replace the probe route (useful when the reflector must be created
    /// after the pinger, so the final route is only known later).
    pub fn set_route(&mut self, route: Arc<RouteSpec>) {
        self.route = route;
    }

    /// RTT samples that arrived, in milliseconds.
    pub fn rtts_ms(&self) -> Vec<f64> {
        self.samples
            .iter()
            .filter_map(|s| s.rtt.map(|r| r.millis_f64()))
            .collect()
    }

    /// Number of requests with no reply (so far).
    pub fn losses(&self) -> usize {
        self.samples.iter().filter(|s| s.rtt.is_none()).count()
    }

    /// Summary statistics of observed RTTs between `from` and `to`.
    pub fn stats_between(&self, from: TimeNs, to: TimeNs) -> PingStats {
        let rtts: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.sent_at >= from && s.sent_at < to)
            .filter_map(|s| s.rtt.map(|r| r.millis_f64()))
            .collect();
        let lost = self
            .samples
            .iter()
            .filter(|s| s.sent_at >= from && s.sent_at < to && s.rtt.is_none())
            .count();
        PingStats {
            rtt_ms: Summary::of(&rtts),
            lost,
        }
    }
}

/// Summary of a ping series over an interval.
#[derive(Debug, Clone, Copy)]
pub struct PingStats {
    /// RTT summary in milliseconds.
    pub rtt_ms: Summary,
    /// Requests that never got a reply in the interval.
    pub lost: usize,
}

impl App for Pinger {
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let now = ctx.now();
        if now > self.cfg.stop_at {
            return;
        }
        let seq = self.samples.len() as u64;
        self.samples.push(PingSample {
            sent_at: now,
            rtt: None,
        });
        let pkt = Packet::with_payload(
            self.cfg.size,
            self.cfg.flow,
            seq,
            self.route.clone(),
            Payload::Ping {
                reply: false,
                seq,
                sent_at: now,
            },
        );
        ctx.send(pkt);
        ctx.timer_in(self.cfg.period, 0);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if let Payload::Ping {
            reply: true,
            seq,
            sent_at,
        } = pkt.payload
        {
            if let Some(sample) = self.samples.get_mut(seq as usize) {
                debug_assert_eq!(sample.sent_at, sent_at);
                sample.rtt = Some(ctx.now() - sent_at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppId;
    use crate::link::LinkConfig;
    use crate::sim::Simulator;
    use crate::topology::{Chain, ChainConfig};
    use units::Rate;

    fn ping_setup(drop_prob: f64) -> (Simulator, AppId) {
        let mut sim = Simulator::new(11);
        let mut lc = LinkConfig::new(Rate::from_mbps(10.0), TimeNs::from_millis(10));
        lc.drop_prob = drop_prob;
        let chain = Chain::build(
            &mut sim,
            &ChainConfig {
                forward: vec![lc],
                reverse: Some(vec![LinkConfig::new(
                    Rate::from_mbps(10.0),
                    TimeNs::from_millis(10),
                )]),
            },
        );
        // Create apps: ids must exist before routes reference them, so
        // allocate pinger first with a placeholder route? Instead: build
        // reflector route after pinger exists.
        let pinger_id = sim.add_app(Box::new(Pinger::new(
            PingerConfig {
                period: TimeNs::from_millis(100),
                size: 64,
                stop_at: TimeNs::from_secs(1),
                flow: FlowId(100),
            },
            Arc::new(RouteSpec {
                links: vec![],
                dst: AppId(0),
            }), // replaced below
        )));
        let reflector_route = chain.reverse_route(&sim, pinger_id);
        let reflector_id = sim.add_app(Box::new(EchoReflector::new(
            reflector_route,
            64,
            FlowId(101),
        )));
        let fwd = chain.forward_route(&sim, reflector_id);
        sim.app_mut::<Pinger>(pinger_id).route = fwd;
        sim.schedule_timer(pinger_id, TimeNs::ZERO, 0);
        (sim, pinger_id)
    }

    #[test]
    fn measures_base_rtt_on_empty_path() {
        let (mut sim, pinger_id) = ping_setup(0.0);
        sim.run_until_idle(TimeNs::from_secs(5));
        let p = sim.app::<Pinger>(pinger_id);
        assert!(p.samples.len() >= 10);
        assert_eq!(p.losses(), 0);
        // RTT = 2 * (51.2 us tx + 10 ms prop) ~ 20.1 ms
        for s in &p.samples {
            let rtt = s.rtt.expect("no loss expected");
            assert_eq!(
                rtt,
                TimeNs::from_micros(2 * (10_000 + 51)) + TimeNs::from_nanos(400)
            );
        }
    }

    #[test]
    fn counts_losses_under_fault_injection() {
        let (mut sim, pinger_id) = ping_setup(0.5);
        sim.run_until_idle(TimeNs::from_secs(5));
        let p = sim.app::<Pinger>(pinger_id);
        assert!(p.losses() > 0, "expected some losses at 50% drop");
        assert!(p.rtts_ms().len() < p.samples.len());
        let stats = p.stats_between(TimeNs::ZERO, TimeNs::from_secs(2));
        assert_eq!(stats.lost + stats.rtt_ms.n, p.samples.len());
    }
}
