//! MRTG-style windowed utilization monitoring.
//!
//! Real MRTG polls router interface byte counters and reports 5-minute
//! average utilization; the paper uses those graphs as ground truth for the
//! verification experiments (Fig. 10) and the TCP experiments (Figs. 15–17).
//! [`UtilMonitor`] reproduces that: per-window transmitted-byte counters from
//! which average utilization and avail-bw are derived, including the 6 Mb/s
//! reading quantization of the paper's Fig. 10 graphs.

use units::{Rate, TimeNs};

/// Windowed byte counter attached to every link.
#[derive(Debug, Clone)]
pub struct UtilMonitor {
    window: TimeNs,
    /// bytes[i] = bytes transmitted in window i (window i covers
    /// `[i*window, (i+1)*window)`); windows with no traffic stay 0.
    bytes: Vec<u64>,
}

impl UtilMonitor {
    pub(crate) fn new(window: TimeNs) -> UtilMonitor {
        assert!(!window.is_zero(), "monitor window must be positive");
        UtilMonitor {
            window,
            bytes: Vec::new(),
        }
    }

    /// The configured window length.
    pub fn window(&self) -> TimeNs {
        self.window
    }

    pub(crate) fn record(&mut self, now: TimeNs, bytes: u64) {
        let idx = (now.as_nanos() / self.window.as_nanos()) as usize;
        if idx >= self.bytes.len() {
            self.bytes.resize(idx + 1, 0);
        }
        self.bytes[idx] += bytes;
    }

    /// Number of windows observed so far (including zero-traffic gaps).
    pub fn num_windows(&self) -> usize {
        self.bytes.len()
    }

    /// Bytes transmitted in window `idx` (0 if beyond the observed range).
    pub fn bytes_in_window(&self, idx: usize) -> u64 {
        self.bytes.get(idx).copied().unwrap_or(0)
    }

    /// Average transmission rate in window `idx`.
    pub fn rate_in_window(&self, idx: usize) -> Rate {
        Rate::from_transfer(self.bytes_in_window(idx), self.window)
    }

    /// Average utilization of a link with the given capacity in window `idx`.
    pub fn util_in_window(&self, idx: usize, capacity: Rate) -> f64 {
        if capacity.is_zero() {
            0.0
        } else {
            self.rate_in_window(idx).bps() / capacity.bps()
        }
    }

    /// Average available bandwidth `C (1 - u)` in window `idx` (eq. 2).
    pub fn avail_bw_in_window(&self, idx: usize, capacity: Rate) -> Rate {
        capacity - self.rate_in_window(idx)
    }

    /// Average rate over an arbitrary interval, reading whole windows that
    /// overlap `[from, to)` (coarse, like reading an MRTG graph).
    pub fn avg_rate(&self, from: TimeNs, to: TimeNs) -> Rate {
        if to <= from {
            return Rate::ZERO;
        }
        let w = self.window.as_nanos();
        let first = (from.as_nanos() / w) as usize;
        let last = ((to.as_nanos().saturating_sub(1)) / w) as usize;
        let total: u64 = (first..=last).map(|i| self.bytes_in_window(i)).sum();
        let span = TimeNs::from_nanos((last - first + 1) as u64 * w);
        Rate::from_transfer(total, span)
    }

    /// An MRTG *reading* of avail-bw for window `idx`: the true window
    /// average quantized to a band of the given width, as when reading
    /// values off a low-resolution graph. The paper's Fig. 10 uses 6 Mb/s
    /// bands. Returns `(low, high)` of the band, clamped to `[0, capacity]`.
    pub fn mrtg_reading(&self, idx: usize, capacity: Rate, band: Rate) -> (Rate, Rate) {
        let a = self.avail_bw_in_window(idx, capacity);
        if band.is_zero() {
            return (a, a);
        }
        let k = (a.bps() / band.bps()).floor();
        let lo = Rate::from_bps((k * band.bps()).max(0.0));
        let hi = lo + band;
        (lo, hi.min(capacity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_windows() {
        let mut m = UtilMonitor::new(TimeNs::from_secs(1));
        m.record(TimeNs::from_millis(100), 1000);
        m.record(TimeNs::from_millis(900), 500);
        m.record(TimeNs::from_millis(2500), 300); // window 2, window 1 empty
        assert_eq!(m.num_windows(), 3);
        assert_eq!(m.bytes_in_window(0), 1500);
        assert_eq!(m.bytes_in_window(1), 0);
        assert_eq!(m.bytes_in_window(2), 300);
        assert_eq!(m.bytes_in_window(99), 0);
    }

    #[test]
    fn window_rate_and_util() {
        let mut m = UtilMonitor::new(TimeNs::from_secs(1));
        // 125_000 bytes in 1 s = 1 Mb/s
        m.record(TimeNs::from_millis(10), 125_000);
        assert!((m.rate_in_window(0).mbps() - 1.0).abs() < 1e-9);
        let cap = Rate::from_mbps(10.0);
        assert!((m.util_in_window(0, cap) - 0.1).abs() < 1e-9);
        assert!((m.avail_bw_in_window(0, cap).mbps() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn avg_rate_spans_windows() {
        let mut m = UtilMonitor::new(TimeNs::from_secs(1));
        m.record(TimeNs::from_millis(500), 125_000); // 1 Mb/s in w0
        m.record(TimeNs::from_millis(1500), 375_000); // 3 Mb/s in w1
        let avg = m.avg_rate(TimeNs::ZERO, TimeNs::from_secs(2));
        assert!((avg.mbps() - 2.0).abs() < 1e-9);
        assert!(m
            .avg_rate(TimeNs::from_secs(2), TimeNs::from_secs(2))
            .is_zero());
    }

    #[test]
    fn mrtg_reading_quantizes_to_band() {
        let mut m = UtilMonitor::new(TimeNs::from_secs(1));
        // util 0.26 of 100 Mb/s => avail 74 Mb/s
        m.record(TimeNs::from_millis(1), 3_250_000);
        let (lo, hi) = m.mrtg_reading(0, Rate::from_mbps(100.0), Rate::from_mbps(6.0));
        assert!((lo.mbps() - 72.0).abs() < 1e-9);
        assert!((hi.mbps() - 78.0).abs() < 1e-9);
        assert!(lo.mbps() <= 74.0 && 74.0 <= hi.mbps());
    }
}
