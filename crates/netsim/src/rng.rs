//! Deterministic pseudo-random number generation.
//!
//! The workspace deliberately does not use the `rand` crate in library code:
//! experiment reproducibility must not depend on the version of an external
//! RNG (see DESIGN.md §5). This is xoshiro256** (Blackman & Vigna), seeded
//! through SplitMix64 — the standard, well-tested combination — plus the
//! handful of distribution samplers the traffic models need.

/// xoshiro256** generator with SplitMix64 seeding.
///
/// ```
/// use netsim::rng::Prng;
/// let mut a = Prng::new(42);
/// let mut b = Prng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Clone, Debug)]
pub struct Prng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { s }
    }

    /// Derive an independent child generator; `stream` distinguishes
    /// subsystems (links, sources, ...) sharing one master seed.
    pub fn derive(&self, stream: u64) -> Prng {
        // Mix the stream id through SplitMix so neighbouring ids decorrelate.
        let mut sm = self.s[0] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53-bit precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` (Lemire's method, unbiased).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.f64() < p
    }

    /// Exponential variate with the given mean (inverse-CDF method).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // 1 - f64() is in (0, 1], avoiding ln(0).
        -mean * (1.0 - self.f64()).ln()
    }

    /// Pareto variate with shape `alpha` and the given **mean**.
    ///
    /// For alpha <= 1 the mean does not exist; we then interpret `mean` as
    /// the scale parameter x_m directly. For alpha > 1, x_m is chosen so
    /// that `E[X] = mean`: x_m = mean * (alpha - 1) / alpha. The paper uses
    /// alpha = 1.9 (finite mean, infinite variance).
    #[inline]
    pub fn pareto_mean(&mut self, alpha: f64, mean: f64) -> f64 {
        debug_assert!(alpha > 0.0 && mean > 0.0);
        let xm = if alpha > 1.0 {
            mean * (alpha - 1.0) / alpha
        } else {
            mean
        };
        let u = 1.0 - self.f64(); // (0, 1]
        xm / u.powf(1.0 / alpha)
    }

    /// Pick an index according to (unnormalized) non-negative weights.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        debug_assert!(!weights.is_empty());
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0);
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = Prng::new(7);
        let mut b = Prng::new(7);
        let mut c = Prng::new(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn derive_decorrelates_streams() {
        let root = Prng::new(1);
        let mut a = root.derive(0);
        let mut b = root.derive(1);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Prng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Prng::new(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = Prng::new(5);
        let n = 200_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let m = sum / n as f64;
        assert!((m - mean).abs() < 0.05, "sample mean {m}");
    }

    #[test]
    fn pareto_mean_close_for_alpha_gt_one() {
        let mut r = Prng::new(6);
        let n = 400_000;
        let mean = 2.0;
        let sum: f64 = (0..n).map(|_| r.pareto_mean(1.9, mean)).sum();
        let m = sum / n as f64;
        // Infinite variance => slow convergence; accept 10%.
        assert!((m - mean).abs() / mean < 0.10, "sample mean {m}");
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let mut r = Prng::new(7);
        let xm = 2.0 * 0.9 / 1.9; // mean 2.0, alpha 1.9
        for _ in 0..10_000 {
            assert!(r.pareto_mean(1.9, 2.0) >= xm * 0.999);
        }
    }

    #[test]
    fn weighted_choice_distribution() {
        let mut r = Prng::new(8);
        let w = [0.4, 0.5, 0.1];
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[r.weighted_choice(&w)] += 1;
        }
        for i in 0..3 {
            let p = counts[i] as f64 / n as f64;
            assert!((p - w[i]).abs() < 0.01, "p[{i}]={p}");
        }
    }

    #[test]
    fn chance_edges() {
        let mut r = Prng::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
