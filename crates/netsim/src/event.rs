//! The event queue: a binary heap ordered by `(time, sequence)`, with a
//! one-element front slot that absorbs the push/pop churn of the hot loop.
//!
//! The sequence number breaks ties deterministically in FIFO order of
//! scheduling, which both makes runs reproducible and matches the intuitive
//! "things scheduled first happen first" semantics for simultaneous events.
//!
//! Two hot-path properties (see `docs/ARCHITECTURE.md` § Performance
//! notes):
//!
//! * **Events are small `Copy` values.** Packets travel by
//!   [`PacketSlot`] — a handle into the engine's packet pool
//!   ([`crate::pool`]) — instead of by value, so a heap sift moves ~32
//!   bytes, not a whole packet.
//! * **The front slot bypasses the heap** for the push/pop alternation
//!   that dominates timer-driven apps (a source fires, schedules its next
//!   firing, and nothing earlier is pending): the minimum pending event is
//!   kept in an `Option` in front of the heap, so that cycle costs two
//!   moves instead of two O(log n) sifts. Invariant: the front event
//!   orders before everything in the heap, so pop order is exactly the
//!   plain-heap order.
//!
//! The queue counts its real heap operations (`QueueStats`) so the
//! engine can report op-count wins — the honest metric on a single-core
//! container where wall-clock parallelism is off the table.

use crate::app::AppId;
use crate::link::LinkId;
use crate::pool::PacketSlot;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use units::TimeNs;

/// What happens when an event fires.
#[derive(Clone, Copy, Debug)]
pub enum EventKind {
    /// A packet arrives at the tail of a link's queue.
    ArriveAtLink {
        /// The link receiving the packet.
        link: LinkId,
        /// The arriving packet, parked in the engine's packet pool.
        slot: PacketSlot,
    },
    /// A link finishes transmitting the packet in service.
    TxDone {
        /// The link whose transmission completes.
        link: LinkId,
    },
    /// A packet is delivered to its destination application.
    Deliver {
        /// The receiving application.
        app: AppId,
        /// The delivered packet, parked in the engine's packet pool.
        slot: PacketSlot,
    },
    /// An application timer fires.
    Timer {
        /// The owning application.
        app: AppId,
        /// Opaque token the application passed when arming the timer.
        token: u64,
    },
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    pub time: TimeNs,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, with the scheduling sequence as the deterministic tie-break.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// `a` fires strictly before `b` in `(time, seq)` order.
#[inline]
fn earlier(a: &Event, b: &Event) -> bool {
    (a.time, a.seq) < (b.time, b.seq)
}

/// ceil(log2(n)) for n ≥ 1 — the comparison-cost proxy for one heap
/// operation at depth `n`.
#[inline]
fn log2_ceil(n: usize) -> u64 {
    (usize::BITS - n.max(1).next_power_of_two().leading_zeros() - 1) as u64
}

/// Heap-operation accounting for one [`EventQueue`]; aggregated across
/// shards into [`crate::sim::EngineStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct QueueStats {
    /// Real `BinaryHeap` pushes (front-slot placements excluded).
    pub heap_pushes: u64,
    /// Real `BinaryHeap` pops (front-slot serves excluded).
    pub heap_pops: u64,
    /// Pushes and pops served by the front slot, bypassing the heap.
    pub front_hits: u64,
    /// Sum over heap ops of ceil(log2(depth)): the comparison-cost proxy
    /// that captures the log(global) → log(shard) sharding win.
    pub cmp_weight: u64,
    /// Deepest the queue got (front slot included).
    pub max_depth: usize,
}

impl QueueStats {
    /// Fold another queue's counters into this one (sums; max of maxes).
    pub fn absorb(&mut self, other: &QueueStats) {
        self.heap_pushes += other.heap_pushes;
        self.heap_pops += other.heap_pops;
        self.front_hits += other.front_hits;
        self.cmp_weight += other.cmp_weight;
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

/// Min-heap of pending events, fronted by a one-element fast slot.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    /// The minimum pending event, if claimed. Invariant: orders before
    /// everything in `heap` (distinct seqs make the order strict).
    front: Option<Event>,
    heap: BinaryHeap<Event>,
    next_seq: u64,
    stats: QueueStats,
}

impl EventQueue {
    pub fn push(&mut self, time: TimeNs, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = Event { time, seq, kind };
        match &self.front {
            Some(f) if earlier(&ev, f) => {
                // New minimum: it takes the front slot, the old front is
                // demoted into the heap (still ≤ everything there).
                if let Some(old) = self.front.replace(ev) {
                    self.heap_push(old);
                }
            }
            Some(_) => self.heap_push(ev),
            None => {
                // The front slot must keep ordering before the heap min.
                match self.heap.peek() {
                    Some(top) if earlier(top, &ev) => self.heap_push(ev),
                    _ => {
                        self.stats.front_hits += 1;
                        self.front = Some(ev);
                    }
                }
            }
        }
        self.stats.max_depth = self.stats.max_depth.max(self.len());
    }

    fn heap_push(&mut self, ev: Event) {
        self.heap.push(ev);
        self.stats.heap_pushes += 1;
        self.stats.cmp_weight += log2_ceil(self.heap.len());
    }

    pub fn pop(&mut self) -> Option<Event> {
        if let Some(ev) = self.front.take() {
            self.stats.front_hits += 1;
            return Some(ev);
        }
        let ev = self.heap.pop();
        if ev.is_some() {
            self.stats.heap_pops += 1;
            self.stats.cmp_weight += log2_ceil(self.heap.len() + 1);
        }
        ev
    }

    pub fn peek_time(&self) -> Option<TimeNs> {
        match &self.front {
            Some(ev) => Some(ev.time),
            None => self.heap.peek().map(|e| e.time),
        }
    }

    /// Re-insert an event carried over from a retired queue (engine freeze
    /// or collapse). Bypasses the front slot and the op counters: the
    /// event was already paid for when it was first pushed.
    pub fn seed(&mut self, time: TimeNs, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
        self.stats.max_depth = self.stats.max_depth.max(self.len());
    }

    /// Tear the queue down into its pending events — in pop order — plus
    /// its accumulated counters. Used when the engine re-partitions
    /// (freeze into shards, collapse back to one queue).
    pub fn into_events(self) -> (Vec<Event>, QueueStats) {
        let mut evs = self.heap.into_sorted_vec();
        // `into_sorted_vec` is ascending in the inverted (max-heap) order,
        // i.e. latest-first; flip to pop order.
        evs.reverse();
        if let Some(f) = self.front {
            evs.insert(0, f);
        }
        (evs, self.stats)
    }

    /// Accumulated heap-operation counters.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    #[allow(dead_code)] // used by tests and kept for engine introspection
    pub fn len(&self) -> usize {
        self.heap.len() + usize::from(self.front.is_some())
    }

    pub fn is_empty(&self) -> bool {
        self.front.is_none() && self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::default();
        q.push(
            TimeNs::from_nanos(30),
            EventKind::Timer {
                app: AppId(0),
                token: 3,
            },
        );
        q.push(
            TimeNs::from_nanos(10),
            EventKind::Timer {
                app: AppId(0),
                token: 1,
            },
        );
        q.push(
            TimeNs::from_nanos(20),
            EventKind::Timer {
                app: AppId(0),
                token: 2,
            },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut q = EventQueue::default();
        let t = TimeNs::from_nanos(5);
        for token in 0..100 {
            q.push(
                t,
                EventKind::Timer {
                    app: AppId(0),
                    token,
                },
            );
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::default();
        assert_eq!(q.peek_time(), None);
        q.push(
            TimeNs::from_nanos(42),
            EventKind::TxDone { link: LinkId(0) },
        );
        assert_eq!(q.peek_time(), Some(TimeNs::from_nanos(42)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn push_pop_alternation_hits_the_front_slot() {
        let mut q = EventQueue::default();
        // A timer-loop pattern: pop one, schedule the next, repeat.
        q.push(
            TimeNs::from_nanos(0),
            EventKind::Timer {
                app: AppId(0),
                token: 0,
            },
        );
        for i in 1..100u64 {
            let ev = q.pop().unwrap();
            assert_eq!(ev.time, TimeNs::from_nanos(i - 1));
            q.push(
                TimeNs::from_nanos(i),
                EventKind::Timer {
                    app: AppId(0),
                    token: i,
                },
            );
        }
        let s = q.stats();
        assert_eq!(s.heap_pushes, 0, "alternation must bypass the heap");
        assert_eq!(s.heap_pops, 0);
        assert_eq!(s.front_hits, 199); // 100 pushes + 99 pops
    }

    /// Model check: the front-slot queue pops in exactly the order a plain
    /// sorted list would, under a random interleaving of pushes and pops.
    #[test]
    fn front_slot_preserves_total_order() {
        let mut rng = Prng::new(0xF00D);
        let mut q = EventQueue::default();
        let mut model: Vec<(u64, u64)> = Vec::new(); // (time, seq), sorted
        let mut next_seq = 0u64;
        for _ in 0..2000 {
            if rng.below(3) > 0 || model.is_empty() {
                let t = rng.below(50);
                q.push(
                    TimeNs::from_nanos(t),
                    EventKind::Timer {
                        app: AppId(0),
                        token: next_seq,
                    },
                );
                let pos = model.partition_point(|&e| e <= (t, next_seq));
                model.insert(pos, (t, next_seq));
                next_seq += 1;
            } else {
                let got = q.pop().unwrap();
                let want = model.remove(0);
                assert_eq!((got.time.as_nanos(), got.seq), want);
            }
        }
        while let Some(got) = q.pop() {
            let want = model.remove(0);
            assert_eq!((got.time.as_nanos(), got.seq), want);
        }
        assert!(model.is_empty());
    }

    #[test]
    fn into_events_returns_pop_order() {
        let mut q = EventQueue::default();
        for t in [30u64, 10, 20, 10] {
            q.push(
                TimeNs::from_nanos(t),
                EventKind::Timer {
                    app: AppId(0),
                    token: t,
                },
            );
        }
        let (evs, _) = q.into_events();
        let times: Vec<u64> = evs.iter().map(|e| e.time.as_nanos()).collect();
        assert_eq!(times, vec![10, 10, 20, 30]);
        // Equal-time events keep scheduling order.
        assert!(evs[0].seq < evs[1].seq);
    }

    #[test]
    fn seed_is_uncounted_but_ordered() {
        let mut q = EventQueue::default();
        q.seed(
            TimeNs::from_nanos(20),
            EventKind::TxDone { link: LinkId(0) },
        );
        q.seed(
            TimeNs::from_nanos(10),
            EventKind::TxDone { link: LinkId(1) },
        );
        assert_eq!(q.stats().heap_pushes, 0);
        assert_eq!(q.stats().front_hits, 0);
        assert_eq!(q.pop().map(|e| e.time), Some(TimeNs::from_nanos(10)));
    }
}
