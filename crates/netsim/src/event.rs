//! The event queue: a binary heap ordered by `(time, sequence)`.
//!
//! The sequence number breaks ties deterministically in FIFO order of
//! scheduling, which both makes runs reproducible and matches the intuitive
//! "things scheduled first happen first" semantics for simultaneous events.

use crate::app::AppId;
use crate::link::LinkId;
use crate::packet::Packet;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use units::TimeNs;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A packet arrives at the tail of a link's queue.
    ArriveAtLink {
        /// The link receiving the packet.
        link: LinkId,
        /// The packet.
        pkt: Packet,
    },
    /// A link finishes transmitting the packet in service.
    TxDone {
        /// The link whose transmission completes.
        link: LinkId,
    },
    /// A packet is delivered to its destination application.
    Deliver {
        /// The receiving application.
        app: AppId,
        /// The packet.
        pkt: Packet,
    },
    /// An application timer fires.
    Timer {
        /// The owning application.
        app: AppId,
        /// Opaque token the application passed when arming the timer.
        token: u64,
    },
}

#[derive(Debug)]
pub(crate) struct Event {
    pub time: TimeNs,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, with the scheduling sequence as the deterministic tie-break.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap of pending events.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn push(&mut self, time: TimeNs, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<TimeNs> {
        self.heap.peek().map(|e| e.time)
    }

    #[allow(dead_code)] // used by tests and kept for engine introspection
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::default();
        q.push(
            TimeNs::from_nanos(30),
            EventKind::Timer {
                app: AppId(0),
                token: 3,
            },
        );
        q.push(
            TimeNs::from_nanos(10),
            EventKind::Timer {
                app: AppId(0),
                token: 1,
            },
        );
        q.push(
            TimeNs::from_nanos(20),
            EventKind::Timer {
                app: AppId(0),
                token: 2,
            },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut q = EventQueue::default();
        let t = TimeNs::from_nanos(5);
        for token in 0..100 {
            q.push(
                t,
                EventKind::Timer {
                    app: AppId(0),
                    token,
                },
            );
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::default();
        assert_eq!(q.peek_time(), None);
        q.push(
            TimeNs::from_nanos(42),
            EventKind::TxDone { link: LinkId(0) },
        );
        assert_eq!(q.peek_time(), Some(TimeNs::from_nanos(42)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
