//! Chain topologies: the H-hop path of the paper's Fig. 4 plus a mirrored
//! reverse chain for acknowledgments and echo replies.

use crate::app::AppId;
use crate::link::{LinkConfig, LinkId};
use crate::packet::RouteSpec;
use crate::sim::Simulator;
use std::sync::Arc;
use units::TimeNs;

/// Configuration of a bidirectional chain path.
#[derive(Clone, Debug)]
pub struct ChainConfig {
    /// Forward-direction links, sender to receiver, hop 0 first.
    pub forward: Vec<LinkConfig>,
    /// Reverse-direction links, receiver to sender, hop 0 first.
    /// If `None`, the forward configs are mirrored (same capacities and
    /// delays, no fault injection changes).
    pub reverse: Option<Vec<LinkConfig>>,
}

impl ChainConfig {
    /// A chain with the given forward links and a mirrored reverse path.
    pub fn symmetric(forward: Vec<LinkConfig>) -> ChainConfig {
        ChainConfig {
            forward,
            reverse: None,
        }
    }
}

/// A built chain: link ids in both directions.
#[derive(Clone, Debug)]
pub struct Chain {
    /// Forward links, hop 0 first.
    pub forward: Vec<LinkId>,
    /// Reverse links, first entry leaves the receiver.
    pub reverse: Vec<LinkId>,
}

impl Chain {
    /// Instantiate the chain's links in `sim`.
    pub fn build(sim: &mut Simulator, cfg: &ChainConfig) -> Chain {
        assert!(!cfg.forward.is_empty(), "a chain needs at least one link");
        let forward: Vec<LinkId> = cfg
            .forward
            .iter()
            .enumerate()
            .map(|(i, lc)| {
                let mut lc = lc.clone();
                if lc.name.is_empty() {
                    lc.name = format!("fwd{i}");
                }
                sim.add_link(lc)
            })
            .collect();
        let rev_cfgs: Vec<LinkConfig> = match &cfg.reverse {
            Some(r) => r.clone(),
            None => cfg.forward.iter().rev().cloned().collect(),
        };
        let reverse: Vec<LinkId> = rev_cfgs
            .into_iter()
            .enumerate()
            .map(|(i, mut lc)| {
                if lc.name.is_empty() || cfg.reverse.is_none() {
                    lc.name = format!("rev{i}");
                }
                sim.add_link(lc)
            })
            .collect();
        Chain { forward, reverse }
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.forward.len()
    }

    /// Route traversing the whole forward path to `dst`.
    pub fn forward_route(&self, sim: &Simulator, dst: AppId) -> Arc<RouteSpec> {
        sim.route(&self.forward, dst)
    }

    /// Route traversing the whole reverse path to `dst`.
    pub fn reverse_route(&self, sim: &Simulator, dst: AppId) -> Arc<RouteSpec> {
        sim.route(&self.reverse, dst)
    }

    /// Single-hop route across forward link `hop` only — the paper's
    /// cross-traffic enters and exits at each hop (Fig. 4).
    pub fn hop_route(&self, sim: &Simulator, hop: usize, dst: AppId) -> Arc<RouteSpec> {
        sim.route(&[self.forward[hop]], dst)
    }

    /// Base round-trip time for a packet of `fwd_size` bytes forward and
    /// `rev_size` bytes back, on an otherwise empty path: transmission plus
    /// propagation on every hop, no queueing.
    pub fn base_rtt(&self, sim: &Simulator, fwd_size: u32, rev_size: u32) -> TimeNs {
        let mut t = TimeNs::ZERO;
        for l in &self.forward {
            let link = sim.link(*l);
            t += link.capacity().tx_time(fwd_size) + link.prop_delay();
        }
        for l in &self.reverse {
            let link = sim.link(*l);
            t += link.capacity().tx_time(rev_size) + link.prop_delay();
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::RecordingSink;
    use crate::packet::{FlowId, Packet};
    use units::Rate;

    fn cfg(n: usize) -> ChainConfig {
        ChainConfig::symmetric(
            (0..n)
                .map(|_| LinkConfig::new(Rate::from_mbps(10.0), TimeNs::from_millis(5)))
                .collect(),
        )
    }

    #[test]
    fn builds_forward_and_mirrored_reverse() {
        let mut sim = Simulator::new(3);
        let chain = Chain::build(&mut sim, &cfg(4));
        assert_eq!(chain.hops(), 4);
        assert_eq!(chain.forward.len(), 4);
        assert_eq!(chain.reverse.len(), 4);
        assert_eq!(sim.num_links(), 8);
        for (f, r) in chain.forward.iter().zip(&chain.reverse) {
            assert_eq!(sim.link(*f).capacity().bps(), sim.link(*r).capacity().bps());
        }
    }

    #[test]
    fn base_rtt_accounts_for_every_hop() {
        let mut sim = Simulator::new(3);
        let chain = Chain::build(&mut sim, &cfg(2));
        // fwd: 2 * (1.2ms tx + 5ms prop); rev with 40 B: 2 * (0.032ms + 5ms)
        let rtt = chain.base_rtt(&sim, 1500, 40);
        let expect = TimeNs::from_micros(2 * (1200 + 5000) + 2 * (32 + 5000));
        assert_eq!(rtt, expect);
    }

    #[test]
    fn forward_route_reaches_destination() {
        let mut sim = Simulator::new(3);
        let chain = Chain::build(&mut sim, &cfg(3));
        let sink = sim.add_app(Box::new(RecordingSink::default()));
        let route = chain.forward_route(&sim, sink);
        sim.inject(Packet::new(1000, FlowId(5), 0, route), TimeNs::ZERO);
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
        assert_eq!(sim.app::<RecordingSink>(sink).records.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_chain_panics() {
        let mut sim = Simulator::new(3);
        let _ = Chain::build(&mut sim, &ChainConfig::symmetric(vec![]));
    }
}
