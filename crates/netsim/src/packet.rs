//! Packets, flows, routes, and the closed set of payload headers.

use crate::app::AppId;
use crate::link::LinkId;
use std::sync::Arc;
use units::TimeNs;

/// Identifies a traffic flow. Flow ids are assigned by the experiment code;
/// the simulator only uses them for accounting and FIFO-invariant checks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u32);

/// A source route: the ordered links a packet traverses, then the
/// application that receives it.
#[derive(Clone, Debug)]
pub struct RouteSpec {
    /// Links in traversal order. May be empty (direct local delivery).
    pub links: Vec<LinkId>,
    /// Destination application.
    pub dst: AppId,
}

/// TCP header flags (only the ones the Reno model needs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TcpFlags {
    /// Connection-establishment flag.
    pub syn: bool,
    /// Acknowledgment field is valid (always true after handshake).
    pub ack: bool,
    /// Sender is done (not used by the greedy experiments but supported).
    pub fin: bool,
}

/// A minimal TCP header carried by [`Payload::Tcp`] packets.
///
/// netsim defines the header (like a real network defines the wire format);
/// the `tcpsim` crate implements the endpoint state machines.
#[derive(Clone, Copy, Debug)]
pub struct TcpHeader {
    /// Connection id, used to demultiplex at the endpoints.
    pub conn: u32,
    /// First sequence byte carried by this segment.
    pub seq: u64,
    /// Cumulative acknowledgment (next byte expected).
    pub ack: u64,
    /// Payload bytes carried (0 for pure ACKs).
    pub len: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Echo of the sender timestamp, for RTT sampling (like RFC 7323 TSopt).
    pub ts_echo: TimeNs,
}

/// The closed set of payloads the simulator transports.
#[derive(Clone, Debug)]
pub enum Payload {
    /// Plain cross traffic; no header beyond the packet itself.
    None,
    /// A packet of a SLoPS periodic probe stream.
    Probe {
        /// Stream number within a fleet (or a global stream counter).
        stream: u32,
        /// Packet index within the stream, `0..K`.
        idx: u32,
        /// Sender timestamp for this packet (sender clock).
        sender_ts: TimeNs,
    },
    /// A packet of a back-to-back packet train (cprobe/ADR baseline).
    Train {
        /// Train number.
        train: u32,
        /// Packet index within the train.
        idx: u32,
    },
    /// ICMP-echo-like probe.
    Ping {
        /// True for the reply direction.
        reply: bool,
        /// Probe sequence number.
        seq: u64,
        /// Original transmit timestamp (echoed back in replies).
        sent_at: TimeNs,
    },
    /// TCP segment.
    Tcp(TcpHeader),
}

/// A simulated packet.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Globally unique id (assigned by [`crate::Simulator`] at injection).
    pub id: u64,
    /// Size on the wire, in bytes.
    pub size: u32,
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Per-flow sequence number (assigned by the sender).
    pub seq: u64,
    /// Time the packet entered the network (stamped at injection).
    pub sent_at: TimeNs,
    /// Source route.
    pub route: Arc<RouteSpec>,
    /// Index of the next link in `route.links` to traverse.
    pub hop: u16,
    /// Payload header.
    pub payload: Payload,
}

impl Packet {
    /// Create a packet with [`Payload::None`] (cross traffic).
    pub fn new(size: u32, flow: FlowId, seq: u64, route: Arc<RouteSpec>) -> Packet {
        Packet {
            id: 0,
            size,
            flow,
            seq,
            sent_at: TimeNs::ZERO,
            route,
            hop: 0,
            payload: Payload::None,
        }
    }

    /// Create a packet with an explicit payload.
    pub fn with_payload(
        size: u32,
        flow: FlowId,
        seq: u64,
        route: Arc<RouteSpec>,
        payload: Payload,
    ) -> Packet {
        Packet {
            payload,
            ..Packet::new(size, flow, seq, route)
        }
    }

    /// The next link this packet must traverse, or `None` if it has arrived.
    #[inline]
    pub fn next_link(&self) -> Option<LinkId> {
        self.route.links.get(self.hop as usize).copied()
    }

    /// True once the packet has traversed every link on its route.
    #[inline]
    pub fn at_destination(&self) -> bool {
        self.hop as usize >= self.route.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(links: Vec<LinkId>) -> Arc<RouteSpec> {
        Arc::new(RouteSpec {
            links,
            dst: AppId(0),
        })
    }

    #[test]
    fn hop_progression() {
        let r = route(vec![LinkId(0), LinkId(1)]);
        let mut p = Packet::new(100, FlowId(1), 0, r);
        assert_eq!(p.next_link(), Some(LinkId(0)));
        assert!(!p.at_destination());
        p.hop = 1;
        assert_eq!(p.next_link(), Some(LinkId(1)));
        p.hop = 2;
        assert_eq!(p.next_link(), None);
        assert!(p.at_destination());
    }

    #[test]
    fn empty_route_is_immediately_at_destination() {
        let p = Packet::new(100, FlowId(1), 0, route(vec![]));
        assert!(p.at_destination());
    }
}
