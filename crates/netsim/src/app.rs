//! Application framework: boxed state machines that receive packets and
//! timers, and act on the simulation through a [`Ctx`] handle.

use crate::packet::Packet;
use crate::sim::SimCore;
use std::any::Any;
use units::TimeNs;

/// Index of an application within a [`crate::Simulator`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AppId(pub u32);

/// A simulated application (traffic source, sink, TCP endpoint, prober...).
///
/// Handlers receive a [`Ctx`] through which they can send packets and arm
/// timers re-entrantly. Timer cancellation is by generation token: apps that
/// re-arm timers should ignore stale tokens.
///
/// The `Any` supertrait lets experiment code downcast apps back to their
/// concrete type after a run to read out collected results
/// (see [`crate::Simulator::app`]). The `Send` supertrait keeps whole
/// simulators movable across threads, which is what lets the batch runner
/// and the monitoring daemon drive independent simulations on worker
/// threads.
pub trait App: Any + Send {
    /// A packet addressed to this application arrived.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let _ = (ctx, pkt);
    }

    /// A timer armed with `token` fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let _ = (ctx, token);
    }
}

/// Handle through which an application interacts with the simulation.
pub struct Ctx<'a> {
    pub(crate) core: &'a mut SimCore,
    /// The id of the application being dispatched.
    pub id: AppId,
}

impl Ctx<'_> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> TimeNs {
        self.core.now
    }

    /// Send a packet into the network now. Stamps `sent_at` and assigns the
    /// globally unique packet id; delivery follows the packet's route.
    pub fn send(&mut self, pkt: Packet) {
        let now = self.core.now;
        self.core.inject(pkt, now);
    }

    /// Arm a timer that fires `delay` from now with the given token.
    pub fn timer_in(&mut self, delay: TimeNs, token: u64) {
        let at = self.core.now + delay;
        self.core.schedule_timer(self.id, at, token);
    }

    /// Arm a timer at an absolute time (must not be in the past).
    pub fn timer_at(&mut self, at: TimeNs, token: u64) {
        self.core.schedule_timer(self.id, at, token);
    }
}

/// A sink that counts and then forgets the packets it receives.
/// Useful as the destination of cross-traffic routes.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Packets received.
    pub packets: u64,
    /// Bytes received.
    pub bytes: u64,
    /// Time of the last delivery.
    pub last_arrival: TimeNs,
}

impl App for CountingSink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        self.packets += 1;
        self.bytes += pkt.size as u64;
        self.last_arrival = ctx.now();
    }
}

/// A sink that records per-packet delivery: `(flow, seq, sent_at, recv_at,
/// payload)`. Used by probe receivers and by FIFO-invariant tests.
#[derive(Debug, Default)]
pub struct RecordingSink {
    /// One record per delivered packet, in delivery order.
    pub records: Vec<DeliveryRecord>,
}

/// A single packet delivery observed by a [`RecordingSink`].
#[derive(Debug, Clone)]
pub struct DeliveryRecord {
    /// Flow id of the delivered packet.
    pub flow: crate::packet::FlowId,
    /// Per-flow sequence number.
    pub seq: u64,
    /// Injection timestamp.
    pub sent_at: TimeNs,
    /// Delivery timestamp.
    pub recv_at: TimeNs,
    /// Size in bytes.
    pub size: u32,
    /// Payload header.
    pub payload: crate::packet::Payload,
}

impl App for RecordingSink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        self.records.push(DeliveryRecord {
            flow: pkt.flow,
            seq: pkt.seq,
            sent_at: pkt.sent_at,
            recv_at: ctx.now(),
            size: pkt.size,
            payload: pkt.payload,
        });
    }
}
