//! Topology partitioning for the sharded engine.
//!
//! A union-find over *nodes* — one per link and one per application —
//! tracks which connected component each belongs to. Components are joined
//! by route creation ([`crate::Simulator::route`] unions a route's links
//! with its destination) and by the explicit binds
//! ([`crate::Simulator::bind_links`], [`crate::Simulator::bind_app`]) that
//! anchor route-less nodes (a chain's reverse direction, traffic sources
//! that only ever *send*).
//!
//! `TopoMap::freeze` turns the components into a shard plan: one event
//! queue per link component. It refuses (a [`ShardRefusal`]) whenever the
//! partition would be degenerate or unsound — the caller then stays on the
//! single-queue engine, which is always correct. After a freeze the map
//! keeps watching: unions that merge two different shards, or nodes that
//! appear outside every shard, set `collapse_pending`, and the engine
//! folds the shards back into one queue at the next safe point.
//!
//! Held to AL004 panic-freedom: lookups are by `.get`, never by index.

use crate::app::AppId;
use crate::link::LinkId;
use std::fmt;

/// Shard label meaning "not assigned to any shard".
pub(crate) const SHARD_NONE: u32 = u32::MAX;

/// Why [`crate::Simulator::try_shard`] refused to partition the topology.
///
/// A refusal is not an error: the simulator stays on the single-queue
/// engine, which handles every topology.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShardRefusal {
    /// All links form one connected component — e.g. every path crosses a
    /// shared tight link — so per-component queues would degenerate to the
    /// single global queue.
    SingleComponent,
    /// An application is not connected to any link component, so the
    /// planner cannot prove which shard its sends and timers belong to.
    /// Bind it ([`crate::Simulator::bind_app`]) or route to it first.
    UnanchoredApp(AppId),
    /// The topology has no links: nothing to partition.
    NoLinks,
}

impl fmt::Display for ShardRefusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardRefusal::SingleComponent => {
                write!(f, "all links share one connected component")
            }
            ShardRefusal::UnanchoredApp(app) => {
                write!(f, "app {} is not anchored to any link component", app.0)
            }
            ShardRefusal::NoLinks => write!(f, "topology has no links"),
        }
    }
}

/// The union-find topology map plus post-freeze bookkeeping flags.
#[derive(Debug, Default)]
pub(crate) struct TopoMap {
    /// Union-find parent per node (links first come first, then apps, in
    /// creation order — but nodes are allocated interleaved, so the two
    /// id spaces are mapped through `link_node` / `app_node`).
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Shard label per *root* node; `SHARD_NONE` before freeze and for
    /// components born after it.
    shard: Vec<u32>,
    link_node: Vec<u32>,
    app_node: Vec<u32>,
    /// A freeze succeeded and its shard labels are live.
    pub frozen: bool,
    /// Post-freeze topology changed: shard lookup tables must be
    /// re-materialized before the next event is routed.
    pub dirty: bool,
    /// A post-freeze union merged two different shards (or touched an
    /// unassignable node): the engine must collapse to one queue.
    pub collapse_pending: bool,
}

impl TopoMap {
    fn new_node(&mut self) -> u32 {
        let n = self.parent.len() as u32;
        self.parent.push(n);
        self.rank.push(0);
        self.shard.push(SHARD_NONE);
        n
    }

    /// Register a new link (ids are dense and creation-ordered, mirroring
    /// the simulator's link table).
    pub fn add_link(&mut self) {
        let n = self.new_node();
        self.link_node.push(n);
    }

    /// Register a new application.
    pub fn add_app(&mut self) {
        let n = self.new_node();
        self.app_node.push(n);
    }

    /// Find with path halving.
    fn find(&mut self, mut n: u32) -> u32 {
        loop {
            let p = self.parent.get(n as usize).copied().unwrap_or(n);
            if p == n {
                return n;
            }
            let gp = self.parent.get(p as usize).copied().unwrap_or(p);
            if let Some(slot) = self.parent.get_mut(n as usize) {
                *slot = gp;
            }
            n = gp;
        }
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let sa = self.shard.get(ra as usize).copied().unwrap_or(SHARD_NONE);
        let sb = self.shard.get(rb as usize).copied().unwrap_or(SHARD_NONE);
        if self.frozen {
            self.dirty = true;
            if sa != SHARD_NONE && sb != SHARD_NONE && sa != sb {
                // Two shards became connected: the partition is unsound.
                self.collapse_pending = true;
            }
        }
        let merged = if sa != SHARD_NONE { sa } else { sb };
        let (ra_rank, rb_rank) = (
            self.rank.get(ra as usize).copied().unwrap_or(0),
            self.rank.get(rb as usize).copied().unwrap_or(0),
        );
        let (root, child) = if ra_rank >= rb_rank {
            (ra, rb)
        } else {
            (rb, ra)
        };
        if let Some(slot) = self.parent.get_mut(child as usize) {
            *slot = root;
        }
        if ra_rank == rb_rank {
            if let Some(r) = self.rank.get_mut(root as usize) {
                *r = r.saturating_add(1);
            }
        }
        if let Some(s) = self.shard.get_mut(root as usize) {
            *s = merged;
        }
    }

    fn link_node(&self, l: LinkId) -> Option<u32> {
        self.link_node.get(l.0 as usize).copied()
    }

    fn app_node(&self, a: AppId) -> Option<u32> {
        self.app_node.get(a.0 as usize).copied()
    }

    /// Union all of `links` into one component.
    pub fn union_links(&mut self, links: &[LinkId]) {
        let mut first = None;
        for l in links {
            let Some(n) = self.link_node(*l) else {
                continue;
            };
            match first {
                None => first = Some(n),
                Some(f) => self.union(f, n),
            }
        }
    }

    /// Union a route's links with its destination app (what
    /// [`crate::Simulator::route`] records).
    pub fn union_route(&mut self, links: &[LinkId], dst: AppId) {
        self.union_links(links);
        let Some(d) = self.app_node(dst) else { return };
        match links.first().and_then(|l| self.link_node(*l)) {
            Some(n) => self.union(d, n),
            None => {
                // A linkless route: the destination forms (or joins) an
                // app-only component; freeze will refuse it unless some
                // other route anchors the app.
            }
        }
    }

    /// Union an app (typically a pure sender) with the links of the route
    /// it sends on, and that route's destination.
    pub fn union_app_route(&mut self, app: AppId, links: &[LinkId], dst: AppId) {
        self.union_route(links, dst);
        let Some(a) = self.app_node(app) else { return };
        let anchor = links
            .first()
            .and_then(|l| self.link_node(*l))
            .or_else(|| self.app_node(dst));
        if let Some(n) = anchor {
            self.union(a, n);
        }
    }

    /// Compute the shard plan: assign shard ids to link components in
    /// link-id order, then map every app to its component's shard.
    /// Returns `(link_shard, app_shard, shard_count)` and marks the map
    /// frozen. On refusal nothing changes.
    pub fn freeze(&mut self) -> Result<(Vec<u32>, Vec<u32>, usize), ShardRefusal> {
        if self.link_node.is_empty() {
            return Err(ShardRefusal::NoLinks);
        }
        // Work on a scratch label table so a refusal leaves no residue.
        let mut scratch = vec![SHARD_NONE; self.parent.len()];
        let mut count: u32 = 0;
        let links: Vec<u32> = self.link_node.clone();
        let mut link_shard = Vec::with_capacity(links.len());
        for n in links {
            let r = self.find(n) as usize;
            let s = match scratch.get(r).copied() {
                Some(SHARD_NONE) | None => {
                    let s = count;
                    count += 1;
                    if let Some(slot) = scratch.get_mut(r) {
                        *slot = s;
                    }
                    s
                }
                Some(s) => s,
            };
            link_shard.push(s);
        }
        if count < 2 {
            return Err(ShardRefusal::SingleComponent);
        }
        let apps: Vec<u32> = self.app_node.clone();
        let mut app_shard = Vec::with_capacity(apps.len());
        for (i, n) in apps.into_iter().enumerate() {
            let r = self.find(n) as usize;
            match scratch.get(r).copied() {
                Some(s) if s != SHARD_NONE => app_shard.push(s),
                _ => return Err(ShardRefusal::UnanchoredApp(AppId(i as u32))),
            }
        }
        self.shard = scratch;
        self.frozen = true;
        self.dirty = false;
        Ok((link_shard, app_shard, count as usize))
    }

    /// Recompute the shard lookup tables after post-freeze topology
    /// changes (new nodes, unions within one shard). Nodes in components
    /// that carry no shard label map to [`SHARD_NONE`]; routing an event
    /// to one forces a collapse. Clears `dirty`.
    pub fn materialize(&mut self) -> (Vec<u32>, Vec<u32>) {
        let links: Vec<u32> = self.link_node.clone();
        let apps: Vec<u32> = self.app_node.clone();
        let look = |topo: &mut TopoMap, n: u32| {
            let r = topo.find(n) as usize;
            topo.shard.get(r).copied().unwrap_or(SHARD_NONE)
        };
        let link_shard = links.into_iter().map(|n| look(self, n)).collect();
        let app_shard = apps.into_iter().map(|n| look(self, n)).collect();
        self.dirty = false;
        (link_shard, app_shard)
    }

    /// Abandon the shard plan (engine collapse): labels are wiped and
    /// unions go back to being plain bookkeeping. A later
    /// [`TopoMap::freeze`] may re-partition.
    pub fn unfreeze(&mut self) {
        self.frozen = false;
        self.dirty = false;
        self.collapse_pending = false;
        for s in &mut self.shard {
            *s = SHARD_NONE;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(links: usize, apps: usize) -> TopoMap {
        let mut m = TopoMap::default();
        for _ in 0..links {
            m.add_link();
        }
        for _ in 0..apps {
            m.add_app();
        }
        m
    }

    #[test]
    fn disjoint_routes_make_disjoint_shards() {
        let mut m = map(4, 2);
        m.union_route(&[LinkId(0), LinkId(1)], AppId(0));
        m.union_route(&[LinkId(2), LinkId(3)], AppId(1));
        let (link_shard, app_shard, n) = m.freeze().unwrap();
        assert_eq!(n, 2);
        assert_eq!(link_shard, vec![0, 0, 1, 1]);
        assert_eq!(app_shard, vec![0, 1]);
    }

    #[test]
    fn shared_link_refuses_single_component() {
        let mut m = map(3, 2);
        // Both routes cross link 1 (the shared tight link).
        m.union_route(&[LinkId(0), LinkId(1)], AppId(0));
        m.union_route(&[LinkId(2), LinkId(1)], AppId(1));
        assert_eq!(m.freeze().unwrap_err(), ShardRefusal::SingleComponent);
        assert!(!m.frozen);
    }

    #[test]
    fn unanchored_app_refuses() {
        let mut m = map(2, 2);
        m.union_route(&[LinkId(0)], AppId(0));
        // App 1 has no route and no bind: its sends are unprovable.
        assert_eq!(
            m.freeze().unwrap_err(),
            ShardRefusal::UnanchoredApp(AppId(1))
        );
        // A failed freeze leaves no labels behind; binding fixes it.
        m.union_route(&[LinkId(1)], AppId(1));
        let (_, app_shard, n) = m.freeze().unwrap();
        assert_eq!(n, 2);
        assert_eq!(app_shard, vec![0, 1]);
    }

    #[test]
    fn no_links_refuses() {
        let mut m = map(0, 1);
        assert_eq!(m.freeze().unwrap_err(), ShardRefusal::NoLinks);
    }

    #[test]
    fn post_freeze_cross_shard_union_flags_collapse() {
        let mut m = map(2, 2);
        m.union_route(&[LinkId(0)], AppId(0));
        m.union_route(&[LinkId(1)], AppId(1));
        m.freeze().unwrap();
        assert!(!m.collapse_pending);
        // A new route spanning both shards makes the partition unsound.
        m.union_route(&[LinkId(0), LinkId(1)], AppId(0));
        assert!(m.collapse_pending);
        m.unfreeze();
        assert!(!m.collapse_pending);
        assert!(!m.frozen);
    }

    #[test]
    fn post_freeze_same_shard_union_just_dirties() {
        let mut m = map(4, 2);
        m.union_route(&[LinkId(0), LinkId(1)], AppId(0));
        m.union_route(&[LinkId(2), LinkId(3)], AppId(1));
        m.freeze().unwrap();
        // A new app routed within shard 1: benign, needs re-materialize.
        m.add_app();
        m.union_route(&[LinkId(2)], AppId(2));
        assert!(m.dirty);
        assert!(!m.collapse_pending);
        let (link_shard, app_shard) = m.materialize();
        assert_eq!(link_shard, vec![0, 0, 1, 1]);
        assert_eq!(app_shard, vec![0, 1, 1]);
        assert!(!m.dirty);
    }

    #[test]
    fn pure_sender_binds_through_union_app_route() {
        let mut m = map(2, 3);
        m.union_route(&[LinkId(0)], AppId(0));
        m.union_route(&[LinkId(1)], AppId(1));
        // App 2 sends on link 1's route but is never a destination.
        m.union_app_route(AppId(2), &[LinkId(1)], AppId(1));
        let (_, app_shard, n) = m.freeze().unwrap();
        assert_eq!(n, 2);
        assert_eq!(app_shard, vec![0, 1, 1]);
    }
}
